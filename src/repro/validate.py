"""Post-install self-check: the critical cross-layer invariants in one
fast pass.

``python -m repro selftest`` runs this after installation (or inside a
CI smoke job): a real numeric solve through every major code path plus
the headline timing anchors, each reported pass/fail. It is a subset of
the full test suite chosen to finish in a few seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np


@dataclass
class Check:
    """One self-test: a name and a callable returning a detail string."""

    name: str
    run: Callable[[], str]


def _check_packed_gemm() -> str:
    from repro.blas import dgemm

    rng = np.random.default_rng(0)
    a, b = rng.standard_normal((90, 70)), rng.standard_normal((70, 50))
    err = float(np.abs(dgemm(a, b) - a @ b).max())
    assert err < 1e-10, f"packed GEMM error {err}"
    return f"max |err| = {err:.1e}"


def _check_emulated_kernel() -> str:
    from repro.blas.kernels import basic_kernel_2
    from repro.blas.packing import pack_a, pack_b

    rng = np.random.default_rng(1)
    a, b = rng.standard_normal((30, 16)), rng.standard_normal((16, 8))
    c = basic_kernel_2(pack_a(a).tile(0), pack_b(b).tile(0))
    err = float(np.abs(c - a @ b).max())
    assert err < 1e-12, f"emulated kernel error {err}"
    return "vector-ISA emulation matches NumPy"


def _check_numeric_hpl() -> str:
    from repro.hpl import NativeHPL

    r = NativeHPL(200, nb=50).run(numeric=True)
    assert r.passed, f"HPL residual {r.residual}"
    return f"residual = {r.residual:.4f} (< 16)"


def _check_distributed() -> str:
    from repro.cluster import DistributedHPL

    r = DistributedHPL(48, 8, 2, 2).run()
    assert r.passed, f"distributed residual {r.residual}"
    return f"2x2 grid residual = {r.residual:.4f}"


def _check_offload_numeric() -> str:
    from repro.hybrid import OffloadDGEMM

    rng = np.random.default_rng(2)
    a, b = rng.standard_normal((60, 10)), rng.standard_normal((10, 60))
    c = np.zeros((60, 60))
    OffloadDGEMM(60, 60, kt=10, tile=(30, 30), host_assist=True).run(a, b, c)
    err = float(np.abs(c - a @ b).max())
    assert err < 1e-10, f"offload error {err}"
    return "offload tiles cover the update exactly"


def _check_native_anchor() -> str:
    from repro.hpl import NativeHPL

    r = NativeHPL(30000).run()
    assert abs(r.gflops - 832) < 30, f"native 30K anchor drifted: {r.gflops:.0f}"
    return f"{r.gflops:.0f} GFLOPS at 30K (paper: 832)"


def _check_hybrid_anchor() -> str:
    from repro.hybrid import HybridHPL

    r = HybridHPL(84000).run()
    assert abs(r.efficiency - 0.798) < 0.03, (
        f"hybrid anchor drifted: {r.efficiency:.3f}"
    )
    return f"{100 * r.efficiency:.1f}% at 84K (paper: 79.8%)"


def _check_table2_anchor() -> str:
    from repro.machine.gemm_model import dgemm_efficiency_vs_k

    eff, gflops = dgemm_efficiency_vs_k([300])[300]
    assert abs(gflops - 944) < 6, f"Table II anchor drifted: {gflops:.0f}"
    return f"DGEMM k=300: {gflops:.0f} GFLOPS (paper: 944)"


CHECKS: List[Check] = [
    Check("packed-format DGEMM vs NumPy", _check_packed_gemm),
    Check("emulated Basic Kernel 2", _check_emulated_kernel),
    Check("numeric native HPL solve", _check_numeric_hpl),
    Check("distributed HPL on 2x2 grid", _check_distributed),
    Check("offload DGEMM numeric", _check_offload_numeric),
    Check("Table II anchor", _check_table2_anchor),
    Check("native 30K anchor", _check_native_anchor),
    Check("hybrid 84K anchor", _check_hybrid_anchor),
]


def selftest(verbose: bool = True) -> bool:
    """Run every check; returns True when all pass."""
    ok = True
    for check in CHECKS:
        try:
            detail = check.run()
            status = "ok"
        except AssertionError as exc:
            detail = str(exc)
            status = "FAIL"
            ok = False
        except Exception as exc:  # noqa: BLE001 — report, do not crash
            detail = f"{type(exc).__name__}: {exc}"
            status = "ERROR"
            ok = False
        if verbose:
            print(f"[{status:>5}] {check.name}: {detail}")
    return ok
