"""Fixed-width text tables for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_row(cells: Sequence, widths: Sequence[int]) -> str:
    """One row with right-aligned numeric cells."""
    out = []
    for cell, w in zip(cells, widths):
        if isinstance(cell, float):
            text = f"{cell:.1f}" if abs(cell) >= 100 else f"{cell:.3g}"
        else:
            text = str(cell)
        out.append(text.rjust(w) if _is_number(cell) else text.ljust(w))
    return "  ".join(out).rstrip()


def _is_number(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


class Table:
    """A simple accumulating table with a title and column headers."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[list] = []

    def add(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def _widths(self) -> List[int]:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                text = f"{cell:.3g}" if isinstance(cell, float) else str(cell)
                widths[i] = max(widths[i], len(text))
        return widths

    def render(self) -> str:
        widths = self._widths()
        lines = [self.title, "=" * len(self.title)]
        lines.append(format_row(self.columns, widths))
        lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        for row in self.rows:
            lines.append(format_row(row, widths))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
