"""ASCII line charts for the figure benchmarks.

Renders multi-series x/y data as a character grid — enough to eyeball
the *shape* of Figure 4/6/11 (who is on top, where curves cross, where
they flatten) straight from the benchmark artifacts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Series glyphs, assigned in declaration order.
GLYPHS = "ox+*#@%&"


def render_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series on one shared axis grid.

    Points map to the nearest cell; later series overwrite earlier ones
    where they collide (collisions are rare at default resolution and
    harmless for shape-reading).
    """
    if width < 8 or height < 4:
        raise ValueError("chart too small to draw")
    if not series or all(len(pts) == 0 for pts in series.values()):
        return "(no data)"
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), glyph in zip(series.items(), GLYPHS):
        for x, y in pts:
            col = round((x - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - round((y - y0) / (y1 - y0) * (height - 1))
            grid[row][col] = glyph

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    for i, row in enumerate(grid):
        edge = f"{y1:10.3g} |" if i == 0 else (
            f"{y0:10.3g} |" if i == height - 1 else " " * 11 + "|"
        )
        lines.append(edge + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    x_axis = f"{x0:<12.4g}{x_label:^{max(width - 24, 0)}}{x1:>12.4g}"
    lines.append(" " * 11 + x_axis)
    legend = "   ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), GLYPHS)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
