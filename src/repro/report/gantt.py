"""ASCII renderings of execution traces.

:func:`render_gantt` draws the Figure 7-style chart: one text row per
worker, one character per time bucket, with a legend mapping activity
kinds to characters (DGETRF/DLASWP/DTRSM/DGEMM/barrier like the paper's
violet/light-blue/orange/green/white).

:func:`render_stacked_profile` draws the Figure 9-style per-window
breakdown: for consecutive time windows, the percentage of worker time
per kind — the stacked-area data of the paper's execution profiles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.trace import TraceRecorder

#: Default kind -> glyph mapping, mirroring the Figure 7 legend.
DEFAULT_GLYPHS = {
    "dgetrf": "P",  # violet: panel factorization
    "panel": "P",
    "dlaswp": "s",  # light blue: row swapping
    "dtrsm": "t",  # orange: triangular solve
    "dgemm": "#",  # green: trailing update
    "update": "#",
    "barrier": ".",  # white: barrier / idle
    "pack": "k",
    "dma_in": "<",
    "dma_out": ">",
    "accumulate": "a",
    "ubcast": "u",
    "lbcast": "l",
    "update_head": "h",
}


def render_gantt(
    trace: TraceRecorder,
    width: int = 100,
    workers: Optional[Sequence[str]] = None,
    glyphs: Optional[Dict[str, str]] = None,
) -> str:
    """Render the trace as one lane per worker (idle = space)."""
    if width < 1:
        raise ValueError("width must be positive")
    glyphs = {**DEFAULT_GLYPHS, **(glyphs or {})}
    names = list(workers) if workers is not None else trace.workers()
    span = trace.makespan
    if span <= 0 or not names:
        return "(empty trace)"
    dt = span / width
    label_w = max(len(n) for n in names)
    lines = []
    for name in names:
        lane = [" "] * width
        for s in trace.spans_for(name):
            b0 = min(width - 1, int(s.start / dt))
            b1 = min(width - 1, max(b0, int((s.end - 1e-12) / dt)))
            ch = glyphs.get(s.kind, "?")
            for b in range(b0, b1 + 1):
                lane[b] = ch
        lines.append(f"{name.ljust(label_w)} |{''.join(lane)}|")
    used = sorted({s.kind for s in trace.spans if s.worker in set(names)})
    legend = "  ".join(f"{glyphs.get(k, '?')}={k}" for k in used)
    lines.append(f"{''.ljust(label_w)}  0{'.' * (width - 12)}{span:9.3g}s")
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def render_stacked_profile(
    trace: TraceRecorder,
    n_windows: int = 20,
    worker: Optional[str] = None,
    kinds: Optional[Sequence[str]] = None,
) -> str:
    """Figure 9-style profile: per-window percentage of time by kind.

    Percentages are of the window's wall time; the remainder is idle.
    """
    if n_windows < 1:
        raise ValueError("need at least one window")
    span = trace.makespan
    if span <= 0:
        return "(empty trace)"
    all_kinds = list(kinds) if kinds is not None else trace.kinds()
    header = "window    " + "".join(k.rjust(12) for k in all_kinds) + "       idle%"
    lines = [header, "-" * len(header)]
    dt = span / n_windows
    for w in range(n_windows):
        t0, t1 = w * dt, (w + 1) * dt
        by_kind = trace.window_by_kind(t0, t1, worker=worker)
        workers = [worker] if worker else trace.workers()
        denom = dt * len(workers)
        fractions = [100.0 * by_kind.get(k, 0.0) / denom for k in all_kinds]
        idle = max(0.0, 100.0 - sum(fractions))
        cells = "".join(f"{f:12.1f}" for f in fractions)
        lines.append(f"[{t0:7.2f}s {cells}{idle:12.1f}")
    return "\n".join(lines)
