"""Reporting: paper-style tables and ASCII Gantt charts.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this package holds the shared formatting: fixed-width
tables (:mod:`repro.report.tables`) and trace renderings of the Figure 7
and Figure 9 charts (:mod:`repro.report.gantt`).
"""

from repro.report.tables import Table, format_row
from repro.report.gantt import render_gantt, render_stacked_profile
from repro.report.chart import render_chart

__all__ = [
    "Table",
    "format_row",
    "render_gantt",
    "render_stacked_profile",
    "render_chart",
]
