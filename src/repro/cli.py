"""Command-line interface: ``python -m repro <command>``.

Regenerates the paper's experiments and runs ad-hoc benchmark
configurations without going through pytest:

``info``
    Table I machine configurations and derived peaks.
``table2`` / ``fig4`` / ``fig6`` / ``fig11`` / ``table3`` / ``energy``
    The corresponding table/figure series.
``native --n 30000 [--nb 300] [--scheduler dynamic|static] [--numeric]``
    One native Linpack run (``--numeric`` really solves and checks).
``hybrid --n 84000 [--cards 1] [--p 1 --q 1] [--lookahead pipelined]``
    One hybrid HPL run; ``--numeric`` (with ``--nb``) instead runs the
    real functional hybrid factorization + solve + residual check.
``distributed --n 144 --nb 16 --p 2 --q 3``
    A real distributed solve on the simulated MPI world. Takes
    ``--bcast-algo {star,ring,binomial,ring-mod}``, ``--lookahead``
    (overlap panel broadcast with the trailing update) and
    ``--chunk-kb`` (segment size for non-blocking transfers), plus the
    resilience knobs: ``--fault-plan`` (seeded deterministic failure
    scenario — DSL, JSON or a file), ``--checkpoint-every K``
    (panel-boundary checkpoints + rollback recovery), ``--retry-max``
    and ``--comm-timeout`` (the hardened channel's bounded-retry
    policy), ``--regrid "panel=K:PxQ"`` (reshape the process grid
    mid-run, repeatable — the run redistributes its checkpoint cut and
    continues on the new grid, bitwise-identically) and
    ``--on-rank-death {restart,shrink}`` (shrink redistributes onto
    the surviving ranks instead of re-running the lost geometry).
``elastic plan --n 144 --nb 16 --grid 2x2 --regrid panel=3:2x4``
    Dry-run a relayout: the block transfer matrix between the two
    block-cyclic layouts, per-rank send/recv bytes, and the predicted
    redistribution time under the machine model's network — without
    running anything. A malformed ``--regrid`` exits 2 with a one-line
    parse error.
``campaign run spec.yaml`` / ``campaign expand`` / ``campaign tune``
    Declarative sweep campaigns (see :mod:`repro.campaign`): a YAML or
    JSON document names a base configuration and axes to sweep; ``run``
    executes the expanded matrix (process-pool fan-out, per-run JSON
    artifacts, resume-from-artifacts — re-running a finished campaign
    executes nothing) and writes the merged best-per-cell report;
    ``expand`` previews the matrix without running it; ``tune`` runs
    the successive-halving auto-tuner and prints the best configuration
    per machine model.

The run subcommands (``native``, ``hybrid``, ``distributed``) are all
generated from one flag table (:data:`repro.spec.RUN_FLAGS`): every
flag maps onto a field of the canonical :class:`repro.spec.RunSpec`,
and each command parses its arguments into a spec and executes it via
:func:`repro.api.run` — exactly the path campaign workers and the
auto-tuners use.

Every numeric command exits non-zero when the HPL residual check
fails, and prints the failing residual on stderr (also under
``--json``, whose stdout stays valid JSON).

The numeric paths (``native --numeric``, ``hybrid --numeric``,
``distributed``) additionally take the substrate knobs:

``--workers N``
    tile-executor pool width (default: all cores; ``1`` = inline);
``--no-pack-cache``
    disable the pack-once tile cache and re-pack every GEMM panel;
``--no-buffer-pool``
    disable the scratch-buffer arena and fall back to the allocating
    kernel paths (the A/B ablation — results are bitwise identical);
``--alloc-profile``
    wrap the factor/solve phases in tracemalloc spans and record the
    steady-state temporary bytes in the result's ``alloc`` field.
``gantt --n 5000 [--scheduler dynamic]``
    ASCII Gantt chart of a native LU schedule (Figure 7).

The run commands (``native``, ``hybrid``, ``distributed``, ``gantt``)
share three observability flags:

``--json``
    print the run's :class:`~repro.obs.result.RunResult` as JSON
    (deterministic: identical seeded runs emit identical bytes), now
    including the canonical ``spec`` block and ``spec_hash``;
``--trace-out PATH``
    write the DES trace as a Chrome ``trace_event`` file, loadable in
    ``about:tracing`` or https://ui.perfetto.dev;
``--metrics``
    print the run's metrics registry as a table.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.machine import KNC, SNB
from repro.spec import (
    DTYPES,
    RunSpec,
    _regrid_entry,
    run_flags_parser,
    spec_from_args,
)


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    """The uniform observability flags shared by every run command."""
    p.add_argument(
        "--json", action="store_true", help="emit the RunResult as JSON"
    )
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the trace as a Chrome trace_event file",
    )
    p.add_argument(
        "--metrics", action="store_true", help="print the metrics registry"
    )


def _emit_observability(r, args) -> bool:
    """Handle --json / --trace-out / --metrics for a RunResult.

    Returns True when JSON replaced the human-readable report (so the
    caller skips its normal print and stdout stays valid JSON).
    """
    if getattr(args, "trace_out", None):
        trace = getattr(r, "trace", None)
        if trace is None:
            print(f"warning: no trace recorded; {args.trace_out} not written", file=sys.stderr)
        else:
            try:
                trace.write_chrome_trace(args.trace_out)
            except OSError as exc:
                print(f"error: cannot write trace to {args.trace_out}: {exc}", file=sys.stderr)
                raise SystemExit(2)
    if getattr(args, "json", False):
        print(r.to_json())
        return True
    if getattr(args, "metrics", False) and r.metrics is not None:
        from repro.report import Table

        t = Table("Metrics", ["name", "value"])
        for name, value in r.metric_rows():
            t.add(name, value)
        print(t)
    return False


def _numeric_exit(r) -> int:
    """Exit status for a numeric run: 0 when the residual check passed.

    On failure the offending residual goes to stderr — visible even
    when ``--json`` owns stdout — and the exit code is 1, so scripted
    callers (and CI) cannot mistake a failed factorization for success.
    """
    if getattr(r, "passed", True):
        return 0
    from repro.hpl.residual import HPL_THRESHOLD

    print(
        f"error: HPL residual check FAILED: residual={r.residual:.4f} "
        f"(threshold {HPL_THRESHOLD:g})",
        file=sys.stderr,
    )
    return 1


def _cmd_info(_args) -> int:
    from repro.report import Table

    t = Table("Machine models (Table I)", ["parameter", "SNB", "KNC"])
    t.add("cores x SMT", f"{SNB.cores} x {SNB.smt}", f"{KNC.cores} x {KNC.smt}")
    t.add("clock (GHz)", SNB.clock_ghz, KNC.clock_ghz)
    t.add("DP GFLOPS", round(SNB.peak_dp_gflops()), round(KNC.peak_dp_gflops()))
    t.add("SP GFLOPS", round(SNB.peak_sp_gflops()), round(KNC.peak_sp_gflops()))
    t.add("STREAM (GB/s)", SNB.stream_bw_gbs, KNC.stream_bw_gbs)
    t.add("DRAM (GB)", SNB.dram_bytes // 2**30, KNC.dram_bytes // 2**30)
    print(t)
    return 0


def _cmd_table2(_args) -> int:
    from repro.machine.gemm_model import dgemm_efficiency_vs_k, sgemm_efficiency_vs_k
    from repro.report import Table

    ks = (120, 180, 240, 300, 340, 400)
    d, s = dgemm_efficiency_vs_k(ks), sgemm_efficiency_vs_k(ks)
    t = Table("Table II", ["k", "SGEMM eff", "SGEMM GF", "DGEMM eff", "DGEMM GF"])
    for k in ks:
        t.add(k, round(s[k][0], 4), round(s[k][1]), round(d[k][0], 4), round(d[k][1]))
    print(t)
    return 0


def _cmd_fig4(args) -> int:
    from repro.machine.gemm_model import gemm_gflops, snb_dgemm_efficiency
    from repro.report import Table

    t = Table("Figure 4", ["N", "SNB", "KNC kernel", "KNC packed"])
    for n in args.sizes:
        t.add(
            n,
            round(snb_dgemm_efficiency(n) * SNB.peak_dp_gflops()),
            round(gemm_gflops(n, n, 300)),
            round(gemm_gflops(n, n, 300, include_packing=True)),
        )
    print(t)
    return 0


def _cmd_fig6(args) -> int:
    from repro.hpl import NativeHPL
    from repro.hpl.driver import snb_hpl_gflops
    from repro.report import Table

    t = Table("Figure 6", ["N", "SNB MKL", "KNC static", "KNC dynamic"])
    for n in args.sizes:
        sta = NativeHPL(n, scheduler="static").run()
        dyn = NativeHPL(n, scheduler="dynamic").run()
        t.add(n, round(snb_hpl_gflops(n)), round(sta.gflops), round(dyn.gflops))
    print(t)
    return 0


def _cmd_fig11(args) -> int:
    from repro.hybrid import OffloadDGEMM
    from repro.report import Table

    t = Table("Figure 11", ["M=N", "1 card GF", "eff", "2 cards GF", "eff"])
    for m in args.sizes:
        r1 = OffloadDGEMM(m, m).run()
        r2 = OffloadDGEMM(m, m, cards=2).run()
        t.add(m, round(r1.gflops), round(r1.efficiency, 3), round(r2.gflops), round(r2.efficiency, 3))
    print(t)
    return 0


def _cmd_table3(_args) -> int:
    from repro.hybrid import HybridHPL, NodeConfig
    from repro.report import Table

    gb = 1024**3
    rows = [
        ("basic, 1 card", 84_000, 1, 1, 1, "basic", 64),
        ("pipeline, 1 card", 84_000, 1, 1, 1, "pipelined", 64),
        ("pipeline, 1 card", 168_000, 2, 2, 1, "pipelined", 64),
        ("pipeline, 1 card", 825_000, 10, 10, 1, "pipelined", 64),
        ("pipeline, 2 cards", 84_000, 1, 1, 2, "pipelined", 64),
        ("pipeline, 2 cards", 822_000, 10, 10, 2, "pipelined", 64),
        ("pipeline, 1 card, 128GB", 242_000, 2, 2, 1, "pipelined", 128),
    ]
    t = Table("Table III (hybrid rows)", ["system", "N", "P", "Q", "TFLOPS", "eff %"])
    for label, n, p, q, cards, la, mem in rows:
        r = HybridHPL(
            n, node=NodeConfig(cards=cards, host_mem_bytes=mem * gb), p=p, q=q, lookahead=la
        ).run()
        t.add(label, f"{n // 1000}K", p, q, round(r.tflops, 2), round(100 * r.efficiency, 1))
    print(t)
    return 0


def _cmd_energy(_args) -> int:
    from repro.cluster.native_cluster import NativeClusterHPL
    from repro.hybrid import HybridHPL
    from repro.machine import gflops_per_watt, hybrid_node_power, native_node_power
    from repro.report import Table

    t = Table("Energy (Section VII)", ["configuration", "TFLOPS", "GFLOPS/W"])
    h = HybridHPL(84000).run()
    t.add("hybrid 1 node", round(h.tflops, 2), round(gflops_per_watt(h.tflops * 1e3, hybrid_node_power(1).total_w), 2))
    n = NativeClusterHPL(30000).run()
    t.add("native 1 card", round(n.tflops, 2), round(n.gflops_per_watt, 2))
    n100 = NativeClusterHPL(300000, p=10, q=10).run()
    t.add("native 10x10", round(n100.tflops, 1), round(n100.gflops_per_watt, 2))
    h100 = HybridHPL(825000, p=10, q=10).run()
    t.add("hybrid 10x10", round(h100.tflops, 1), round(gflops_per_watt(h100.tflops * 1e3, 100 * hybrid_node_power(1).total_w), 2))
    print(t)
    return 0


def _cmd_native(args) -> int:
    from repro import api

    spec = spec_from_args("native", args)
    r = api.run(spec)
    if not _emit_observability(r, args):
        print(
            f"N={r.n} nb={r.nb} scheduler={r.scheduler}: {r.gflops:.1f} GFLOPS "
            f"({100 * r.efficiency:.1f}%), {r.time_s:.3f}s"
        )
        if spec.numeric:
            print(f"residual={r.residual:.4f} -> {'PASSED' if r.passed else 'FAILED'}")
    if spec.numeric:
        return _numeric_exit(r)
    return 0


def _cmd_hybrid(args) -> int:
    from repro import api

    spec = spec_from_args("hybrid", args)
    r = api.run(spec)
    if spec.numeric:
        if not _emit_observability(r, args):
            print(
                f"N={r.n} nb={r.nb} cards={r.cards} workers={r.workers}: "
                f"{r.gflops:.2f} GFLOPS (wall), residual={r.residual:.4f} "
                f"-> {'PASSED' if r.passed else 'FAILED'}"
            )
        return _numeric_exit(r)
    if not _emit_observability(r, args):
        print(
            f"N={r.n} {r.p}x{r.q} cards={r.cards} {r.lookahead}: {r.tflops:.3f} TFLOPS "
            f"({100 * r.efficiency:.1f}%), card idle {100 * r.knc_idle_fraction:.1f}%"
        )
    return 0


def _cmd_distributed(args) -> int:
    from repro import api

    spec = spec_from_args("distributed", args)
    r = api.run(spec)
    if not _emit_observability(r, args):
        mode = f"lookahead/{r.bcast_algo}" if r.lookahead else f"sync/{r.bcast_algo}"
        print(
            f"N={r.n} NB={r.nb} grid {r.p}x{r.q} [{mode}]: "
            f"residual={r.residual:.4f} "
            f"-> {'PASSED' if r.passed else 'FAILED'}; "
            f"{r.total_bytes / 1e6:.2f} MB total traffic; "
            f"comm exposed {r.exposed_comm_s:.3f}s hidden {r.hidden_comm_s:.3f}s"
        )
        if r.resilience is not None:
            res = r.resilience
            print(
                f"resilience: attempts={res['attempts']} "
                f"recoveries={res['recoveries']} "
                f"retries={res.get('retries', 0)} "
                f"resends={res.get('resends', 0)} "
                f"corruption={res.get('corruption_detected', 0)} "
                f"checkpoints={res.get('checkpoints', 0)} "
                f"({res.get('checkpoint_bytes', 0) / 1e3:.1f} kB)"
            )
    return _numeric_exit(r)


def _cmd_selftest(_args) -> int:
    from repro.validate import selftest

    return 0 if selftest() else 1


def _cmd_hpldat(args) -> int:
    from repro.hpl.hpldat import format_hpl_output, parse_hpl_dat, run_hpl_dat
    from repro.hybrid import NodeConfig

    with open(args.file) as fh:
        cfg = parse_hpl_dat(fh.read())
    rows = run_hpl_dat(cfg, node=NodeConfig(cards=args.cards))
    print(format_hpl_output(rows))
    return 0


def _cmd_tune(args) -> int:
    from repro.hpl.tuner import tune

    r = tune(args.nodes, cards=args.cards, host_mem_gb=args.mem_gb)
    print(r.describe())
    return 0


def _cmd_gantt(args) -> int:
    from repro import api
    from repro.report import render_gantt

    r = api.run(RunSpec(kind="native", n=args.n, scheduler=args.scheduler))
    if not _emit_observability(r, args):
        print(f"{args.scheduler} schedule, N={args.n}: {r.gflops:.0f} GFLOPS")
        print(render_gantt(r.trace, width=args.width))
    return 0


def _cmd_campaign_run(args) -> int:
    from repro.campaign import load_campaign, run_campaign
    from repro.campaign.report import render_report

    campaign = load_campaign(args.spec)
    out = args.out or os.path.join("campaigns", campaign.name)
    cache = None
    if args.cache_dir:
        from repro.service import ResultCache

        cache = ResultCache(disk_dir=args.cache_dir)
    report = run_campaign(
        campaign,
        out,
        resume=not args.no_resume,
        workers=args.workers,
        timeout_s=args.timeout_s,
        cache=cache,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_report(campaign, report))
        print(f"artifacts: {report.out_dir}")
    totals = report.totals
    failed = totals["errors"] + totals["crashes"] + totals["timeouts"]
    return 1 if failed else 0


def _cmd_campaign_expand(args) -> int:
    from repro.campaign import expand_matrix, load_campaign

    campaign = load_campaign(args.spec)
    specs, duplicates = expand_matrix(campaign)
    if args.json:
        print(json.dumps(
            {
                "name": campaign.name,
                "deduplicated": duplicates,
                "runs": [
                    {"spec_hash": s.canonical_hash(), "spec": s.to_dict()}
                    for s in specs
                ],
            },
            indent=2, sort_keys=True,
        ))
        return 0
    print(
        f"campaign {campaign.name}: {len(specs)} unique runs "
        f"({duplicates} duplicates dropped)"
    )
    for s in specs:
        print(f"  {s.canonical_hash()}  {s.summary()}")
    return 0


def _cmd_campaign_tune(args) -> int:
    from repro.campaign.tuner import render_machine_table, tune_machine_models

    machines = args.machines.split(",") if args.machines else None
    rows = tune_machine_models(
        machines=machines, nodes=args.nodes, objective=args.objective
    )
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(render_machine_table(rows, objective=args.objective))
    return 0


def _cmd_service_serve(args) -> int:
    import asyncio

    from repro.service import Service, serve, serve_stdio

    svc = Service(
        cache_dir=args.cache_dir,
        workers=args.workers,
        use_processes=not args.threads,
        max_queue=args.max_queue,
        batch_max=args.batch_max,
        elastic=args.elastic,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
    )

    async def _go() -> None:
        try:
            if args.stdio:
                await serve_stdio(svc)
            else:
                await serve(svc, host=args.host, port=args.port)
        finally:
            await svc.close()

    try:
        asyncio.run(_go())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_service_submit(args) -> int:
    from repro.service.client import ServiceError, submit_once

    try:
        spec = json.loads(args.spec)
    except ValueError:
        print(f"--spec must be a JSON RunSpec document, got {args.spec!r}",
              file=sys.stderr)
        return 2
    on_event = None
    if args.events:
        on_event = lambda ev: print(json.dumps(ev, sort_keys=True), file=sys.stderr)
    try:
        artifact = submit_once(
            args.host, args.port, spec, tenant=args.tenant, on_event=on_event
        )
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"service request failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(artifact, indent=2, sort_keys=True))
    return 0 if artifact.get("status") == "ok" else 1


def _grid_arg(text: str):
    """argparse ``type`` for a ``PxQ`` grid: exit 2 on malformed input."""
    from repro.spec import parse_grid

    try:
        return parse_grid(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _cmd_elastic_plan(args) -> int:
    from repro.cluster.grid import ProcessGrid
    from repro.elastic import plan_relayout, predict_time_s, segments
    from repro.report import Table

    p, q = args.grid
    n_blocks = -(-args.n // args.nb)
    try:
        spans = segments(n_blocks, ProcessGrid(p, q), args.regrid)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for (g0, _k0, cut), (g1, _k1, _k2) in zip(spans, spans[1:]):
        plan = plan_relayout(args.n, args.nb, g0, g1, dtype=args.dtype)
        print(f"panel {cut}: {plan.describe()}")
        t = Table(
            f"Transfer matrix {g0.p}x{g0.q} -> {g1.p}x{g1.q}",
            ["src", "dst", "bytes"],
        )
        for (src, dst), nbytes in sorted(plan.transfer_matrix.items()):
            t.add(src, dst, nbytes)
        print(t)
        t = Table("Per-rank volume", ["rank", "send bytes", "recv bytes"])
        for rank in sorted(set(plan.send_bytes) | set(plan.recv_bytes)):
            t.add(rank, plan.send_bytes.get(rank, 0),
                  plan.recv_bytes.get(rank, 0))
        print(t)
        print(f"lower bound: {plan.lower_bound_bytes} bytes "
              f"(efficiency {plan.efficiency:.3f})")
        print(f"predicted redistribution time: "
              f"{predict_time_s(plan) * 1e3:.3f} ms")
    return 0


def _sizes(text: str) -> List[int]:
    return [int(x) for x in text.split(",")]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with every subcommand registered.

    The run subcommands (``native``/``hybrid``/``distributed``) take
    their flags from the shared :data:`repro.spec.RUN_FLAGS` table via
    a per-kind parent parser, so a new RunSpec knob becomes a CLI flag
    in exactly one place.
    """
    parser = argparse.ArgumentParser(
        prog="repro", description="Xeon Phi Linpack reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="machine configurations").set_defaults(fn=_cmd_info)
    sub.add_parser("selftest", help="fast cross-layer sanity checks").set_defaults(
        fn=_cmd_selftest
    )
    sub.add_parser("table2", help="GEMM efficiency vs k").set_defaults(fn=_cmd_table2)

    p = sub.add_parser("fig4", help="DGEMM vs size")
    p.add_argument("--sizes", type=_sizes, default=[1000, 5000, 17000, 28000])
    p.set_defaults(fn=_cmd_fig4)

    p = sub.add_parser("fig6", help="native Linpack vs size")
    p.add_argument("--sizes", type=_sizes, default=[2000, 5000, 15000, 30000])
    p.set_defaults(fn=_cmd_fig6)

    p = sub.add_parser("fig11", help="offload DGEMM vs size")
    p.add_argument("--sizes", type=_sizes, default=[10000, 40000, 82000])
    p.set_defaults(fn=_cmd_fig11)

    sub.add_parser("table3", help="hybrid HPL grid").set_defaults(fn=_cmd_table3)
    sub.add_parser("energy", help="GFLOPS/W study").set_defaults(fn=_cmd_energy)

    run_commands = (
        ("native", "one native Linpack run", _cmd_native),
        ("hybrid", "one hybrid HPL run", _cmd_hybrid),
        ("distributed", "real distributed solve", _cmd_distributed),
    )
    for kind, help_text, fn in run_commands:
        p = sub.add_parser(kind, help=help_text, parents=[run_flags_parser(kind)])
        _add_obs_flags(p)
        p.set_defaults(fn=fn)

    p = sub.add_parser("hpldat", help="run an HPL.dat configuration file")
    p.add_argument("--file", required=True)
    p.add_argument("--cards", type=int, default=1)
    p.set_defaults(fn=_cmd_hpldat)

    p = sub.add_parser("tune", help="pick N/NB/grid for a cluster")
    p.add_argument("--nodes", type=int, required=True)
    p.add_argument("--cards", type=int, default=1)
    p.add_argument("--mem-gb", type=float, default=64.0)
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser("gantt", help="render a schedule")
    p.add_argument("--n", type=int, default=5000)
    p.add_argument("--scheduler", choices=["dynamic", "static"], default="dynamic")
    p.add_argument("--width", type=int, default=100)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_gantt)

    p = sub.add_parser("campaign", help="declarative sweep campaigns")
    csub = p.add_subparsers(dest="subcommand", required=True)

    pc = csub.add_parser("run", help="run (or resume) a campaign document")
    pc.add_argument("spec", metavar="FILE", help="campaign YAML or JSON file")
    pc.add_argument("--out", default=None, metavar="DIR",
                    help="artifact directory (default: campaigns/<name>)")
    pc.add_argument("--workers", type=int, default=None, metavar="N",
                    help="process-pool width (overrides the document)")
    pc.add_argument("--timeout-s", type=float, default=None, metavar="S",
                    help="per-run timeout in the pool (overrides the document)")
    pc.add_argument("--no-resume", action="store_true",
                    help="re-run completed cells instead of serving the cache")
    pc.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="shared result-cache directory (e.g. a service's) "
                         "to serve completed cells from")
    pc.add_argument("--json", action="store_true",
                    help="emit the merged report as JSON")
    pc.set_defaults(fn=_cmd_campaign_run)

    pc = csub.add_parser("expand", help="preview a campaign's run matrix")
    pc.add_argument("spec", metavar="FILE", help="campaign YAML or JSON file")
    pc.add_argument("--json", action="store_true",
                    help="emit the matrix as JSON")
    pc.set_defaults(fn=_cmd_campaign_expand)

    pc = csub.add_parser(
        "tune", help="successive-halving: best config per machine model"
    )
    pc.add_argument("--machines", default=None, metavar="A,B",
                    help="comma-separated profile names (default: all)")
    pc.add_argument("--nodes", type=int, default=1)
    pc.add_argument("--objective", default="gflops",
                    help="RunResult key to maximise (default: gflops)")
    pc.add_argument("--json", action="store_true",
                    help="emit the tuning rows as JSON")
    pc.set_defaults(fn=_cmd_campaign_tune)

    p = sub.add_parser("elastic", help="mid-run grid reconfiguration tools")
    esub = p.add_subparsers(dest="subcommand", required=True)

    pe = esub.add_parser(
        "plan",
        help="dry-run a relayout: transfer matrix, per-rank bytes, "
             "predicted redistribution time",
    )
    pe.add_argument("--n", type=int, default=144, help="problem size N")
    pe.add_argument("--nb", type=int, default=16, help="block size NB")
    pe.add_argument("--grid", type=_grid_arg, default=(2, 2), metavar="PxQ",
                    help="initial process grid (default 2x2)")
    pe.add_argument("--regrid", type=_regrid_entry, action="append",
                    required=True, metavar="panel=K:PxQ",
                    help="schedule entry (repeatable; one plan per hop)")
    pe.add_argument("--dtype", choices=DTYPES, default="float64",
                    help="matrix element type the byte totals assume")
    pe.set_defaults(fn=_cmd_elastic_plan)

    p = sub.add_parser("service", help="benchmark-as-a-service over NDJSON")
    ssub = p.add_subparsers(dest="subcommand", required=True)

    ps = ssub.add_parser("serve", help="run the service (TCP or stdio)")
    ps.add_argument("--host", default="127.0.0.1")
    ps.add_argument("--port", type=int, default=0,
                    help="TCP port (0 picks one; printed on startup)")
    ps.add_argument("--stdio", action="store_true",
                    help="speak NDJSON on stdin/stdout instead of TCP")
    ps.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="disk tier for the result cache (share with "
                         "campaigns via their runs/ directory)")
    ps.add_argument("--workers", type=int, default=None, metavar="N",
                    help="worker-pool width (default: REPRO_WORKERS or "
                         "half the cores)")
    ps.add_argument("--threads", action="store_true",
                    help="thread workers instead of processes (no crash "
                         "isolation; instant startup)")
    ps.add_argument("--max-queue", type=int, default=64, metavar="N",
                    help="admission bound before load shedding (default 64)")
    ps.add_argument("--batch-max", type=int, default=8, metavar="N",
                    help="max compatible jobs coalesced per dispatch")
    ps.add_argument("--elastic", action="store_true",
                    help="resize the worker pool between dispatches: grow "
                         "under queue-depth pressure, shrink when idle")
    ps.add_argument("--min-workers", type=int, default=None, metavar="N",
                    help="elastic floor the idle pool shrinks to (default 1)")
    ps.add_argument("--max-workers", type=int, default=None, metavar="N",
                    help="elastic ceiling under pressure (default: --workers)")
    ps.set_defaults(fn=_cmd_service_serve)

    ps = ssub.add_parser("submit", help="submit one spec to a running service")
    ps.add_argument("--host", default="127.0.0.1")
    ps.add_argument("--port", type=int, required=True)
    ps.add_argument("--spec", required=True, metavar="JSON",
                    help="RunSpec document, e.g. "
                         "'{\"kind\": \"hybrid\", \"n\": 84000}'")
    ps.add_argument("--tenant", default="default",
                    help="fairness bucket for admission control")
    ps.add_argument("--events", action="store_true",
                    help="stream progress events to stderr")
    ps.set_defaults(fn=_cmd_service_submit)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse arguments and dispatch to the subcommand."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream consumer (head, jq -e, ...) closed stdout early.
        # Point stdout at devnull so the interpreter's exit flush of the
        # dangling buffer does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
