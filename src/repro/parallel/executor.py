"""The tile executor: a reusable thread pool for independent tile work.

Design constraints, in order:

1. **Bitwise determinism.** Every work item handed to
   :meth:`TileExecutor.map` must write a disjoint slice of the output
   (the GEMM row stripes of one outer product, the trailing-panel
   updates of one LU stage). Under that contract the pool cannot change
   any floating-point reduction order, so serial and parallel runs —
   and runs at different worker counts — produce bitwise-identical
   results. The executor enforces nothing numerically; it preserves
   whatever the decomposition guarantees.
2. **No nested pools.** GEMM stripes fan out inside LU panel updates
   that may themselves be fanned out. A worker thread that calls
   ``map`` again (on *any* executor) runs the items inline — one level
   of the hierarchy owns the cores, the rest degrade to serial.
3. **Cheap reuse.** The pool is created lazily on the first parallel
   ``map`` and reused for the executor's lifetime; scratch buffers are
   thread-local and keyed by (shape, dtype) so hot loops never
   re-allocate accumulators.

Observability: ``parallel.tasks`` / ``parallel.maps`` counters, a
``parallel.pool.busy`` timer (sum of in-task seconds), and
``parallel.pool.workers`` / ``parallel.pool.utilization`` gauges,
published through :meth:`TileExecutor.publish`.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

#: Process-wide flag: is the *current thread* a tile-executor worker?
#: Shared by all executors so hierarchical fan-out never nests pools.
_worker_ctx = threading.local()

#: Thread-local scratch buffers keyed by (shape, dtype) — the
#: preallocated accumulators of the GEMM stripe path.
_scratch = threading.local()


def default_workers() -> int:
    """Pool width when none is given: ``REPRO_WORKERS`` or all cores."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            value = int(env)
        except ValueError as exc:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}") from exc
        if value < 1:
            raise ValueError("REPRO_WORKERS must be >= 1")
        return value
    return os.cpu_count() or 1


def scratch_buffer(shape: tuple, dtype: np.dtype) -> np.ndarray:
    """A reusable per-thread array of the requested geometry.

    Contents are undefined on return; callers must fully overwrite it
    (e.g. via ``np.matmul(..., out=buf)``).
    """
    cache = getattr(_scratch, "buffers", None)
    if cache is None:
        cache = _scratch.buffers = {}
    key = (tuple(shape), np.dtype(dtype).str)
    buf = cache.get(key)
    if buf is None:
        buf = cache[key] = np.empty(shape, dtype=dtype)
    return buf


def in_worker() -> bool:
    """True when called from inside a tile-executor worker thread."""
    return getattr(_worker_ctx, "active", False)


class TileExecutor:
    """A persistent thread pool for disjoint-output tile work.

    Parameters
    ----------
    workers:
        Pool width. ``None`` resolves via :func:`default_workers`
        (``REPRO_WORKERS`` or all cores); ``1`` runs everything inline.
    """

    #: Execution backend tag, mirrored by ProcessTileExecutor ("process")
    #: and published as the parallel.pool.backend.<name> gauge.
    backend = "thread"

    def __init__(self, workers: Optional[int] = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers if workers is not None else default_workers()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        # -- counters (guarded by _lock where raced) --------------------
        self.tasks = 0
        self.maps = 0
        self.inline_maps = 0
        self.busy_s = 0.0
        self.wall_s = 0.0

    # -- lifecycle -------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-tile"
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent); the executor stays usable —
        the next parallel ``map`` recreates the pool."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "TileExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- execution -------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item; returns results in item order.

        Runs inline (serial, in submission order) when the pool width is
        1, when there is at most one item, or when called from inside
        any executor's worker thread (no nested pools). ``fn`` must only
        write output regions disjoint from every other item's.
        """
        work = list(items)
        t0 = time.perf_counter()
        if self.workers <= 1 or len(work) <= 1 or in_worker():
            out = [fn(item) for item in work]
            dt = time.perf_counter() - t0
            with self._lock:
                self.tasks += len(work)
                self.maps += 1
                self.inline_maps += 1
                self.busy_s += dt
                self.wall_s += dt
            return out

        def run(item: T) -> R:
            _worker_ctx.active = True
            t1 = time.perf_counter()
            try:
                return fn(item)
            finally:
                dt1 = time.perf_counter() - t1
                with self._lock:
                    self.busy_s += dt1

        pool = self._ensure_pool()
        out = list(pool.map(run, work))
        with self._lock:
            self.tasks += len(work)
            self.maps += 1
            self.wall_s += time.perf_counter() - t0
        return out

    # -- observability ---------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Busy-seconds over worker-seconds across all maps (0..1).

        Guarded against ``wall_s == 0``: a trivially fast map (empty
        work list, sub-resolution clock tick) must publish utilization
        0.0, never divide by zero.
        """
        if self.wall_s <= 0.0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.wall_s * self.workers))

    def publish(self, metrics) -> None:
        """Copy the executor's counters into a MetricsRegistry."""
        if metrics is None:
            return
        metrics.counter("parallel.tasks").inc(self.tasks)
        metrics.counter("parallel.maps").inc(self.maps)
        metrics.counter("parallel.maps_inline").inc(self.inline_maps)
        metrics.gauge("parallel.pool.workers").set(self.workers)
        metrics.gauge("parallel.pool.utilization").set(round(self.utilization, 4))
        metrics.timer("parallel.pool.busy").add(self.busy_s, count=max(1, self.maps))
        metrics.gauge(f"parallel.pool.backend.{self.backend}").set(1)

    def __repr__(self) -> str:
        return f"TileExecutor(workers={self.workers}, tasks={self.tasks})"


def as_executor(executor) -> Optional[TileExecutor]:
    """Coerce ``None | int | TileExecutor`` into an executor (or None).

    ``None`` stays None (pure inline execution, no pool machinery);
    an int becomes a fresh executor of that width.
    """
    if executor is None:
        return None
    if isinstance(executor, TileExecutor):
        return executor
    if getattr(executor, "backend", None) == "process" and hasattr(executor, "map"):
        return executor  # a ProcessTileExecutor passes straight through
    if isinstance(executor, (int, np.integer)):
        return TileExecutor(int(executor))
    raise TypeError(f"executor must be None, an int or a TileExecutor, got {executor!r}")


#: Executor backends selectable via RunSpec.executor / --executor.
EXECUTOR_BACKENDS = ("thread", "process")


def make_executor(backend: str = "thread", workers: Optional[int] = None):
    """Build an executor of the requested backend.

    ``"thread"`` is the GIL-sharing :class:`TileExecutor`; ``"process"``
    is the shared-memory :class:`~repro.parallel.shm.ProcessTileExecutor`
    (imported lazily so plain thread runs never touch multiprocessing).
    Both honor the same ``workers`` convention (None resolves via
    :func:`default_workers`).

    Inside a child process — a campaign or benchmark-service pool
    worker — ``"process"`` downgrades to the thread executor with a
    warning instead of forking grandchild pools: nested process trees
    oversubscribe cores, multiply fixed spawn cost, and leak when the
    middle layer is killed. The no-nested-pools rule the thread executor
    enforces per thread (see :func:`in_worker`) applies per process here.
    """
    if backend in (None, "thread"):
        return TileExecutor(workers)
    if backend == "process":
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            import warnings

            warnings.warn(
                "executor='process' requested inside a child process; "
                "using the thread executor instead of nesting pools",
                RuntimeWarning,
                stacklevel=2,
            )
            return TileExecutor(workers)
        from repro.parallel.shm import ProcessTileExecutor

        return ProcessTileExecutor(workers)
    raise ValueError(
        f"executor backend must be one of {EXECUTOR_BACKENDS}, got {backend!r}"
    )
