"""Process-backed tile execution over POSIX shared memory.

The thread-based :class:`~repro.parallel.executor.TileExecutor` escapes
the GIL only inside BLAS calls; the DES engine, the vector-ISA emulator
and the scheduler bookkeeping around them are pure Python and therefore
single-core-bound. This module provides the process escape hatch while
keeping the two properties the substrate is built on:

1. **Zero-copy operands.** A :class:`SharedArena` owns
   ``multiprocessing.shared_memory`` segments and hands out NumPy views
   with the same checkout/release lease protocol as
   :class:`~repro.blas.buffers.BufferPool` (double release and foreign
   buffers raise :class:`SharedArenaError`; ``active`` exposes leaks).
   The matrix being factored, the pack-cache tile panels and the buffer
   -pool workspaces all live *inside* the arena, so child processes map
   the same physical pages — nothing is serialized.
2. **Descriptors, never payloads.** Work crosses the worker pipes as
   :class:`ArrayRef` descriptors — (segment, offset, shape, strides,
   dtype) tuples plus scalar task parameters. Sending a NumPy array
   raises :class:`TypeError` (the payload guard), and every pipe
   message's pickled size is counted (``pipe_task_bytes`` /
   ``pipe_max_message_bytes``) so tests can assert the steady-state
   path ships kilobytes, not matrices.

Determinism is inherited, not re-proven: every task writes a disjoint
slice of shared output (GEMM row stripes, LU column panels), and the
workers replay byte-for-byte the same kernel calls the serial and
thread paths make, so results are bitwise identical at any worker
count and across ``executor="thread" | "process"``.

Worker tasks are plain module-level functions registered with
:func:`shm_task`; the parent names them over the pipe as
``(module, name)`` so a spawn-started worker can import them (fork
inherits the registry for free).
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback
from contextlib import contextmanager
from multiprocessing import get_all_start_methods, get_context
from multiprocessing import shared_memory
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.parallel.executor import default_workers

try:  # NumPy >= 2.0 moved byte_bounds out of the top-level namespace.
    from numpy.lib.array_utils import byte_bounds as _byte_bounds
except ImportError:  # pragma: no cover - NumPy 1.x
    _byte_bounds = np.byte_bounds

#: Arena block alignment: one cache line, so every checkout view starts
#: on the boundary BLAS kernels prefer.
_ALIGN = 64

#: Default size of each shared segment; big requests get a segment of
#: their own, so this only bounds how often small checkouts grow the
#: arena.
DEFAULT_SEGMENT_BYTES = 16 << 20


class SharedArenaError(RuntimeError):
    """An arena-protocol violation (double release, foreign buffer,
    use after destroy)."""


class ArrayRef(NamedTuple):
    """A pipe-safe handle to an array living in a shared segment."""

    segment: str
    offset: int
    shape: Tuple[int, ...]
    strides: Tuple[int, ...]
    dtype: str


def _aligned(nbytes: int) -> int:
    return max(_ALIGN, (int(nbytes) + _ALIGN - 1) // _ALIGN * _ALIGN)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without letting this process's
    resource tracker claim ownership.

    The arena's creating process is the sole owner; a tracker entry in
    an attaching worker either unlinks the parent's live segment when
    the worker's own tracker exits (spawn — bpo-38119) or, with fork's
    shared tracker, double-removes the parent's registration. Python
    3.13 has ``track=False`` for exactly this; earlier versions get the
    registration suppressed for the duration of the attach (workers are
    single-threaded, so the swap cannot race)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _close_segment(shm: shared_memory.SharedMemory) -> None:
    """Best-effort close: NumPy views created over ``shm.buf`` keep the
    exported memoryview alive, and ``close()`` then raises BufferError.
    The mapping is reclaimed when the last view dies, so skipping the
    eager close is safe — the segment itself is already unlinked."""
    try:
        shm.close()
    except BufferError:
        pass


class SharedArena:
    """A lease-tracked arena of shared-memory NumPy buffers.

    The protocol mirrors :class:`~repro.blas.buffers.BufferPool` —
    :meth:`checkout` / :meth:`release` / :meth:`rent`, best-fit reuse of
    freed blocks, leak detection — with two additions: the backing
    storage is OS shared memory that child processes attach by name,
    and :meth:`ref_of` turns any view into (or slice of) the arena into
    a pipe-safe :class:`ArrayRef` that :meth:`resolve` rebuilds on the
    other side without copying a byte.
    """

    def __init__(
        self,
        name: str = "parallel.shm_arena",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ):
        if segment_bytes < _ALIGN:
            raise ValueError("segment_bytes is too small to hold a block")
        self.name = name
        self.segment_bytes = int(segment_bytes)
        self._lock = threading.Lock()
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._bases: Dict[str, np.ndarray] = {}  # uint8 view per segment
        self._used: Dict[str, int] = {}  # bump pointer per segment
        #: Free blocks as (nbytes, segment, offset), sorted by size.
        self._free: List[Tuple[int, str, int]] = []
        #: id(view) -> (view, segment, offset, block nbytes, dtype, key).
        #: Like BufferPool, the dtype travels with the lease: spans are
        #: raw bytes and freely reused across precisions, but a live SP
        #: lease can never alias a live DP lease's bytes.
        self._leases: Dict[int, Tuple[np.ndarray, str, int, int, str, str]] = {}
        self._destroyed = False
        # -- counters ----------------------------------------------------
        self.checkouts = 0
        self.releases = 0
        self.segments_created = 0
        self.reuses = 0
        self.bytes_served = 0
        self.arena_bytes = 0
        self.peak_bytes = 0
        self.by_key: Dict[str, int] = {}
        self.by_dtype: Dict[str, int] = {}  # checkouts per dtype str

    # -- segment management ----------------------------------------------------
    def _new_segment(self, min_bytes: int) -> str:
        size = max(self.segment_bytes, _aligned(min_bytes))
        shm = shared_memory.SharedMemory(create=True, size=size)
        self._segments[shm.name] = shm
        self._bases[shm.name] = np.frombuffer(shm.buf, dtype=np.uint8)
        self._used[shm.name] = 0
        self.segments_created += 1
        self.arena_bytes += size
        if self.arena_bytes > self.peak_bytes:
            self.peak_bytes = self.arena_bytes
        return shm.name

    def _take(self, nbytes: int) -> Tuple[str, int, int]:
        """A (segment, offset, block_nbytes) span of at least ``nbytes``
        (lock held): best-fit from the free list, else bump-allocated
        from a segment with tail room, else a fresh segment."""
        for i, (size, seg, off) in enumerate(self._free):
            if size >= nbytes:  # sorted: first fit = best fit
                self._free.pop(i)
                self.reuses += 1
                return seg, off, size
        for seg, shm in self._segments.items():
            if shm.size - self._used[seg] >= nbytes:
                off = self._used[seg]
                self._used[seg] += nbytes
                return seg, off, nbytes
        seg = self._new_segment(nbytes)
        self._used[seg] = nbytes
        return seg, 0, nbytes

    # -- checkout / release ----------------------------------------------------
    def checkout(self, shape: tuple, dtype, key: str = "anonymous") -> np.ndarray:
        """A C-contiguous shared view of the requested geometry.

        Contents are undefined; must be released exactly once.
        """
        with self._lock:
            if self._destroyed:
                raise SharedArenaError(f"{self.name}: checkout after destroy")
            shape = tuple(int(s) for s in shape)
            dtype = np.dtype(dtype)
            nbytes = _aligned(int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
            seg, off, block = self._take(nbytes)
            view = np.ndarray(
                shape, dtype=dtype, buffer=self._segments[seg].buf, offset=off
            )
            self._leases[id(view)] = (view, seg, off, block, dtype.name, key)
            self.checkouts += 1
            self.bytes_served += nbytes
            self.by_key[key] = self.by_key.get(key, 0) + 1
            self.by_dtype[dtype.name] = self.by_dtype.get(dtype.name, 0) + 1
        return view

    def release(self, buf: np.ndarray) -> None:
        """Return a checked-out view; raises on double/foreign release."""
        with self._lock:
            lease = self._leases.pop(id(buf), None)
            if lease is None:
                raise SharedArenaError(
                    f"{self.name}: buffer is not leased "
                    "(double release, or not from this arena)"
                )
            _view, seg, off, block, _dtype, _key = lease
            self._insert_free((block, seg, off))
            self.releases += 1

    def _insert_free(self, entry: Tuple[int, str, int]) -> None:
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < entry[0]:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, entry)

    @contextmanager
    def rent(self, shape: tuple, dtype, key: str = "anonymous"):
        buf = self.checkout(shape, dtype, key=key)
        try:
            yield buf
        finally:
            self.release(buf)

    def adopt(self, array: np.ndarray, key: str = "adopt") -> np.ndarray:
        """Copy ``array`` into the arena and return the shared view."""
        view = self.checkout(array.shape, array.dtype, key=key)
        np.copyto(view, array)
        return view

    # -- descriptors -----------------------------------------------------------
    def ref_of(self, array: np.ndarray) -> Optional[ArrayRef]:
        """The :class:`ArrayRef` of an array whose bytes live inside one
        of this arena's segments (any view or slice of a checkout), or
        ``None`` when the array is ordinary process-private memory."""
        array = np.asarray(array)
        lo, hi = _byte_bounds(array)
        with self._lock:
            for seg, base in self._bases.items():
                b0 = base.__array_interface__["data"][0]
                if b0 <= lo and hi <= b0 + base.nbytes:
                    return ArrayRef(
                        seg, lo - b0, array.shape, array.strides, array.dtype.str
                    )
        return None

    def resolve(self, ref: ArrayRef) -> np.ndarray:
        """Rebuild the view a ref describes (parent-side symmetry with
        the worker's :class:`AttachedSegments`)."""
        with self._lock:
            shm = self._segments.get(ref.segment)
        if shm is None:
            raise SharedArenaError(f"{self.name}: unknown segment {ref.segment!r}")
        return np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=shm.buf,
            offset=ref.offset,
            strides=ref.strides,
        )

    # -- substrate factories ---------------------------------------------------
    def buffer_pool(self, name: str = "blas.buffer_pool"):
        """A :class:`~repro.blas.buffers.BufferPool` whose backing blocks
        live in this arena — every buffer it issues is ref-addressable
        by worker processes. (Lazy import: the blas layer must not load
        just because the parallel package did.)"""
        from repro.blas.buffers import BufferPool

        return BufferPool(name=name, arena=self)

    def pack_cache(self, validate: str = "sample"):
        """A :class:`~repro.blas.workspace.PackCache` whose cached panels
        are allocated from this arena (and released back to it on
        invalidation), so packed tiles are shared with the workers."""
        from repro.blas.workspace import PackCache

        return PackCache(
            validate=validate,
            alloc=lambda shape, dtype: self.checkout(shape, dtype, key="pack.panel"),
            free=self.release,
        )

    # -- introspection / lifecycle ---------------------------------------------
    @property
    def active(self) -> int:
        with self._lock:
            return len(self._leases)

    def active_keys(self) -> List[str]:
        with self._lock:
            return sorted(key for (*_rest, key) in self._leases.values())

    def active_leases(self) -> List[Tuple[str, str, int]]:
        """``(key, dtype, nbytes)`` per outstanding lease — the dtype
        column mirrors :meth:`BufferPool.active_leases` so the
        cross-precision aliasing property tests cover both arenas."""
        with self._lock:
            return sorted(
                (key, dt, view.nbytes)
                for (view, _s, _o, _b, dt, key) in self._leases.values()
            )

    @property
    def segment_names(self) -> List[str]:
        with self._lock:
            return list(self._segments)

    def destroy(self) -> None:
        """Unlink every segment (idempotent). Live views keep their
        mapping until they are garbage collected; new checkouts fail."""
        with self._lock:
            if self._destroyed:
                return
            self._destroyed = True
            segments = list(self._segments.values())
            self._segments.clear()
            self._bases.clear()
            self._used.clear()
            self._free.clear()
            self._leases.clear()
            self.arena_bytes = 0
        for shm in segments:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _close_segment(shm)

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.destroy()
        except Exception:
            pass

    # -- observability ---------------------------------------------------------
    def publish(self, metrics) -> None:
        if metrics is None:
            return
        metrics.counter(f"{self.name}.checkouts").inc(self.checkouts)
        metrics.counter(f"{self.name}.releases").inc(self.releases)
        metrics.counter(f"{self.name}.segments").inc(self.segments_created)
        metrics.counter(f"{self.name}.reuses").inc(self.reuses)
        metrics.counter(f"{self.name}.bytes_served").inc(self.bytes_served)
        metrics.gauge(f"{self.name}.arena_bytes").set(self.arena_bytes)
        metrics.gauge(f"{self.name}.peak_bytes").update_max(self.peak_bytes)
        metrics.gauge(f"{self.name}.active").set(self.active)
        for dt, count in sorted(self.by_dtype.items()):
            metrics.counter(f"{self.name}.checkouts.{dt}").inc(count)

    def __repr__(self) -> str:
        return (
            f"SharedArena({self.name}: {len(self._segments)} segments, "
            f"{self.arena_bytes} bytes, {self.active} active)"
        )


# ---------------------------------------------------------------------------
# Worker-side machinery
# ---------------------------------------------------------------------------

#: Registered worker tasks: name -> (defining module, function).
_TASKS: Dict[str, Tuple[str, Callable]] = {}


def shm_task(name: str):
    """Register a module-level function as a process-executor task.

    The function receives the worker's :class:`WorkerContext` first,
    then the task's keyword parameters; its return value (descriptors
    and scalars only) travels back over the pipe.
    """

    def deco(fn: Callable) -> Callable:
        _TASKS[name] = (fn.__module__, fn)
        return fn

    return deco


def _lookup_task(module: str, name: str) -> Callable:
    entry = _TASKS.get(name)
    if entry is None:
        __import__(module)  # registers via the shm_task decorator
        entry = _TASKS.get(name)
    if entry is None:
        raise KeyError(f"no shm task {name!r} registered by module {module!r}")
    return entry[1]


class AttachedSegments:
    """A worker's lazy, name-keyed cache of attached shared segments."""

    def __init__(self):
        self._shms: Dict[str, shared_memory.SharedMemory] = {}

    def resolve(self, ref: ArrayRef) -> np.ndarray:
        shm = self._shms.get(ref.segment)
        if shm is None:
            shm = self._shms[ref.segment] = _attach_segment(ref.segment)
        return np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=shm.buf,
            offset=ref.offset,
            strides=ref.strides,
        )

    def close(self) -> None:
        for shm in self._shms.values():
            _close_segment(shm)
        self._shms.clear()


class WorkerContext:
    """Per-worker state handed to every task: the attached segments plus
    a free-form ``state`` dict that setup tasks populate (the worker's
    own LU workspace, pack cache, buffer pool, ...)."""

    def __init__(self):
        self.segments = AttachedSegments()
        self.state: Dict[str, object] = {}

    def resolve(self, ref) -> np.ndarray:
        return self.segments.resolve(ArrayRef(*ref))


def _worker_main(conn) -> None:
    """The worker loop: receive (setup | batch | stop) messages, execute
    registered tasks, reply ("ok", results, busy_seconds) or
    ("err", traceback)."""
    ctx = WorkerContext()
    try:
        while True:
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError):
                break
            msg = pickle.loads(raw)
            if msg[0] == "stop":
                conn.send_bytes(pickle.dumps(("bye",)))
                break
            try:
                t0 = time.perf_counter()
                if msg[0] == "setup":
                    _kind, module, name, kwargs = msg
                    fn = _lookup_task(module, name)
                    results = [fn(ctx, **kwargs)]
                elif msg[0] == "batch":
                    _kind, module, name, common, items = msg
                    fn = _lookup_task(module, name)
                    results = [fn(ctx, **common, **item) for item in items]
                else:
                    raise ValueError(f"unknown message kind {msg[0]!r}")
                busy = time.perf_counter() - t0
                conn.send_bytes(pickle.dumps(("ok", results, busy)))
            except BaseException:
                conn.send_bytes(pickle.dumps(("err", traceback.format_exc())))
    finally:
        ctx.segments.close()
        conn.close()


def _assert_no_arrays(obj, where: str) -> None:
    """The payload guard: descriptors must never smuggle an ndarray."""
    if isinstance(obj, np.ndarray):
        raise TypeError(
            f"{where}: NumPy arrays must not cross the worker pipe — "
            "pass an ArrayRef into the shared arena instead"
        )
    if isinstance(obj, dict):
        for k, v in obj.items():
            _assert_no_arrays(k, where)
            _assert_no_arrays(v, where)
    elif isinstance(obj, (list, tuple, set, frozenset)) and not isinstance(
        obj, ArrayRef
    ):
        for v in obj:
            _assert_no_arrays(v, where)


class ProcessTileExecutor:
    """A pool of worker *processes* behind the TileExecutor interface.

    Differences from the thread executor, by design:

    * :meth:`run_tasks` is the native entry point — named, registered
      tasks with descriptor parameters, fanned round-robin and executed
      in the workers against the shared arena;
    * :meth:`map` (the closure-based thread API) runs inline: closures
      capture process-private arrays, so shipping them would violate
      the zero-payload contract. Call sites that want process fan-out
      go through descriptors;
    * workers are started eagerly at construction, *before* the caller
      spawns any helper threads — forking later from a multithreaded
      parent risks inheriting held locks.
    """

    backend = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        start_method: Optional[str] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers if workers is not None else default_workers()
        if start_method is None:
            start_method = "fork" if "fork" in get_all_start_methods() else None
        self._ctx = get_context(start_method)
        self.arena = SharedArena(segment_bytes=segment_bytes)
        self._procs: list = []
        self._conns: list = []
        self._lock = threading.RLock()
        self._closed = False
        # -- counters (same names as TileExecutor, plus the pipe probe) --
        self.tasks = 0
        self.maps = 0
        self.inline_maps = 0
        self.busy_s = 0.0
        self.wall_s = 0.0
        self.setup_calls = 0
        self.pipe_messages = 0
        self.pipe_task_bytes = 0
        self.pipe_max_message_bytes = 0
        self._start_workers()

    # -- lifecycle -------------------------------------------------------------
    def _start_workers(self) -> None:
        for _ in range(self.workers):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def close(self) -> None:
        """Stop the workers and unlink the arena (idempotent). Unlike
        the thread executor, a closed process executor stays closed —
        its shared state is gone."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for conn in self._conns:
                try:
                    conn.send_bytes(pickle.dumps(("stop",)))
                except (BrokenPipeError, OSError):
                    pass
            for proc in self._procs:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=1.0)
            for conn in self._conns:
                conn.close()
            self._procs.clear()
            self._conns.clear()
        self.arena.destroy()

    def __enter__(self) -> "ProcessTileExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- dispatch --------------------------------------------------------------
    def _send(self, conn, message: tuple) -> None:
        blob = pickle.dumps(message)
        self.pipe_messages += 1
        self.pipe_task_bytes += len(blob)
        if len(blob) > self.pipe_max_message_bytes:
            self.pipe_max_message_bytes = len(blob)
        conn.send_bytes(blob)

    @staticmethod
    def _recv(conn):
        try:
            reply = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError) as exc:
            raise RuntimeError("process executor worker died") from exc
        if reply[0] == "err":
            raise RuntimeError(f"worker task failed:\n{reply[1]}")
        return reply

    def setup(self, task: str, **kwargs) -> List:
        """Broadcast a registered task to every worker (worker-local
        state initialisation: attach the matrix, build caches, ...)."""
        _assert_no_arrays(kwargs, f"setup({task!r})")
        with self._lock:
            if self._closed:
                raise RuntimeError("process executor is closed")
            module, _fn = _TASKS[task]
            for conn in self._conns:
                self._send(conn, ("setup", module, task, kwargs))
            out = []
            for conn in self._conns:
                reply = self._recv(conn)
                out.extend(reply[1])
            self.setup_calls += 1
        return out

    def run_tasks(self, task: str, items: List[dict], common: Optional[dict] = None) -> List:
        """Execute ``task`` for every descriptor dict in ``items`` across
        the workers (round-robin shards, one batch message per worker);
        returns results in item order. ``common`` parameters are sent
        once per batch instead of once per item."""
        common = common or {}
        _assert_no_arrays(items, f"run_tasks({task!r})")
        _assert_no_arrays(common, f"run_tasks({task!r})")
        if not items:
            return []
        with self._lock:
            if self._closed:
                raise RuntimeError("process executor is closed")
            module, _fn = _TASKS[task]
            t0 = time.perf_counter()
            shards = [
                (w, items[w :: len(self._conns)]) for w in range(len(self._conns))
            ]
            engaged = [(w, shard) for w, shard in shards if shard]
            for w, shard in engaged:
                self._send(self._conns[w], ("batch", module, task, common, shard))
            results: List = [None] * len(items)
            for w, shard in engaged:
                reply = self._recv(self._conns[w])
                self.busy_s += reply[2]
                for j, value in enumerate(reply[1]):
                    results[w + j * len(self._conns)] = value
            self.tasks += len(items)
            self.maps += 1
            self.wall_s += time.perf_counter() - t0
        return results

    def map(self, fn: Callable, items: Iterable) -> List:
        """TileExecutor-compatible closure map — runs inline (closures
        capture process-private memory, which must not cross the pipe).
        Descriptor-based call sites use :meth:`run_tasks` instead."""
        work = list(items)
        t0 = time.perf_counter()
        out = [fn(item) for item in work]
        dt = time.perf_counter() - t0
        with self._lock:
            self.tasks += len(work)
            self.maps += 1
            self.inline_maps += 1
            self.busy_s += dt
            self.wall_s += dt
        return out

    # -- observability ---------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Busy-seconds over worker-seconds across all dispatches.
        Guarded: a trivially fast dispatch can round wall_s to 0.0."""
        if self.wall_s <= 0.0:
            return 0.0
        return min(1.0, self.busy_s / (self.wall_s * self.workers))

    def publish(self, metrics) -> None:
        if metrics is None:
            return
        metrics.counter("parallel.tasks").inc(self.tasks)
        metrics.counter("parallel.maps").inc(self.maps)
        metrics.counter("parallel.maps_inline").inc(self.inline_maps)
        metrics.gauge("parallel.pool.workers").set(self.workers)
        metrics.gauge("parallel.pool.utilization").set(round(self.utilization, 4))
        metrics.timer("parallel.pool.busy").add(self.busy_s, count=max(1, self.maps))
        metrics.gauge(f"parallel.pool.backend.{self.backend}").set(1)
        metrics.counter("parallel.pipe.messages").inc(self.pipe_messages)
        metrics.counter("parallel.pipe.task_bytes").inc(self.pipe_task_bytes)
        metrics.gauge("parallel.pipe.max_message_bytes").update_max(
            self.pipe_max_message_bytes
        )
        self.arena.publish(metrics)

    def __repr__(self) -> str:
        return (
            f"ProcessTileExecutor(workers={self.workers}, tasks={self.tasks}, "
            f"pipe_bytes={self.pipe_task_bytes})"
        )


def is_process_executor(executor) -> bool:
    """True for an executor whose fan-out crosses process boundaries."""
    return getattr(executor, "backend", "thread") == "process"
