"""Parallel tile execution for the functional layer.

The paper's DGEMM spreads the packed tile grid over the Knights
Corner's 60 compute cores (Section III-A); the functional layer's
analogue is :class:`~repro.parallel.executor.TileExecutor` — a
persistent thread pool (NumPy releases the GIL inside BLAS calls) that
fans independent tile/stripe/panel work items across host cores while
guaranteeing results bitwise identical to the serial order: every unit
of work writes a disjoint output region, so scheduling cannot change
any floating-point reduction.

For the pure-Python-bound parts of the pipeline (emulator dispatch,
scheduler bookkeeping) threads still serialize on the GIL;
:class:`~repro.parallel.shm.ProcessTileExecutor` provides the same
interface over worker *processes* that map the operands through a
:class:`~repro.parallel.shm.SharedArena` of POSIX shared memory —
task descriptors cross the pipe, array payloads never do, and the
disjoint-write contract keeps results bitwise identical across
backends and worker counts.
"""

from repro.parallel.executor import (
    EXECUTOR_BACKENDS,
    TileExecutor,
    as_executor,
    default_workers,
    in_worker,
    make_executor,
    scratch_buffer,
)
from repro.parallel.shm import (
    ArrayRef,
    ProcessTileExecutor,
    SharedArena,
    SharedArenaError,
    is_process_executor,
    shm_task,
)

__all__ = [
    "ArrayRef",
    "EXECUTOR_BACKENDS",
    "ProcessTileExecutor",
    "SharedArena",
    "SharedArenaError",
    "TileExecutor",
    "as_executor",
    "default_workers",
    "in_worker",
    "is_process_executor",
    "make_executor",
    "scratch_buffer",
    "shm_task",
]
