"""Parallel tile execution for the functional layer.

The paper's DGEMM spreads the packed tile grid over the Knights
Corner's 60 compute cores (Section III-A); the functional layer's
analogue is :class:`~repro.parallel.executor.TileExecutor` — a
persistent thread pool (NumPy releases the GIL inside BLAS calls) that
fans independent tile/stripe/panel work items across host cores while
guaranteeing results bitwise identical to the serial order: every unit
of work writes a disjoint output region, so scheduling cannot change
any floating-point reduction.
"""

from repro.parallel.executor import (
    TileExecutor,
    as_executor,
    default_workers,
    in_worker,
    scratch_buffer,
)

__all__ = [
    "TileExecutor",
    "as_executor",
    "default_workers",
    "in_worker",
    "scratch_buffer",
]
