"""The dynamic LU scheduler of Section IV-A.

Workers are *thread groups* (the paper partitions Knights Corner's
hardware threads into groups; only a group's "master" thread touches the
DAG critical section, which is why the critical section is modelled as a
lock acquired once per task rather than once per hardware thread). The
scheduler extends Buttari-style dynamic DAG scheduling with:

* **master-thread critical section** — one lock acquisition per task per
  group; its service time comes from the calibration. The
  ``master_only_lock=False`` ablation restores the original scheme where
  every hardware thread of the group queues on the lock;
* **look-ahead** — inherited from the DAG's task priority: a ready next
  panel factorization is always preferred over updates;
* **super-stages** — the factorization is cut into super-stages; within
  one, the thread grouping is fixed; at each boundary a *global barrier*
  is charged and threads are regrouped — fewer, wider groups for the
  later (smaller) stages so panel factorization stays hidden.

When a :class:`~repro.lu.tasks.LUWorkspace` is supplied, every task is
also executed numerically, so a simulated schedule provably computes the
right factorization; for large-N timing studies the workspace is omitted
and only durations run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.lu.dag import PanelDAG, Task, TaskType
from repro.lu.tasks import LUWorkspace
from repro.lu.timing import LUTiming
from repro.obs import MetricsRegistry, RunResult
from repro.sim import Lock, Simulator, TraceRecorder


@dataclass
class ScheduleResult(RunResult):
    """Outcome of a simulated LU factorization."""

    n: int
    nb: int
    makespan_s: float
    gflops: float
    efficiency: float
    trace: TraceRecorder
    tasks_executed: int
    lock_mean_wait_s: float = 0.0
    barriers: int = 0
    metrics: Optional[MetricsRegistry] = None

    kind = "schedule"

    @property
    def time_s(self) -> float:
        """Uniform-API alias for the factorization makespan."""
        return self.makespan_s


@dataclass(frozen=True)
class SuperStage:
    """Stages [start, end) run with groups of ``group_cores[i]`` cores."""

    start: int
    end: int
    group_cores: tuple

    @property
    def n_groups(self) -> int:
        return len(self.group_cores)


def _split_cores(cores: int, n_groups: int) -> tuple:
    """Distribute cores over groups with at most one core of skew."""
    base, extra = divmod(cores, n_groups)
    return tuple(base + (1 if i < extra else 0) for i in range(n_groups))


def plan_superstages(
    n_panels: int,
    cores: int,
    n: int,
    nb: int,
    timing: "LUTiming",
    shrink: float = 0.25,
) -> List[SuperStage]:
    """Cut the factorization into super-stages, choosing each one's
    thread grouping by cost.

    For the first stage of each super-stage, every candidate group count
    G is scored with a stage-time estimate — the longer of (a) the
    update rounds ceil(R/G) * t_update and (b) the look-ahead panel on a
    C/G-core group chained behind its own update — and the cheapest G
    wins. This reproduces the Section IV-A regrouping rationale
    organically: large trailing matrices favour many narrow groups
    (update throughput), small ones favour few wide groups (the panel is
    the critical path and needs threads).
    """
    if n_panels < 1 or cores < 1:
        raise ValueError("need positive panel and core counts")
    if not 0 < shrink < 1:
        raise ValueError("shrink must be in (0, 1)")
    plan: List[SuperStage] = []
    start = 0
    while start < n_panels:
        remaining = n_panels - start
        n_groups = _best_group_count(start, remaining, cores, n, nb, timing)
        length = max(1, math.ceil(remaining * shrink))
        end = min(start + length, n_panels)
        plan.append(SuperStage(start, end, _split_cores(cores, n_groups)))
        start = end
    return plan


def _best_group_count(
    stage: int, remaining: int, cores: int, n: int, nb: int, timing: "LUTiming"
) -> int:
    rows = n - stage * nb
    r_tasks = max(1, remaining - 1)
    best_g, best_t = 1, float("inf")
    for n_groups in range(1, min(cores, r_tasks) + 1):
        g = max(1, cores // n_groups)
        upd = timing.update_time(
            rows, min(nb, rows), min(nb, rows), g, bw_sharers=max(1, n_groups // 3)
        )
        rounds = math.ceil(r_tasks / n_groups)
        t_updates = rounds * upd
        t_panel = upd + timing.panel_time(max(rows - nb, 1), min(nb, rows), g)
        t = max(t_updates, t_panel)
        if t < best_t:
            best_g, best_t = n_groups, t
    return best_g


class DynamicScheduler:
    """Simulate (and optionally execute) the dynamic-scheduled native LU."""

    def __init__(
        self,
        n: int,
        nb: int = 300,
        timing: Optional[LUTiming] = None,
        cores: Optional[int] = None,
        superstages: Optional[List[SuperStage]] = None,
        master_only_lock: bool = True,
    ):
        if n < 1 or nb < 1:
            raise ValueError("n and nb must be positive")
        self.n = n
        self.nb = nb
        self.timing = timing or LUTiming()
        self.cores = cores if cores is not None else self.timing.machine.compute_cores
        self.n_panels = -(-n // nb)
        self.superstages = superstages or plan_superstages(
            self.n_panels, self.cores, n, nb, self.timing
        )
        self.master_only_lock = master_only_lock

    # -- geometry helpers -----------------------------------------------------
    def _panel_width(self, p: int) -> int:
        return min((p + 1) * self.nb, self.n) - p * self.nb

    def _stage_rows(self, i: int) -> int:
        return self.n - i * self.nb

    def _phases(self, task: Task, g_cores: int, n_groups: int) -> list:
        """(kind, duration) phases of a task for the trace."""
        rows = self._stage_rows(task.stage)
        if task.type is TaskType.PANEL:
            dur = self.timing.panel_time(rows, self._panel_width(task.stage), g_cores)
            return [("dgetrf", dur)]
        # Swaps occupy roughly a third of an update, so on average only a
        # third of the groups contend for swap bandwidth at any instant.
        sharers = max(1, n_groups // 3)
        swap, trsm, gemm = self.timing.update_components(
            rows,
            min(self.nb, rows),
            self._panel_width(task.panel),
            g_cores,
            bw_sharers=sharers,
        )
        return [("dlaswp", swap), ("dtrsm", trsm), ("dgemm", gemm)]

    def task_duration(self, task: Task, g_cores: int, n_groups: int) -> float:
        return sum(d for _, d in self._phases(task, g_cores, n_groups))

    # -- simulation ----------------------------------------------------------------
    def run(self, workspace: Optional[LUWorkspace] = None) -> ScheduleResult:
        if workspace is not None and (
            workspace.n != self.n or workspace.nb != self.nb
        ):
            raise ValueError("workspace does not match scheduler geometry")
        sim = Simulator()
        dag = PanelDAG(self.n_panels)
        trace = TraceRecorder()
        metrics = MetricsRegistry()
        lock = Lock(sim, service_time=self.timing.dag_lock_time())
        change: List = [sim.event()]  # re-armed after every commit
        tasks_run = [0]
        barriers = [0]

        def notify():
            old = change[0]
            change[0] = sim.event()
            old.succeed()

        def worker(group_id: int, g_cores: int, n_groups: int, max_stage: int):
            name = f"group{group_id}"
            while True:
                yield from lock.acquire()
                task = dag.available_task(max_stage=max_stage)
                lock.release()
                if not self.master_only_lock:
                    # Original scheme: every hardware thread of the group
                    # serialises through the critical section per task.
                    for _ in range(g_cores * self.timing.machine.smt - 1):
                        yield from lock.acquire()
                        lock.release()
                if task is None:
                    if self._superstage_done(dag, max_stage):
                        return
                    ev = change[0]
                    yield ev
                    continue
                for kind, dur in self._phases(task, g_cores, n_groups):
                    t0 = sim.now
                    yield dur
                    trace.record(
                        name,
                        kind,
                        t0,
                        sim.now,
                        info=f"s{task.stage}p{task.panel}",
                        stage=task.stage,
                        panel=task.panel,
                    )
                if workspace is not None:
                    workspace.execute(task)
                dag.complete(task)
                tasks_run[0] += 1
                metrics.counter(f"sched.tasks.{name}").inc()
                notify()

        def driver():
            for ss_index, ss in enumerate(self.superstages):
                procs = [
                    sim.process(
                        worker(g, ss.group_cores[g], ss.n_groups, ss.end),
                        name=f"group{g}",
                    )
                    for g in range(ss.n_groups)
                ]
                for p in procs:
                    yield p
                if ss_index < len(self.superstages) - 1:
                    # Global barrier + thread regrouping between super-stages.
                    barriers[0] += 1
                    t0 = sim.now
                    yield self.timing.barrier_time()
                    trace.record("global", "barrier", t0, sim.now)

        sim.process(driver(), name="driver")
        makespan = sim.run()
        if not dag.done:
            raise RuntimeError("dynamic schedule finished with unfinished DAG")
        flops = LUTiming.lu_flops(self.n)
        gflops = flops / makespan / 1e9
        peak = self.timing.machine.peak_dp_gflops(self.cores)
        metrics.counter("sched.tasks").inc(tasks_run[0])
        metrics.counter("sched.barriers").inc(barriers[0])
        metrics.gauge("sched.superstages").set(len(self.superstages))
        metrics.gauge("sched.idle_fraction").set(1.0 - trace.utilisation())
        lock.publish_metrics(metrics, "sched.dag_lock")
        sim.publish_metrics(metrics)
        return ScheduleResult(
            n=self.n,
            nb=self.nb,
            makespan_s=makespan,
            gflops=gflops,
            efficiency=gflops / peak,
            trace=trace,
            tasks_executed=tasks_run[0],
            lock_mean_wait_s=lock.mean_wait,
            barriers=barriers[0],
            metrics=metrics,
        )

    @staticmethod
    def _superstage_done(dag: PanelDAG, max_stage: int) -> bool:
        """All tasks with stage < max_stage are complete."""
        limit = min(max_stage, dag.n_panels)
        if not all(dag.factored[:limit]):
            return False
        for p in range(dag.n_panels):
            if dag.stage[p] < min(p, limit):
                return False
        return True
