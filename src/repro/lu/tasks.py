"""Real-numerics execution of the LU DAG tasks.

:class:`LUWorkspace` owns the matrix being factored in place and executes
:class:`~repro.lu.dag.Task` objects:

* **Task1 / PANEL(i)** — factor the column panel A[i*nb:, i*nb:(i+1)*nb]
  with partial pivoting (:func:`repro.blas.getrf.getrf`), recording the
  stage's local pivot vector;
* **Task2 / UPDATE(i, p)** — the composite of Figure 5b: apply stage i's
  row swaps to panel p (DLASWP), forward-solve the top nb x nb block
  against L11 (DTRSM), and GEMM-update the rows below.

Any execution order that respects the DAG's dependencies produces the
same factorization; :func:`repro.lu.factorize.lu_via_dag` and the
property tests exploit this to validate the schedulers' orderings.

After all tasks complete, :meth:`LUWorkspace.finalize` applies each
stage's swaps to the *left* of its panel (bookkeeping HPL defers), so the
in-place result matches LAPACK's getrf storage exactly.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from repro.blas.buffers import (
    BufferPool,
    as_buffer_pool,
    matmul_into,
    subtract_into,
)
from repro.blas.gemm import gemm
from repro.blas.getrf import getrf
from repro.blas.laswp import laswp
from repro.blas.trsm import trsm_lower_unit_left
from repro.blas.workspace import PackCache
from repro.lu.dag import Task, TaskType
from repro.parallel import as_executor, is_process_executor


class LUWorkspace:
    """The in-place blocked LU state shared by all workers.

    With a :class:`~repro.blas.workspace.PackCache` attached
    (``pack_cache=True`` or an instance), every trailing update runs
    through the packed-GEMM substrate and stage i's L21 panel is packed
    exactly once — the first UPDATE(i, p) misses, every later one hits —
    then invalidated the moment the stage's last update retires. An
    ``executor`` (worker count or :class:`~repro.parallel.TileExecutor`)
    is forwarded to those GEMMs so a serial task order can still fan the
    stripe grid across threads. A ``buffer_pool`` (``True`` or a
    :class:`~repro.blas.buffers.BufferPool`) is threaded into every
    kernel — getrf scratch, laswp gathers, trsm workspaces, GEMM
    stripes and the plain-path trailing product — so steady-state
    stages rent their temporaries from the arena instead of allocating;
    pooled and unpooled runs are bitwise identical.
    """

    def __init__(
        self,
        a: np.ndarray,
        nb: int,
        use_packed_gemm: bool = False,
        pack_cache=None,
        executor=None,
        buffer_pool=None,
    ):
        a = np.asarray(a)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError("LU workspace expects a square matrix")
        if a.dtype.kind != "f":
            raise ValueError("matrix must be a float array (factored in place)")
        if nb < 1:
            raise ValueError("block size must be positive")
        self.a = a
        self.n = a.shape[0]
        self.nb = nb
        self.n_panels = -(-self.n // nb)
        self.stage_ipiv: List[Optional[np.ndarray]] = [None] * self.n_panels
        self.use_packed_gemm = use_packed_gemm
        self.executor = as_executor(executor)
        # A process-backed stripe executor needs the matrix (and the
        # cached pack panels) addressable from the worker processes:
        # move the factorization into the executor's shared arena and
        # restore the caller's array — the in-place contract — at
        # finalize(). Task execution itself is unchanged.
        self._restore_to: Optional[np.ndarray] = None
        if self.executor is not None and is_process_executor(self.executor):
            self._restore_to = self.a
            self.a = self.executor.arena.adopt(self.a, key="lu.a")
            if pack_cache is True:
                pack_cache = self.executor.arena.pack_cache()
        if pack_cache is True:
            pack_cache = PackCache()
        elif pack_cache is False:
            pack_cache = None
        self.pack_cache: Optional[PackCache] = pack_cache
        self.buffer_pool: Optional[BufferPool] = as_buffer_pool(buffer_pool)
        # Per-stage count of outstanding trailing updates, so the stage's
        # packed L21 can be dropped as soon as its last consumer retires.
        self._updates_left = [self.n_panels - i - 1 for i in range(self.n_panels)]
        self._retire_lock = threading.Lock()
        self.finalized = False

    # -- geometry -------------------------------------------------------------
    def panel_cols(self, p: int) -> slice:
        """Column range of panel p (the last panel may be narrower)."""
        self._check_panel(p)
        return slice(p * self.nb, min((p + 1) * self.nb, self.n))

    def stage_row0(self, i: int) -> int:
        """First row of stage i's diagonal block."""
        return i * self.nb

    def panel_width(self, p: int) -> int:
        c = self.panel_cols(p)
        return c.stop - c.start

    # -- task execution ---------------------------------------------------------
    def execute(self, task: Task) -> None:
        if task.type is TaskType.PANEL:
            self._run_panel(task.stage)
        else:
            self._run_update(task.stage, task.panel)

    def _run_panel(self, i: int) -> None:
        if self.stage_ipiv[i] is not None:
            raise RuntimeError(f"panel {i} factored twice")
        r0 = self.stage_row0(i)
        panel = self.a[r0:, self.panel_cols(i)]
        self.stage_ipiv[i] = getrf(panel, pool=self.buffer_pool)

    def _run_update(self, i: int, p: int) -> None:
        ipiv = self.stage_ipiv[i]
        if ipiv is None:
            raise RuntimeError(f"update of stage {i} before its panel factored")
        r0 = self.stage_row0(i)
        w = self.panel_width(i)
        block = self.a[r0:, self.panel_cols(p)]
        # DLASWP: stage i's swaps, local to rows r0...
        laswp(block, ipiv, forward=True, pool=self.buffer_pool)
        # DTRSM: U block = L11^{-1} @ top rows.
        l11 = self.a[r0 : r0 + w, self.panel_cols(i)]
        u_block = block[:w, :]
        trsm_lower_unit_left(l11, u_block, pool=self.buffer_pool)
        # DGEMM: trailing rows -= L21 @ U block.
        if block.shape[0] > w:
            l21 = self.a[r0 + w :, self.panel_cols(i)]
            if self.pack_cache is not None:
                gemm(
                    l21,
                    u_block,
                    block[w:, :],
                    alpha=-1.0,
                    beta=1.0,
                    pack_cache=self.pack_cache,
                    a_key=("lu.l21", i),
                    b_key=("lu.u", i, p),
                    executor=self.executor,
                    pool=self.buffer_pool,
                )
            elif self.use_packed_gemm:
                gemm(
                    l21, u_block, block[w:, :], alpha=-1.0, beta=1.0,
                    executor=self.executor, pool=self.buffer_pool,
                )
            elif self.buffer_pool is not None:
                trailing = block[w:, :]
                with self.buffer_pool.rent(
                    trailing.shape, trailing.dtype, key="lu.trailing"
                ) as prod:
                    matmul_into(
                        self.buffer_pool, l21, u_block, prod, key="lu.trailing"
                    )
                    subtract_into(trailing, prod)
            else:
                block[w:, :] -= l21 @ u_block
        if self.pack_cache is not None:
            # The U panel is consumed by exactly this update; the L21
            # panel dies with the stage's last trailing update.
            self.pack_cache.invalidate(("lu.u", i, p))
            with self._retire_lock:
                self._updates_left[i] -= 1
                stage_done = self._updates_left[i] == 0
            if stage_done:
                self.pack_cache.invalidate(("lu.l21", i))

    # -- finalisation -----------------------------------------------------------
    def finalize(self) -> np.ndarray:
        """Apply each stage's swaps to the columns left of its panel and
        return the global LAPACK-convention pivot vector."""
        if self.finalized:
            raise RuntimeError("workspace already finalized")
        if any(ip is None for ip in self.stage_ipiv):
            raise RuntimeError("finalize before all panels factored")
        for i in range(1, self.n_panels):
            r0 = self.stage_row0(i)
            left = self.a[:, : r0]
            laswp(
                left,
                self.stage_ipiv[i],
                offset=r0,
                forward=True,
                pool=self.buffer_pool,
            )
        if self._restore_to is not None:
            np.copyto(self._restore_to, self.a)
            self.executor.arena.release(self.a)
            self.a = self._restore_to
            self._restore_to = None
        self.finalized = True
        return self.global_ipiv()

    def global_ipiv(self) -> np.ndarray:
        """Concatenate stage-local pivots into one global vector."""
        parts = []
        for i, ip in enumerate(self.stage_ipiv):
            if ip is None:
                raise RuntimeError("global_ipiv before all panels factored")
            parts.append(ip + self.stage_row0(i))
        return np.concatenate(parts)

    def _check_panel(self, p: int) -> None:
        if not 0 <= p < self.n_panels:
            raise IndexError(f"panel {p} out of range (have {self.n_panels})")
