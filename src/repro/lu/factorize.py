"""Sequential blocked LU, DAG-ordered LU, and the triangular solve.

:func:`blocked_lu` is the plain right-looking reference (the task order a
single worker would produce); :func:`lu_via_dag` drains the
:class:`~repro.lu.dag.PanelDAG` with a pluggable task-selection policy —
used by tests to prove that *every* dependency-respecting order gives the
same factorization the schedulers then merely reorder in time.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.blas.laswp import apply_pivots_to_vector
from repro.blas.trsm import trsm_lower_unit_left, trsm_upper_left
from repro.lu.dag import PanelDAG, Task
from repro.lu.tasks import LUWorkspace
from repro.parallel import TileExecutor, as_executor, is_process_executor


def _claim_executor(workers) -> tuple:
    """Coerce ``workers`` into (executor, owned): ``owned`` marks a pool
    we created here and must close before returning."""
    owned = (
        workers is not None
        and not isinstance(workers, TileExecutor)
        and not is_process_executor(workers)
    )
    return as_executor(workers), owned


def _process_kwargs(ws_kwargs: dict) -> dict:
    """Map LUWorkspace kwargs onto the process-LU driver's signature
    (the workspace's stripe ``executor`` becomes ``inner_executor``)."""
    kwargs = dict(ws_kwargs)
    if "executor" in kwargs:
        kwargs["inner_executor"] = kwargs.pop("executor")
    return kwargs


def blocked_lu(
    a: np.ndarray, nb: int = 64, workers=None, **ws_kwargs
) -> tuple:
    """Factor ``a`` in place (stage loop order); returns (a, ipiv).

    ``workers`` (a count, a :class:`~repro.parallel.TileExecutor`, or a
    :class:`~repro.parallel.ProcessTileExecutor`) fans each stage's
    trailing updates — which write disjoint column panels — across
    threads or processes; the panel factorizations and the stage order
    stay serial, so results are bitwise identical at any width and on
    either backend.
    """
    ex, owned = _claim_executor(workers)
    if ex is not None and is_process_executor(ex):
        from repro.lu.proc import process_blocked_lu

        try:
            return process_blocked_lu(a, nb, ex, **_process_kwargs(ws_kwargs))
        finally:
            if owned:
                ex.close()
    ws = LUWorkspace(a, nb, **ws_kwargs)
    try:
        for i in range(ws.n_panels):
            ws.execute(Task.panel_task(i))
            updates = [Task.update_task(i, p) for p in range(i + 1, ws.n_panels)]
            if ex is None:
                for task in updates:
                    ws.execute(task)
            elif updates:
                ex.map(ws.execute, updates)
    finally:
        if owned and ex is not None:
            ex.close()
    return ws.a, ws.finalize()


def lu_via_dag(
    a: np.ndarray,
    nb: int = 64,
    pick: Optional[Callable[[List[Task]], Task]] = None,
    workers=None,
    **ws_kwargs,
) -> tuple:
    """Factor ``a`` by draining the DAG.

    ``pick`` selects among *all currently runnable* tasks (default: the
    DAG's own priority). Since execution is sequential here, this
    effectively replays an arbitrary topological order — the property the
    dynamic scheduler relies on for correctness.

    ``workers`` instead executes every runnable wave concurrently: tasks
    that are simultaneously runnable always write disjoint regions (each
    UPDATE owns its column panel, and a PANEL is never runnable while
    updates still target its columns), so wave execution is one more
    dependency-respecting order with bitwise-identical results. ``pick``
    and ``workers`` are mutually exclusive — one chooses a single task
    per step, the other runs them all.
    """
    if pick is not None and workers is not None:
        raise ValueError("pick and workers are mutually exclusive")
    ex, owned = _claim_executor(workers)
    if ex is not None and is_process_executor(ex):
        from repro.lu.proc import process_lu_dag

        try:
            return process_lu_dag(a, nb, ex, **_process_kwargs(ws_kwargs))
        finally:
            if owned:
                ex.close()
    ws = LUWorkspace(a, nb, **ws_kwargs)
    dag = PanelDAG(ws.n_panels)
    try:
        while not dag.done:
            if ex is not None:
                runnable = _drain_runnable(dag)
                if not runnable:
                    raise RuntimeError("DAG stalled with no runnable task")
                ex.map(ws.execute, runnable)
                for task in runnable:
                    dag.complete(task)
                continue
            if pick is None:
                task = dag.available_task()
                if task is None:
                    raise RuntimeError("DAG stalled with no runnable task")
            else:
                runnable = _drain_runnable(dag)
                if not runnable:
                    raise RuntimeError("DAG stalled with no runnable task")
                task = pick(runnable)
                for other in runnable:
                    if other != task:
                        dag.abandon(other)
            ws.execute(task)
            dag.complete(task)
    finally:
        if owned and ex is not None:
            ex.close()
    return ws.a, ws.finalize()


def _drain_runnable(dag: PanelDAG) -> List[Task]:
    """Claim every currently runnable task (caller abandons the unused)."""
    out = []
    while True:
        t = dag.available_task()
        if t is None:
            return out
        out.append(t)


def lu_solve(
    lu: np.ndarray, ipiv: np.ndarray, b: np.ndarray, pool=None
) -> np.ndarray:
    """Solve A x = b given the in-place factorization and global pivots.

    ``pool`` threads a :class:`~repro.blas.buffers.BufferPool` into the
    pivot gather and both triangular solves.
    """
    lu = np.asarray(lu)
    b = np.asarray(b, dtype=lu.dtype)
    if b.ndim != 1 or b.shape[0] != lu.shape[0]:
        raise ValueError("right-hand side has the wrong shape")
    x = b.copy()
    apply_pivots_to_vector(x, ipiv, forward=True, pool=pool)
    col = x.reshape(-1, 1)
    trsm_lower_unit_left(lu, col, pool=pool)
    trsm_upper_left(lu, col, pool=pool)
    return x
