"""Sequential blocked LU, DAG-ordered LU, and the triangular solve.

:func:`blocked_lu` is the plain right-looking reference (the task order a
single worker would produce); :func:`lu_via_dag` drains the
:class:`~repro.lu.dag.PanelDAG` with a pluggable task-selection policy —
used by tests to prove that *every* dependency-respecting order gives the
same factorization the schedulers then merely reorder in time.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.blas.laswp import apply_pivots_to_vector
from repro.blas.trsm import trsm_lower_unit_left, trsm_upper_left
from repro.lu.dag import PanelDAG, Task
from repro.lu.tasks import LUWorkspace


def blocked_lu(a: np.ndarray, nb: int = 64, **ws_kwargs) -> tuple:
    """Factor ``a`` in place (stage loop order); returns (a, ipiv)."""
    ws = LUWorkspace(a, nb, **ws_kwargs)
    for i in range(ws.n_panels):
        ws.execute(Task.panel_task(i))
        for p in range(i + 1, ws.n_panels):
            ws.execute(Task.update_task(i, p))
    return ws.a, ws.finalize()


def lu_via_dag(
    a: np.ndarray,
    nb: int = 64,
    pick: Optional[Callable[[List[Task]], Task]] = None,
    **ws_kwargs,
) -> tuple:
    """Factor ``a`` by draining the DAG.

    ``pick`` selects among *all currently runnable* tasks (default: the
    DAG's own priority). Since execution is sequential here, this
    effectively replays an arbitrary topological order — the property the
    dynamic scheduler relies on for correctness.
    """
    ws = LUWorkspace(a, nb, **ws_kwargs)
    dag = PanelDAG(ws.n_panels)
    while not dag.done:
        if pick is None:
            task = dag.available_task()
            if task is None:
                raise RuntimeError("DAG stalled with no runnable task")
        else:
            runnable = _drain_runnable(dag)
            if not runnable:
                raise RuntimeError("DAG stalled with no runnable task")
            task = pick(runnable)
            for other in runnable:
                if other != task:
                    dag.abandon(other)
        ws.execute(task)
        dag.complete(task)
    return ws.a, ws.finalize()


def _drain_runnable(dag: PanelDAG) -> List[Task]:
    """Claim every currently runnable task (caller abandons the unused)."""
    out = []
    while True:
        t = dag.available_task()
        if t is None:
            return out
        out.append(t)


def lu_solve(lu: np.ndarray, ipiv: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve A x = b given the in-place factorization and global pivots."""
    lu = np.asarray(lu)
    b = np.asarray(b, dtype=lu.dtype)
    if b.ndim != 1 or b.shape[0] != lu.shape[0]:
        raise ValueError("right-hand side has the wrong shape")
    x = b.copy()
    apply_pivots_to_vector(x, ipiv, forward=True)
    col = x.reshape(-1, 1)
    trsm_lower_unit_left(lu, col)
    trsm_upper_left(lu, col)
    return x
