"""Blocked LU factorization and the paper's two native schedulers.

The LU algorithm (Figure 5a) proceeds in block stages: factor the column
panel [DLi], swap rows by its pivots, forward-solve the U row panel, and
GEMM-update the trailing matrix. This package provides:

* :mod:`repro.lu.dag` — the compact one-array DAG of Figure 5b with the
  look-ahead rule of Section IV-A;
* :mod:`repro.lu.tasks` — Task1/Task2 definitions and their real-numerics
  execution against an :class:`~repro.lu.tasks.LUWorkspace`;
* :mod:`repro.lu.factorize` — sequential reference blocked LU, DAG-driven
  factorization (any dependency-respecting order), and triangular solve;
* :mod:`repro.lu.timing` — task duration models on a machine config;
* :mod:`repro.lu.dynamic` — the dynamic scheduler with master-thread
  critical section and super-stage regrouping;
* :mod:`repro.lu.static_la` — the static look-ahead baseline with global
  barriers between stages.
"""

from repro.lu.dag import PanelDAG, Task, TaskType
from repro.lu.tasks import LUWorkspace
from repro.lu.factorize import blocked_lu, lu_via_dag, lu_solve
from repro.lu.timing import LUTiming
from repro.lu.dynamic import DynamicScheduler, ScheduleResult
from repro.lu.static_la import StaticLookaheadScheduler

__all__ = [
    "PanelDAG",
    "Task",
    "TaskType",
    "LUWorkspace",
    "blocked_lu",
    "lu_via_dag",
    "lu_solve",
    "LUTiming",
    "DynamicScheduler",
    "StaticLookaheadScheduler",
    "ScheduleResult",
]
