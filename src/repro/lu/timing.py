"""Task duration models for the native LU on a simulated machine.

Durations are derived from the paper's own cost structure:

* **Task1 (DGETRF panel)** — ~nb^2 * (rows - nb/3) FLOPs. The panel is
  latency-sensitive and scales sub-linearly with cores (that is why the
  static scheme must assign "the minimum required number of threads to
  each panel factorization" and why later stages need regrouping); we
  model the rate as ``panel_eff * per_core_peak * g**alpha``.
* **Task2 (DLASWP + DTRSM + DGEMM)** — the swap is bandwidth-bound (a
  fraction of STREAM shared among concurrent groups), the triangular
  solve runs at a fixed fraction of peak, and the trailing GEMM uses the
  calibrated kernel model of :mod:`repro.machine.gemm_model` evaluated
  for the group's cores.
* **barrier / DAG lock** — fixed cycle costs from the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.machine.calibration import Calibration, default_calibration
from repro.machine.config import KNC, MachineConfig
from repro.machine.gemm_model import gemm_efficiency

#: Sub-linear core-scaling exponent for panel factorization.
PANEL_SCALING_ALPHA = 0.7


@dataclass
class LUTiming:
    """Duration oracle for LU tasks on ``machine``."""

    machine: Optional[MachineConfig] = None
    cal: Optional[Calibration] = None
    #: Panel rate fraction of per-core peak (overrides the calibration's
    #: machine-specific default when set).
    panel_eff: Optional[float] = None
    #: Element width of the factorization: 8 (DP, default) or 4 (SP).
    #: SP doubles the vector lane count (and thus per-core peak), halves
    #: every bandwidth-bound byte count, and routes the GEMM model to the
    #: SGEMM calibration — the machine-level basis of the MxP speedup.
    dtype_bytes: int = 8

    def __post_init__(self):
        self.machine = self.machine or KNC
        self.cal = self.cal or default_calibration()
        if self.dtype_bytes not in (4, 8):
            raise ValueError("dtype_bytes must be 4 (SP) or 8 (DP)")
        if self.panel_eff is None:
            self.panel_eff = (
                self.cal.panel_efficiency_knc
                if self.machine.name == KNC.name
                else self.cal.panel_efficiency_snb
            )

    # -- building blocks -----------------------------------------------------
    def _per_core_peak_gflops(self) -> float:
        return self.machine.clock_ghz * self.machine.flops_per_cycle_per_core(
            self.dtype_bytes
        )

    def panel_time(self, rows: int, nb: int, g_cores: int) -> float:
        """Seconds to factor a rows x nb panel on a g-core group."""
        if rows <= 0 or nb <= 0 or g_cores < 1:
            raise ValueError("panel dimensions and cores must be positive")
        flops = nb * nb * max(rows - nb / 3.0, 1.0)
        rate = (
            self.panel_eff
            * self._per_core_peak_gflops()
            * g_cores**PANEL_SCALING_ALPHA
        )
        return flops / (rate * 1e9)

    def swap_time(self, n_pivots: int, width: int, bw_sharers: int = 1) -> float:
        """DLASWP applying ``n_pivots`` row interchanges across ``width``
        columns: each swap reads and writes both partner rows (4 row
        touches), at the swap fraction of STREAM bandwidth shared among
        ``bw_sharers`` concurrent groups."""
        bw = self.machine.stream_bw_gbs * self.cal.laswp_bw_fraction / max(bw_sharers, 1)
        return 4 * self.dtype_bytes * n_pivots * width / (bw * 1e9)

    def trsm_time(self, nb: int, width: int, g_cores: int) -> float:
        """DTRSM of the nb x width U block against the nb x nb L11."""
        flops = nb * nb * width
        rate = self.cal.trsm_efficiency_knc * self._per_core_peak_gflops() * g_cores
        return flops / (rate * 1e9)

    def gemm_time(self, m: int, n: int, k: int, g_cores: int) -> float:
        """Trailing-update GEMM on a g-core group."""
        if m <= 0 or n <= 0:
            return 0.0
        eff = gemm_efficiency(
            m, n, k, self.machine,
            dtype_bytes=self.dtype_bytes, cores=g_cores, cal=self.cal,
        )
        rate = eff * self._per_core_peak_gflops() * g_cores
        return 2.0 * m * n * k / (rate * 1e9)

    def update_components(
        self, rows: int, nb: int, width: int, g_cores: int, bw_sharers: int = 1
    ) -> tuple:
        """Task2 phase durations (swap, trsm, gemm) for one panel of
        ``width`` columns, ``rows`` = rows from the stage's diagonal block
        down — the DLASWP/DTRSM/DGEMM colours of the Figure 7 Gantt."""
        return (
            self.swap_time(nb, width, bw_sharers),
            self.trsm_time(nb, width, g_cores),
            self.gemm_time(rows - nb, width, nb, g_cores),
        )

    def update_time(
        self, rows: int, nb: int, width: int, g_cores: int, bw_sharers: int = 1
    ) -> float:
        """Task2 composite: sum of :meth:`update_components`."""
        return sum(self.update_components(rows, nb, width, g_cores, bw_sharers))

    # -- fixed costs -----------------------------------------------------------
    def barrier_time(self) -> float:
        return self.machine.cycles_to_seconds(self.cal.barrier_cycles_knc)

    def dag_lock_time(self) -> float:
        return self.machine.cycles_to_seconds(self.cal.dag_lock_cycles)

    # -- totals ------------------------------------------------------------------
    @staticmethod
    def lu_flops(n: int) -> float:
        """The HPL flop count of the factorization part: 2/3 n^3."""
        return (2.0 / 3.0) * n**3

    @staticmethod
    def hpl_flops(n: int) -> float:
        """Full HPL operation count: 2/3 n^3 + 2 n^2 (solve included)."""
        return (2.0 / 3.0) * n**3 + 2.0 * n**2
