"""LU factorization with the trailing updates fanned across processes.

The blocked LU's per-stage structure maps cleanly onto the process
executor: the panel factorization is inherently serial and tiny, so the
parent runs it; the trailing updates write disjoint column panels, so
the workers run them — each against its own
:class:`~repro.lu.tasks.LUWorkspace` built over the *same* shared
matrix. What crosses the pipe per update is a ``{stage, panel}``
descriptor, nothing else:

* the matrix is adopted into the executor's
  :class:`~repro.parallel.shm.SharedArena` once, up front;
* stage pivots travel through a shared int64 vector (the parent writes
  stage i's slots right after factoring panel i — always before any
  update of stage i is dispatched, so the pipe ack ordering guarantees
  visibility);
* each worker lazily snapshots its ``stage_ipiv[i]`` view from that
  vector on first use.

Every worker executes :meth:`LUWorkspace._run_update` — the exact
code path the thread and serial backends run, against the same bytes —
so the factorization is bitwise identical across backends and worker
counts. Worker-local pack caches are invalidated by a ``lu.stage_done``
broadcast when a stage's last update retires (a worker only sees its
shard of a stage's updates, so it cannot retire the stage itself).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.lu.dag import PanelDAG, Task, TaskType
from repro.lu.tasks import LUWorkspace
from repro.parallel import shm_task


# ---------------------------------------------------------------------------
# Worker-side tasks
# ---------------------------------------------------------------------------

@shm_task("lu.attach")
def _task_attach(ctx, *, a_ref, ipiv_ref, nb, use_packed_gemm, pack_cache, buffer_pool):
    """Build this worker's LUWorkspace over the shared matrix."""
    a = ctx.resolve(a_ref)
    ws = LUWorkspace(
        a,
        nb,
        use_packed_gemm=bool(use_packed_gemm),
        pack_cache=bool(pack_cache),
        executor=None,  # stripes stay serial inside a worker
        buffer_pool=bool(buffer_pool),
    )
    ctx.state["lu"] = {"ws": ws, "ipiv": ctx.resolve(ipiv_ref), "nb": int(nb)}
    return None


@shm_task("lu.update")
def _task_update(ctx, *, stage, panel):
    """Run UPDATE(stage, panel) — Figure 5b's laswp + trsm + GEMM —
    against the shared matrix."""
    st = ctx.state["lu"]
    ws: LUWorkspace = st["ws"]
    if ws.stage_ipiv[stage] is None:
        w = ws.panel_width(stage)
        lo = stage * st["nb"]
        ws.stage_ipiv[stage] = st["ipiv"][lo : lo + w]
    ws._run_update(stage, panel)
    return None


@shm_task("lu.stage_done")
def _task_stage_done(ctx, *, stage):
    """Drop this worker's packed L21 panel for a retired stage."""
    ws: LUWorkspace = ctx.state["lu"]["ws"]
    if ws.pack_cache is not None:
        ws.pack_cache.invalidate(("lu.l21", stage))
    return None


# ---------------------------------------------------------------------------
# Parent-side drivers
# ---------------------------------------------------------------------------

def _setup(executor, a: np.ndarray, nb: int, use_packed_gemm, pack_cache, buffer_pool):
    """Adopt the matrix + pivot vector into the arena and build the
    worker-side workspaces. Returns (parent ws, shared a, shared ipiv)."""
    arena = executor.arena
    shm_a = arena.adopt(a, key="lu.a")
    n_panels = -(-a.shape[0] // nb)
    shm_ipiv = arena.checkout((n_panels * nb,), np.int64, key="lu.ipiv")
    shm_ipiv[:] = 0
    executor.setup(
        "lu.attach",
        a_ref=arena.ref_of(shm_a),
        ipiv_ref=arena.ref_of(shm_ipiv),
        nb=int(nb),
        use_packed_gemm=bool(use_packed_gemm),
        pack_cache=bool(pack_cache),
        buffer_pool=bool(buffer_pool),
    )
    # The parent only factors panels and finalizes — no trailing GEMMs —
    # so it needs the buffer pool (getrf/laswp scratch) but no cache.
    ws = LUWorkspace(shm_a, nb, buffer_pool=bool(buffer_pool))
    return ws, shm_a, shm_ipiv


def _publish_pivots(ws: LUWorkspace, shm_ipiv: np.ndarray, stage: int) -> None:
    w = ws.panel_width(stage)
    shm_ipiv[stage * ws.nb : stage * ws.nb + w] = ws.stage_ipiv[stage]


def _teardown(a, ws, shm_a, shm_ipiv, arena) -> tuple:
    """Finalize on the shared matrix, then restore the in-place
    contract: results land back in the caller's array."""
    ipiv = ws.finalize()
    np.copyto(a, shm_a)
    arena.release(shm_a)
    arena.release(shm_ipiv)
    return a, ipiv


def process_blocked_lu(
    a: np.ndarray,
    nb: int,
    executor,
    use_packed_gemm: bool = False,
    pack_cache=None,
    buffer_pool=None,
    inner_executor=None,
) -> tuple:
    """:func:`repro.lu.factorize.blocked_lu` with process-backed update
    fan-out; same (a, ipiv) contract, bitwise-identical results.

    ``inner_executor`` (the workspace's stripe executor on the thread
    path) is accepted for signature compatibility and ignored — inside
    a worker process the stripes of one update run serially; the
    parallelism lives at the update level.
    """
    ws, shm_a, shm_ipiv = _setup(executor, a, nb, use_packed_gemm, pack_cache, buffer_pool)
    for i in range(ws.n_panels):
        ws.execute(Task.panel_task(i))
        _publish_pivots(ws, shm_ipiv, i)
        updates = [{"stage": i, "panel": p} for p in range(i + 1, ws.n_panels)]
        if updates:
            executor.run_tasks("lu.update", updates)
            if pack_cache:
                executor.setup("lu.stage_done", stage=i)
    return _teardown(a, ws, shm_a, shm_ipiv, executor.arena)


def process_lu_dag(
    a: np.ndarray,
    nb: int,
    executor,
    use_packed_gemm: bool = False,
    pack_cache=None,
    buffer_pool=None,
    inner_executor=None,
) -> tuple:
    """:func:`repro.lu.factorize.lu_via_dag` wave execution with the
    updates of each wave fanned across processes.

    A wave's panels always belong to earlier waves than its updates'
    dependents, so panels run (and publish pivots) before the wave's
    update batch is dispatched; simultaneously runnable updates write
    disjoint panels, so the shard assignment cannot change any sum.
    """
    ws, shm_a, shm_ipiv = _setup(executor, a, nb, use_packed_gemm, pack_cache, buffer_pool)
    dag = PanelDAG(ws.n_panels)
    updates_left = [ws.n_panels - i - 1 for i in range(ws.n_panels)]
    while not dag.done:
        runnable = []
        while True:
            t = dag.available_task()
            if t is None:
                break
            runnable.append(t)
        if not runnable:
            raise RuntimeError("DAG stalled with no runnable task")
        panels = [t for t in runnable if t.type is TaskType.PANEL]
        updates = [t for t in runnable if t.type is TaskType.UPDATE]
        for t in panels:
            ws.execute(t)
            _publish_pivots(ws, shm_ipiv, t.stage)
        if updates:
            executor.run_tasks(
                "lu.update",
                [{"stage": t.stage, "panel": t.panel} for t in updates],
            )
            if pack_cache:
                for t in updates:
                    updates_left[t.stage] -= 1
                    if updates_left[t.stage] == 0:
                        executor.setup("lu.stage_done", stage=t.stage)
        for t in runnable:
            dag.complete(t)
    return _teardown(a, ws, shm_a, shm_ipiv, executor.arena)
