"""Static look-ahead LU scheduling (the Figure 6/7 baseline).

This is the scheme of Deisher et al. the paper compares against: global
barrier synchronisation between stages, a *static* partition of each
stage's trailing update across thread groups, and a dedicated panel
group sized to the "minimum required number of threads ... to achieve
the best load-balance with trailing update".

Per stage i the simulated timeline is:

1. one group first processes the stage-i update of panel i+1 (the
   look-ahead target); all other groups start immediately on their
   statically assigned column slab of the trailing update — the
   partition is at column granularity, so the static split itself is
   nearly perfectly balanced;
2. the moment panel i+1's update lands, the dedicated panel group starts
   factoring it (the look-ahead overlap);
3. a global barrier closes the stage: nothing of stage i+1 may start
   before both the updates and the panel are done.

What the scheme cannot do — and what Figure 7a shows as white (barrier)
and violet (DGETRF) regions — is fill the panel group's idle time with
update work, start the next stage's updates early, or recover when the
panel outlasts the trailing update (inevitable for small matrices). The
dynamic scheduler removes exactly those losses.
"""

from __future__ import annotations

from typing import Optional

from repro.lu.dag import Task
from repro.lu.dynamic import ScheduleResult
from repro.lu.tasks import LUWorkspace
from repro.lu.timing import LUTiming
from repro.obs import MetricsRegistry
from repro.sim import Simulator, TraceRecorder


class StaticLookaheadScheduler:
    """Simulate (and optionally execute) the static look-ahead native LU."""

    def __init__(
        self,
        n: int,
        nb: int = 300,
        timing: Optional[LUTiming] = None,
        cores: Optional[int] = None,
        update_group_cores: int = 4,
    ):
        if n < 1 or nb < 1:
            raise ValueError("n and nb must be positive")
        self.n = n
        self.nb = nb
        self.timing = timing or LUTiming()
        self.cores = cores if cores is not None else self.timing.machine.compute_cores
        self.n_panels = -(-n // nb)
        self.update_group_cores = max(1, update_group_cores)

    def _panel_width(self, p: int) -> int:
        return min((p + 1) * self.nb, self.n) - p * self.nb

    def _stage_rows(self, i: int) -> int:
        return self.n - i * self.nb

    def _trailing_cols(self, i: int) -> int:
        """Columns right of stage i's panel."""
        return self.n - (i + 1) * self.nb

    def stage_update_components(self, i: int, cores: int) -> tuple:
        """(swap, trsm, gemm) wall time of stage i's whole trailing update
        on ``cores`` cores — the column-partitioned slab cost. The swap is
        aggregated over all columns, so it sees the full swap bandwidth
        (bw_sharers = 1): each group's slab takes this same wall time."""
        rows = self._stage_rows(i)
        cols = self._trailing_cols(i)
        if cols <= 0:
            return (0.0, 0.0, 0.0)
        return self.timing.update_components(
            rows, min(self.nb, rows), cols, cores, bw_sharers=1
        )

    def panel_group_cores(self, stage: int) -> int:
        """Minimum cores for the stage's look-ahead panel to finish no
        later than the trailing update on the remaining cores."""
        if stage + 1 >= self.n_panels:
            return 0
        rows = self._stage_rows(stage + 1)
        for g in range(1, self.cores):
            rest = self.cores - g
            panel_t = self.timing.panel_time(rows, self._panel_width(stage + 1), g)
            update_t = sum(self.stage_update_components(stage, rest))
            if panel_t <= update_t:
                return g
        return self.cores - 1

    # -- simulation -------------------------------------------------------------
    def run(self, workspace: Optional[LUWorkspace] = None) -> ScheduleResult:
        if workspace is not None and (
            workspace.n != self.n or workspace.nb != self.nb
        ):
            raise ValueError("workspace does not match scheduler geometry")
        sim = Simulator()
        trace = TraceRecorder()
        tasks_run = [0]
        barriers = [0]

        def run_panel(stage: int, g: int):
            dur = self.timing.panel_time(
                self._stage_rows(stage), self._panel_width(stage), g
            )
            t0 = sim.now
            yield dur
            trace.record("panel_group", "dgetrf", t0, sim.now, info=f"s{stage}")
            if workspace is not None:
                workspace.execute(Task.panel_task(stage))
            tasks_run[0] += 1

        def run_slab(worker: str, components, head_event=None, head_frac=0.0):
            """One group's column slab of a stage's update: optionally the
            slab leads with the look-ahead head (panel i+1's columns),
            after which ``head_event`` fires."""
            swap, trsm, gemm = components
            if head_event is not None and head_frac > 0:
                for kind, dur in (
                    ("dlaswp", swap * head_frac),
                    ("dtrsm", trsm * head_frac),
                    ("dgemm", gemm * head_frac),
                ):
                    t0 = sim.now
                    yield dur
                    trace.record(worker, kind, t0, sim.now)
                if not head_event.triggered:
                    head_event.succeed()
                swap, trsm, gemm = (
                    swap * (1 - head_frac),
                    trsm * (1 - head_frac),
                    gemm * (1 - head_frac),
                )
            for kind, dur in (("dlaswp", swap), ("dtrsm", trsm), ("dgemm", gemm)):
                t0 = sim.now
                yield dur
                trace.record(worker, kind, t0, sim.now)

        def stage_driver():
            # Stage 0's panel is fully exposed start-up.
            yield sim.process(run_panel(0, min(self.cores, 8)))
            for i in range(self.n_panels - 1):
                g_panel = self.panel_group_cores(i)
                rest = max(1, self.cores - g_panel)
                n_groups = max(1, rest // self.update_group_cores)
                # Column-partitioned update: every group's slab takes the
                # same wall time (static split at column granularity).
                per_group = self.stage_update_components(i, rest)
                lookahead_ready = sim.event()
                cols = self._trailing_cols(i)
                head_frac = (
                    min(1.0, self._panel_width(i + 1) * n_groups / cols)
                    if cols > 0
                    else 0.0
                )

                def panel_worker(i=i, g_panel=g_panel, ready=lookahead_ready):
                    if g_panel == 0:
                        return
                    yield ready
                    # The look-ahead head has landed: apply it numerically
                    # before factoring the panel it feeds.
                    if workspace is not None:
                        workspace.execute(Task.update_task(i, i + 1))
                        tasks_run[0] += 1
                    yield sim.process(run_panel(i + 1, g_panel))

                procs = [
                    sim.process(
                        run_slab(
                            f"ugroup{g}",
                            per_group,
                            head_event=lookahead_ready if g == 0 else None,
                            head_frac=head_frac,
                        ),
                        name=f"ugroup{g}",
                    )
                    for g in range(n_groups)
                ]
                procs.append(sim.process(panel_worker(), name="panel_group"))
                for proc in procs:
                    yield proc
                # The stage's numeric tasks (order within the stage is free
                # under the barrier discipline).
                if workspace is not None:
                    for p in range(i + 2, self.n_panels):
                        workspace.execute(Task.update_task(i, p))
                        tasks_run[0] += 1
                # Global barrier between stages.
                barriers[0] += 1
                t0 = sim.now
                yield self.timing.barrier_time()
                trace.record("global", "barrier", t0, sim.now)

        sim.process(stage_driver(), name="stage_driver")
        makespan = sim.run()
        flops = LUTiming.lu_flops(self.n)
        gflops = flops / makespan / 1e9
        peak = self.timing.machine.peak_dp_gflops(self.cores)
        metrics = MetricsRegistry()
        metrics.counter("sched.tasks").inc(tasks_run[0])
        metrics.counter("sched.barriers").inc(barriers[0])
        metrics.gauge("sched.idle_fraction").set(1.0 - trace.utilisation())
        metrics.timer("sched.panel_group_busy").add(
            trace.busy_time("panel_group"), count=max(1, self.n_panels)
        )
        sim.publish_metrics(metrics)
        return ScheduleResult(
            n=self.n,
            nb=self.nb,
            makespan_s=makespan,
            gflops=gflops,
            efficiency=gflops / peak,
            trace=trace,
            tasks_executed=tasks_run[0],
            barriers=barriers[0],
            metrics=metrics,
        )
