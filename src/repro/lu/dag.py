"""The compact LU dependency DAG of Figure 5b / Section IV-A.

The paper stores the whole DAG as a one-dimensional array with one entry
per panel, holding the panel's *current stage*. We keep the same compact
representation:

* ``stage[p] == i``: panel p has received the trailing updates of stages
  0..i-1 and is waiting for the stage-i update (or, if p == i, for its
  own factorization);
* panel p is *factored* when Task1(p) completes (recorded in a bitmap);
* Task2(i, p) — the composite pivoting + DTRSM + DGEMM update of panel p
  by stage i — is runnable when panel i is factored and ``stage[p] == i``;
  on completion the commit bumps ``stage[p]`` to i+1 (no critical section
  needed in the paper because the completing thread owns the entry);
* Task1(i) is runnable as soon as ``stage[i] == i`` — the *look-ahead*
  rule: the moment Task2(i-1, i) lands, the next panel factorization can
  start, overlapping with the rest of stage i-1's updates.

:meth:`PanelDAG.available_task` implements the paper's search order:
ready panel factorizations are preferred over updates (that is what makes
look-ahead effective), updates are served lowest-stage-first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Set


class TaskType(enum.Enum):
    PANEL = "panel"  # Task1: panel factorization
    UPDATE = "update"  # Task2: pivoting + forward solve + trailing GEMM


@dataclass(frozen=True)
class Task:
    """A node of the DAG.

    PANEL tasks have ``panel == stage``; UPDATE tasks update ``panel``
    with the factored panel of ``stage`` (panel > stage).
    """

    type: TaskType
    stage: int
    panel: int

    def __post_init__(self):
        if self.type is TaskType.PANEL and self.panel != self.stage:
            raise ValueError("a PANEL task factors its own panel")
        if self.type is TaskType.UPDATE and self.panel <= self.stage:
            raise ValueError("an UPDATE task must target a later panel")

    @staticmethod
    def panel_task(stage: int) -> "Task":
        return Task(TaskType.PANEL, stage, stage)

    @staticmethod
    def update_task(stage: int, panel: int) -> "Task":
        return Task(TaskType.UPDATE, stage, panel)


class PanelDAG:
    """Dynamic task distribution over the one-array DAG."""

    def __init__(self, n_panels: int):
        if n_panels < 1:
            raise ValueError("need at least one panel")
        self.n_panels = n_panels
        self.stage: List[int] = [0] * n_panels
        self.factored: List[bool] = [False] * n_panels
        self.in_progress: Set[Task] = set()
        self._completed = 0

    @property
    def total_tasks(self) -> int:
        """P panel factorizations + P(P-1)/2 updates."""
        p = self.n_panels
        return p + p * (p - 1) // 2

    @property
    def done(self) -> bool:
        return self._completed == self.total_tasks

    # -- the paper's AvailableTask() ----------------------------------------
    def available_task(self, max_stage: Optional[int] = None) -> Optional[Task]:
        """Return a runnable task and mark it in progress, or None.

        Priority: the lowest ready panel factorization (the look-ahead
        exception of Section IV-A), then the lowest-stage pending update.
        ``max_stage`` restricts the search to tasks with stage below it —
        the super-stage boundary of the dynamic scheduler.
        """
        limit = self.n_panels if max_stage is None else min(max_stage, self.n_panels)
        for p in range(limit):
            if not self.factored[p] and self.stage[p] == p:
                task = Task.panel_task(p)
                if task not in self.in_progress:
                    self.in_progress.add(task)
                    return task
        for i in range(min(limit, self.n_panels - 1)):
            if not self.factored[i]:
                # Later stages cannot have runnable updates either: their
                # panels factor only after this one's updates flow.
                break
            for p in range(i + 1, self.n_panels):
                if self.stage[p] == i:
                    task = Task.update_task(i, p)
                    if task not in self.in_progress:
                        self.in_progress.add(task)
                        return task
        return None

    def complete(self, task: Task) -> None:
        """Commit a finished task (the paper's stage increment)."""
        if task not in self.in_progress:
            raise ValueError(f"{task} was not in progress")
        self.in_progress.discard(task)
        if task.type is TaskType.PANEL:
            if self.stage[task.panel] != task.stage:
                raise RuntimeError("panel factored before its updates arrived")
            self.factored[task.panel] = True
            self.stage[task.panel] = task.stage + 1
        else:
            if not self.factored[task.stage]:
                raise RuntimeError("update committed before its panel factored")
            if self.stage[task.panel] != task.stage:
                raise RuntimeError("update committed out of order")
            self.stage[task.panel] = task.stage + 1
        self._completed += 1

    def abandon(self, task: Task) -> None:
        """Return a claimed task to the pool without completing it."""
        if task not in self.in_progress:
            raise ValueError(f"{task} was not in progress")
        self.in_progress.discard(task)

    def remaining_tasks(self) -> int:
        return self.total_tasks - self._completed
