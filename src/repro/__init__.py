"""repro — a reproduction of "Design and Implementation of the Linpack
Benchmark for Single and Multi-Node Systems Based on Intel Xeon Phi
Coprocessor" (Heinecke et al., IPDPS 2013).

The package has two coupled layers:

* a **functional layer** that really computes: packed-format DGEMM built
  on the paper's basic kernels (:mod:`repro.blas`), blocked LU with the
  dynamic DAG scheduler (:mod:`repro.lu`), the HPL benchmark core
  (:mod:`repro.hpl`), offload DGEMM with work stealing
  (:mod:`repro.hybrid`), and a distributed block-cyclic HPL over a
  simulated MPI world (:mod:`repro.cluster`);
* a **machine-model timing layer** (:mod:`repro.machine`,
  :mod:`repro.sim`) standing in for the Knights Corner / Sandy Bridge /
  FDR InfiniBand hardware, which regenerates the paper's tables and
  figures (see ``benchmarks/``).

Quick start::

    from repro import NativeHPL, HybridHPL, dgemm

    result = NativeHPL(30000).run()           # ~832 GFLOPS at ~79%
    print(result.gflops, result.efficiency)

    small = NativeHPL(256, nb=64).run(numeric=True)  # really solves Ax=b
    assert small.passed

Or declaratively, through the canonical :class:`~repro.spec.RunSpec`
(the path the CLI, campaigns and auto-tuners share)::

    from repro import RunSpec, api

    result = api.run(RunSpec(kind="hybrid", n=84_000))
    print(result.tflops, result.to_dict()["spec_hash"])
"""

from repro import api
from repro.blas import dgemm, sgemm, gemm
from repro.campaign import CampaignSpec, run_campaign, successive_halving
from repro.machine.profiles import MACHINE_PROFILES, MachineProfile, machine_profile
from repro.spec import RunSpec
from repro.hpl import NativeHPL, HPLResult, hpl_matrix, hpl_residual
from repro.hybrid import HybridHPL, HybridResult, OffloadDGEMM, NodeConfig, Lookahead
from repro.cluster import (
    DistributedHPL,
    DistributedResult,
    NativeClusterHPL,
    NativeClusterResult,
)
from repro.lu import DynamicScheduler, StaticLookaheadScheduler, blocked_lu, lu_solve
from repro.machine import KNC, SNB
from repro.obs import MetricsRegistry, RunResult
from repro.resilience import (
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    RankCrashError,
    RetryPolicy,
)
from repro.sim import TraceRecorder

__version__ = "1.0.0"

__all__ = [
    "api",
    "RunSpec",
    "CampaignSpec",
    "run_campaign",
    "successive_halving",
    "MachineProfile",
    "MACHINE_PROFILES",
    "machine_profile",
    "dgemm",
    "sgemm",
    "gemm",
    "NativeHPL",
    "HPLResult",
    "hpl_matrix",
    "hpl_residual",
    "HybridHPL",
    "HybridResult",
    "OffloadDGEMM",
    "NodeConfig",
    "Lookahead",
    "DistributedHPL",
    "DistributedResult",
    "NativeClusterHPL",
    "NativeClusterResult",
    "DynamicScheduler",
    "StaticLookaheadScheduler",
    "blocked_lu",
    "lu_solve",
    "KNC",
    "SNB",
    "RunResult",
    "MetricsRegistry",
    "CheckpointStore",
    "FaultInjector",
    "FaultPlan",
    "RankCrashError",
    "RetryPolicy",
    "TraceRecorder",
    "__version__",
]
