"""The single programmatic entry point: ``repro.api.run(spec)``.

Every way of launching a run converges here — the CLI subcommands,
``HPL.dat`` cross-products, the auto-tuners and campaign workers all
build a :class:`~repro.spec.RunSpec` and call :func:`run`. In return,
every :class:`~repro.obs.result.RunResult` that leaves this function
carries the spec it was produced from (and therefore its canonical
hash) in its ``to_dict`` / ``to_json`` exports, which is what lets
campaigns deduplicate, cache and resume by configuration identity.

Dispatch is by ``spec.kind``:

``native``
    :class:`~repro.hpl.driver.NativeHPL` — the timing model, or the
    real factorization + solve + residual check with ``numeric``;
``hybrid``
    :class:`~repro.hybrid.driver.HybridHPL` (timing model) or
    :func:`~repro.hybrid.functional.run_hybrid_numeric` (``numeric``);
``distributed``
    :class:`~repro.cluster.hpl_mpi.DistributedHPL` — always a real
    solve on the simulated MPI world, including the resilience knobs.
"""

from __future__ import annotations

from repro.obs.result import RunResult
from repro.spec import RunSpec


def _precision_kwargs(s: RunSpec) -> dict:
    """The dtype/MxP knobs every numeric driver accepts. ``refine_*``
    are normalized to concrete values exactly when ``mxp`` is set."""
    kw = {"dtype": s.dtype, "mxp": s.mxp}
    if s.mxp:
        kw["refine_tol"] = s.refine_tol
        kw["refine_max_iters"] = s.refine_max_iters
    return kw


def _run_native(s: RunSpec) -> RunResult:
    from repro.hpl.driver import NativeHPL

    return NativeHPL(
        s.n,
        nb=s.nb,
        scheduler=s.scheduler,
        workers=s.workers,
        executor=s.executor,
        pack_cache=s.pack_cache,
        buffer_pool=s.buffer_pool,
        alloc_profile=s.alloc_profile,
        **_precision_kwargs(s),
    ).run(numeric=s.numeric, seed=s.seed)


def _run_hybrid(s: RunSpec) -> RunResult:
    if s.numeric:
        from repro.hybrid.functional import run_hybrid_numeric

        return run_hybrid_numeric(
            s.n,
            nb=s.nb,
            cards=s.cards,
            workers=s.workers,
            executor=s.executor,
            pack_cache=s.pack_cache,
            buffer_pool=s.buffer_pool,
            alloc_profile=s.alloc_profile,
            seed=s.seed,
            **_precision_kwargs(s),
        )
    from repro.hybrid.driver import HybridHPL, NodeConfig

    return HybridHPL(
        s.n,
        nb=s.nb,
        node=NodeConfig(cards=s.cards, host_mem_bytes=int(s.mem_gb * 1024**3)),
        p=s.p,
        q=s.q,
        lookahead=s.lookahead,
        dtype=s.dtype,
    ).run()


def _run_distributed(s: RunSpec) -> RunResult:
    from repro.cluster.hpl_mpi import DistributedHPL

    retry = None
    if s.retry_max is not None or s.comm_timeout is not None:
        from repro.resilience import RetryPolicy

        retry_kwargs = {}
        if s.comm_timeout is not None:
            retry_kwargs["comm_timeout_s"] = s.comm_timeout
        if s.retry_max is not None:
            retry_kwargs["max_retries"] = s.retry_max
        retry = RetryPolicy(**retry_kwargs)
    return DistributedHPL(
        s.n,
        s.nb,
        s.p,
        s.q,
        seed=s.seed,
        bcast_algo=s.bcast_algo,
        lookahead=s.lookahead == "on",
        chunk_kb=s.chunk_kb,
        workers=s.workers,
        executor=s.executor,
        pack_cache=s.pack_cache,
        buffer_pool=s.buffer_pool,
        alloc_profile=s.alloc_profile,
        fault_plan=s.fault_plan,
        checkpoint_every=s.checkpoint_every,
        retry=retry,
        regrid=s.regrid or None,
        on_rank_death=s.on_rank_death,
        **_precision_kwargs(s),
    ).run()


_DISPATCH = {
    "native": _run_native,
    "hybrid": _run_hybrid,
    "distributed": _run_distributed,
}


def run(spec: RunSpec) -> RunResult:
    """Execute ``spec`` and return its result, spec attached.

    The spec is normalized first (kind defaults and machine profiles
    resolved), so the attached ``result.spec`` — and the ``spec`` /
    ``spec_hash`` blocks of the JSON export — always describe the run
    explicitly and hash canonically.
    """
    if not isinstance(spec, RunSpec):
        raise TypeError(f"run() takes a RunSpec, got {type(spec).__name__}")
    s = spec.normalized()
    result = _DISPATCH[s.kind](s)
    result.spec = s
    return result


def run_to_artifact(spec) -> dict:
    """Execute a spec (or spec dict) into a schema-tagged artifact.

    The artifact form (:data:`repro.service.cache.SCHEMA`) is the
    currency of everything that persists or serves runs — campaign
    ``runs/<hash>.json`` files, the service's result cache, the NDJSON
    protocol. This function never raises: a failing run (including an
    invalid spec dict) becomes a ``status: "error"`` artifact carrying
    the traceback, so pool workers always hand back a document.
    """
    import time
    import traceback

    from repro.service.cache import SCHEMA, failure_artifact, ok_artifact

    t0 = time.perf_counter()
    try:
        s = spec if isinstance(spec, RunSpec) else RunSpec.from_dict(spec)
    except Exception:
        # The dict never became a RunSpec, so there is no canonical
        # identity to key the artifact by — callers must not store it.
        return {
            "schema": SCHEMA,
            "status": "error",
            "spec": dict(spec) if isinstance(spec, dict) else repr(spec),
            "spec_hash": None,
            "elapsed_s": time.perf_counter() - t0,
            "error": traceback.format_exc(),
        }
    try:
        result = run(s)
        return ok_artifact(s, result.to_dict(), time.perf_counter() - t0)
    except Exception:
        return failure_artifact(s, "error", traceback.format_exc(),
                                elapsed_s=time.perf_counter() - t0)


def run_cached(spec: RunSpec, cache) -> dict:
    """Serve ``spec`` from a result cache, executing only on a miss.

    The synchronous cache hook under the benchmark service's hot path
    (the asyncio layer adds single-flight deduplication on top): look
    the canonical hash up in ``cache``
    (:class:`repro.service.cache.ResultCache`), execute via
    :func:`run_to_artifact` on a miss and store the artifact. The
    returned document carries ``cached: True`` when it was served
    without executing — provenance for clients; the flag is never
    persisted, so cached and fresh artifacts stay byte-identical on
    disk.
    """
    if not isinstance(spec, RunSpec):
        spec = RunSpec.from_dict(spec)
    digest = spec.canonical_hash()
    hit = cache.get(digest)
    if hit is not None:
        hit["cached"] = True
        return hit
    artifact = run_to_artifact(spec)
    cache.put(artifact)
    artifact = dict(artifact)
    artifact["cached"] = False
    return artifact
