"""The redistribution engine: execute a relayout plan over a fresh world.

:func:`redistribute` is the bridge between two process grids: it takes
a consistent checkpoint cut written on ``P x Q`` (one
:class:`~repro.resilience.CheckpointStore` blob per old rank at one
cursor), spins up a simulated MPI world big enough for both layouts,
and rewrites the cut so the same cursor restores on ``P' x Q'`` —
after which the ordinary rollback path of
:class:`~repro.cluster.hpl_mpi.DistributedHPL` resumes the
factorization on the new grid, bitwise identically.

The SPMD protocol, per rank of the joint world:

1. ranks that exist in the *old* layout load their own blob (its
   recorded :class:`~repro.resilience.LayoutHeader` must match the
   plan's source layout — a stale or foreign store raises
   :class:`~repro.resilience.CheckpointLayoutError` before any traffic),
   post one ``irecv`` per sending peer, then ``isend`` one packed
   message per receiving peer: the moving blocks of
   :func:`~repro.elastic.plan.plan_relayout`'s transfer matrix, in
   deterministic ``(bi, bj)`` order, staged through the communicator's
   :class:`~repro.blas.buffers.BufferPool` chunking;
2. ranks that exist in the *new* layout assemble their new ``a_loc``
   from rank-local stay blocks plus the received messages;
3. the scalar restart state replicates: rank 0 broadcasts the
   accumulated pivots and epoch; for a look-ahead cut, an old
   owner-column rank broadcasts the in-flight panel's ``ipiv`` and
   every *new* owner-column rank reconstructs its panel slice from the
   redistributed tiles (the factored panel already lives in ``a_loc``,
   so only the pivot vector crosses the wire);
4. every new rank saves its blob back at the same cursor under the new
   layout header.

Blob keys are per-rank, and each rank only ever reads its *own* old
blob and writes its *own* new one, so the in-place rewrite needs no
cross-rank ordering. Old-only ranks (a shrink) send their blocks and
exit; their stale blobs are simply never part of a
``latest_complete(new_world_size)`` cut again.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.comm import Comm, DEFAULT_CHUNK_BYTES, World
from repro.cluster.grid import BlockCyclic, ProcessGrid
from repro.elastic.plan import RelayoutPlan
from repro.resilience.checkpoint import CheckpointLayoutError, CheckpointStore

#: Tag base for redistribution traffic: one packed message per (src,
#: dst) peer pair, tagged by source so posts can never cross-match.
_REDIST_TAG = 9_000_000


def _block_slice(bc: BlockCyclic, bi: int, bj: int) -> Tuple[slice, slice]:
    """Local storage slices of block (bi, bj) on its owner under ``bc``."""
    nb = bc.nb
    r0 = (bi // bc.grid.p) * nb
    c0 = (bj // bc.grid.q) * nb
    rows = min(nb, bc.n - bi * nb)
    cols = min(nb, bc.n - bj * nb)
    return slice(r0, r0 + rows), slice(c0, c0 + cols)


def _rank_plan(plan: RelayoutPlan, rank: int):
    """This rank's slice of the plan: stays, sends-by-peer, recvs-by-peer.

    Block lists keep the plan's deterministic ``(bi, bj)`` order, which
    is the implicit wire format — sender and receiver enumerate the
    same transfer matrix, so messages carry bare arrays, no indices.
    """
    stays: List = []
    sends: Dict[int, List] = {}
    recvs: Dict[int, List] = {}
    for t in plan.transfers:
        if not t.moves:
            if t.src == rank:
                stays.append(t)
            continue
        if t.src == rank:
            sends.setdefault(t.dst, []).append(t)
        if t.dst == rank:
            recvs.setdefault(t.src, []).append(t)
    return stays, sends, recvs


def _reconstruct_panel_state(
    bc: BlockCyclic, a_loc: np.ndarray, rows: np.ndarray,
    cols: np.ndarray, cursor: int, panel_ipiv: np.ndarray,
):
    """Rebuild a look-ahead owner-column rank's in-flight panel state.

    At a look-ahead cut the stage-``cursor`` panel is already factored
    and written back into the tiles, so ``(g_rows, block)`` is a pure
    slice of the redistributed ``a_loc`` — bitwise what
    ``_factor_panel`` returned on the old grid — and only ``ipiv``
    travels.
    """
    k0 = cursor * bc.nb
    kw = min(bc.nb, bc.n - k0)
    below = rows >= k0
    my_panel_cols = np.flatnonzero((cols >= k0) & (cols < k0 + kw))
    g_rows = rows[below]
    block = a_loc[np.ix_(np.flatnonzero(below), my_panel_cols)].copy()
    return g_rows, block, np.asarray(panel_ipiv)


def _redistribute_rank(
    comm: Comm,
    store: CheckpointStore,
    plan: RelayoutPlan,
    cursor: int,
    chunk_bytes: int,
) -> int:
    """The SPMD body: one rank's share of the relayout. Returns the
    bytes this rank put on the wire."""
    rank = comm.rank
    old, new = plan.old, plan.new
    old_size = old.p * old.q
    new_size = new.p * new.q
    old_grid = ProcessGrid(old.p, old.q)
    new_grid = ProcessGrid(new.p, new.q)
    old_bc = BlockCyclic(old.n, old.nb, old_grid)
    new_bc = BlockCyclic(new.n, new.nb, new_grid)
    stays, sends, recvs = _rank_plan(plan, rank)

    old_state = None
    if rank < old_size:
        old_state = store.load(rank, cursor, expect_layout=old)
        old_a = np.asarray(old_state["a_loc"])

    # Receives first (lazy requests: nothing blocks until wait).
    recv_reqs = {
        src: comm.irecv(src, tag=_REDIST_TAG + src) for src in sorted(recvs)
    }
    # One packed message per destination peer, plan order.
    send_reqs = []
    sent_bytes = 0
    for dst in sorted(sends):
        blocks = [
            old_a[_block_slice(old_bc, t.bi, t.bj)] for t in sends[dst]
        ]
        sent_bytes += sum(b.nbytes for b in blocks)
        send_reqs.append(
            comm.isend(blocks, dst, tag=_REDIST_TAG + rank,
                       chunk_bytes=chunk_bytes, op="redistribute")
        )

    if rank >= new_size:
        # Old-only rank (shrink): its blocks are on the wire; done.
        comm.waitall(send_reqs)
        return sent_bytes

    my_row, my_col = new_grid.coords(rank)
    rows = new_bc.local_rows(my_row)
    cols = new_bc.local_cols(my_col)
    new_a = np.empty((rows.size, cols.size), dtype=np.dtype(new.dtype))
    for t in stays:
        new_a[_block_slice(new_bc, t.bi, t.bj)] = (
            old_a[_block_slice(old_bc, t.bi, t.bj)]
        )
    for src in sorted(recvs):
        blocks = recv_reqs[src].wait()
        for t, block in zip(recvs[src], blocks):
            new_a[_block_slice(new_bc, t.bi, t.bj)] = block

    # Replicated restart state: pivots and epoch from rank 0 (present
    # in every layout), the in-flight panel pivots from an old
    # owner-column rank (look-ahead cuts save them there).
    meta = None
    if rank == 0:
        meta = (
            [np.asarray(p) for p in old_state["pivots"]],
            int(old_state["epoch"]),
        )
    pivots, epoch = comm.bcast(meta, root=0, ranks=list(range(new_size)))
    panel_src = old_grid.rank_of(0, cursor % old.q)
    panel_ipiv = None
    if rank == panel_src:
        panel_ipiv = (
            np.asarray(old_state["panel_ipiv"])
            if "panel_ipiv" in old_state else None
        )
    if panel_src < new_size:
        panel_ipiv = comm.bcast(
            panel_ipiv, root=panel_src, ranks=list(range(new_size))
        )
    else:
        # The source rank is leaving the world; it pushes to rank 0,
        # which broadcasts among the survivors.
        if rank == panel_src:
            comm.send(panel_ipiv, 0, tag=_REDIST_TAG - 1)
        if rank == 0:
            panel_ipiv = comm.recv(panel_src, tag=_REDIST_TAG - 1)
        panel_ipiv = comm.bcast(
            panel_ipiv, root=0, ranks=list(range(new_size))
        )

    state = {
        "epoch": epoch,
        "cursor": cursor,
        "a_loc": new_a,
        "pivots": pivots,
    }
    if panel_ipiv is not None and my_col == cursor % new.q:
        g_rows, block, ipiv = _reconstruct_panel_state(
            new_bc, new_a, rows, cols, cursor, panel_ipiv
        )
        state["panel_g_rows"] = g_rows
        state["panel_block"] = block
        state["panel_ipiv"] = ipiv
    comm.waitall(send_reqs)
    store.save(rank, cursor, state, layout=new)
    return sent_bytes


def redistribute(
    store: CheckpointStore,
    plan: RelayoutPlan,
    cursor: int,
    chunk_bytes: Optional[int] = None,
    buffer_pool: bool = True,
) -> Dict[str, float]:
    """Execute ``plan`` over the cut at ``cursor``, rewriting the store.

    Requires every old rank's blob at ``cursor`` (a consistent cut).
    On return, every *new* rank has a blob at the same cursor under the
    new layout header, and a :class:`~repro.cluster.hpl_mpi.DistributedHPL`
    configured for the new grid resumes from it bitwise-identically.
    Returns accounting: moved bytes (must equal the plan's), the
    executing world size, and the measured wall time.
    """
    old_size = plan.old.p * plan.old.q
    missing = [r for r in range(old_size) if cursor not in store.cursors(r)]
    if missing:
        raise CheckpointLayoutError(
            f"cut at cursor {cursor} is incomplete: no blob for old "
            f"rank(s) {missing} (world of {old_size})"
        )
    chunk = DEFAULT_CHUNK_BYTES if chunk_bytes is None else int(chunk_bytes)
    t0 = time.perf_counter()
    world = World(plan.world_size, buffer_pool=buffer_pool)
    try:
        sent = world.run(_redistribute_rank, store, plan, cursor, chunk)
    finally:
        world.close()
    return {
        "moved_bytes": float(sum(sent)),
        "world_size": float(plan.world_size),
        "wall_s": time.perf_counter() - t0,
    }
