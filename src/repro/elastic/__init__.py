"""Elastic world: mid-run process-grid reconfiguration.

The paper's multi-node HPL pins its ``P x Q`` grid for the lifetime of
a run; this package removes that constraint. Built on the resilience
subsystem's consistent-cut checkpoints, it lets a distributed
factorization *grow or shrink its cluster between panels* — losing no
work and no determinism — in three layers:

* :mod:`repro.elastic.schedule` — the regrid schedule DSL
  (``"panel=K:PxQ"``) and its segmentation of a run into
  one-world-per-grid spans;
* :mod:`repro.elastic.plan` — the relayout planner: the exact block
  transfer matrix between two block-cyclic layouts, per-rank byte
  totals, the lower-bound moved-bytes floor, and a predicted
  redistribution time under the machine model's network;
* :mod:`repro.elastic.redistribute` — the engine that executes a plan
  over a fresh simulated MPI world, rewriting a checkpoint cut from
  the old layout to the new one.

:class:`~repro.cluster.hpl_mpi.DistributedHPL` drives them via its
``regrid=...`` schedule (CLI ``--regrid``, spec field ``regrid``) and
its ``on_rank_death="shrink"`` recovery mode, which redistributes the
newest complete cut onto the surviving ranks instead of restarting on
the lost geometry. The invariant everything here is tested against:
a reshaped run produces **bitwise-identical** ``lu`` / ``ipiv`` / ``x``
to an uninterrupted run on the final grid.
"""

from repro.elastic.plan import (
    BlockTransfer,
    RelayoutPlan,
    plan_relayout,
    predict_time_s,
)
from repro.elastic.redistribute import redistribute
from repro.elastic.schedule import (
    RegridPoint,
    parse_regrid,
    parse_schedule,
    segments,
    survivor_grid,
)

__all__ = [
    "BlockTransfer",
    "RelayoutPlan",
    "plan_relayout",
    "predict_time_s",
    "redistribute",
    "RegridPoint",
    "parse_regrid",
    "parse_schedule",
    "segments",
    "survivor_grid",
]
