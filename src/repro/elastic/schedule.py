"""The regrid schedule: when (and to what grid) a run reshapes.

A schedule is a sequence of :class:`RegridPoint` cuts — "at panel
``k``, continue on ``P'xQ'``" — written on the CLI and in
:class:`~repro.spec.RunSpec` documents as repeatable
``"panel=K:PxQ"`` strings. :func:`parse_regrid` turns one string into
a point (with a one-line error for anything malformed, which is what
lets the CLI exit 2 cleanly), and :func:`parse_schedule` validates a
whole sequence: panels strictly increasing, every grid distinct from
its predecessor.

:func:`segments` then turns a schedule into the list of
``(grid, k_start, k_stop)`` spans the elastic
:class:`~repro.cluster.hpl_mpi.DistributedHPL` driver executes — one
simulated MPI world per span, a block-cyclic redistribution between
consecutive spans.

This module is deliberately dependency-light (no communicator, no
drivers) so :mod:`repro.spec` can validate ``regrid`` fields without
importing the cluster stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cluster.grid import ProcessGrid


@dataclass(frozen=True)
class RegridPoint:
    """One cut of a regrid schedule: at panel ``panel``, move to ``p x q``."""

    panel: int
    p: int
    q: int

    def __post_init__(self):
        if self.panel < 1:
            raise ValueError("regrid panel must be >= 1 (stage 0 has no cut)")
        if self.p < 1 or self.q < 1:
            raise ValueError("regrid grid dimensions must be positive")

    @property
    def grid(self) -> ProcessGrid:
        """The target grid of this cut."""
        return ProcessGrid(self.p, self.q)

    def __str__(self) -> str:
        return f"panel={self.panel}:{self.p}x{self.q}"


def parse_regrid(text: str) -> RegridPoint:
    """Parse one ``"panel=K:PxQ"`` schedule entry.

    Raises ``ValueError`` with a single-line message on any malformed
    input — the CLI maps that straight to an exit-2 argparse error.
    """
    if not isinstance(text, str):
        raise ValueError(f"regrid entry must be a string, got {type(text).__name__}")
    head, sep, grid_text = text.strip().partition(":")
    key, eq, panel_text = head.partition("=")
    if not sep or key.strip().lower() != "panel" or not eq:
        raise ValueError(
            f"regrid entry must look like 'panel=K:PxQ', got {text!r}"
        )
    try:
        panel = int(panel_text)
    except ValueError:
        raise ValueError(f"regrid panel must be an integer, got {panel_text!r}") from None
    try:
        p_text, q_text = grid_text.strip().lower().split("x")
        p, q = int(p_text), int(q_text)
    except ValueError:
        raise ValueError(
            f"regrid grid must look like '2x4', got {grid_text!r}"
        ) from None
    try:
        return RegridPoint(panel=panel, p=p, q=q)
    except ValueError as exc:
        raise ValueError(f"bad regrid entry {text!r}: {exc}") from None


def parse_schedule(entries: Sequence) -> Tuple[RegridPoint, ...]:
    """Parse and validate a whole regrid schedule.

    Accepts ``"panel=K:PxQ"`` strings and ready-made
    :class:`RegridPoint` objects. The schedule comes back sorted by
    panel; duplicate panels and consecutive identical grids are
    rejected (a cut that changes nothing is a typo, not a no-op).
    """
    points: List[RegridPoint] = []
    for entry in entries:
        points.append(entry if isinstance(entry, RegridPoint) else parse_regrid(entry))
    points.sort(key=lambda pt: pt.panel)
    for prev, here in zip(points, points[1:]):
        if prev.panel == here.panel:
            raise ValueError(f"duplicate regrid panel {here.panel}")
        if (prev.p, prev.q) == (here.p, here.q):
            raise ValueError(
                f"regrid at panel {here.panel} repeats grid {here.p}x{here.q}"
            )
    return tuple(points)


def survivor_grid(size: int) -> ProcessGrid:
    """The most-square ``P x Q`` grid over ``size`` ranks (``P <= Q``).

    Shrink-to-survivors recovery picks its replacement geometry with
    this: deterministic, and as close to square as the survivor count
    divides (a prime count degrades to ``1 x size``).
    """
    if size < 1:
        raise ValueError("size must be positive")
    p = max(d for d in range(1, int(size**0.5) + 1) if size % d == 0)
    return ProcessGrid(p, size // p)


def segments(
    n_blocks: int, initial: ProcessGrid, schedule: Sequence[RegridPoint]
) -> List[Tuple[ProcessGrid, int, int]]:
    """The ``(grid, k_start, k_stop)`` spans a schedule cuts a run into.

    ``k_stop`` is exclusive; the final span always ends at
    ``n_blocks``. Cut panels must fall strictly inside ``(0,
    n_blocks)`` — a cut at or past the last panel would reshape a
    finished factorization.
    """
    points = parse_schedule(schedule)
    for pt in points:
        if pt.panel >= n_blocks:
            raise ValueError(
                f"regrid panel {pt.panel} is out of range for a run with "
                f"{n_blocks} panel stages"
            )
    if points and (points[0].p, points[0].q) == (initial.p, initial.q):
        raise ValueError(
            f"regrid at panel {points[0].panel} repeats the initial grid "
            f"{initial.p}x{initial.q}"
        )
    spans: List[Tuple[ProcessGrid, int, int]] = []
    grid, start = initial, 0
    for pt in points:
        spans.append((grid, start, pt.panel))
        grid, start = pt.grid, pt.panel
    spans.append((grid, start, n_blocks))
    return spans
