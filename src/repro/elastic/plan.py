"""The relayout planner: exact block transfers between two grids.

Given a block-cyclic layout of an ``n x n`` matrix (``nb x nb`` blocks)
on a ``P x Q`` grid and a target ``P' x Q'`` grid,
:func:`plan_relayout` computes, from the same distribution algebra the
factorization itself uses (:class:`~repro.cluster.grid.BlockCyclic`),
where every block (I, J) lives before and after: block (I, J) sits on
old rank ``rank_of(I mod P, J mod Q)`` and must end up on new rank
``rank_of(I mod P', J mod Q')``. The resulting :class:`RelayoutPlan`
is the complete transfer matrix — which blocks move between which
ranks, per-rank send/recv byte totals, and the bytes that stay put as
local copies — and is what both the dry-run CLI (``repro elastic
plan``) and the redistribution engine
(:func:`repro.elastic.redistribute.redistribute`) execute from.

``lower_bound_bytes`` is the information-theoretic floor: a block
whose owner rank differs between the layouts must cross the wire at
least once, so no redistribution protocol can move fewer bytes. The
engine's ``moved_bytes`` equals the floor (it ships exactly the
owner-changed blocks, once), which the benchmark gates as
``redistribution_efficiency = lower_bound / moved``.

:func:`predict_time_s` prices a plan against the machine model's
network parameters (:class:`repro.hybrid.driver.Network`): every rank
serialises its own sends and its own receives, one message per peer
pair, so the prediction is the bottleneck rank's wire time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cluster.grid import BlockCyclic, ProcessGrid
from repro.resilience.checkpoint import LayoutHeader


@dataclass(frozen=True)
class BlockTransfer:
    """One ``nb x nb`` (edge-clipped) block's place in a relayout."""

    bi: int
    bj: int
    src: int
    dst: int
    nbytes: int

    @property
    def moves(self) -> bool:
        """True when the block crosses ranks (not a local copy)."""
        return self.src != self.dst


@dataclass(frozen=True)
class RelayoutPlan:
    """The exact transfer matrix of one ``P x Q -> P' x Q'`` relayout.

    ``transfers`` lists *every* block of the matrix exactly once — the
    permutation property the hypothesis suite checks — with
    ``moves=False`` entries staying as rank-local copies. Byte
    accounting (``send_bytes`` / ``recv_bytes`` keyed by rank,
    ``transfer_matrix`` keyed by ``(src, dst)``) covers only the moving
    blocks, which is what the wire actually carries.
    """

    old: LayoutHeader
    new: LayoutHeader
    transfers: Tuple[BlockTransfer, ...]
    send_bytes: Dict[int, int] = field(compare=False)
    recv_bytes: Dict[int, int] = field(compare=False)
    transfer_matrix: Dict[Tuple[int, int], int] = field(compare=False)
    total_bytes: int
    moved_bytes: int
    stay_bytes: int

    @property
    def lower_bound_bytes(self) -> int:
        """The fewest bytes any protocol could move between these
        layouts: every owner-changed block must cross at least once."""
        return self.moved_bytes

    @property
    def efficiency(self) -> float:
        """``lower_bound_bytes / moved_bytes`` (1.0 when nothing moves)."""
        if self.moved_bytes == 0:
            return 1.0
        return self.lower_bound_bytes / self.moved_bytes

    @property
    def world_size(self) -> int:
        """Ranks the executing world needs: both layouts must fit."""
        return max(self.old.p * self.old.q, self.new.p * self.new.q)

    def describe(self) -> str:
        """One human line: geometry, moved volume, peer-pair count."""
        return (
            f"relayout {self.old.p}x{self.old.q} -> {self.new.p}x{self.new.q} "
            f"(n={self.new.n} nb={self.new.nb} {self.new.dtype}): "
            f"{self.moved_bytes / 1e6:.3f} MB over "
            f"{len(self.transfer_matrix)} rank pairs, "
            f"{self.stay_bytes / 1e6:.3f} MB stay local"
        )


def plan_relayout(
    n: int,
    nb: int,
    old_grid: ProcessGrid,
    new_grid: ProcessGrid,
    dtype: str = "float64",
) -> RelayoutPlan:
    """Compute the block transfer matrix from ``old_grid`` to ``new_grid``.

    Pure index algebra — no matrix data, no communicator — so a plan
    for any geometry is cheap enough to print from the CLI before
    committing to the redistribution.
    """
    old_bc = BlockCyclic(n, nb, old_grid)
    itemsize = np.dtype(dtype).itemsize
    n_blocks = old_bc.n_blocks
    transfers = []
    send_bytes: Dict[int, int] = {}
    recv_bytes: Dict[int, int] = {}
    matrix: Dict[Tuple[int, int], int] = {}
    total = moved = 0
    for bi in range(n_blocks):
        block_rows = min(nb, n - bi * nb)
        for bj in range(n_blocks):
            block_cols = min(nb, n - bj * nb)
            nbytes = block_rows * block_cols * itemsize
            src = old_grid.rank_of(bi % old_grid.p, bj % old_grid.q)
            dst = new_grid.rank_of(bi % new_grid.p, bj % new_grid.q)
            transfers.append(BlockTransfer(bi, bj, src, dst, nbytes))
            total += nbytes
            if src != dst:
                moved += nbytes
                send_bytes[src] = send_bytes.get(src, 0) + nbytes
                recv_bytes[dst] = recv_bytes.get(dst, 0) + nbytes
                matrix[(src, dst)] = matrix.get((src, dst), 0) + nbytes
    return RelayoutPlan(
        old=LayoutHeader(p=old_grid.p, q=old_grid.q, nb=nb, n=n, dtype=dtype),
        new=LayoutHeader(p=new_grid.p, q=new_grid.q, nb=nb, n=n, dtype=dtype),
        transfers=tuple(transfers),
        send_bytes=send_bytes,
        recv_bytes=recv_bytes,
        transfer_matrix=matrix,
        total_bytes=total,
        moved_bytes=moved,
        stay_bytes=total - moved,
    )


def predict_time_s(plan: RelayoutPlan, network: Optional[object] = None) -> float:
    """Predicted redistribution wall time under the network model.

    Each rank serialises its sends (one packed message per destination)
    and, independently, its receives; ranks proceed in parallel, so the
    wall time is the slowest rank's wire time. ``network`` defaults to
    the machine model's FDR InfiniBand
    (:class:`repro.hybrid.driver.Network`).
    """
    if network is None:
        from repro.hybrid.driver import Network

        network = Network()
    per_rank: Dict[int, float] = {}
    for (src, _dst), nbytes in plan.transfer_matrix.items():
        per_rank[src] = per_rank.get(src, 0.0) + network.transfer_s(nbytes)
    for (_src, dst), nbytes in plan.transfer_matrix.items():
        key = -1 - dst  # receive ledger, disjoint from the send keys
        per_rank[key] = per_rank.get(key, 0.0) + network.transfer_s(nbytes)
    return max(per_rank.values(), default=0.0)
