"""Offload DGEMM (Section V-B, Figures 10 and 11).

The engine simulates — and optionally executes — the paper's offload
pipeline:

1. designated host cores *pack* the next input tiles into the Knights
   Corner-friendly format (a bandwidth-bound copy, Step 1-2 of
   Figure 10b) and DMA them over PCIe (Step 3);
2. the card polls its request queue, computes the tile's DGEMM as k=300
   outer products on its 60 compute cores (one core is the queue
   handler), and DMAs the result back (Steps 5-9);
3. the host accumulates returned tiles into C (Step 10);
4. optionally, the host's remaining cores join the computation by
   *work-stealing* tiles from the opposite corner of the matrix.

Input and output transfers share each card's PCIe link, so the paper's
Kt bound (compute/transfer > 1) emerges from the simulation: with Kt
too small the card starves on the link. Only the first tile's pack +
upload and the last tile's download are inherently exposed — the 2.5%
loss the paper cites; one queue-handling core costs another 60/61.

With two cards the matrix columns are split in half, one half per card
(each card "is only solving half the problem size"), so fewer tiles
amortise each card's exposed edges — Figure 11b's faster degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.blas.buffers import BufferPool, as_buffer_pool, matmul_into
from repro.blas.gemm import gemm as blas_gemm
from repro.blas.workspace import PackCache
from repro.hybrid.tile_select import HYBRID_KT, KERNEL_K, best_tile_size
from repro.parallel import as_executor
from repro.hybrid.tiles import StealState, Tile, TileGrid
from repro.machine.calibration import Calibration, default_calibration
from repro.machine.config import KNC, SNB
from repro.machine.gemm_model import gemm_efficiency, snb_dgemm_efficiency
from repro.machine.memory import MemoryModel
from repro.machine.pcie import PCIeLink
from repro.obs import MetricsRegistry, RunResult
from repro.sim import Lock, Simulator, Store, TraceRecorder


@dataclass
class OffloadResult(RunResult):
    """Outcome of one offload DGEMM call."""

    m: int
    n: int
    kt: int
    cards: int
    time_s: float
    gflops: float
    efficiency: float  # w.r.t. the cards' aggregate full-61-core peak
    tiles_card: int
    tiles_host: int
    card_flops: float
    host_flops: float
    trace: TraceRecorder
    metrics: Optional[MetricsRegistry] = None

    kind = "offload"


class OffloadDGEMM:
    """One trailing-update offload: C (M x N) += A (M x Kt) @ B (Kt x N)."""

    def __init__(
        self,
        m: int,
        n: int,
        kt: int = HYBRID_KT,
        cards: int = 1,
        tile: Optional[tuple] = None,
        host_assist: bool = False,
        host_cores_reserved: int = 2,
        socket_interleave: bool = True,
        cal: Optional[Calibration] = None,
        link: Optional[PCIeLink] = None,
        pack_cache=None,
        executor=None,
        buffer_pool=None,
    ):
        if m < 1 or n < 1 or kt < 1:
            raise ValueError("matrix dimensions must be positive")
        if cards < 1:
            raise ValueError("need at least one card")
        self.m, self.n, self.kt, self.cards = m, n, kt, cards
        # Pack-once substrate for the numeric path: each resident A row
        # strip / B column strip is packed on first touch and reused by
        # every tile that shares it (the functional analogue of the
        # strips staying resident in the card's GDDR).
        if pack_cache is True:
            pack_cache = PackCache()
        elif pack_cache is False:
            pack_cache = None
        self.pack_cache = pack_cache
        # Scratch arena threaded into the card-side GEMMs and the host
        # path's product, so steady-state tiles allocate nothing.
        self.buffer_pool: Optional[BufferPool] = as_buffer_pool(buffer_pool)
        self.executor = as_executor(executor)
        self.cal = cal or default_calibration()
        self.link = link or PCIeLink()
        if tile is None:
            mt, nt, _ = best_tile_size(m, n, kt, cards)
        else:
            mt, nt = tile
        self.mt, self.nt = mt, nt
        self.host_assist = host_assist
        self.host_cores_reserved = host_cores_reserved
        # One column-half of the matrix per card (contiguous split).
        self.col_splits = self._split_columns(n, cards)
        self.grids = [
            TileGrid(m, hi - lo, min(mt, m), min(nt, hi - lo))
            for lo, hi in self.col_splits
        ]
        # Section V-B: matrix partitions are interleaved across the two
        # host sockets so concurrent copies/DMAs draw on both memory
        # controllers; without interleaving, packing sees one socket.
        self.socket_interleave = socket_interleave
        fraction = 0.6 if socket_interleave else 0.3
        self.host_mem = MemoryModel(SNB, available_fraction=fraction)

    @staticmethod
    def _split_columns(n: int, cards: int) -> List[tuple]:
        if cards > n:
            raise ValueError("more cards than matrix columns")
        base, extra = divmod(n, cards)
        splits, lo = [], 0
        for i in range(cards):
            hi = lo + base + (1 if i < extra else 0)
            splits.append((lo, hi))
            lo = hi
        return splits

    # -- durations ---------------------------------------------------------------
    def card_compute_s(self, tile: Tile) -> float:
        eff = gemm_efficiency(
            tile.m, tile.n, KERNEL_K, KNC, cores=KNC.compute_cores, cal=self.cal
        )
        rate = eff * KNC.peak_dp_gflops(KNC.compute_cores) * 1e9
        return tile.flops(self.kt) / rate

    def host_compute_s(self, tile: Tile) -> float:
        cores = max(1, SNB.cores - self.host_cores_reserved - 2 * self.cards)
        eff = snb_dgemm_efficiency(min(tile.m, tile.n), self.cal)
        rate = eff * SNB.peak_dp_gflops(cores) * 1e9
        return tile.flops(self.kt) / rate

    def tile_input_bytes(self, tile: Tile, shipped_rows: set, shipped_cols: set) -> int:
        """Bytes of *new* A/B strips this tile needs on the card: each
        Mt x Kt row strip of A and Kt x Nt column strip of B is shipped
        once and reused from GDDR for every later tile that touches it."""
        nbytes = 0
        if tile.r0 not in shipped_rows:
            nbytes += 8 * self.kt * tile.m
            shipped_rows.add(tile.r0)
        if tile.c0 not in shipped_cols:
            nbytes += 8 * self.kt * tile.n
            shipped_cols.add(tile.c0)
        return nbytes

    def pack_s(self, nbytes: int) -> float:
        """Copy-combined-with-pack of newly shipped strips (Step 1-2)."""
        return self.host_mem.copy_time_s(nbytes, sharers=self.cards)

    def accumulate_s(self, tile: Tile) -> float:
        """Read C + result, write C (Step 10)."""
        return self.host_mem.transfer_time_s(
            3 * tile.output_bytes(), sharers=self.cards
        )

    # -- the simulation ---------------------------------------------------------
    def run(
        self,
        a: Optional[np.ndarray] = None,
        b: Optional[np.ndarray] = None,
        c: Optional[np.ndarray] = None,
    ) -> OffloadResult:
        """Simulate the offload; with (a, b, c) supplied, also execute it
        numerically (c is updated in place)."""
        numeric = a is not None
        if numeric:
            a = np.asarray(a)
            b = np.asarray(b)
            if c is None:
                c = np.zeros((self.m, self.n), dtype=a.dtype)
            if a.shape != (self.m, self.kt) or b.shape != (self.kt, self.n):
                raise ValueError("operand shapes do not match the offload geometry")
            if c.shape != (self.m, self.n):
                raise ValueError("c has the wrong shape")

        sim = Simulator()
        trace = TraceRecorder()
        stats = {
            "card_tiles": 0,
            "host_tiles": 0,
            "card_flops": 0.0,
            "host_flops": 0.0,
            "pcie_bytes_in": 0,
            "pcie_bytes_out": 0,
        }
        steals = [StealState(g) for g in self.grids]
        links = [Lock(sim) for _ in range(self.cards)]

        def compute_tile_numeric(tile: Tile, col_lo: int, on_card: bool) -> None:
            rows = slice(tile.r0, tile.r1)
            cols = slice(col_lo + tile.c0, col_lo + tile.c1)
            if on_card:
                # The card path goes through the packed-format BLAS; with
                # a PackCache the strips shared between tiles pack once.
                blas_gemm(
                    a[rows, :],
                    b[:, cols],
                    c[rows, cols],
                    alpha=1.0,
                    beta=1.0,
                    k_block=KERNEL_K,
                    pack_cache=self.pack_cache,
                    a_key=("offload.a", tile.r0, tile.r1),
                    b_key=("offload.b", col_lo + tile.c0, col_lo + tile.c1),
                    executor=self.executor,
                    pool=self.buffer_pool,
                )
            elif self.buffer_pool is not None:
                target = c[rows, cols]
                with self.buffer_pool.rent(
                    target.shape, target.dtype, key="offload.host"
                ) as prod:
                    matmul_into(
                        self.buffer_pool, a[rows, :], b[:, cols], prod,
                        key="offload.host",
                    )
                    np.add(target, prod, out=target)
            else:
                c[rows, cols] += a[rows, :] @ b[:, cols]

        def transfer(link: Lock, nbytes: float, worker: str, kind: str):
            yield from link.acquire()
            t0 = sim.now
            yield self.link.transfer_time_s(nbytes)
            trace.record(worker, kind, t0, sim.now, nbytes=nbytes)
            link.release()
            stats["pcie_bytes_in" if kind == "dma_in" else "pcie_bytes_out"] += nbytes

        def packer(card: int):
            """Feed the card: steal -> pack new strips -> DMA-in -> ready."""
            ready = ready_queues[card]
            shipped_rows: set = set()
            shipped_cols: set = set()
            while True:
                tile = steals[card].steal_front()
                if tile is None:
                    ready.put(None)
                    return
                nbytes = self.tile_input_bytes(tile, shipped_rows, shipped_cols)
                if nbytes:
                    t0 = sim.now
                    yield self.pack_s(nbytes)
                    trace.record(f"host_pack{card}", "pack", t0, sim.now)
                    yield from transfer(
                        links[card], nbytes, f"pcie{card}", "dma_in"
                    )
                ready.put(tile)
                # Double buffering: at most 2 tiles in flight ahead of the
                # card, like the paper's request queue.
                while len(ready) >= 2:
                    yield credit_events[card][0]

        def card_worker(card: int):
            ready = ready_queues[card]
            while True:
                tile = yield from ready.get()
                _pulse_credit(card)
                if tile is None:
                    out_queues[card].put(None)
                    return
                t0 = sim.now
                yield self.card_compute_s(tile)
                trace.record(f"knc{card}", "dgemm", t0, sim.now)
                if numeric:
                    compute_tile_numeric(tile, self.col_splits[card][0], True)
                stats["card_tiles"] += 1
                stats["card_flops"] += tile.flops(self.kt)
                out_queues[card].put(tile)

        def out_drainer(card: int):
            """DMA the result tiles back; accumulation pipelines behind."""
            while True:
                tile = yield from out_queues[card].get()
                if tile is None:
                    acc_queues[card].put(None)
                    return
                yield from transfer(
                    links[card], tile.output_bytes(), f"pcie{card}", "dma_out"
                )
                acc_queues[card].put(tile)

        def accumulator(card: int):
            """Fold returned tiles into C on the host (Step 10), running
            concurrently with further DMA."""
            while True:
                tile = yield from acc_queues[card].get()
                if tile is None:
                    return
                t0 = sim.now
                yield self.accumulate_s(tile)
                trace.record(f"host_acc{card}", "accumulate", t0, sim.now)

        def host_worker():
            if not self.host_assist:
                return
            while True:
                # Steal from the back of the half with the most work left.
                card = max(range(self.cards), key=lambda i: steals[i].remaining)
                tile = steals[card].steal_back()
                if tile is None:
                    return
                t0 = sim.now
                yield self.host_compute_s(tile)
                trace.record("snb", "dgemm", t0, sim.now)
                if numeric:
                    compute_tile_numeric(tile, self.col_splits[card][0], False)
                stats["host_tiles"] += 1
                stats["host_flops"] += tile.flops(self.kt)

        # Credit events let the packer respect the depth-2 queue.
        credit_events = [[sim.event()] for _ in range(self.cards)]
        ready_queues = [Store(sim) for _ in range(self.cards)]
        out_queues = [Store(sim) for _ in range(self.cards)]
        acc_queues = [Store(sim) for _ in range(self.cards)]

        def _pulse_credit(card: int) -> None:
            old = credit_events[card][0]
            credit_events[card][0] = sim.event()
            old.succeed()

        for card in range(self.cards):
            sim.process(packer(card), name=f"packer{card}")
            sim.process(card_worker(card), name=f"knc{card}")
            sim.process(out_drainer(card), name=f"drainer{card}")
            sim.process(accumulator(card), name=f"accumulator{card}")
        sim.process(host_worker(), name="snb")
        time_s = sim.run()

        total_flops = 2.0 * self.m * self.n * self.kt
        gflops = total_flops / time_s / 1e9
        peak = self.cards * KNC.peak_dp_gflops()  # all 61 cores (Section V)
        metrics = MetricsRegistry()
        metrics.counter("offload.tiles_card").inc(stats["card_tiles"])
        metrics.counter("offload.tiles_stolen_host").inc(stats["host_tiles"])
        metrics.counter("offload.pcie_bytes_in").inc(stats["pcie_bytes_in"])
        metrics.counter("offload.pcie_bytes_out").inc(stats["pcie_bytes_out"])
        for card in range(self.cards):
            ready_queues[card].publish_metrics(metrics, f"offload.queue.card{card}")
            links[card].publish_metrics(metrics, f"offload.link.card{card}")
        sim.publish_metrics(metrics)
        if self.pack_cache is not None:
            self.pack_cache.publish(metrics)
        if self.buffer_pool is not None:
            self.buffer_pool.publish(metrics)
        if self.executor is not None:
            self.executor.publish(metrics)
        return OffloadResult(
            m=self.m,
            n=self.n,
            kt=self.kt,
            cards=self.cards,
            time_s=time_s,
            gflops=gflops,
            efficiency=gflops / peak,
            tiles_card=stats["card_tiles"],
            tiles_host=stats["host_tiles"],
            card_flops=stats["card_flops"],
            host_flops=stats["host_flops"],
            trace=trace,
            metrics=metrics,
        )
