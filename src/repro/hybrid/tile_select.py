"""Tile-size selection for offload DGEMM (Section V-B).

Two decisions from the paper:

* **Kt (block depth / HPL block size).** Hiding the PCIe transfer of an
  Mt x Nt output tile behind its computation requires
  ``Kt > 4 * P_dgemm / BW_pcie`` (~950 with P ~ 950 GFLOPS and the ~4
  GB/s effective PCIe rate); accounting for input-tile traffic and the
  kernel's preference for k = 300 multiples, the paper uses Kt = 1200.

* **Mt x Nt.** Large tiles raise per-tile DGEMM efficiency but expose
  more first/last-tile overhead (fewer tiles to amortise it); small
  tiles do the opposite. For each matrix size the best tile size is
  *pre-computed* from the model below and picked at run time.

:func:`offload_efficiency_model` is the analytic composition: kernel
efficiency at k = 300 x the 60/61 communication-core factor x the
first/last-tile exposure for the candidate grid. It reproduces the 85.4%
(single card) and 83% (dual card) peaks of Figure 11 and their
small-size degradation.
"""

from __future__ import annotations

from functools import lru_cache

from repro.hybrid.tiles import TileGrid
from repro.machine.calibration import Calibration, default_calibration
from repro.machine.config import KNC, SNB
from repro.machine.gemm_model import gemm_efficiency
from repro.machine.memory import MemoryModel
from repro.machine.pcie import PCIeLink

#: The paper's hybrid HPL block size.
HYBRID_KT = 1200

#: Inner kernel depth on the card (Table II's best DGEMM k).
KERNEL_K = 300

#: Candidate square-ish tile sizes considered by the pre-computation.
TILE_CANDIDATES = (2400, 3600, 4800, 7200, 9600, 12000, 14400)


def min_kt(dgemm_gflops: float = 950.0, link: PCIeLink | None = None) -> float:
    """The paper's lower bound on Kt (~950 for the paper's numbers)."""
    link = link or PCIeLink()
    return link.min_kt_to_hide_transfer(dgemm_gflops)


def offload_efficiency_model(
    m: int,
    n: int,
    mt: int,
    nt: int,
    kt: int = HYBRID_KT,
    cards: int = 1,
    cal: Calibration | None = None,
    link: PCIeLink | None = None,
) -> float:
    """Modelled offload-DGEMM efficiency w.r.t. the card's full peak.

    Composition: per-tile kernel efficiency (k = 300 outer products on 60
    compute cores) x 60/61 (one core drives the DMA queues) x the
    first/last-tile exposure of the steady-state transfer pipeline. With
    ``cards=2`` each card covers half the columns, halving the tiles that
    amortise its exposure — the faster small-size degradation of
    Figure 11b.
    """
    if cards < 1:
        raise ValueError("cards must be >= 1")
    cal = cal or default_calibration()
    link = link or PCIeLink()
    n_per_card = max(1, n // cards)
    grid = TileGrid(m, n_per_card, min(mt, m), min(nt, n_per_card))
    # Per-tile kernel efficiency on the card (k=300 sub-products).
    first = grid.tiles[0]
    kernel_eff = gemm_efficiency(
        first.m, first.n, KERNEL_K, KNC, cores=KNC.compute_cores, cal=cal
    )
    comm_core = KNC.compute_cores / KNC.cores  # 60/61: one core polls queues
    card_gflops = kernel_eff * KNC.peak_dp_gflops(KNC.compute_cores)
    # Steady-state link cap: sustaining the output stream limits the card
    # to Kt * BW / 4 GFLOPS (the paper's compute/transfer inequality
    # rearranged); below the Kt bound this, not the kernel, is the rate.
    link_cap_gflops = kt * link.effective_bw_gbs / 4.0
    card_gflops = min(card_gflops, link_cap_gflops)
    compute_s = grid.total_flops(kt) / cards / (card_gflops * 1e9)
    # Exposure: the first tile's input pack+transfer and the last tile's
    # output transfer cannot overlap anything.
    host_mem = MemoryModel(SNB, available_fraction=0.6)
    t_first = host_mem.copy_time_s(first.input_bytes(kt)) + link.transfer_time_s(
        first.input_bytes(kt)
    )
    last = grid.tiles[-1]
    t_last = link.transfer_time_s(last.output_bytes())
    exposure = (t_first + t_last) / (compute_s + t_first + t_last)
    sustained_eff = card_gflops / KNC.peak_dp_gflops(KNC.compute_cores)
    return sustained_eff * comm_core * (1.0 - exposure)


@lru_cache(maxsize=512)
def best_tile_size(
    m: int,
    n: int,
    kt: int = HYBRID_KT,
    cards: int = 1,
    link: PCIeLink | None = None,
) -> tuple:
    """Pre-compute the (Mt, Nt) maximising modelled efficiency — the
    run-time dynamic pick of Section V-B."""
    if m < 1 or n < 1:
        raise ValueError("matrix dimensions must be positive")
    best = None
    best_eff = -1.0
    for t in TILE_CANDIDATES:
        mt, nt = min(t, m), min(t, max(1, n // cards))
        eff = offload_efficiency_model(m, n, mt, nt, kt, cards, link=link)
        if eff > best_eff:
            best, best_eff = (mt, nt), eff
    return best + (best_eff,)
