"""Tile decomposition for offload DGEMM (Figure 10a, Section V-B).

The trailing-update output C (M x N) is carved into Mt x Nt tiles.
Knights Corner steals tiles from the upper-left corner forward in
column-major order; Sandy Bridge EP steals from the lower-right corner
backward. Two paper-specified refinements:

* **partial-tile merging** — if M or N is not a multiple of the tile
  size, the last complete tile and the trailing partial tile of each row
  or column are merged and processed together, so no undersized tile
  exposes its transfer overhead;
* the geometry helpers report each tile's row/column spans so both the
  timing layer (transfer/compute costs per tile) and the functional
  layer (actual sub-matrix multiplication) share one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class Tile:
    """One tile of the output matrix: rows [r0, r1) x cols [c0, c1)."""

    index: int
    r0: int
    r1: int
    c0: int
    c1: int

    @property
    def m(self) -> int:
        return self.r1 - self.r0

    @property
    def n(self) -> int:
        return self.c1 - self.c0

    def flops(self, k: int) -> float:
        return 2.0 * self.m * self.n * k

    def output_bytes(self, elem: int = 8) -> int:
        return elem * self.m * self.n

    def input_bytes(self, k: int, elem: int = 8) -> int:
        """A and B tile bytes shipped for this output tile (worst case:
        no reuse of previously shipped row/column strips)."""
        return elem * k * (self.m + self.n)


def _edges(total: int, step: int) -> List[int]:
    """Cut points with the paper's merge rule: the final remainder is
    folded into the preceding full tile."""
    if total <= 0 or step <= 0:
        raise ValueError("sizes must be positive")
    edges = list(range(0, total, step))
    edges.append(total)
    # Merge a trailing partial strip (shorter than step) into the last
    # full one — unless it is the only strip.
    if len(edges) > 2 and edges[-1] - edges[-2] < step:
        del edges[-2]
    return edges


class TileGrid:
    """The Mt x Nt tiling of an M x N output with merged edges."""

    def __init__(self, m: int, n: int, mt: int, nt: int):
        self.m, self.n, self.mt, self.nt = m, n, mt, nt
        self._row_edges = _edges(m, mt)
        self._col_edges = _edges(n, nt)
        self.tiles: List[Tile] = []
        idx = 0
        # Column-major enumeration: the order Knights Corner steals in.
        for c in range(len(self._col_edges) - 1):
            for r in range(len(self._row_edges) - 1):
                self.tiles.append(
                    Tile(
                        idx,
                        self._row_edges[r],
                        self._row_edges[r + 1],
                        self._col_edges[c],
                        self._col_edges[c + 1],
                    )
                )
                idx += 1

    def __len__(self) -> int:
        return len(self.tiles)

    def __iter__(self) -> Iterator[Tile]:
        return iter(self.tiles)

    @property
    def n_tile_rows(self) -> int:
        return len(self._row_edges) - 1

    @property
    def n_tile_cols(self) -> int:
        return len(self._col_edges) - 1

    def forward_order(self) -> List[Tile]:
        """Knights Corner's order: C00 forward, column-major."""
        return list(self.tiles)

    def backward_order(self) -> List[Tile]:
        """Sandy Bridge's order: C_last backward."""
        return list(reversed(self.tiles))

    def total_flops(self, k: int) -> float:
        return 2.0 * self.m * self.n * k

    def coverage_is_exact(self) -> bool:
        """Every output element in exactly one tile (test invariant)."""
        return sum(t.m * t.n for t in self.tiles) == self.m * self.n


class StealState:
    """Dynamic work stealing over a tile grid (Section V-B).

    The card takes from the front, the host from the back, one tile at a
    time, until the two frontiers meet.
    """

    def __init__(self, grid: TileGrid):
        self.grid = grid
        self._front = 0
        self._back = len(grid) - 1

    @property
    def remaining(self) -> int:
        return max(0, self._back - self._front + 1)

    def steal_front(self) -> Tile | None:
        """Coprocessor steal (upper-left, forward)."""
        if self._front > self._back:
            return None
        t = self.grid.tiles[self._front]
        self._front += 1
        return t

    def steal_back(self) -> Tile | None:
        """Host steal (lower-right, backward)."""
        if self._front > self._back:
            return None
        t = self.grid.tiles[self._back]
        self._back -= 1
        return t
