"""Hybrid HPL driver: single node and P x Q clusters (Section V, Table III).

The driver simulates the hybrid benchmark stage by stage on the DES. The
matrix lives in host memory (the whole point of the hybrid flavour: the
8 GB card caps native runs at N~30K, while 64/128 GB hosts reach 84K+);
each stage runs

* on the **host**: U broadcast (multi-node), pivot row swapping, DTRSM,
  the look-ahead panel factorization and its row broadcast;
* on the **card(s)**: the offloaded trailing-update DGEMM, at the rate
  given by the offload model (including first/last-tile exposure and the
  60/61 queue-handling core), with the host's spare cores contributing
  via work stealing.

The three :class:`~repro.hybrid.lookahead.Lookahead` schemes decide what
overlaps what; the per-stage card idle time falls out of the simulation
and reproduces Figure 9's 13% -> <3% pipelining gain and Table III's
efficiency grid.

Multi-node runs model one representative node of the P x Q process grid
(HPL is bulk-synchronous at stage granularity): local block sizes shrink
by P and Q and the swap/broadcast steps pay FDR InfiniBand transfer
costs with log2-tree depth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.hybrid.lookahead import Lookahead
from repro.hybrid.tile_select import HYBRID_KT, best_tile_size, offload_efficiency_model
from repro.lu.timing import LUTiming
from repro.machine.calibration import Calibration, default_calibration
from repro.machine.config import KNC, SNB
from repro.machine.memory import MemoryModel
from repro.obs import MetricsRegistry, RunResult
from repro.sim import Simulator, TraceRecorder

GB = 1024**3


@dataclass(frozen=True)
class NodeConfig:
    """One cluster node: a dual-socket SNB host with 1-2 KNC cards."""

    cards: int = 1
    host_mem_bytes: int = 64 * GB
    #: Host cores reserved for packing/queue driving, per card.
    pack_cores_per_card: int = 2

    @property
    def peak_gflops(self) -> float:
        """1.4 TFLOPS with one card, 2.48 with two (Section V-C)."""
        return SNB.peak_dp_gflops() + self.cards * KNC.peak_dp_gflops()

    def peak_gflops_at(self, dtype_bytes: int = 8) -> float:
        """Node peak at the given precision (SP doubles every unit)."""
        return (SNB.peak_gflops(dtype_bytes)
                + self.cards * KNC.peak_gflops(dtype_bytes))

    @property
    def host_compute_cores(self) -> int:
        return max(1, SNB.cores - self.cards * self.pack_cores_per_card)


@dataclass(frozen=True)
class Network:
    """Single-rail FDR InfiniBand (Section V-C)."""

    bw_gbs: float = 6.0
    latency_s: float = 2e-6

    def transfer_s(self, nbytes: float, hops: int = 1) -> float:
        """A pipelined tree transfer: latency paid per hop level, volume
        paid once (large messages stream through the tree)."""
        if nbytes < 0 or hops < 0:
            raise ValueError("bytes and hops must be non-negative")
        if hops == 0:
            return 0.0
        return hops * self.latency_s + nbytes / (self.bw_gbs * 1e9)


@dataclass
class HybridResult(RunResult):
    """One Table III row."""

    n: int
    nb: int
    p: int
    q: int
    cards: int
    lookahead: str
    time_s: float
    gflops: float
    efficiency: float
    knc_idle_fraction: float
    trace: TraceRecorder
    per_stage: list = field(default_factory=list)
    metrics: Optional[MetricsRegistry] = None
    dtype: str = "float64"

    kind = "hybrid"
    # tflops comes from the shared RunResult property (gflops / 1e3).


class HybridHPL:
    """Simulate the hybrid HPL benchmark."""

    def __init__(
        self,
        n: int,
        nb: int = HYBRID_KT,
        node: Optional[NodeConfig] = None,
        p: int = 1,
        q: int = 1,
        lookahead=Lookahead.PIPELINED,
        pipeline_chunks: int = 8,
        network: Optional[Network] = None,
        cal: Optional[Calibration] = None,
        offload_trsm: bool = False,
        pcie_link=None,
        dtype: str = "float64",
    ):
        if n < 1 or nb < 1:
            raise ValueError("n and nb must be positive")
        if p < 1 or q < 1:
            raise ValueError("grid dimensions must be positive")
        if pipeline_chunks < 2:
            raise ValueError("pipelining needs at least two chunks")
        if dtype not in ("float64", "float32"):
            raise ValueError(f"dtype must be 'float64' or 'float32', got {dtype!r}")
        self.n, self.nb, self.p, self.q = n, nb, p, q
        self.dtype = dtype
        #: Element width driving every byte count and peak in the model.
        #: SP halves the traffic and doubles the compute rates; the
        #: offload tile-efficiency *fraction* is kept from the DP model
        #: (a conservative approximation — SP also halves PCIe traffic).
        self.itemsize = 4 if dtype == "float32" else 8
        self.node = node or NodeConfig()
        self.lookahead = Lookahead.parse(lookahead)
        self.pipeline_chunks = pipeline_chunks
        self.network = network or Network()
        self.cal = cal or default_calibration()
        self.n_panels = -(-n // nb)
        local_bytes = self.itemsize * n * n / (p * q)
        if local_bytes > self.node.host_mem_bytes:
            raise ValueError(
                f"N={n} needs {local_bytes / GB:.0f} GiB per node but hosts have "
                f"{self.node.host_mem_bytes / GB:.0f} GiB"
            )
        #: Related-work what-if (Section VI): GPU HPL ports offload DTRSM
        #: too. On KNC the solve itself is faster, but the U panel has to
        #: cross PCIe twice; worthwhile only when the trailing width is
        #: large relative to the link.
        self.offload_trsm = offload_trsm
        #: Optional PCIe override for bandwidth-sensitivity studies (the
        #: conclusion's "limited PCIe bandwidth" drawback).
        self.pcie_link = pcie_link
        self._host_timing = LUTiming(
            machine=SNB, cal=self.cal, dtype_bytes=self.itemsize
        )
        self._host_mem = MemoryModel(SNB, available_fraction=0.6)

    # -- per-stage component times -------------------------------------------------
    def _trailing(self, i: int) -> int:
        return self.n - (i + 1) * self.nb

    def _loc(self, size: int, div: int) -> int:
        return max(0, math.ceil(size / div))

    def panel_time_s(self, i: int) -> float:
        """Factor the next panel on the host's compute cores (the panel's
        rows are spread over the P nodes of its process column)."""
        rows = self._loc(self.n - i * self.nb, self.p)
        if rows <= 0:
            return 0.0
        width = min(self.nb, self.n - i * self.nb)
        t = self._host_timing.panel_time(rows, width, self.node.host_compute_cores)
        # Pivot agreement along the column adds latency per sub-column.
        if self.p > 1:
            t += self.network.transfer_s(
                self.itemsize * width * 4, hops=_tree_depth(self.p)
            )
        return t

    def lbcast_time_s(self, i: int) -> float:
        """Broadcast the factored panel along the process row."""
        rows = self._loc(self._trailing(i) + self.nb, self.p)
        return self.network.transfer_s(
            self.itemsize * rows * self.nb, hops=_tree_depth(self.q)
        )

    def swap_time_s(self, i: int) -> float:
        """Row swapping across the trailing local columns: local memory
        traffic plus the long-swap exchange along the process column."""
        cols = self._loc(self._trailing(i), self.q)
        if cols <= 0:
            return 0.0
        local_bw = SNB.stream_bw_gbs * self.cal.laswp_host_bw_fraction * 1e9
        local = 4 * self.itemsize * self.nb * cols / local_bw
        net = self.network.transfer_s(
            self.itemsize * self.nb * cols, hops=_tree_depth(self.p)
        )
        return local + net

    def dtrsm_time_s(self, i: int) -> float:
        cols = self._loc(self._trailing(i), self.q)
        if cols <= 0:
            return 0.0
        flops = self.nb * self.nb * cols
        if self.offload_trsm:
            from repro.machine.pcie import PCIeLink

            rate = (self.cal.trsm_efficiency_knc
                    * KNC.peak_gflops(self.itemsize) * 1e9)
            link = self.pcie_link or PCIeLink()
            # U panel out and back (nb x cols elements each way).
            return flops / rate + 2 * link.transfer_time_s(
                self.itemsize * self.nb * cols
            )
        rate = (
            self.cal.trsm_efficiency_snb
            * SNB.peak_gflops(self.itemsize, self.node.host_compute_cores)
            * 1e9
        )
        return flops / rate

    def ubcast_time_s(self, i: int) -> float:
        """Broadcast the solved U row panel along the process column."""
        cols = self._loc(self._trailing(i), self.q)
        return self.network.transfer_s(
            self.itemsize * self.nb * cols, hops=_tree_depth(self.p)
        )

    def update_time_s(self, i: int) -> float:
        """The offloaded trailing update of the local block."""
        m = self._loc(self._trailing(i), self.p)
        n = self._loc(self._trailing(i), self.q)
        if m <= 0 or n <= 0:
            return 0.0
        flops = 2.0 * m * n * self.nb
        mt, nt, eff = best_tile_size(m, n, self.nb, self.node.cards, self.pcie_link)
        card_rate = eff * self.node.cards * KNC.peak_gflops(self.itemsize) * 1e9
        host_rate = self._host_assist_gflops(min(m, n)) * 1e9
        return flops / (card_rate + host_rate)

    #: Fraction of the host's spare capacity that effectively reaches the
    #: trailing update: the same cores interleave swapping, DTRSM,
    #: packing and MPI progress with their stolen DGEMM tiles.
    HOST_ASSIST_DUTY = 0.7

    def _host_assist_gflops(self, size: int) -> float:
        """Host cores work-stealing on the trailing update."""
        from repro.machine.gemm_model import snb_dgemm_efficiency

        cores = self.node.host_compute_cores
        rate = (snb_dgemm_efficiency(max(size, 1), self.cal)
                * SNB.peak_gflops(self.itemsize, cores))
        return rate * self.HOST_ASSIST_DUTY

    #: Fixed software overhead per pipeline chunk (queue sync, extra
    #: kernel launches) — the cost that "delays panel factorization".
    PIPELINE_CHUNK_OVERHEAD_S = 3e-4

    # -- stage orchestration ------------------------------------------------------------
    def run(self) -> HybridResult:
        sim = Simulator()
        trace = TraceRecorder()
        per_stage = []

        def host_span(kind: str, dur: float):
            t0 = sim.now
            yield dur
            trace.record("host", kind, t0, sim.now)

        def card_span(kind: str, dur: float):
            t0 = sim.now
            yield dur
            trace.record("knc", kind, t0, sim.now)

        def stage(i: int):
            t_stage0 = sim.now
            t_swap = self.swap_time_s(i)
            t_trsm = self.dtrsm_time_s(i)
            t_ubc = self.ubcast_time_s(i)
            t_upd = self.update_time_s(i)
            has_next_panel = i + 1 < self.n_panels
            t_panel = self.panel_time_s(i + 1) if has_next_panel else 0.0
            t_lbc = self.lbcast_time_s(i + 1) if has_next_panel else 0.0

            if self.lookahead is Lookahead.NONE:
                yield from host_span("ubcast", t_ubc)
                yield from host_span("dlaswp", t_swap)
                yield from host_span("dtrsm", t_trsm)
                yield from card_span("dgemm", t_upd)
                if has_next_panel:
                    yield from host_span("dgetrf", t_panel)
                    yield from host_span("lbcast", t_lbc)
            elif self.lookahead is Lookahead.BASIC:
                yield from host_span("ubcast", t_ubc)
                yield from host_span("dlaswp", t_swap)
                yield from host_span("dtrsm", t_trsm)
                card = sim.process(card_span("dgemm", t_upd))

                def panel_side():
                    if has_next_panel:
                        # Free up the leftmost panel block first (a 1/chunks
                        # slice of the update), then factor and broadcast.
                        yield from host_span("update_head", t_upd * 0.02)
                        yield from host_span("dgetrf", t_panel)
                        yield from host_span("lbcast", t_lbc)

                panel = sim.process(panel_side())
                yield card
                yield panel
            else:  # PIPELINED
                chunks = self.pipeline_chunks
                oh = self.PIPELINE_CHUNK_OVERHEAD_S
                ready = [sim.event() for _ in range(chunks)]

                def host_side():
                    for c in range(chunks):
                        yield from host_span("ubcast", t_ubc / chunks + oh / 3)
                        yield from host_span("dlaswp", t_swap / chunks + oh / 3)
                        yield from host_span("dtrsm", t_trsm / chunks + oh / 3)
                        ready[c].succeed()
                    if has_next_panel:
                        yield from host_span("update_head", t_upd * 0.02)
                        yield from host_span("dgetrf", t_panel)
                        yield from host_span("lbcast", t_lbc)

                def card_side():
                    for c in range(chunks):
                        yield ready[c]
                        yield from card_span("dgemm", t_upd / chunks)

                host = sim.process(host_side())
                card = sim.process(card_side())
                yield host
                yield card
            per_stage.append((i, self._trailing(i) + self.nb, sim.now - t_stage0))

        def driver():
            for i in range(self.n_panels):
                yield sim.process(stage(i))

        sim.process(driver(), name="hpl")
        time_s = sim.run()
        # Final substitutions: bandwidth-bound pass over the local matrix.
        time_s += self._host_mem.transfer_time_s(
            self.itemsize * (self.n / self.p) * (self.n / self.q)
        )

        flops = LUTiming.hpl_flops(self.n)
        tflops = flops / time_s / 1e12
        peak = self.p * self.q * self.node.peak_gflops_at(self.itemsize) / 1e3
        knc_busy = trace.busy_time("knc")
        metrics = MetricsRegistry()
        metrics.counter("hybrid.stages").inc(self.n_panels)
        metrics.gauge("hybrid.knc_idle_fraction").set(1.0 - knc_busy / time_s)
        for kind, busy in sorted(trace.time_by_kind().items()):
            metrics.gauge(f"hybrid.busy_s.{kind}").set(busy)
        sim.publish_metrics(metrics)
        return HybridResult(
            n=self.n,
            nb=self.nb,
            p=self.p,
            q=self.q,
            cards=self.node.cards,
            lookahead=self.lookahead.value,
            time_s=time_s,
            gflops=tflops * 1e3,
            efficiency=tflops / peak,
            knc_idle_fraction=1.0 - knc_busy / time_s,
            trace=trace,
            per_stage=per_stage,
            metrics=metrics,
            dtype=self.dtype,
        )


def _tree_depth(parties: int) -> int:
    """Hops of a binomial broadcast/reduction tree."""
    return int(math.ceil(math.log2(parties))) if parties > 1 else 0
