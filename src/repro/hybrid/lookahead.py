"""The three hybrid HPL orchestration schemes of Figure 8.

* ``NONE`` — no look-ahead: the host's panel factorization, broadcasts,
  row swapping and DTRSM all serialise with the offloaded DGEMM; the
  card idles through every host step (Figure 8a).
* ``BASIC`` — the next stage's panel factorization runs on the host
  *concurrently* with the current trailing update on the card
  (Figure 8b, the Bach et al. scheme with dynamic work stealing); the
  card still idles through U broadcast, swapping and DTRSM.
* ``PIPELINED`` — the paper's contribution (Figure 8c): U broadcast,
  swapping and DTRSM are applied to a *subset of columns at a time*;
  as soon as the first subset is ready the card starts the trailing
  update on it, overlapping the host's work on the next subset. Only
  the first chunk's host work remains exposed, cutting card idle time
  from ~13% to under 3% (Figure 9) — at the price of per-chunk overhead
  that delays the panel, which matters only in the late, small stages.
"""

from __future__ import annotations

import enum


class Lookahead(enum.Enum):
    NONE = "none"
    BASIC = "basic"
    PIPELINED = "pipelined"

    @classmethod
    def parse(cls, value) -> "Lookahead":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown look-ahead scheme {value!r}; "
                f"pick from {[m.value for m in cls]}"
            ) from None
