"""Functional (numeric) hybrid LU — the hybrid structure, computing for
real.

The timing driver (:mod:`repro.hybrid.driver`) models the hybrid stage
loop; this module *executes* it: the host factors the panel, applies the
pivots and solves the U row panel, and the stage's trailing update runs
through the offload engine — tiles packed, "shipped", computed by the
simulated card via the packed-format BLAS, and accumulated back, with
the host's spare capacity work-stealing from the opposite corner. The
result is verified against SciPy and the HPL residual test, which pins
down that the hybrid orchestration moves exactly the right blocks.

With ``pack_cache`` / ``workers`` the offloaded updates run on the
pack-once + tile-executor substrate: each stage's resident strips are
packed once and shared across tiles, and the stripe GEMMs fan across
the pool. :func:`run_hybrid_numeric` wraps the whole factorization +
solve + residual check into a :class:`~repro.obs.result.RunResult` for
the CLI's ``hybrid --numeric`` path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.blas.buffers import as_buffer_pool
from repro.blas.getrf import getrf
from repro.blas.laswp import laswp
from repro.blas.trsm import trsm_lower_unit_left
from repro.blas.workspace import PackCache
from repro.hybrid.offload import OffloadDGEMM
from repro.lu.tasks import LUWorkspace
from repro.obs import AllocProfiler, MetricsRegistry, RunResult
from repro.parallel import (
    EXECUTOR_BACKENDS,
    TileExecutor,
    as_executor,
    is_process_executor,
    make_executor,
)


def hybrid_blocked_lu(
    a: np.ndarray,
    nb: int = 64,
    cards: int = 1,
    tile: Optional[tuple] = None,
    host_assist: bool = True,
    workers=None,
    pack_cache=None,
    buffer_pool=None,
) -> tuple:
    """Factor ``a`` in place with offloaded trailing updates.

    Returns (a, global_ipiv) in the same convention as
    :func:`repro.lu.factorize.blocked_lu` — and produces bit-compatible
    results with it, because the offload tiles partition the exact same
    GEMM.

    ``pack_cache`` (True or a :class:`~repro.blas.workspace.PackCache`)
    lets each stage's offload engine pack its resident A/B strips once
    and reuse them across tiles; ``workers`` fans the card-side stripe
    GEMMs over a :class:`~repro.parallel.TileExecutor`; ``buffer_pool``
    (True or a :class:`~repro.blas.buffers.BufferPool`) rents the host
    kernels' scratch and the offload staging buffers (the ``-L21`` / U
    / C contiguous copies) from the arena instead of allocating per
    stage.
    """
    if pack_cache is True:
        pack_cache = PackCache()
    elif pack_cache is False:
        pack_cache = None
    pool = as_buffer_pool(buffer_pool)
    own_executor = (
        workers is not None
        and not isinstance(workers, TileExecutor)
        and not is_process_executor(workers)
    )
    executor = as_executor(workers)
    ws = LUWorkspace(a, nb)  # reuse the geometry/pivot bookkeeping
    try:
        for i in range(ws.n_panels):
            r0 = ws.stage_row0(i)
            cols = ws.panel_cols(i)
            w = ws.panel_width(i)
            # Host: panel factorization.
            ipiv = getrf(a[r0:, cols], pool=pool)
            ws.stage_ipiv[i] = ipiv
            trailing = a[r0:, cols.stop :]
            if trailing.shape[1] == 0:
                continue
            # Host: pivot swaps and the U-panel triangular solve.
            laswp(trailing, ipiv, forward=True, pool=pool)
            l11 = a[r0 : r0 + w, cols]
            u_panel = trailing[:w, :]
            trsm_lower_unit_left(l11, u_panel, pool=pool)
            # Card(s): the offloaded trailing update C -= L21 @ U.
            m_t = trailing.shape[0] - w
            n_t = trailing.shape[1]
            if m_t > 0:
                # Stage the contiguous offload operands: -L21 (the sign
                # folds the subtraction into the accumulate), U and C.
                # With a pool the staging buffers are rented, not
                # allocated per stage; the values are identical.
                if pool is not None:
                    neg_l21 = pool.checkout((m_t, w), a.dtype, key="hybrid.l21")
                    np.negative(a[r0 + w :, cols], out=neg_l21)
                    u = pool.checkout((w, n_t), a.dtype, key="hybrid.u")
                    np.copyto(u, u_panel)
                    c = pool.checkout((m_t, n_t), a.dtype, key="hybrid.c")
                    np.copyto(c, trailing[w:, :])
                else:
                    neg_l21 = -np.ascontiguousarray(a[r0 + w :, cols])
                    u = np.ascontiguousarray(u_panel)
                    c = np.ascontiguousarray(trailing[w:, :])
                try:
                    tile_choice = tile or (max(1, m_t // 2), max(1, n_t // 2))
                    OffloadDGEMM(
                        m_t,
                        n_t,
                        kt=w,
                        cards=min(cards, n_t),
                        tile=tile_choice,
                        host_assist=host_assist,
                        pack_cache=pack_cache,
                        executor=executor,
                        buffer_pool=pool,
                    ).run(neg_l21, u, c)
                    trailing[w:, :] = c
                finally:
                    if pool is not None:
                        pool.release(neg_l21)
                        pool.release(u)
                        pool.release(c)
                if pack_cache is not None:
                    # This stage's strips are dead; only counters persist.
                    pack_cache.invalidate()
    finally:
        if own_executor and executor is not None:
            executor.close()
    return ws.a, ws.finalize()


@dataclass
class HybridNumericResult(RunResult):
    """A real (numeric) hybrid factorization + solve + residual check."""

    n: int
    nb: int
    cards: int
    workers: int
    time_s: float
    gflops: float
    residual: float
    passed: bool
    metrics: Optional[MetricsRegistry] = None
    alloc: Optional[dict] = None
    dtype: str = "float64"
    #: Measured wall seconds of the factorization phase.
    factor_time_s: Optional[float] = None
    #: Measured wall seconds of the MxP refinement (None unless mxp).
    refine_time_s: Optional[float] = None
    #: :meth:`repro.hpl.mxp.RefineReport.to_dict` of the refinement loop.
    refine: Optional[dict] = None

    kind = "hybrid-numeric"


def run_hybrid_numeric(
    n: int,
    nb: int = 64,
    cards: int = 1,
    workers: Optional[int] = None,
    executor: str = "thread",
    pack_cache: bool = True,
    host_assist: bool = True,
    seed: int = 42,
    buffer_pool: bool = True,
    alloc_profile: bool = False,
    dtype: str = "float64",
    mxp: bool = False,
    refine_tol: float = 1.0,
    refine_max_iters: int = 8,
) -> HybridNumericResult:
    """Factor and solve a seeded HPL system through the hybrid path.

    Wall-clock timed (this is a real computation); the pack-cache and
    pool counters land in ``metrics``. ``workers=None`` uses all cores;
    ``executor`` picks the stripe fan-out backend ("thread" or
    "process" — shared-memory worker processes, bitwise identical).
    ``buffer_pool=False`` selects the allocating reference paths (the
    ``--no-buffer-pool`` A/B ablation); ``alloc_profile`` wraps the
    factor and solve phases in tracemalloc spans recorded as ``alloc``.

    ``dtype="float32"`` factors in single precision; with ``mxp`` the
    SP factorization is followed by iterative refinement against the DP
    system (:func:`repro.hpl.mxp.refine_to_double`), so the result faces
    the standard DP residual check. A pure SP run (``mxp=False``) is
    judged against SP's own epsilon instead.
    """
    from repro.hpl.matgen import hpl_system
    from repro.hpl.mxp import refine_to_double
    from repro.hpl.residual import hpl_residual, residual_passes
    from repro.lu.factorize import lu_solve
    from repro.lu.timing import LUTiming

    if executor not in EXECUTOR_BACKENDS:
        raise ValueError(
            f"executor must be one of {EXECUTOR_BACKENDS}, got {executor!r}"
        )
    if dtype not in ("float64", "float32"):
        raise ValueError(f"dtype must be 'float64' or 'float32', got {dtype!r}")
    if mxp and dtype != "float32":
        raise ValueError("mxp factors in single precision: set dtype='float32'")
    np_dtype = np.float32 if dtype == "float32" else np.float64
    if mxp:
        a0, b = hpl_system(n, seed)  # DP ground truth
        a_work = a0.astype(np.float32)
    else:
        a0, b = hpl_system(n, seed, dtype=np_dtype)
        a_work = a0.copy()
    cache = PackCache() if pack_cache else None
    pool = as_buffer_pool(buffer_pool)
    profiler = AllocProfiler(enabled=alloc_profile)
    executor = make_executor(executor, workers)
    report = None
    t0 = time.perf_counter()
    try:
        with profiler.span("hybrid.factor"):
            lu, ipiv = hybrid_blocked_lu(
                a_work,
                nb=nb,
                cards=cards,
                workers=executor,
                pack_cache=cache,
                host_assist=host_assist,
                buffer_pool=pool,
            )
        factor_s = time.perf_counter() - t0
        with profiler.span("hybrid.solve"):
            if mxp:
                x, report = refine_to_double(
                    a0, b, lu, ipiv,
                    tol=refine_tol,
                    max_iters=refine_max_iters,
                    pool=pool,
                    fallback_nb=nb,
                    fallback_workers=executor,
                )
            else:
                x = lu_solve(lu, ipiv, b, pool=pool)
    finally:
        executor.close()
        profiler.close()
    wall_s = time.perf_counter() - t0
    metrics = MetricsRegistry()
    if cache is not None:
        cache.publish(metrics)
    if pool is not None:
        pool.publish(metrics)
    profiler.publish(metrics)
    executor.publish(metrics)
    metrics.gauge("hpl.wall_time_s").set(wall_s)
    metrics.gauge("hpl.factor_time_s").set(factor_s)
    if report is not None:
        metrics.gauge("hpl.refine_time_s").set(report.refine_wall_s)
        metrics.gauge("hpl.refine_iterations").set(report.iterations)
    eps_dtype = np.float64 if mxp else np_dtype
    return HybridNumericResult(
        n=n,
        nb=nb,
        cards=cards,
        workers=executor.workers,
        time_s=wall_s,
        gflops=LUTiming.hpl_flops(n) / wall_s / 1e9,
        residual=hpl_residual(a0, x, b, eps_dtype=eps_dtype),
        passed=residual_passes(a0, x, b, eps_dtype=eps_dtype),
        metrics=metrics,
        alloc=profiler.to_dict(),
        dtype=dtype,
        factor_time_s=factor_s,
        refine_time_s=report.refine_wall_s if report is not None else None,
        refine=report.to_dict() if report is not None else None,
    )
