"""Functional (numeric) hybrid LU — the hybrid structure, computing for
real.

The timing driver (:mod:`repro.hybrid.driver`) models the hybrid stage
loop; this module *executes* it: the host factors the panel, applies the
pivots and solves the U row panel, and the stage's trailing update runs
through the offload engine — tiles packed, "shipped", computed by the
simulated card via the packed-format BLAS, and accumulated back, with
the host's spare capacity work-stealing from the opposite corner. The
result is verified against SciPy and the HPL residual test, which pins
down that the hybrid orchestration moves exactly the right blocks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blas.getrf import getrf
from repro.blas.laswp import laswp
from repro.blas.trsm import trsm_lower_unit_left
from repro.hybrid.offload import OffloadDGEMM
from repro.lu.tasks import LUWorkspace


def hybrid_blocked_lu(
    a: np.ndarray,
    nb: int = 64,
    cards: int = 1,
    tile: Optional[tuple] = None,
    host_assist: bool = True,
) -> tuple:
    """Factor ``a`` in place with offloaded trailing updates.

    Returns (a, global_ipiv) in the same convention as
    :func:`repro.lu.factorize.blocked_lu` — and produces bit-compatible
    results with it, because the offload tiles partition the exact same
    GEMM.
    """
    ws = LUWorkspace(a, nb)  # reuse the geometry/pivot bookkeeping
    n = ws.n
    for i in range(ws.n_panels):
        r0 = ws.stage_row0(i)
        cols = ws.panel_cols(i)
        w = ws.panel_width(i)
        # Host: panel factorization.
        ipiv = getrf(a[r0:, cols])
        ws.stage_ipiv[i] = ipiv
        trailing = a[r0:, cols.stop :]
        if trailing.shape[1] == 0:
            continue
        # Host: pivot swaps and the U-panel triangular solve.
        laswp(trailing, ipiv, forward=True)
        l11 = a[r0 : r0 + w, cols]
        u_panel = trailing[:w, :]
        trsm_lower_unit_left(l11, u_panel)
        # Card(s): the offloaded trailing update C -= L21 @ U.
        m_t = trailing.shape[0] - w
        n_t = trailing.shape[1]
        if m_t > 0:
            l21 = np.ascontiguousarray(a[r0 + w :, cols])
            u = np.ascontiguousarray(u_panel)
            c = np.ascontiguousarray(trailing[w:, :])
            tile_choice = tile or (max(1, m_t // 2), max(1, n_t // 2))
            OffloadDGEMM(
                m_t,
                n_t,
                kt=w,
                cards=min(cards, n_t),
                tile=tile_choice,
                host_assist=host_assist,
            ).run(-l21, u, c)
            trailing[w:, :] = c
    return ws.a, ws.finalize()
