"""Hybrid HPL: Sandy Bridge host + Knights Corner coprocessor(s).

Section V of the paper: the host owns the (large) matrix and runs panel
factorization, row swapping, DTRSM and broadcasts; the trailing-update
DGEMM is offloaded to one or two Knights Corner cards through tile
decomposition, memory-mapped request/response queues, and dynamic
corner-to-corner work stealing (Figure 10). Three look-ahead schemes
(Figure 8) hide increasing amounts of the host work behind the card's
DGEMM; the pipelined scheme cuts the card's idle time from ~13% to under
3% (Figure 9).

* :mod:`repro.hybrid.tiles` — tile grids with partial-tile merging;
* :mod:`repro.hybrid.tile_select` — the PCIe-driven Kt bound and the
  per-size pre-computed best tile dimensions;
* :mod:`repro.hybrid.offload` — the offload DGEMM engine (DES timing and
  functional work-stealing execution), Figure 11's curves;
* :mod:`repro.hybrid.lookahead` — the three schemes of Figure 8;
* :mod:`repro.hybrid.driver` — single- and multi-node hybrid HPL
  (Figure 9, Table III).
"""

from repro.hybrid.tiles import Tile, TileGrid
from repro.hybrid.tile_select import (
    min_kt,
    offload_efficiency_model,
    best_tile_size,
    HYBRID_KT,
)
from repro.hybrid.offload import OffloadDGEMM, OffloadResult
from repro.hybrid.lookahead import Lookahead
from repro.hybrid.driver import HybridHPL, HybridResult, NodeConfig
from repro.hybrid.functional import (
    HybridNumericResult,
    hybrid_blocked_lu,
    run_hybrid_numeric,
)

__all__ = [
    "Tile",
    "TileGrid",
    "min_kt",
    "offload_efficiency_model",
    "best_tile_size",
    "HYBRID_KT",
    "OffloadDGEMM",
    "OffloadResult",
    "Lookahead",
    "HybridHPL",
    "HybridResult",
    "NodeConfig",
    "hybrid_blocked_lu",
    "run_hybrid_numeric",
    "HybridNumericResult",
]
