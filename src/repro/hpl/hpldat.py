"""HPL.dat-compatible configuration frontend.

The paper's hybrid implementation "is based on the standard open-source
implementation, High Performance Linpack (HPL)", which is driven by the
venerable ``HPL.dat`` input file. This module parses that format (the
fields this reproduction models), runs the cross-product of requested
configurations through the hybrid driver, and prints results in HPL's
output format::

    T/V                N    NB     P     Q               Time      Gflops
    ---------------------------------------------------------------------
    WR02L2L4       84000  1200     1     1             299.14   1.109e+03

The look-ahead DEPTH field maps onto the paper's schemes: 0 = no
look-ahead, 1 = basic, >= 2 = pipelined (an extension mapping — real HPL
depths beyond 1 trade memory for overlap much like the paper's
pipelining trades chunk overhead for it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.hybrid.driver import GB, NodeConfig
from repro.hybrid.lookahead import Lookahead


@dataclass
class HPLDatConfig:
    """The subset of HPL.dat this reproduction models."""

    ns: List[int] = field(default_factory=lambda: [84000])
    nbs: List[int] = field(default_factory=lambda: [1200])
    ps: List[int] = field(default_factory=lambda: [1])
    qs: List[int] = field(default_factory=lambda: [1])
    depths: List[int] = field(default_factory=lambda: [1])
    threshold: float = 16.0

    def runs(self) -> List[tuple]:
        """The cross-product of configurations, HPL-style."""
        out = []
        for n in self.ns:
            for nb in self.nbs:
                for p, q in zip(self.ps, self.qs):
                    for depth in self.depths:
                        out.append((n, nb, p, q, depth))
        return out


def depth_to_lookahead(depth: int) -> Lookahead:
    """DEPTH 0 -> none, 1 -> basic, >= 2 -> pipelined."""
    if depth < 0:
        raise ValueError("look-ahead depth cannot be negative")
    if depth == 0:
        return Lookahead.NONE
    if depth == 1:
        return Lookahead.BASIC
    return Lookahead.PIPELINED


def _counted_list(lines: List[str], count_idx: int, dtype=int) -> List:
    """Read HPL.dat's '<count> ...' / '<values> ...' line pair."""
    count = int(lines[count_idx].split()[0])
    values = [dtype(tok) for tok in lines[count_idx + 1].split()[: count]]
    if len(values) != count:
        raise ValueError(
            f"HPL.dat line {count_idx + 2}: expected {count} values, "
            f"got {len(values)}"
        )
    return values


def parse_hpl_dat(text: str) -> HPLDatConfig:
    """Parse the classic fixed-line-order HPL.dat layout."""
    lines = text.splitlines()
    if len(lines) < 13:
        raise ValueError("HPL.dat too short: expected the classic layout")
    # Lines 0-1: banner. 2: output file. 3: device. Then the counted lists.
    cfg = HPLDatConfig()
    cfg.ns = _counted_list(lines, 4)
    cfg.nbs = _counted_list(lines, 6)
    # Line 8: PMAP. 9: # of grids, 10: Ps, 11: Qs.
    n_grids = int(lines[9].split()[0])
    cfg.ps = [int(t) for t in lines[10].split()[: n_grids]]
    cfg.qs = [int(t) for t in lines[11].split()[: n_grids]]
    if len(cfg.ps) != n_grids or len(cfg.qs) != n_grids:
        raise ValueError("HPL.dat: Ps/Qs lines shorter than the grid count")
    cfg.threshold = float(lines[12].split()[0])
    # Optional: depth line (real HPL has PFACTs etc. in between; we accept
    # a '# of lookahead depths' + 'DEPTHs' pair anywhere after line 12).
    for i in range(13, len(lines) - 1):
        if "depth" in lines[i].lower():
            try:
                cfg.depths = _counted_list(lines, i)
            except (ValueError, IndexError):
                continue
            break
    return cfg


@dataclass
class HPLDatRow:
    """One output line of an HPL run."""

    variant: str
    n: int
    nb: int
    p: int
    q: int
    time_s: float
    gflops: float
    #: Canonical RunSpec hash of the configuration (None when built by hand).
    spec_hash: Optional[str] = None


def run_hpl_dat(
    cfg: HPLDatConfig, node: Optional[NodeConfig] = None
) -> List[HPLDatRow]:
    """Run every configuration in the file through :func:`repro.api.run`.

    Each HPL.dat cross-product entry becomes a canonical hybrid
    :class:`~repro.spec.RunSpec`, so the rows carry spec hashes and the
    results are identical to the same configuration launched from the
    CLI or a campaign.
    """
    from repro import api
    from repro.spec import RunSpec

    node = node or NodeConfig()
    rows = []
    for n, nb, p, q, depth in cfg.runs():
        la = depth_to_lookahead(depth)
        spec = RunSpec(
            kind="hybrid",
            n=n,
            nb=nb,
            p=p,
            q=q,
            cards=node.cards,
            mem_gb=node.host_mem_bytes / GB,
            lookahead=la.value,
        )
        r = api.run(spec)
        variant = f"WR{depth:02d}L2L{4 if la is Lookahead.PIPELINED else 1}"
        rows.append(
            HPLDatRow(
                variant=variant,
                n=n,
                nb=nb,
                p=p,
                q=q,
                time_s=r.time_s,
                gflops=r.tflops * 1e3,
                spec_hash=spec.canonical_hash(),
            )
        )
    return rows


def format_hpl_output(rows: List[HPLDatRow]) -> str:
    """HPL's classic result block."""
    header = (
        "T/V                N    NB     P     Q               Time"
        "                 Gflops"
    )
    sep = "-" * len(header)
    lines = [header, sep]
    for r in rows:
        lines.append(
            f"{r.variant:<12}{r.n:>9}{r.nb:>6}{r.p:>6}{r.q:>6}"
            f"{r.time_s:>19.2f}{r.gflops:>23.3e}"
        )
    return "\n".join(lines)
