"""Mixed-precision HPL-MxP: SP factorization + iterative refinement.

The paper's Section III kernels exist in single-precision form (16 DP
lanes vs 32 SP lanes on the 512-bit KNC vector unit — a 2x peak-FLOP
gap the machine models in :mod:`repro.machine` already expose). This
module adds the numerics that make exploiting them *safe*: factor the
HPL matrix in float32, then recover double-precision accuracy with
classic iterative refinement (Wilkinson; the scheme behind the HPL-MxP
benchmark):

1. solve ``A x0 = b`` with the SP factors (cheap SP triangular solves),
2. compute the residual ``r = b - A x`` in **double** precision,
3. solve ``A d = r`` with the same SP factors and update ``x += d``,
4. repeat until the HPL scaled residual drops below ``tol`` or the
   iteration budget is exhausted.

Each iteration multiplies the error by roughly ``eps_sp * kappa(A)``,
so a handful of iterations reach DP accuracy whenever the matrix is
not catastrophically conditioned for SP. When it *is* — the residual
stalls or the budget runs out — :func:`refine_to_double` transparently
falls back to a full double-precision factorization, so MxP runs never
trade away correctness: the caller always receives an ``x`` it can put
through the standard DP HPL check.

The refinement itself is bandwidth-bound (one DP mat-vec plus two SP
triangular sweeps per iteration, all O(n^2)), which is why MxP wins:
the O(n^3) factorization runs at SP speed and the DP work is a few
streaming passes. :func:`refine_model_time_s` charges exactly that in
the deterministic machine model.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.hpl.residual import hpl_residual
from repro.lu.factorize import blocked_lu, lu_solve
from repro.machine.config import KNC, MachineConfig

#: A correction that fails to shrink the scaled residual below this
#: fraction of the best seen so far is "stalled": SP precision has run
#: out of digits to contribute and further iterations cannot converge.
STALL_IMPROVEMENT = 0.9


@dataclass
class RefineReport:
    """What the refinement loop did, attached to MxP run results."""

    converged: bool            #: scaled residual reached ``tol`` in budget
    iterations: int            #: correction solves performed
    residuals: List[float]     #: scaled residual after x0, then each update
    fallback: bool             #: stalled -> re-factored in full DP
    tol: float
    max_iters: int
    sp_dtype: str = "float32"
    refine_wall_s: float = 0.0    #: measured wall time of the loop
    fallback_wall_s: float = 0.0  #: measured wall time of the DP fallback

    def to_dict(self) -> dict:
        return {
            "converged": bool(self.converged),
            "iterations": int(self.iterations),
            "residuals": [float(r) for r in self.residuals],
            "fallback": bool(self.fallback),
            "tol": float(self.tol),
            "max_iters": int(self.max_iters),
            "sp_dtype": self.sp_dtype,
            "refine_wall_s": float(self.refine_wall_s),
            "fallback_wall_s": float(self.fallback_wall_s),
        }


def refine_to_double(
    a_dp: np.ndarray,
    b_dp: np.ndarray,
    lu_sp: np.ndarray,
    ipiv: np.ndarray,
    tol: float = 1.0,
    max_iters: int = 8,
    pool=None,
    fallback_nb: int = 64,
    fallback_workers=None,
) -> tuple:
    """Recover a DP-accurate ``x`` from an SP factorization.

    ``a_dp``/``b_dp`` are the *double* system (the refinement's ground
    truth); ``lu_sp``/``ipiv`` the in-place SP factors of the rounded
    matrix. Residuals are always accumulated in float64; the correction
    solves run in the factors' precision (``lu_solve`` casts the DP
    residual down once per solve). Returns ``(x, RefineReport)`` where
    ``x`` is float64.

    Convergence is judged by the HPL scaled residual — the same figure
    the acceptance test thresholds at 16 — so ``tol=1.0`` converges
    with an order of magnitude to spare. If the residual stalls
    (SP has no digits left to contribute) or the budget runs out, the
    matrix is re-factored in full DP (``blocked_lu``) and the direct DP
    solution returned instead: correctness is never traded away.
    """
    if tol <= 0:
        raise ValueError("tol must be positive")
    if max_iters < 1:
        raise ValueError("max_iters must be >= 1")
    if lu_sp.dtype == np.float64:
        raise ValueError("lu_sp is already double precision; nothing to refine")
    a_dp = np.asarray(a_dp, dtype=np.float64)
    b_dp = np.asarray(b_dp, dtype=np.float64)

    t0 = time.perf_counter()
    x = lu_solve(lu_sp, ipiv, b_dp, pool=pool).astype(np.float64)
    res = hpl_residual(a_dp, x, b_dp)
    residuals = [res]
    iterations = 0
    best = res
    stalled = False
    while res >= tol and iterations < max_iters:
        r = b_dp - a_dp @ x  # DP residual: the step that buys accuracy
        d = lu_solve(lu_sp, ipiv, r, pool=pool)  # SP correction solves
        x = x + d.astype(np.float64)
        iterations += 1
        res = hpl_residual(a_dp, x, b_dp)
        residuals.append(res)
        if res >= best * STALL_IMPROVEMENT:
            stalled = True
            break
        best = res
    refine_wall = time.perf_counter() - t0

    converged = res < tol
    fallback = bool(not converged and (stalled or iterations >= max_iters))
    fallback_wall = 0.0
    if fallback:
        t1 = time.perf_counter()
        lu_dp, ipiv_dp = blocked_lu(
            a_dp.copy(), nb=fallback_nb, workers=fallback_workers
        )
        x = lu_solve(lu_dp, ipiv_dp, b_dp, pool=pool)
        residuals.append(hpl_residual(a_dp, x, b_dp))
        fallback_wall = time.perf_counter() - t1

    report = RefineReport(
        converged=converged,
        iterations=iterations,
        residuals=residuals,
        fallback=fallback,
        tol=float(tol),
        max_iters=int(max_iters),
        sp_dtype=str(lu_sp.dtype),
        refine_wall_s=refine_wall,
        fallback_wall_s=fallback_wall,
    )
    return x, report


def refine_model_time_s(
    n: int,
    iterations: int,
    machine: Optional[MachineConfig] = None,
    include_initial_solve: bool = True,
) -> float:
    """Deterministic model time for the refinement phase.

    Refinement is streaming-bound: the initial solve sweeps the SP
    factors once (4 n^2 bytes), and every iteration reads the DP matrix
    for the residual mat-vec (8 n^2 bytes) plus the SP factors for the
    correction solves (4 n^2 bytes). All O(n^2) against the machine's
    STREAM bandwidth — negligible next to the O(n^3) factorization,
    which is the whole point of MxP.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    m = machine or KNC
    bw = m.stream_bw_gbs * 1e9
    init_bytes = 4 * n * n if include_initial_solve else 0
    per_iter_bytes = 8 * n * n + 4 * n * n
    return (init_bytes + iterations * per_iter_bytes) / bw


def expected_iterations(n: int, kappa: float = None) -> int:
    """Rule-of-thumb iteration count for the model: each sweep gains
    ``-log10(eps_sp * kappa)`` digits; HPL matrices are well-conditioned
    (``kappa ~ O(n)``), so 2-3 iterations typically reach DP accuracy."""
    kappa = float(n) if kappa is None else kappa
    gain = -math.log10(np.finfo(np.float32).eps * kappa)
    if gain <= 0:
        return 0
    digits_needed = -math.log10(np.finfo(np.float64).eps * max(kappa, 1.0))
    return max(1, math.ceil(digits_needed / gain))
