"""Configuration auto-tuning: the HPL.dat workflow, automated.

Running HPL well requires choosing the problem size N (fill memory, but
leave room), the block size NB, the process-grid shape P x Q (HPL folk
wisdom: P <= Q, as close to square as possible), and — for this paper's
hybrid flavour — the look-ahead scheme. The paper's own choices (NB =
1200 from the PCIe bound, near-square grids, N filling 64/128 GB hosts)
are exactly what this tuner recovers; it exists so a downstream user can
point the library at *their* imagined cluster and get a sensible
configuration plus its predicted score.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.hybrid.driver import HybridHPL, NodeConfig
from repro.hybrid.tile_select import HYBRID_KT

GB = 1024**3


@dataclass(frozen=True)
class TuneResult:
    """The chosen configuration and its predicted performance."""

    n: int
    nb: int
    p: int
    q: int
    lookahead: str
    tflops: float
    efficiency: float

    def describe(self) -> str:
        return (
            f"N={self.n} NB={self.nb} grid {self.p}x{self.q} "
            f"lookahead={self.lookahead}: predicted {self.tflops:.2f} TFLOPS "
            f"({100 * self.efficiency:.1f}%)"
        )


def grid_shapes(nodes: int) -> List[Tuple[int, int]]:
    """All P x Q factorisations with P <= Q (the HPL recommendation)."""
    if nodes < 1:
        raise ValueError("need at least one node")
    shapes = []
    for p in range(1, int(math.isqrt(nodes)) + 1):
        if nodes % p == 0:
            shapes.append((p, nodes // p))
    return shapes


def problem_size(
    nodes: int, host_mem_bytes: int, fill_fraction: float = 0.8, nb: int = HYBRID_KT
) -> int:
    """Largest NB-multiple N whose per-node share fits in
    ``fill_fraction`` of host memory (HPL's usual ~80% rule)."""
    if not 0 < fill_fraction <= 1:
        raise ValueError("fill_fraction must be in (0, 1]")
    n_max = math.sqrt(fill_fraction * host_mem_bytes * nodes / 8)
    return max(nb, int(n_max // nb) * nb)


def tune(
    nodes: int,
    cards: int = 1,
    host_mem_gb: float = 64.0,
    fill_fraction: float = 0.8,
    nb_candidates: Tuple[int, ...] = (1200, 2400),
    n: Optional[int] = None,
) -> TuneResult:
    """Pick (N, NB, P, Q, look-ahead) for a cluster and predict its run.

    Every candidate grid shape and block size is scored through the
    hybrid timing model with pipelined look-ahead (which dominates
    everywhere at these scales); the best predicted TFLOPS wins.
    """
    if cards < 1:
        raise ValueError("cards must be >= 1")
    node = NodeConfig(cards=cards, host_mem_bytes=int(host_mem_gb * GB))
    best: Optional[TuneResult] = None
    for nb in nb_candidates:
        n_run = n if n is not None else problem_size(
            nodes, node.host_mem_bytes, fill_fraction, nb
        )
        for p, q in grid_shapes(nodes):
            r = HybridHPL(
                n_run, nb=nb, node=node, p=p, q=q, lookahead="pipelined"
            ).run()
            cand = TuneResult(
                n=n_run,
                nb=nb,
                p=p,
                q=q,
                lookahead="pipelined",
                tflops=r.tflops,
                efficiency=r.efficiency,
            )
            if best is None or cand.tflops > best.tflops:
                best = cand
    assert best is not None
    return best
