"""Configuration auto-tuning: the HPL.dat workflow, automated.

Running HPL well requires choosing the problem size N (fill memory, but
leave room), the block size NB, the process-grid shape P x Q (HPL folk
wisdom: P <= Q, as close to square as possible), and — for this paper's
hybrid flavour — the look-ahead scheme. The paper's own choices (NB =
1200 from the PCIe bound, near-square grids, N filling 64/128 GB hosts)
are exactly what this tuner recovers; it exists so a downstream user can
point the library at *their* imagined cluster and get a sensible
configuration plus its predicted score.

This is the exhaustive small-space search; the budgeted
successive-halving search over larger spaces lives in
:mod:`repro.campaign.tuner`. Both route every trial through
:func:`repro.api.run`, so each candidate is a canonical
:class:`~repro.spec.RunSpec` and the winning entry carries the full
:class:`~repro.obs.result.RunResult` (metrics included) and its spec
hash.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import api
from repro.spec import RunSpec

GB = 1024**3


@dataclass(frozen=True)
class TuneResult:
    """The chosen configuration and its predicted performance.

    ``result`` is the winning trial's full RunResult (metrics, trace)
    and ``spec_hash`` its canonical configuration hash — both filled by
    :func:`tune`, left ``None`` only when constructed by hand.
    """

    n: int
    nb: int
    p: int
    q: int
    lookahead: str
    tflops: float
    efficiency: float
    spec_hash: Optional[str] = None
    result: Optional[object] = None

    def describe(self) -> str:
        return (
            f"N={self.n} NB={self.nb} grid {self.p}x{self.q} "
            f"lookahead={self.lookahead}: predicted {self.tflops:.2f} TFLOPS "
            f"({100 * self.efficiency:.1f}%)"
        )


def grid_shapes(nodes: int) -> List[Tuple[int, int]]:
    """All P x Q factorisations with P <= Q (the HPL recommendation).

    Deterministic, documented ordering: ascending P (therefore
    descending Q), ending at the most-square shape — ``grid_shapes(100)
    == [(1, 100), (2, 50), (4, 25), (5, 20), (10, 10)]``. Callers that
    tie-break "first wins" therefore prefer squarer grids last, and the
    campaign tuner's candidate order is reproducible.
    """
    if nodes < 1:
        raise ValueError("need at least one node")
    shapes = []
    for p in range(1, int(math.isqrt(nodes)) + 1):
        if nodes % p == 0:
            shapes.append((p, nodes // p))
    return shapes


def problem_size(
    nodes: int, host_mem_bytes: int, fill_fraction: float = 0.8, nb: int = 1200
) -> int:
    """Largest NB-multiple N whose per-node share fits in
    ``fill_fraction`` of host memory (HPL's usual ~80% rule)."""
    if not 0 < fill_fraction <= 1:
        raise ValueError("fill_fraction must be in (0, 1]")
    n_max = math.sqrt(fill_fraction * host_mem_bytes * nodes / 8)
    return max(nb, int(n_max // nb) * nb)


def tune(
    nodes: int,
    cards: int = 1,
    host_mem_gb: float = 64.0,
    fill_fraction: float = 0.8,
    nb_candidates: Tuple[int, ...] = (1200, 2400),
    n: Optional[int] = None,
) -> TuneResult:
    """Pick (N, NB, P, Q, look-ahead) for a cluster and predict its run.

    Every candidate block size and grid shape is scored through
    :func:`repro.api.run` on the hybrid timing model with pipelined
    look-ahead (which dominates everywhere at these scales); the best
    predicted TFLOPS wins.

    Deterministic, documented ordering: NB candidates are deduplicated
    and tried in ascending order, grid shapes in :func:`grid_shapes`
    order (ascending P), and ties keep the *earlier* candidate — so
    identical inputs always return the identical configuration.
    """
    if cards < 1:
        raise ValueError("cards must be >= 1")
    host_mem_bytes = int(host_mem_gb * GB)
    best: Optional[TuneResult] = None
    for nb in sorted(set(nb_candidates)):
        n_run = n if n is not None else problem_size(
            nodes, host_mem_bytes, fill_fraction, nb
        )
        for p, q in grid_shapes(nodes):
            spec = RunSpec(
                kind="hybrid",
                n=n_run,
                nb=nb,
                p=p,
                q=q,
                cards=cards,
                mem_gb=float(host_mem_gb),
                lookahead="pipelined",
            )
            r = api.run(spec)
            cand = TuneResult(
                n=n_run,
                nb=nb,
                p=p,
                q=q,
                lookahead="pipelined",
                tflops=r.tflops,
                efficiency=r.efficiency,
                spec_hash=spec.canonical_hash(),
                result=r,
            )
            if best is None or cand.tflops > best.tflops:
                best = cand
    assert best is not None
    return best
