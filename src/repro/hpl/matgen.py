"""HPL-style pseudo-random matrix generation.

HPL fills the matrix with a 64-bit linear congruential generator so that
any process can reproduce any sub-block of the global matrix without
communication. We implement the same structure: a jumpable LCG with
HPL's multiplier/increment, mapped to uniform values in [-0.5, 0.5].
The jump capability (:func:`lcg_jump`) is what the distributed generator
in :mod:`repro.cluster` uses to fill local block-cyclic pieces that agree
with the global matrix.
"""

from __future__ import annotations

import numpy as np

#: HPL_rand's multiplier and increment (HPL's [DI]RAND with 2^64 modulus
#: here; reference HPL uses 2^31-style splits of the same recurrence).
LCG_MULT = 6364136223846793005
LCG_ADD = 1442695040888963407
_MASK = (1 << 64) - 1


def lcg_jump(seed: int, steps: int) -> int:
    """State after ``steps`` LCG iterations from ``seed``, in O(log steps).

    Uses the standard power-of-the-affine-map trick: the k-step map is
    x -> A^k x + c (A^k - 1)/(A - 1), computed by repeated squaring.
    """
    if steps < 0:
        raise ValueError("cannot jump backwards")
    a, c = LCG_MULT, LCG_ADD
    a_acc, c_acc = 1, 0
    while steps:
        if steps & 1:
            a_acc = (a_acc * a) & _MASK
            c_acc = (c_acc * a + c) & _MASK
        c = (c * (a + 1)) & _MASK
        a = (a * a) & _MASK
        steps >>= 1
    return (a_acc * seed + c_acc) & _MASK


def _states_to_uniform(states: np.ndarray) -> np.ndarray:
    """Map raw 64-bit states to doubles in [-0.5, 0.5)."""
    return (states >> np.uint64(11)).astype(np.float64) / float(1 << 53) - 0.5


_POW_CACHE: dict = {}


def _lcg_tables(count: int) -> tuple:
    """(A^k, sum_{i<k} A^i) for k = 1..count, modulo 2^64, vectorised."""
    cached = _POW_CACHE.get("tables")
    if cached is not None and cached[0].size >= count:
        pows, sums = cached
        return pows[:count], sums[:count]
    with np.errstate(over="ignore"):
        pows = np.full(count, LCG_MULT, dtype=np.uint64)
        np.multiply.accumulate(pows, out=pows)  # A^1 .. A^count, wrapping
        # sum_{i<k} A^i for k=1..count: 1, 1+A, 1+A+A^2, ...
        sums = np.empty(count, dtype=np.uint64)
        sums[0] = 1
        if count > 1:
            sums[1:] = pows[:-1]
        np.add.accumulate(sums, out=sums)
    _POW_CACHE["tables"] = (pows, sums)
    return pows, sums


def lcg_stream(seed: int, count: int) -> np.ndarray:
    """``count`` consecutive uniform values starting *after* ``seed``.

    The k-th state is A^k s + c * sum_{i<k} A^i (mod 2^64), computed
    vectorised from accumulated power tables — the LCG recurrence itself
    is serial, but the closed form is not.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return np.empty(0, dtype=np.float64)
    pows, sums = _lcg_tables(count)
    with np.errstate(over="ignore"):
        states = pows * np.uint64(seed & _MASK) + sums * np.uint64(LCG_ADD)
    return _states_to_uniform(states)


def hpl_matrix(
    n: int, seed: int = 42, m: int | None = None, dtype=np.float64
) -> np.ndarray:
    """The (m x n) HPL input matrix (square by default).

    Element (i, j) is the (j * m + i)-th value of the LCG stream
    (column-major numbering, as HPL fills column panels), so any
    sub-block is reproducible via :func:`hpl_submatrix`.

    ``dtype`` narrows the *storage* precision only: the stream is always
    generated in float64 and rounded once on store, so a float32 matrix
    is the bitwise rounding of the float64 one — every precision sees
    the same underlying matrix, which is what lets mixed-precision
    refinement compute DP residuals against the SP factorization's input.
    """
    if n < 1:
        raise ValueError("n must be positive")
    m = n if m is None else m
    total = m * n
    # Fill column-major in one vectorised pass: precompute all states via
    # cumulative application is serial, so generate per column with jumps.
    out = np.empty((m, n), dtype=dtype)
    for j in range(n):
        s = lcg_jump(seed, j * m)
        out[:, j] = lcg_stream(s, m)
    return out


def hpl_submatrix(
    n: int, rows: np.ndarray, cols: np.ndarray, seed: int = 42,
    dtype=np.float64,
) -> np.ndarray:
    """The sub-matrix A[rows][:, cols] of the global n x n HPL matrix,
    generated without materialising the global matrix — what each rank
    of the distributed HPL does for its block-cyclic local piece.

    As in :func:`hpl_matrix`, ``dtype`` rounds the float64 stream on
    store, so an SP local piece agrees elementwise with the rounded
    global SP matrix."""
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    if rows.size and (rows.min() < 0 or rows.max() >= n):
        raise IndexError("row index out of range")
    if cols.size and (cols.min() < 0 or cols.max() >= n):
        raise IndexError("column index out of range")
    out = np.empty((rows.size, cols.size), dtype=dtype)
    for jj, j in enumerate(cols):
        # Generate the needed entries of column j.
        col_seed = lcg_jump(seed, int(j) * n)
        col = lcg_stream(col_seed, int(rows.max()) + 1 if rows.size else 0)
        out[:, jj] = col[rows]
    return out


def hpl_system(n: int, seed: int = 42, dtype=np.float64) -> tuple:
    """(A, b) with b also drawn from the generator (HPL appends b as an
    extra column of the random matrix). ``dtype`` narrows storage as in
    :func:`hpl_matrix`; b is narrowed the same way."""
    a = hpl_matrix(n, seed, dtype=dtype)
    b_seed = lcg_jump(seed, n * n)
    b = lcg_stream(b_seed, n).astype(dtype, copy=False)
    return a, b
