"""The HPL acceptance test.

HPL accepts a solve when the scaled residual

    ||A x - b||_inf / (eps * (||A||_inf * ||x||_inf + ||b||_inf) * n)

is below a threshold (16.0 in the reference implementation). This is the
check every benchmark run in this repository — native, hybrid, and
multi-node — must pass when run in numeric mode.
"""

from __future__ import annotations

import numpy as np

#: The reference implementation's acceptance threshold.
HPL_THRESHOLD = 16.0


def hpl_residual(
    a: np.ndarray, x: np.ndarray, b: np.ndarray, eps_dtype=np.float64
) -> float:
    """The HPL scaled residual of a proposed solution.

    The residual arithmetic always runs in float64; ``eps_dtype`` sets
    the machine epsilon the residual is scaled by. The default (double)
    is the standard HPL check — the one MxP-refined solutions must pass.
    A pure single-precision solve should be judged against its own
    epsilon (``eps_dtype=np.float32``): the same x that fails the DP
    check by 2^29 is a perfectly good SP solve.
    """
    a = np.asarray(a, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("A must be square")
    n = a.shape[0]
    if x.shape != (n,) or b.shape != (n,):
        raise ValueError("x and b must be length-n vectors")
    if n == 0:
        return 0.0
    r_inf = np.abs(a @ x - b).max()
    a_inf = np.abs(a).sum(axis=1).max()
    x_inf = np.abs(x).max()
    b_inf = np.abs(b).max()
    eps = np.finfo(eps_dtype).eps
    denom = eps * (a_inf * x_inf + b_inf) * n
    if denom == 0.0:
        return 0.0 if r_inf == 0.0 else np.inf
    return float(r_inf / denom)


def residual_passes(
    a: np.ndarray, x: np.ndarray, b: np.ndarray,
    threshold: float = HPL_THRESHOLD, eps_dtype=np.float64,
) -> bool:
    """Whether the solve passes the HPL acceptance test."""
    return hpl_residual(a, x, b, eps_dtype=eps_dtype) < threshold
