"""Native Linpack driver (Section IV) and the Sandy Bridge baseline.

:class:`NativeHPL` runs the benchmark entirely "on the card": the
factorization goes through one of the paper's two schedulers on the
simulated Knights Corner, the solve is charged as a bandwidth-bound pass,
and — in numeric mode — the whole thing actually computes x and checks
the HPL residual.

The Sandy Bridge curve of Figure 6 (MKL SMP Linpack) is an analytic
baseline calibrated to the paper's two published points: 83% at N=30K
(Figure 6) and 86.4% at N=84K (Table III's CPU-only row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.blas.buffers import as_buffer_pool
from repro.hpl.matgen import hpl_system
from repro.hpl.mxp import expected_iterations, refine_model_time_s, refine_to_double
from repro.hpl.residual import hpl_residual, residual_passes
from repro.lu.dynamic import DynamicScheduler, ScheduleResult
from repro.lu.factorize import lu_solve
from repro.lu.static_la import StaticLookaheadScheduler
from repro.lu.tasks import LUWorkspace
from repro.lu.timing import LUTiming
from repro.machine.calibration import default_calibration
from repro.machine.config import SNB
from repro.obs import AllocProfiler, MetricsRegistry, RunResult
from repro.parallel import EXECUTOR_BACKENDS, make_executor
from repro.sim import TraceRecorder

#: Anchors for the SNB MKL Linpack curve: (N, efficiency).
_SNB_ANCHORS = ((30000.0, 0.83), (84000.0, 0.864))


def _snb_fit() -> tuple:
    """Fit eff(N) = E_inf * N / (N + n0) through the two paper anchors."""
    (n1, e1), (n2, e2) = _SNB_ANCHORS
    # e2/e1 = (n2 (n1 + n0)) / (n1 (n2 + n0))  ->  solve for n0.
    r = e2 / e1
    n0 = n1 * n2 * (r - 1.0) / (n2 - r * n1)
    e_inf = e1 * (n1 + n0) / n1
    return e_inf, n0


_SNB_EINF, _SNB_N0 = _snb_fit()


def snb_hpl_efficiency(n: int) -> float:
    """MKL SMP Linpack efficiency on the dual-socket E5-2670 vs N."""
    if n < 1:
        raise ValueError("n must be positive")
    return _SNB_EINF * n / (n + _SNB_N0)


def snb_hpl_gflops(n: int) -> float:
    """The corresponding achieved GFLOPS (333 GFLOPS peak)."""
    return snb_hpl_efficiency(n) * SNB.peak_dp_gflops()


@dataclass
class HPLResult(RunResult):
    """One benchmark run's report row."""

    n: int
    nb: int
    scheduler: str
    time_s: float
    gflops: float
    efficiency: float
    trace: Optional[TraceRecorder] = None
    residual: Optional[float] = None
    passed: Optional[bool] = None
    metrics: Optional[MetricsRegistry] = None
    alloc: Optional[dict] = None
    dtype: str = "float64"
    #: Model seconds of the factorization phase (SP for MxP runs).
    factor_time_s: Optional[float] = None
    #: Model seconds of the MxP refinement phase (None unless mxp).
    refine_time_s: Optional[float] = None
    #: :meth:`repro.hpl.mxp.RefineReport.to_dict` of the refinement loop.
    refine: Optional[dict] = None

    kind = "native"


class NativeHPL:
    """The native Knights Corner Linpack benchmark."""

    SCHEDULERS = {"dynamic": DynamicScheduler, "static": StaticLookaheadScheduler}

    def __init__(
        self,
        n: int,
        nb: int = 300,
        scheduler: str = "dynamic",
        timing: Optional[LUTiming] = None,
        workers: Optional[int] = None,
        executor: str = "thread",
        pack_cache: bool = True,
        buffer_pool: bool = True,
        alloc_profile: bool = False,
        dtype: str = "float64",
        mxp: bool = False,
        refine_tol: float = 1.0,
        refine_max_iters: int = 8,
    ):
        if scheduler not in self.SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; pick from {sorted(self.SCHEDULERS)}"
            )
        if executor not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_BACKENDS}, got {executor!r}"
            )
        if dtype not in ("float64", "float32"):
            raise ValueError(f"dtype must be 'float64' or 'float32', got {dtype!r}")
        if mxp and dtype != "float32":
            raise ValueError("mxp factors in single precision: set dtype='float32'")
        self.n = n
        self.nb = nb
        self.scheduler_name = scheduler
        self.workers = workers
        self.executor = executor
        self.pack_cache = pack_cache
        self.buffer_pool = buffer_pool
        self.alloc_profile = alloc_profile
        self.dtype = dtype
        self.mxp = mxp
        self.refine_tol = refine_tol
        self.refine_max_iters = refine_max_iters
        self.itemsize = 4 if dtype == "float32" else 8
        self.timing = timing or LUTiming(dtype_bytes=self.itemsize)
        cal = self.timing.cal or default_calibration()
        mem_needed = self.itemsize * n * n
        if mem_needed > self.timing.machine.dram_bytes:
            raise ValueError(
                f"N={n} needs {mem_needed / 2**30:.1f} GiB but the card has "
                f"{self.timing.machine.dram_bytes / 2**30:.0f} GiB — the memory "
                "limit that motivates the hybrid implementation (Section V)"
            )

    def _make_scheduler(self):
        cls = self.SCHEDULERS[self.scheduler_name]
        return cls(self.n, nb=self.nb, timing=self.timing)

    def solve_time_s(self) -> float:
        """Forward+back substitution: 2 n^2 FLOPs, bandwidth-bound (the
        whole factored matrix streams through once, at its own width)."""
        bytes_touched = self.itemsize * self.n * self.n
        return bytes_touched / (self.timing.machine.stream_bw_gbs * 1e9)

    def refine_time_model_s(self, iterations: Optional[int] = None) -> float:
        """Model seconds of MxP refinement; ``iterations`` defaults to the
        condition-number rule of thumb when no measured count exists."""
        iters = expected_iterations(self.n) if iterations is None else iterations
        return refine_model_time_s(self.n, iters, self.timing.machine)

    def run(self, numeric: bool = False, seed: int = 42) -> HPLResult:
        """Run the benchmark; ``numeric=True`` also computes and checks x
        (keep N modest — the matrix is materialised).

        Numeric runs execute every trailing update on the pack-once +
        tile-executor substrate (``workers`` wide, all cores by default;
        ``pack_cache=False`` reverts to plain NumPy updates); the cache
        and pool counters land in the result's metrics registry. With
        ``buffer_pool`` (default on) the kernels rent their scratch from
        a :class:`~repro.blas.buffers.BufferPool` — bitwise identical to
        ``buffer_pool=False``, the allocating A/B ablation — and
        ``alloc_profile`` wraps the factor/solve phases in tracemalloc
        spans recorded as the result's ``alloc`` field.
        """
        workspace = None
        executor = None
        pool = None
        a0 = b = None
        np_dtype = np.float32 if self.dtype == "float32" else np.float64
        profiler = AllocProfiler(enabled=numeric and self.alloc_profile)
        if numeric:
            if self.mxp:
                # DP ground truth for residuals; the factorization works on
                # its one-time rounding to SP.
                a0, b = hpl_system(self.n, seed)
                a_work = a0.astype(np.float32)
            else:
                a0, b = hpl_system(self.n, seed, dtype=np_dtype)
                a_work = a0.copy()
            executor = make_executor(self.executor, self.workers)
            pool = as_buffer_pool(self.buffer_pool)
            workspace = LUWorkspace(
                a_work,
                self.nb,
                pack_cache=self.pack_cache,
                executor=executor,
                buffer_pool=pool,
            )
        sched = self._make_scheduler()
        with profiler.span("hpl.factor"):
            result: ScheduleResult = sched.run(workspace)
        # Carry the scheduler's registry forward and add the HPL-level view.
        metrics = result.metrics or MetricsRegistry()

        residual = passed = None
        refine_report = None
        refine_iters = None
        if numeric:
            with profiler.span("hpl.solve"):
                ipiv = workspace.finalize()
                if self.mxp:
                    with profiler.span("hpl.refine"):
                        x, report = refine_to_double(
                            a0, b, workspace.a, ipiv,
                            tol=self.refine_tol,
                            max_iters=self.refine_max_iters,
                            pool=pool,
                            fallback_nb=self.nb,
                            fallback_workers=executor,
                        )
                    refine_report = report
                    refine_iters = report.iterations
                else:
                    x = lu_solve(workspace.a, ipiv, np.asarray(b), pool=pool)
            # MxP solutions face the standard DP acceptance test; a pure SP
            # run is judged against its own machine epsilon.
            eps_dtype = np.float64 if self.mxp else np_dtype
            residual = hpl_residual(a0, x, b, eps_dtype=eps_dtype)
            passed = residual_passes(a0, x, b, eps_dtype=eps_dtype)

        refine_time = None
        if self.mxp:
            refine_time = self.refine_time_model_s(refine_iters)
        time_s = result.makespan_s + self.solve_time_s() + (refine_time or 0.0)
        flops = LUTiming.hpl_flops(self.n)
        gflops = flops / time_s / 1e9
        peak = self.timing.machine.peak_gflops(
            self.itemsize, self.timing.machine.compute_cores
        )
        metrics.gauge("hpl.factor_time_s").set(result.makespan_s)
        metrics.gauge("hpl.solve_time_s").set(self.solve_time_s())
        if refine_time is not None:
            metrics.gauge("hpl.refine_time_s").set(refine_time)
        if refine_iters is not None:
            metrics.gauge("hpl.refine_iterations").set(refine_iters)
        out = HPLResult(
            n=self.n,
            nb=self.nb,
            scheduler=self.scheduler_name,
            time_s=time_s,
            gflops=gflops,
            efficiency=gflops / peak,
            trace=result.trace,
            metrics=metrics,
            dtype=self.dtype,
            factor_time_s=result.makespan_s,
            refine_time_s=refine_time,
            refine=refine_report.to_dict() if refine_report else None,
        )
        if numeric:
            out.residual = residual
            out.passed = passed
            if workspace.pack_cache is not None:
                workspace.pack_cache.publish(metrics)
            if pool is not None:
                pool.publish(metrics)
            profiler.publish(metrics)
            out.alloc = profiler.to_dict()
            executor.publish(metrics)
            executor.close()
        profiler.close()
        return out
