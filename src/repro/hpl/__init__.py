"""The Linpack (HPL) benchmark core.

HPL solves a dense pseudo-random system A x = b by LU factorization with
partial pivoting, counts 2/3 n^3 + 2 n^2 operations, and accepts the run
if the scaled residual passes the standard threshold. This package
provides the benchmark machinery shared by the native (Section IV) and
hybrid (Section V) flavours:

* :mod:`repro.hpl.matgen` — the HPL-style pseudo-random matrix generator;
* :mod:`repro.hpl.residual` — norms and the HPL acceptance test;
* :mod:`repro.hpl.driver` — the native-KNC benchmark driver running the
  paper's schedulers, plus the MKL-on-Sandy-Bridge baseline curve.
"""

from repro.hpl.matgen import hpl_matrix, hpl_system
from repro.hpl.residual import hpl_residual, residual_passes, HPL_THRESHOLD
from repro.hpl.driver import NativeHPL, HPLResult, snb_hpl_efficiency, snb_hpl_gflops
from repro.hpl.tuner import tune, TuneResult, grid_shapes, problem_size

__all__ = [
    "tune",
    "TuneResult",
    "grid_shapes",
    "problem_size",
    "hpl_matrix",
    "hpl_system",
    "hpl_residual",
    "residual_passes",
    "HPL_THRESHOLD",
    "NativeHPL",
    "HPLResult",
    "snb_hpl_efficiency",
    "snb_hpl_gflops",
]
