"""Batched replay of the basic kernels' fixed instruction schedules.

The per-instruction emulator in :mod:`repro.machine.vector` dispatches
every vmadd as a Python method call — 32 dispatches per k iteration per
tile. But the kernels' inner loops are *static*: Figure 2b/2c issue the
same 32-instruction sequence every iteration, with only the operand
addresses advancing. This module exploits that by compiling each kernel
family once into a :class:`KernelSchedule` and replaying it over a whole
batch of tiles as one vectorized NumPy sweep per k iteration.

Two invariants tie the batched path to the per-instruction reference:

* **bitwise-identical values.** Iteration i of every kernel computes
  ``c[r] += a[i, r] * b_row[i]`` for each held row r — one rounded
  multiply, then one rounded add, per element, in k-ascending order.
  The batched sweep ``c += a[:, i, :, None] * b[:, i, None, :]``
  performs exactly those two rounded operations in exactly that order
  (rows and lanes are independent elements, so fusing them into one
  array op cannot reorder any sum). The broadcast/swizzle flavours only
  *replicate* operand values — they never round — so Kernel 2's first
  four swizzled rows compute the same products as its memory-broadcast
  rows.
* **exact instruction census.** The per-iteration instruction mix is a
  constant of the schedule, so the census over k iterations and T tiles
  is ``k * T * mix`` plus the ``rows * T`` final stores — reproduced
  analytically by :meth:`KernelSchedule.census` and checked against the
  step-by-step emulator's counters in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.machine.vector import VLEN, InstructionCounts

#: Lanes of a 512-bit register in single precision.
_SP_LANES = 16


@dataclass(frozen=True)
class IterationMix:
    """Vector-instruction mix of one k-loop iteration, by flavour."""

    vmadd: int
    vmadd_mem: int
    load: int
    broadcast: int
    swizzle_use: int
    prefetch: int


@dataclass(frozen=True)
class KernelSchedule:
    """A kernel's inner loop, compiled once: geometry + instruction mix.

    ``rows`` c rows held in registers, ``lanes``-wide registers of
    ``dtype``; ``mix`` is the per-iteration instruction census the
    analytic counters replay.
    """

    name: str
    rows: int
    lanes: int
    dtype: np.dtype
    mix: IterationMix

    def census(self, k: int, n_tiles: int = 1) -> InstructionCounts:
        """The exact instruction census of ``n_tiles`` tile multiplies
        of depth ``k`` — what the per-instruction emulator would count."""
        if k < 1 or n_tiles < 1:
            raise ValueError("census needs k >= 1 and n_tiles >= 1")
        m, t = self.mix, n_tiles
        return InstructionCounts(
            vmadd=m.vmadd * k * t,
            vmadd_mem=m.vmadd_mem * k * t,
            load=m.load * k * t,
            store=self.rows * t,  # the final c writeback, once per tile
            broadcast=m.broadcast * k * t,
            swizzle_use=m.swizzle_use * k * t,
            prefetch=m.prefetch * k * t,
        )

    def add_census(self, counts: InstructionCounts, k: int, n_tiles: int = 1) -> None:
        """Accumulate :meth:`census` into an existing counter (the
        batched analogue of running the kernels on one VectorMachine)."""
        add = self.census(k, n_tiles)
        counts.vmadd += add.vmadd
        counts.vmadd_mem += add.vmadd_mem
        counts.load += add.load
        counts.store += add.store
        counts.broadcast += add.broadcast
        counts.swizzle_use += add.swizzle_use
        counts.prefetch += add.prefetch

    def execute(
        self,
        a_tiles: np.ndarray,
        b_tiles: np.ndarray,
        counts: InstructionCounts | None = None,
    ) -> np.ndarray:
        """Multiply a batch of packed tile pairs: (T, k, rows) x
        (T, k, lanes) -> (T, rows, lanes).

        One NumPy sweep per k iteration replaces T * 32 emulator
        dispatches; values and (with ``counts``) the instruction census
        are exactly those of the per-instruction path.
        """
        a_tiles = np.asarray(a_tiles, dtype=self.dtype)
        b_tiles = np.asarray(b_tiles, dtype=self.dtype)
        if a_tiles.ndim != 3 or b_tiles.ndim != 3:
            raise ValueError("batched tiles must be 3-D (tile, k, row/lane)")
        if a_tiles.shape[:2] != b_tiles.shape[:2]:
            raise ValueError(
                f"batch/k mismatch: a {a_tiles.shape[:2]} vs b {b_tiles.shape[:2]}"
            )
        if a_tiles.shape[2] != self.rows:
            raise ValueError(f"{self.name} holds {self.rows} rows, "
                             f"got a tiles of {a_tiles.shape[2]}")
        if b_tiles.shape[2] != self.lanes:
            raise ValueError(f"{self.name} registers are {self.lanes} wide, "
                             f"got b tiles of {b_tiles.shape[2]}")
        t, k = a_tiles.shape[:2]
        if k < 1:
            raise ValueError("tiles must have k >= 1")
        c = np.zeros((t, self.rows, self.lanes), dtype=self.dtype)
        for i in range(k):
            # Iteration i of every tile at once: one rounded multiply
            # then one rounded add per c element, in the emulator's
            # k-ascending order.
            c += a_tiles[:, i, :, None] * b_tiles[:, i, None, :]
        if counts is not None:
            self.add_census(counts, k, t)
        return c


@lru_cache(maxsize=None)
def schedule_for(rows: int, lanes: int = VLEN) -> KernelSchedule:
    """The compiled schedule for a kernel geometry.

    (31, 8) is Basic Kernel 1, (30, 8) Basic Kernel 2, (30, 16) the
    SGEMM flavour of Kernel 2. The mixes restate Figure 2b/2c: Kernel 1
    spends 31 of its 32 vector slots on memory-broadcast vmadds; Kernel
    2 spends 30, four of them swizzle-fed from the 4toN broadcast
    register so 28 of 32 slots touch the L1 ports.
    """
    if rows == 31 and lanes == VLEN:
        return KernelSchedule(
            name="basic_kernel_1",
            rows=31,
            lanes=VLEN,
            dtype=np.dtype(np.float64),
            mix=IterationMix(
                vmadd=31, vmadd_mem=31, load=1, broadcast=0,
                swizzle_use=0, prefetch=2,
            ),
        )
    if rows == 30 and lanes in (VLEN, _SP_LANES):
        return KernelSchedule(
            name="basic_kernel_2" if lanes == VLEN else "basic_kernel_2_sp",
            rows=30,
            lanes=lanes,
            dtype=np.dtype(np.float64 if lanes == VLEN else np.float32),
            mix=IterationMix(
                vmadd=30, vmadd_mem=26, load=1, broadcast=1,
                swizzle_use=4, prefetch=2,
            ),
        )
    raise ValueError(
        f"no basic kernel holds {rows} rows of {lanes} lanes "
        f"(know (31, 8), (30, 8) and (30, 16))"
    )
