"""Named machine-model profiles for the declarative RunSpec layer.

The paper's Table III evaluates the same benchmark across a handful of
*node models* — one or two Knights Corner cards, 64 or 128 GB hosts —
and real HPL deployments keep a per-machine tuning table rather than a
single configuration. This registry gives those node models stable
names so a :class:`~repro.spec.RunSpec` (and a campaign YAML file) can
say ``machine: knc-2card-64gb`` instead of repeating ``cards=2,
mem_gb=64`` everywhere, and so the campaign tuner can emit a
"best config per machine model" table keyed by profile name.

Profiles deliberately stay thin: they only pin the knobs the drivers
already accept (``cards``, host memory). Hypothetical architectures
are added by registering a new profile, not by editing call sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class MachineProfile:
    """One named node model a RunSpec can target."""

    name: str
    description: str
    cards: int
    mem_gb: float

    def spec_overrides(self) -> dict:
        """The RunSpec field values this profile pins."""
        return {"cards": self.cards, "mem_gb": self.mem_gb}


#: The registry, keyed by profile name. Insertion order is the
#: presentation order of per-machine reports (Table III's order).
MACHINE_PROFILES: Dict[str, MachineProfile] = {
    p.name: p
    for p in (
        MachineProfile(
            "knc-1card-64gb",
            "dual-socket SNB host, one KNC card, 64 GB (Table III baseline)",
            cards=1,
            mem_gb=64.0,
        ),
        MachineProfile(
            "knc-2card-64gb",
            "dual-socket SNB host, two KNC cards, 64 GB",
            cards=2,
            mem_gb=64.0,
        ),
        MachineProfile(
            "knc-1card-128gb",
            "dual-socket SNB host, one KNC card, 128 GB (Table III last row)",
            cards=1,
            mem_gb=128.0,
        ),
    )
}


def machine_profile(name: str) -> MachineProfile:
    """Look up a profile by name with a helpful error."""
    try:
        return MACHINE_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown machine profile {name!r}; "
            f"pick from {sorted(MACHINE_PROFILES)}"
        ) from None


def profile_names() -> Tuple[str, ...]:
    """Registry keys in presentation order."""
    return tuple(MACHINE_PROFILES)
