"""Main-memory bandwidth model (STREAM numbers from Table I).

Bandwidth-bound kernels in the timing layer (packing, DLASWP row
swapping, the copy half of offload DGEMM) charge time through
:class:`MemoryModel`, which shares a machine's STREAM bandwidth among the
concurrent consumers and supports reserving a fraction for competing
traffic (the paper notes PCIe transfers compete with swapping and host
DGEMM for memory bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.config import MachineConfig


def stream_time_s(bytes_moved: float, bw_gbs: float) -> float:
    """Seconds to move ``bytes_moved`` at ``bw_gbs`` GB/s."""
    if bw_gbs <= 0:
        raise ValueError("bandwidth must be positive")
    if bytes_moved < 0:
        raise ValueError("bytes must be non-negative")
    return bytes_moved / (bw_gbs * 1e9)


@dataclass
class MemoryModel:
    """Shared-bandwidth model for one machine's DRAM."""

    machine: MachineConfig
    #: Fraction of STREAM bandwidth actually available to the consumer
    #: (the rest is lost to competing traffic such as PCIe DMA).
    available_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.available_fraction <= 1:
            raise ValueError("available_fraction must be in (0, 1]")

    @property
    def effective_bw_gbs(self) -> float:
        return self.machine.stream_bw_gbs * self.available_fraction

    def transfer_time_s(self, bytes_moved: float, sharers: int = 1) -> float:
        """Seconds to move bytes when ``sharers`` streams share the bus."""
        if sharers < 1:
            raise ValueError("sharers must be >= 1")
        return stream_time_s(bytes_moved, self.effective_bw_gbs / sharers)

    def copy_time_s(self, bytes_copied: float, sharers: int = 1) -> float:
        """Seconds for a copy (reads + writes: 2x traffic)."""
        return self.transfer_time_s(2 * bytes_copied, sharers)
