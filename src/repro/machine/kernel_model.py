"""Cycle/efficiency model for the two DGEMM basic kernels (Section III-A2).

The paper's efficiency analysis is instruction-count arithmetic over the
32-instruction inner loop:

* **Basic Kernel 1** keeps 31 rows of the c tile in registers v0..v30 and
  loads a row of b into v31; each iteration issues 1 vector load plus 31
  vmadds whose second operand is a 1to8 memory broadcast. 31 of 32 vector
  slots do useful FLOPs: theoretical efficiency 31/32 = 96.9%. But all 32
  instructions touch the L1 ports, so the two prefetch fills per iteration
  (one line of b + on average one of the four shared lines of a) find no
  free port and stall the core: 31/(32+2) ~ 91%.

* **Basic Kernel 2** gives up one accumulator row (30 rows in v0..v29),
  adds a 4to8 broadcast of the first four elements of the a column into
  v30, and replaces the first four memory-broadcast vmadds with
  register-swizzle vmadds. Theoretical efficiency drops to 30/32 = 93.7%,
  but the four swizzle vmadds do not touch memory, creating four port
  "holes" per iteration — enough for the two fills, so no stalls occur and
  the achieved efficiency is higher than Kernel 1's.

:func:`kernel_cycle_model` turns a :class:`KernelSpec` plus the L1 port
model into cycles for one (rows x k) * (k x 8) tile multiply, including
the c-tile update overhead that amortises as 1/k (the "<0.5% at k=240"
remark in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cache import L1PortModel


@dataclass(frozen=True)
class KernelSpec:
    """Static description of a basic kernel's inner loop."""

    name: str
    c_rows: int  # rows of the c tile held in registers
    vector_instrs: int  # vector-pipe instructions per iteration
    vmadds: int  # of which fused multiply-adds
    memory_accessing: int  # of which touch the L1 ports
    fills_per_iter: float  # average prefetch fills arriving per iteration
    #: cycles per c-tile row for the final update of C (calibrated so that
    #: the k=240 overhead is ~0.5% as stated in the paper).
    c_update_cycles_per_row: float = 1.2

    @property
    def holes(self) -> int:
        """Port-free issue cycles per iteration."""
        return self.vector_instrs - self.memory_accessing

    @property
    def theoretical_efficiency(self) -> float:
        """vmadds / vector slots — 96.9% for Kernel 1, 93.7% for Kernel 2."""
        return self.vmadds / self.vector_instrs


#: Basic Kernel 1 (Figure 2b): 1 b-row load + 31 memory-broadcast vmadds.
BASIC_KERNEL_1 = KernelSpec(
    name="basic-kernel-1",
    c_rows=31,
    vector_instrs=32,
    vmadds=31,
    memory_accessing=32,
    fills_per_iter=2.0,
)

#: Basic Kernel 2 (Figure 2c): 1 b-row load + 1 4to8 broadcast + 4 swizzle
#: vmadds (register-only) + 26 memory-broadcast vmadds.
BASIC_KERNEL_2 = KernelSpec(
    name="basic-kernel-2",
    c_rows=30,
    vector_instrs=32,
    vmadds=30,
    memory_accessing=28,
    fills_per_iter=2.0,
)


def iteration_schedule(spec: KernelSpec) -> tuple:
    """The per-cycle L1-port occupancy of one inner-loop iteration, plus
    the prefetch fill arrival cycles — the input to
    :meth:`repro.machine.cache.L1PortModel.walk`.

    The schedule mirrors the code layout of Figure 2: the b-row load
    first, then (for Kernel 2) the 4to8 broadcast and the register-only
    swizzle vmadds, then the memory-broadcast vmadds. Prefetches are
    issued right after the loads, so their fills arrive early in the
    iteration and must find holes (or stall).
    """
    sched = []
    sched.append(True)  # vload of the b row
    holes = spec.holes
    non_mem_vmadds = holes  # swizzle vmadds (Kernel 2) — no port use
    if spec.memory_accessing - (spec.vmadds - non_mem_vmadds) - 1 == 1:
        sched.append(True)  # the 4to8 broadcast (Kernel 2)
    sched.extend([False] * non_mem_vmadds)
    while len(sched) < spec.vector_instrs:
        sched.append(True)
    fills = [1] * round(spec.fills_per_iter)
    return sched, fills


def kernel_cycle_model(
    spec: KernelSpec,
    k: int,
    port_model: L1PortModel | None = None,
) -> float:
    """Cycles for one (c_rows x k) x (k x 8) tile multiply on one thread.

    Each of the ``k`` iterations costs ``vector_instrs`` issue cycles plus
    any pipeline stalls the port model charges for deferred prefetch
    fills; the final update of the c tile adds an O(rows) term that
    amortises as 1/k.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    pm = port_model or L1PortModel()
    stalls = pm.iteration_stalls(
        spec.vector_instrs, spec.memory_accessing, round(spec.fills_per_iter)
    )
    per_iter = spec.vector_instrs + stalls
    update = spec.c_update_cycles_per_row * spec.c_rows
    return k * per_iter + update


def kernel_efficiency(
    spec: KernelSpec,
    k: int,
    port_model: L1PortModel | None = None,
) -> float:
    """Achieved fraction of peak for the tile multiply.

    One vmadd per cycle is peak, so efficiency is useful vmadd cycles
    (``vmadds * k``) over total cycles.
    """
    cycles = kernel_cycle_model(spec, k, port_model)
    return (spec.vmadds * k) / cycles


def stalled_efficiency_bound(spec: KernelSpec, extra_stall_cycles: int) -> float:
    """The paper's quick bound: vmadds / (vector_instrs + stalls).

    For Kernel 1 with two stall cycles this is 31/34 ~ 91%.
    """
    return spec.vmadds / (spec.vector_instrs + extra_stall_cycles)
