"""L1 port/prefetch stall model (Figure 1c) and a small set-associative
cache simulator.

Two separate concerns live here:

* :class:`L1PortModel` reproduces the mechanism in Section II by which an
  L1 prefetch fill competes with memory-operand vector instructions for
  the two L1 ports. A fill needs one cycle in which both the read port
  (victim eviction) and write port (line fill) are free; if every cycle is
  occupied by a memory-accessing vector instruction, the fill is deferred,
  and after ``threshold`` deferrals the core pipeline stalls for
  ``stall_penalty`` cycles to let it complete. This is exactly why Basic
  Kernel 2 trades one vmadd for four register-operand "holes"
  (Section III-A2).

* :class:`CacheSim` is a plain set-associative LRU cache used to
  demonstrate the associativity-conflict argument of Section III-A3: a
  column walk of a row-major matrix with a large power-of-two leading
  dimension thrashes a set, while the packed tile format with its small
  leading dimension does not.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass
class StallReport:
    """Outcome of walking one inner-loop iteration through the port model."""

    cycles: int  # total cycles including stalls
    issue_cycles: int  # cycles spent issuing vector instructions
    stall_cycles: int  # added pipeline stalls
    fills_completed: int
    fills_deferred_total: int  # sum of deferral cycles across fills


class L1PortModel:
    """Deterministic model of the dual-ported L1 described in Section II.

    The model walks a per-cycle schedule of vector instructions; each entry
    says whether that instruction occupies an L1 port (memory operand,
    load, store, broadcast). Prefetch fills arrive at given cycles and
    complete in the first subsequent cycle whose instruction leaves the
    ports free; a fill deferred more than ``threshold`` cycles stalls the
    pipeline for ``stall_penalty`` cycles (during which it completes).
    """

    def __init__(self, threshold: int = 8, stall_penalty: int = 1):
        if threshold < 0 or stall_penalty < 0:
            raise ValueError("threshold and stall_penalty must be non-negative")
        self.threshold = threshold
        self.stall_penalty = stall_penalty

    def walk(
        self,
        mem_access_schedule: Sequence[bool],
        fill_arrivals: Iterable[int],
    ) -> StallReport:
        """Walk one loop iteration.

        Parameters
        ----------
        mem_access_schedule:
            One bool per issue cycle; True if the instruction issued that
            cycle uses an L1 port.
        fill_arrivals:
            Cycle indices (into the schedule) at which prefetch fills
            arrive from L2 and want the ports.
        """
        schedule: List[bool] = list(mem_access_schedule)
        arrivals = sorted(fill_arrivals)
        n = len(schedule)
        for a in arrivals:
            if not 0 <= a <= n:
                raise ValueError(f"fill arrival {a} outside schedule of length {n}")

        stall_cycles = 0
        deferred_total = 0
        completed = 0
        pending: List[int] = []  # arrival cycles of fills not yet completed
        ai = 0
        cycle = 0
        for i, uses_port in enumerate(schedule):
            while ai < len(arrivals) and arrivals[ai] <= i:
                pending.append(arrivals[ai])
                ai += 1
            if pending and not uses_port:
                # A free-port cycle: the oldest pending fill completes.
                arrival = pending.pop(0)
                deferred_total += i - arrival
                completed += 1
            elif pending and i - pending[0] >= self.threshold:
                # Oldest fill has waited too long: stall the pipeline.
                arrival = pending.pop(0)
                deferred_total += i - arrival
                stall_cycles += self.stall_penalty
                completed += 1
            cycle += 1
        # Fills still pending at loop end complete during the wrap-around;
        # in a tight loop the next iteration looks identical, so charge
        # them as if the pattern repeated: stall if no hole existed at all.
        for arrival in pending:
            deferred_total += n - arrival
            if not any(not u for u in schedule):
                stall_cycles += self.stall_penalty
            completed += 1

        return StallReport(
            cycles=n + stall_cycles,
            issue_cycles=n,
            stall_cycles=stall_cycles,
            fills_completed=completed,
            fills_deferred_total=deferred_total,
        )

    def iteration_stalls(
        self, n_vector_instrs: int, n_memory_accessing: int, fills_per_iter: int
    ) -> int:
        """Closed-form stall count for a steady-state iteration.

        With ``holes = n_vector_instrs - n_memory_accessing`` free-port
        cycles per iteration, each fill beyond the holes costs a stall.
        """
        if n_memory_accessing > n_vector_instrs:
            raise ValueError("cannot access memory more often than instructions issue")
        holes = n_vector_instrs - n_memory_accessing
        return max(0, fills_per_iter - holes) * self.stall_penalty


class CacheSim:
    """Set-associative LRU cache simulator (addresses in bytes)."""

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 8):
        if size_bytes % (line_bytes * ways) != 0:
            raise ValueError("size must be a multiple of line_bytes * ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = size_bytes // (line_bytes * ways)
        # One LRU-ordered dict of tags per set.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch ``addr``; returns True on hit."""
        line = addr // self.line_bytes
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        s = self._sets[set_idx]
        if tag in s:
            s.move_to_end(tag)
            self.hits += 1
            return True
        if len(s) >= self.ways:
            s.popitem(last=False)
        s[tag] = True
        self.misses += 1
        return False

    def access_array(self, addrs: Iterable[int]) -> int:
        """Touch a sequence of addresses; returns the miss count added."""
        before = self.misses
        for a in addrs:
            self.access(a)
        return self.misses - before

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
