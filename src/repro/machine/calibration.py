"""Calibration of the timing-layer model constants against anchor points
the paper itself reports.

The *functional forms* of the models come from the paper's own analysis:

* kernel efficiency vs k: ``E0 * k / (k + u)`` — the c-tile update is an
  O(1) overhead amortised over k iterations (Section III-A2);
* L2-spill penalty: a hinge on L2 occupancy — "as k increases, L2 block
  sizes also increase and eventually fall out of L2 cache"
  (Section III-B, explaining the k=340/400 DGEMM dip in Table II);
* packing overhead: quadratic work over cubic compute → ~1/N, plus a
  1/N^2 startup term for the sub-bandwidth small-matrix regime
  (Section III-A3 and Figure 4);
* per-call parallel overhead: fixed cycles for work distribution and
  thread synchronisation, visible only for small matrices (the "scalar
  instructions overhead required to drive DGEMM parallel distribution"
  of Section III-B).

Only the constants are fit, by least squares, against the paper's
published numbers (Table II, Figure 4). The anchors are kept here as
data so EXPERIMENTS.md can compare model output back against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.machine.config import KNC

# --------------------------------------------------------------------------
# Anchor data transcribed from the paper.
# --------------------------------------------------------------------------

#: Table II: DGEMM efficiency vs k at M = N = 28000.
TABLE2_DGEMM = {120: 0.867, 180: 0.886, 240: 0.891, 300: 0.894, 340: 0.893, 400: 0.889}
#: Table II: SGEMM efficiency vs k at M = N = 28000.
TABLE2_SGEMM = {120: 0.883, 180: 0.893, 240: 0.901, 300: 0.904, 340: 0.906, 400: 0.908}
#: Figure 4: packing overhead vs matrix size (fractions of total time).
FIG4_PACKING = {1000: 0.15, 5000: 0.02, 17000: 0.004}
#: Figure 4: kernel-only efficiency at 5K is ~88% (asymptote 89.4%).
FIG4_KERNEL_5K = 0.88
#: The L2 blocking the paper quotes in the bandwidth example (Sec III-A1).
BLOCK_M, BLOCK_N = 120, 32

#: k values where the eff-vs-k model is fit without the spill hinge.
_NO_SPILL_KS_DGEMM = (120, 180, 240, 300)
_SPILL_KS_DGEMM = (340, 400)


def _l2_occupancy_fraction(k: int, elem_bytes: int) -> float:
    """Fraction of the 512 KB L2 used by the m x k / k x n / m x n blocks."""
    occ = elem_bytes * (BLOCK_M * BLOCK_N + BLOCK_M * k + k * BLOCK_N)
    return occ / KNC.l2.size_bytes


def _fit_amortisation(anchors: dict, ks) -> tuple:
    """Fit E0, u in eff(k) = E0 * k/(k+u) over the given anchor ks."""
    ks = np.asarray(ks, dtype=float)
    effs = np.asarray([anchors[int(k)] for k in ks])
    # eff = E0*k/(k+u)  <=>  k/eff = k/E0 + u/E0: linear in (k, 1).
    y = ks / effs
    A = np.column_stack([ks, np.ones_like(ks)])
    slope, intercept = np.linalg.lstsq(A, y, rcond=None)[0]
    e0 = 1.0 / slope
    u = intercept * e0
    return float(e0), float(u)


def _fit_spill(anchors: dict, e0: float, u: float, ks, elem_bytes: int) -> tuple:
    """Fit gamma, theta in penalty = gamma * max(0, occ_frac - theta)."""
    ks = np.asarray(ks, dtype=float)
    predicted = e0 * ks / (ks + u)
    residual = predicted - np.asarray([anchors[int(k)] for k in ks])
    occ = np.asarray([_l2_occupancy_fraction(int(k), elem_bytes) for k in ks])
    # residual = gamma*occ - gamma*theta: linear in (occ, 1).
    A = np.column_stack([occ, np.ones_like(occ)])
    gamma, neg_gt = np.linalg.lstsq(A, residual, rcond=None)[0]
    theta = -neg_gt / gamma if gamma > 0 else 1.0
    return float(max(gamma, 0.0)), float(min(max(theta, 0.0), 1.0))


def _fit_packing(anchors: dict) -> tuple:
    """Fit c1, c2 in overhead(N) = c1*(2/N) + c2*(2/N)^2 (square matrices)."""
    ns = np.asarray(sorted(anchors), dtype=float)
    target = np.asarray([anchors[int(n)] for n in ns])
    x = 2.0 / ns
    A = np.column_stack([x, x * x])
    c1, c2 = np.linalg.lstsq(A, target, rcond=None)[0]
    return float(c1), float(c2)


@dataclass(frozen=True)
class Calibration:
    """Fitted model constants for the KNC timing layer.

    GEMM constants are fit from the paper's anchors; the LU/HPL/offload
    constants below them are calibrated once against the headline numbers
    (native HPL 79% at 30K, offload DGEMM 85.4% at 82K) and then held
    fixed for every experiment.
    """

    # eff(k) = e0 * k/(k+u) - spill
    dgemm_e0: float
    dgemm_u: float
    dgemm_spill_gamma: float
    dgemm_spill_theta: float
    sgemm_e0: float
    sgemm_u: float

    # packing overhead(M, N) = c1*h + c2*h^2 with h = 1/M + 1/N
    pack_c1: float
    pack_c2: float

    # per-GEMM-call fixed overhead (work distribution + sync), in cycles
    gemm_call_overhead_cycles: float

    # ---- native LU / HPL constants (Section IV) -------------------------
    #: DGETRF panel factorization rate on KNC as a fraction of per-core
    #: peak (scaled sub-linearly with group size in
    #: :mod:`repro.lu.timing`). The recursive panel is mostly small-k
    #: GEMM, latency-sensitive on the in-order cores; calibrated so the
    #: native HPL lands at the paper's ~79% at N=30K.
    panel_efficiency_knc: float = 0.18
    #: DTRSM (triangular solve of the U row panel) fraction of peak.
    trsm_efficiency_knc: float = 0.35
    #: DLASWP effective bandwidth as a fraction of STREAM (irregular rows).
    laswp_bw_fraction: float = 0.6
    #: Global-barrier cost across all KNC threads, cycles.
    barrier_cycles_knc: float = 30_000.0
    #: DAG critical-section service time per acquisition, cycles.
    dag_lock_cycles: float = 2_000.0

    # ---- host (SNB) baseline constants -----------------------------------
    #: MKL DGEMM asymptotic efficiency on SNB (Figure 4: ~90%).
    snb_dgemm_e0: float = 0.905
    #: Half-saturation size for the SNB DGEMM size rolloff.
    snb_dgemm_n0: float = 450.0
    #: MKL HPL efficiency on SNB at 30K (Figure 6: 83%).
    snb_hpl_30k: float = 0.83
    #: SNB panel factorization (DGETRF) efficiency — OOO cores do much
    #: better on the latency-bound panel than KNC.
    panel_efficiency_snb: float = 0.45
    #: MKL DTRSM on the host (compute-bound, near-GEMM speed): the U-panel
    #: solve of the hybrid stages (Section V-A).
    trsm_efficiency_snb: float = 0.70
    #: Host DLASWP effective bandwidth fraction: scattered pivot rows are
    #: strided accesses, far below STREAM ("swapping, constrained by both
    #: DRAM and interconnect bandwidth" — Section V-A).
    laswp_host_bw_fraction: float = 0.25

    def dgemm_eff_k(self, k: int) -> float:
        """DGEMM kernel efficiency at block depth k (Table II model)."""
        base = self.dgemm_e0 * k / (k + self.dgemm_u)
        occ = _l2_occupancy_fraction(k, elem_bytes=8)
        return base - self.dgemm_spill_gamma * max(0.0, occ - self.dgemm_spill_theta)

    def sgemm_eff_k(self, k: int) -> float:
        """SGEMM kernel efficiency at block depth k (no spill: blocks are
        half the size and stay inside L2 for the swept range)."""
        return self.sgemm_e0 * k / (k + self.sgemm_u)

    def packing_overhead(self, m: int, n: int) -> float:
        """Packing time as a fraction of total GEMM time (Figure 4)."""
        h = 0.5 * (1.0 / m + 1.0 / n)  # = 1/N for square matrices
        x = 2.0 * h
        return float(min(0.95, max(0.0, self.pack_c1 * x + self.pack_c2 * x * x)))


@lru_cache(maxsize=1)
def default_calibration() -> Calibration:
    """Fit and memoise the default calibration from the paper anchors."""
    d_e0, d_u = _fit_amortisation(TABLE2_DGEMM, _NO_SPILL_KS_DGEMM)
    gamma, theta = _fit_spill(TABLE2_DGEMM, d_e0, d_u, _SPILL_KS_DGEMM, elem_bytes=8)
    s_e0, s_u = _fit_amortisation(TABLE2_SGEMM, tuple(TABLE2_SGEMM))
    c1, c2 = _fit_packing(FIG4_PACKING)

    # Per-call overhead from the Figure 4 kernel-only 5K anchor: the model
    # without overhead predicts eff(k=300); the anchor says 88%.
    n5k = 5000
    eff_inf = d_e0 * 300 / (300 + d_u)
    compute_cycles = (
        2.0 * n5k * n5k * 300 / (KNC.flops_per_cycle_per_core_dp() * KNC.compute_cores)
    )
    overhead = compute_cycles * (eff_inf / FIG4_KERNEL_5K - 1.0)
    return Calibration(
        dgemm_e0=d_e0,
        dgemm_u=d_u,
        dgemm_spill_gamma=gamma,
        dgemm_spill_theta=theta,
        sgemm_e0=s_e0,
        sgemm_u=s_u,
        pack_c1=c1,
        pack_c2=c2,
        gemm_call_overhead_cycles=float(max(overhead, 0.0)),
    )
