"""Analytic GEMM timing/efficiency model for the Knights Corner and
Sandy Bridge machines.

This is the timing half of the DGEMM reproduction: given matrix sizes and
block depth k it predicts the achieved fraction of peak and wall time,
combining

* the kernel amortisation model eff(k) = E0 * k/(k+u) with the L2-spill
  hinge (calibrated to Table II),
* tile-quantisation load imbalance across the 60 compute cores,
* the fixed per-call distribution/synchronisation overhead,
* optionally the packing overhead curve of Figure 4.

The model regenerates Table II (efficiency vs k), Figure 4 (efficiency vs
size, with and without packing), and supplies per-task durations to the
LU/HPL discrete-event simulations.
"""

from __future__ import annotations

import math

from repro.machine.calibration import Calibration, default_calibration
from repro.machine.config import KNC, SNB, MachineConfig

#: Tile footprint of the basic kernel: 30 rows (Kernel 2) x 8 columns.
TILE_ROWS = 30
TILE_COLS = 8


def _quantisation_utilisation(m: int, n: int, threads: int) -> float:
    """Fraction of thread-cycles doing useful work when the (m x n)
    output is carved into TILE_ROWS x TILE_COLS tiles spread over
    ``threads`` workers (ceil effects at small sizes)."""
    tiles = math.ceil(m / TILE_ROWS) * math.ceil(n / TILE_COLS)
    rounds = math.ceil(tiles / threads)
    return tiles / (rounds * threads)


def gemm_efficiency(
    m: int,
    n: int,
    k: int,
    machine: MachineConfig = KNC,
    dtype_bytes: int = 8,
    include_packing: bool = False,
    cores: int | None = None,
    cal: Calibration | None = None,
) -> float:
    """Achieved fraction of peak for an outer-product GEMM of shape
    (m x k) @ (k x n) on the given machine.

    For KNC this uses the calibrated kernel model; for SNB the MKL
    baseline rolloff model. ``cores=None`` means the machine's compute
    cores (native convention: 60 of 61 on KNC).
    """
    _validate_dims(m, n, k)
    cal = cal or default_calibration()
    if machine.name == SNB.name:
        return snb_dgemm_efficiency(min(m, n), cal)

    ncores = machine.compute_cores if cores is None else cores
    eff = cal.dgemm_eff_k(k) if dtype_bytes == 8 else cal.sgemm_eff_k(k)
    # Tile-quantisation imbalance across hardware threads (by core, since
    # the four threads of a core cooperate on one 30-row tile).
    eff *= _quantisation_utilisation(m, n, ncores)
    # Fixed per-call overhead, amortised by the call's compute volume.
    flops_per_cycle = machine.flops_per_cycle_per_core_dp() * ncores
    if dtype_bytes == 4:
        flops_per_cycle *= 2
    compute_cycles = 2.0 * m * n * k / flops_per_cycle
    eff *= compute_cycles / (compute_cycles + cal.gemm_call_overhead_cycles)
    if include_packing:
        eff *= 1.0 - cal.packing_overhead(m, n)
    return eff


def gemm_time_s(
    m: int,
    n: int,
    k: int,
    machine: MachineConfig = KNC,
    dtype_bytes: int = 8,
    include_packing: bool = False,
    cores: int | None = None,
    cal: Calibration | None = None,
) -> float:
    """Predicted wall time for the outer-product GEMM."""
    ncores = machine.compute_cores if cores is None else cores
    eff = gemm_efficiency(
        m, n, k, machine, dtype_bytes, include_packing, cores=cores, cal=cal
    )
    peak = (
        machine.peak_dp_gflops(ncores)
        if dtype_bytes == 8
        else machine.peak_sp_gflops(ncores)
    )
    flops = 2.0 * m * n * k
    return flops / (eff * peak * 1e9)


def gemm_gflops(
    m: int,
    n: int,
    k: int,
    machine: MachineConfig = KNC,
    dtype_bytes: int = 8,
    include_packing: bool = False,
    cores: int | None = None,
    cal: Calibration | None = None,
) -> float:
    """Predicted achieved GFLOPS."""
    t = gemm_time_s(m, n, k, machine, dtype_bytes, include_packing, cores, cal)
    return 2.0 * m * n * k / t / 1e9


def dgemm_efficiency_vs_k(ks, m: int = 28000, n: int = 28000, cal=None) -> dict:
    """The DGEMM row of Table II: k -> (efficiency, GFLOPS)."""
    cal = cal or default_calibration()
    out = {}
    for k in ks:
        eff = gemm_efficiency(m, n, k, KNC, dtype_bytes=8, cal=cal)
        out[k] = (eff, eff * KNC.peak_dp_gflops(KNC.compute_cores))
    return out


def sgemm_efficiency_vs_k(ks, m: int = 28000, n: int = 28000, cal=None) -> dict:
    """The SGEMM row of Table II: k -> (efficiency, GFLOPS)."""
    cal = cal or default_calibration()
    out = {}
    for k in ks:
        eff = gemm_efficiency(m, n, k, KNC, dtype_bytes=4, cal=cal)
        out[k] = (eff, eff * KNC.peak_sp_gflops(KNC.compute_cores))
    return out


def packing_overhead(m: int, n: int, cal: Calibration | None = None) -> float:
    """Packing overhead fraction (Figure 4's top-vs-middle curve gap)."""
    cal = cal or default_calibration()
    return cal.packing_overhead(m, n)


def snb_dgemm_efficiency(n: int, cal: Calibration | None = None) -> float:
    """MKL DGEMM efficiency on Sandy Bridge EP vs problem size
    (Figure 4's bottom curve: ~90% at large sizes)."""
    if n <= 0:
        raise ValueError("matrix size must be positive")
    cal = cal or default_calibration()
    return cal.snb_dgemm_e0 * n / (n + cal.snb_dgemm_n0)


def _validate_dims(m: int, n: int, k: int) -> None:
    if m <= 0 or n <= 0 or k <= 0:
        raise ValueError("matrix dimensions must be positive")
