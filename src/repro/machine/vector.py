"""Functional emulation of the Knights Corner vector ISA subset used by
the DGEMM basic kernels (Figures 1 and 2 of the paper).

The emulator models a register file of 32 vector registers, each holding
``VLEN`` = 8 double-precision lanes, and the instruction flavours the
kernels rely on:

* ``vmadd`` — fused multiply-add ``dst += src1 * src2`` where ``src2``
  may be a register or a memory operand with an in-flight broadcast;
* ``broadcast 1to8`` — replicate one element of memory into all 8 lanes
  (Figure 1a describes 4to8; 1to8 is the single-element variant used in
  Basic Kernel 1);
* ``broadcast 4to8`` — replicate a 4-element group twice (Figure 1a);
* ``swizzle`` — replicate the i-th element of each 4-element lane group
  four times within that group (Figure 1b), used by Basic Kernel 2 to
  avoid memory-operand broadcasts for the first four rows.

The emulation is *functional*: it computes the same values the hardware
would. Cycle costs live separately in :mod:`repro.machine.kernel_model`,
keeping "what is computed" and "how long it takes" decoupled. The
emulator also counts instructions by category so the kernel
implementations can be checked against the paper's instruction-mix
arithmetic (31 or 30 vmadds out of 32 vector instructions per iteration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Double-precision lanes per vector register (512 bits / 64 bits).
VLEN = 8

#: Single-precision lanes per vector register (512 bits / 32 bits) —
#: the same physical registers hold twice the lanes at float32, which
#: is where the MxP scheme's 2x factorization peak comes from.
SP_VLEN = 16


def vlen_for(dtype) -> int:
    """Lanes per 512-bit register at ``dtype`` (8 DP / 16 SP)."""
    itemsize = np.dtype(dtype).itemsize
    if itemsize not in (4, 8):
        raise ValueError(f"no KNC vector lanes for itemsize {itemsize}")
    return 64 // itemsize


@dataclass
class InstructionCounts:
    """Vector-instruction census, by flavour."""

    vmadd: int = 0
    vmadd_mem: int = 0  # vmadds whose second operand came from memory
    load: int = 0
    store: int = 0
    broadcast: int = 0
    swizzle_use: int = 0  # vmadds consuming a swizzled register operand
    prefetch: int = 0

    @property
    def vector_total(self) -> int:
        """Instructions occupying a vector-pipe slot.

        Prefetches and scalar bookkeeping co-issue on the second pipe of
        the dual-issue core (Section II) and therefore do not count.
        """
        return self.vmadd + self.load + self.store + self.broadcast

    @property
    def memory_accessing(self) -> int:
        """Vector-pipe instructions that touch the L1 ports."""
        return self.vmadd_mem + self.load + self.store + self.broadcast


class VectorMachine:
    """A tiny functional model of one KNC hardware thread's vector unit.

    Registers are indexed 0..n_registers-1; each register holds
    ``lanes`` elements of ``dtype`` — 8 float64 lanes for DGEMM, 16
    float32 lanes for SGEMM (the same 512-bit registers either way).
    All operations validate register indices so kernels that would not
    fit the real register file fail loudly.
    """

    def __init__(
        self, n_registers: int = 32, dtype=np.float64, lanes: Optional[int] = None
    ):
        if n_registers < 1:
            raise ValueError("need at least one vector register")
        self.n_registers = n_registers
        self.dtype = np.dtype(dtype)
        if lanes is None:
            lanes = 64 // self.dtype.itemsize  # 512-bit registers
        if lanes < 4 or lanes % 4:
            raise ValueError("lanes must be a positive multiple of 4")
        self.lanes = lanes
        self.regs = np.zeros((n_registers, lanes), dtype=self.dtype)
        self.counts = InstructionCounts()

    # -- helpers -----------------------------------------------------------
    def _check(self, *idx: int) -> None:
        for i in idx:
            if not (0 <= i < self.n_registers):
                raise IndexError(
                    f"register v{i} out of range (file has {self.n_registers})"
                )

    def reset_counts(self) -> None:
        self.counts = InstructionCounts()

    # -- instructions ------------------------------------------------------
    def vzero(self, dst: int) -> None:
        """Zero a register (used to initialise the c accumulators)."""
        self._check(dst)
        self.regs[dst] = 0.0

    def vload(self, dst: int, mem: np.ndarray) -> None:
        """Vector load of 8 contiguous elements."""
        self._check(dst)
        mem = np.asarray(mem, dtype=self.dtype)
        if mem.shape != (self.lanes,):
            raise ValueError(f"vload expects {self.lanes} contiguous elements")
        self.regs[dst] = mem
        self.counts.load += 1

    def vstore(self, src: int, out: np.ndarray) -> None:
        """Vector store of 8 contiguous elements."""
        self._check(src)
        if out.shape != (self.lanes,):
            raise ValueError(f"vstore expects {self.lanes} contiguous elements")
        out[:] = self.regs[src]
        self.counts.store += 1

    def broadcast_1to8(self, dst: int, value: float) -> None:
        """Replicate a single memory element into all lanes (Figure 1a)."""
        self._check(dst)
        self.regs[dst] = self.dtype.type(value)
        self.counts.broadcast += 1

    def broadcast_4to8(self, dst: int, mem: np.ndarray) -> None:
        """Replicate four memory elements across the register:
        [a b c d a b c d] at 8 lanes, four repetitions at 16 (the SP
        flavour of the same 4toN broadcast)."""
        self._check(dst)
        mem = np.asarray(mem, dtype=self.dtype)
        if mem.shape != (4,):
            raise ValueError("4toN broadcast takes exactly 4 elements")
        self.regs[dst] = np.tile(mem, self.lanes // 4)
        self.counts.broadcast += 1

    @staticmethod
    def _swizzle(vec: np.ndarray, i: int) -> np.ndarray:
        """SWIZZLE_i: replicate element i of each 4-lane group (Figure 1b)."""
        if not 0 <= i < 4:
            raise ValueError("swizzle index must be in 0..3")
        groups = vec.reshape(-1, 4)
        return np.repeat(groups[:, i], 4).astype(vec.dtype, copy=False)

    def vmadd(self, dst: int, src1: int, src2: int) -> None:
        """dst += src1 * src2, all registers."""
        self._check(dst, src1, src2)
        self.regs[dst] += self.regs[src1] * self.regs[src2]
        self.counts.vmadd += 1

    def vmadd_swizzle(self, dst: int, src1: int, src2: int, swizzle: int) -> None:
        """dst += src1 * SWIZZLE_swizzle(src2) — in-flight swizzle, no memory."""
        self._check(dst, src1, src2)
        self.regs[dst] += self.regs[src1] * self._swizzle(self.regs[src2], swizzle)
        self.counts.vmadd += 1
        self.counts.swizzle_use += 1

    def vmadd_mem_1to8(self, dst: int, src1: int, value: float) -> None:
        """dst += src1 * broadcast_1to8(memory) — memory-operand vmadd."""
        self._check(dst, src1)
        self.regs[dst] += self.regs[src1] * self.dtype.type(value)
        self.counts.vmadd += 1
        self.counts.vmadd_mem += 1

    def vmadd_mem_vec(self, dst: int, src1: int, mem: np.ndarray) -> None:
        """dst += src1 * memory-vector (full 8-element memory operand)."""
        self._check(dst, src1)
        mem = np.asarray(mem, dtype=self.dtype)
        if mem.shape != (self.lanes,):
            raise ValueError(f"memory operand must have {self.lanes} elements")
        self.regs[dst] += self.regs[src1] * mem
        self.counts.vmadd += 1
        self.counts.vmadd_mem += 1

    def prefetch(self) -> None:
        """Record an L1/L2 software prefetch (co-issues; port use modelled
        in :mod:`repro.machine.cache`)."""
        self.counts.prefetch += 1
