"""PCIe link model for host <-> Knights Corner transfers (Section V-B).

Table I lists 6 GB/s of PCIe bandwidth; the paper's footnote explains
that while 5.5 GB/s is achievable in isolation, PCIe transfers compete
with swapping and host DGEMM for memory bandwidth, so the effective rate
used for the tile-size bound is ~4 GB/s. The link model exposes both and
implements the paper's tile-size analysis:

* time to compute one Mt x Nt tile on KNC: ``2*Mt*Nt*Kt / P_dgemm``;
* time to ship the output tile back: ``8*Mt*Nt / BW_pcie``;
* hiding the transfer requires compute/transfer > 1, i.e.
  ``Kt > 4 * P_dgemm / BW_pcie`` (~950 for P=950 GFLOPS, BW=4 GB/s; the
  paper rounds up to Kt=1200 to cover input tiles and the k=300 kernel
  preference).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PCIeLink:
    """A host <-> coprocessor PCIe link (immutable, hashable — cached
    tile-size precomputations key on it)."""

    peak_bw_gbs: float = 6.0
    #: Effective bandwidth under memory-bandwidth contention (footnote 4).
    effective_bw_gbs: float = 4.0
    latency_s: float = 10e-6

    def __post_init__(self) -> None:
        if self.effective_bw_gbs <= 0 or self.peak_bw_gbs <= 0:
            raise ValueError("bandwidths must be positive")
        if self.effective_bw_gbs > self.peak_bw_gbs:
            raise ValueError("effective bandwidth cannot exceed peak")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time_s(self, nbytes: float, effective: bool = True) -> float:
        """Seconds to move ``nbytes`` over the link (one direction)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        bw = self.effective_bw_gbs if effective else self.peak_bw_gbs
        return self.latency_s + nbytes / (bw * 1e9)

    def tile_output_time_s(self, mt: int, nt: int, elem_bytes: int = 8) -> float:
        """Time to ship an Mt x Nt output tile back to the host."""
        return self.transfer_time_s(elem_bytes * mt * nt)

    def min_kt_to_hide_transfer(
        self, dgemm_gflops: float, elem_bytes: int = 8
    ) -> float:
        """The paper's lower bound Kt > 4 * P_dgemm / BW_pcie.

        Derived from compute time (2*Mt*Nt*Kt / P) exceeding output
        transfer time (elem_bytes*Mt*Nt / BW); Mt and Nt cancel.
        """
        if dgemm_gflops <= 0:
            raise ValueError("dgemm_gflops must be positive")
        return (elem_bytes / 2.0) * dgemm_gflops / self.effective_bw_gbs

    def compute_to_transfer_ratio(
        self, mt: int, nt: int, kt: int, dgemm_gflops: float, elem_bytes: int = 8
    ) -> float:
        """Ratio of tile compute time to output transfer time (>1 hides it)."""
        compute_s = 2.0 * mt * nt * kt / (dgemm_gflops * 1e9)
        transfer_s = self.tile_output_time_s(mt, nt, elem_bytes)
        return compute_s / transfer_s
