"""System configurations from Table I of the paper.

Two machines are modelled:

* ``knights_corner`` — the Intel Xeon Phi coprocessor ("Knights Corner",
  KNC): 61 in-order cores, 4-way SMT, 512-bit (8-wide double-precision)
  vector unit with fused multiply-add, 1.1 GHz, 32 KB L1 / 512 KB L2 per
  core, 8 GB GDDR at 150 GB/s STREAM, attached over PCIe.
* ``sandy_bridge_ep`` — the dual-socket Intel Xeon E5-2670 host ("Sandy
  Bridge EP", SNB): 2 x 8 out-of-order cores, 2-way SMT, 256-bit AVX with
  separate multiply and add ports, 2.6 GHz, 128 GB DDR at 76 GB/s.

All downstream timing models read their parameters from these objects, so
hypothetical machines (more cores, different bandwidth) can be explored by
constructing new :class:`MachineConfig` instances.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class CacheConfig:
    """Per-core cache level parameters.

    ``ports_read``/``ports_write`` model the L1 structure described in
    Section II: one read port and one write port, so a vector instruction
    with a memory operand and a vector store can co-issue, but a prefetch
    fill competes with them for the same ports.
    """

    size_bytes: int
    line_bytes: int = 64
    latency_cycles: int = 1
    ports_read: int = 1
    ports_write: int = 1

    @property
    def lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class MachineConfig:
    """A machine in the style of Table I.

    Peak FLOPS are derived, not stored: ``peak_dp_gflops`` multiplies
    cores x clock x SIMD width x FMA factor, which reproduces the 1074
    DP GFLOPS of KNC (61 cores) and 333 DP GFLOPS of SNB exactly.
    """

    name: str
    sockets: int
    cores_per_socket: int
    smt: int
    clock_ghz: float
    simd_dp: int  # double-precision lanes per vector instruction
    fma_per_cycle: int  # FLOPs per lane per cycle (2 for FMA, 2 for mul+add ports)
    vector_registers: int
    l1: CacheConfig
    l2: CacheConfig
    l3_bytes: int  # 0 if absent
    dram_bytes: int
    stream_bw_gbs: float
    pcie_bw_gbs: float  # 0 if not a PCIe device
    reserved_cores: int = 0  # cores the OS keeps (1 on KNC)

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def compute_cores(self) -> int:
        """Cores usable for computation (native runs leave one to the OS)."""
        return self.cores - self.reserved_cores

    @property
    def threads(self) -> int:
        return self.cores * self.smt

    @property
    def compute_threads(self) -> int:
        return self.compute_cores * self.smt

    def peak_dp_gflops(self, cores: int | None = None) -> float:
        """Peak double-precision GFLOPS over ``cores`` (default: all)."""
        n = self.cores if cores is None else cores
        return n * self.clock_ghz * self.simd_dp * self.fma_per_cycle

    def peak_sp_gflops(self, cores: int | None = None) -> float:
        """Peak single-precision GFLOPS (twice the DP lane count)."""
        n = self.cores if cores is None else cores
        return n * self.clock_ghz * (2 * self.simd_dp) * self.fma_per_cycle

    def flops_per_cycle_per_core_dp(self) -> int:
        return self.simd_dp * self.fma_per_cycle

    def simd_lanes(self, dtype_bytes: int = 8) -> int:
        """Vector lanes at the given element width: the 512-bit KNC unit
        holds 8 doubles or 16 singles — SP doubles the lane count."""
        if dtype_bytes not in (4, 8):
            raise ValueError("dtype_bytes must be 4 (SP) or 8 (DP)")
        return self.simd_dp * (8 // dtype_bytes)

    def flops_per_cycle_per_core(self, dtype_bytes: int = 8) -> int:
        return self.simd_lanes(dtype_bytes) * self.fma_per_cycle

    def peak_gflops(self, dtype_bytes: int = 8, cores: int | None = None) -> float:
        """Peak GFLOPS at the given precision over ``cores`` (default all)."""
        n = self.cores if cores is None else cores
        return n * self.clock_ghz * self.flops_per_cycle_per_core(dtype_bytes)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)

    def with_(self, **changes) -> "MachineConfig":
        """A copy with some fields replaced (for what-if studies)."""
        return dataclasses.replace(self, **changes)


def knights_corner() -> MachineConfig:
    """The Knights Corner coprocessor of Table I."""
    return MachineConfig(
        name="Knights Corner",
        sockets=1,
        cores_per_socket=61,
        smt=4,
        clock_ghz=1.1,
        simd_dp=8,
        fma_per_cycle=2,
        vector_registers=32,
        l1=CacheConfig(size_bytes=32 * KB),
        l2=CacheConfig(size_bytes=512 * KB, latency_cycles=25),
        l3_bytes=0,
        dram_bytes=8 * GB,
        stream_bw_gbs=150.0,
        pcie_bw_gbs=6.0,
        reserved_cores=1,
    )


def sandy_bridge_ep() -> MachineConfig:
    """The dual-socket Xeon E5-2670 host of Table I."""
    return MachineConfig(
        name="Sandy Bridge EP",
        sockets=2,
        cores_per_socket=8,
        smt=2,
        clock_ghz=2.6,
        simd_dp=4,
        fma_per_cycle=2,  # separate multiply and add ports: 1 mul + 1 add per cycle
        vector_registers=16,
        l1=CacheConfig(size_bytes=32 * KB),
        l2=CacheConfig(size_bytes=256 * KB, latency_cycles=12),
        l3_bytes=20 * MB,
        dram_bytes=128 * GB,
        stream_bw_gbs=76.0,
        pcie_bw_gbs=6.0,
    )


#: Module-level singletons for the two paper machines.
KNC = knights_corner()
SNB = sandy_bridge_ep()
