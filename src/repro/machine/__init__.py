"""Machine models for the Knights Corner / Sandy Bridge EP test bed.

This package is the hardware-substitution layer of the reproduction: it
provides parameterised models of the machines in Table I of the paper
(core counts, clocks, peak FLOPS, cache sizes, STREAM and PCIe
bandwidths), a functional emulator of the Knights Corner vector ISA used
by the DGEMM basic kernels, an L1/L2 cache-port model reproducing the
prefetch-stall mechanism of Section II, and analytic cycle/efficiency
models for the basic kernels and full GEMM calls.
"""

from repro.machine.config import (
    CacheConfig,
    MachineConfig,
    knights_corner,
    sandy_bridge_ep,
    KNC,
    SNB,
)
from repro.machine.vector import VectorMachine, VLEN, SP_VLEN, vlen_for
from repro.machine.vector_batch import (
    IterationMix,
    KernelSchedule,
    schedule_for,
)
from repro.machine.cache import L1PortModel, CacheSim
from repro.machine.kernel_model import (
    KernelSpec,
    BASIC_KERNEL_1,
    BASIC_KERNEL_2,
    kernel_cycle_model,
    kernel_efficiency,
)
from repro.machine.roofline import (
    l2_block_bytes,
    l2_blocks_fit,
    required_bandwidth_bytes_per_cycle,
    required_bandwidth_gbs,
)
from repro.machine.memory import stream_time_s, MemoryModel
from repro.machine.pcie import PCIeLink
from repro.machine.calibration import Calibration, default_calibration
from repro.machine.energy import (
    NodePower,
    hybrid_node_power,
    native_node_power,
    cpu_only_node_power,
    energy_kj,
    gflops_per_watt,
)
from repro.machine.profiles import (
    MACHINE_PROFILES,
    MachineProfile,
    machine_profile,
    profile_names,
)
from repro.machine.gemm_model import (
    dgemm_efficiency_vs_k,
    sgemm_efficiency_vs_k,
    gemm_efficiency,
    gemm_time_s,
    packing_overhead,
    snb_dgemm_efficiency,
)

__all__ = [
    "CacheConfig",
    "MachineConfig",
    "knights_corner",
    "sandy_bridge_ep",
    "KNC",
    "SNB",
    "VectorMachine",
    "VLEN",
    "SP_VLEN",
    "vlen_for",
    "IterationMix",
    "KernelSchedule",
    "schedule_for",
    "L1PortModel",
    "CacheSim",
    "KernelSpec",
    "BASIC_KERNEL_1",
    "BASIC_KERNEL_2",
    "kernel_cycle_model",
    "kernel_efficiency",
    "l2_block_bytes",
    "l2_blocks_fit",
    "required_bandwidth_bytes_per_cycle",
    "required_bandwidth_gbs",
    "stream_time_s",
    "MemoryModel",
    "PCIeLink",
    "Calibration",
    "default_calibration",
    "NodePower",
    "hybrid_node_power",
    "native_node_power",
    "cpu_only_node_power",
    "energy_kj",
    "gflops_per_watt",
    "MachineProfile",
    "MACHINE_PROFILES",
    "machine_profile",
    "profile_names",
    "dgemm_efficiency_vs_k",
    "sgemm_efficiency_vs_k",
    "gemm_efficiency",
    "gemm_time_s",
    "packing_overhead",
    "snb_dgemm_efficiency",
]
