"""Node power and energy-efficiency model (Section VII).

The paper's conclusion argues that the hybrid implementation is *less
energy efficient* than a fully-native one would be: "the fact that Sandy
Bridge EP is several times slower than Knights Corner, but consumes
comparable power, makes the hybrid implementation less energy efficient
compared to the fully-native multi-node implementation that only uses
Knights Corners" — with the host "put into a deep sleep state". This
module quantifies that argument with 2012-era component powers:

* Xeon E5-2670: 115 W TDP per socket (2 sockets on the paper's host);
* Knights Corner (SE10/7110-class): 300 W TDP per card;
* host DRAM: ~0.4 W/GB under load; base node overhead (NIC, fans, VRs,
  PSU losses): ~80 W;
* a deep-sleep host: package C-states plus DRAM refresh, ~45 W.

Figures are configurable; the default instances are what the energy
ablation benchmark uses.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1024**3

#: Component power defaults (watts).
SNB_SOCKET_W = 115.0
KNC_CARD_W = 300.0
DRAM_W_PER_GB = 0.4
NODE_BASE_W = 80.0
HOST_SLEEP_W = 45.0


@dataclass(frozen=True)
class NodePower:
    """Power draw of one node under load."""

    host_w: float
    cards_w: float
    dram_w: float
    base_w: float

    @property
    def total_w(self) -> float:
        return self.host_w + self.cards_w + self.dram_w + self.base_w


def hybrid_node_power(cards: int = 1, host_mem_gb: float = 64.0) -> NodePower:
    """A hybrid node: both host sockets busy plus the card(s)."""
    _check(cards, host_mem_gb)
    return NodePower(
        host_w=2 * SNB_SOCKET_W,
        cards_w=cards * KNC_CARD_W,
        dram_w=host_mem_gb * DRAM_W_PER_GB,
        base_w=NODE_BASE_W,
    )


def native_node_power(cards: int = 1) -> NodePower:
    """The paper's future-work node: cards compute, host deep-asleep.

    Card GDDR power is inside the card TDP; host DRAM refresh and the
    sleeping packages are folded into the sleep figure.
    """
    _check(cards, 1.0)
    return NodePower(
        host_w=HOST_SLEEP_W,
        cards_w=cards * KNC_CARD_W,
        dram_w=0.0,
        base_w=NODE_BASE_W,
    )


def cpu_only_node_power(host_mem_gb: float = 64.0) -> NodePower:
    """A host-only node (the Table III CPU baseline)."""
    _check(1, host_mem_gb)
    return NodePower(
        host_w=2 * SNB_SOCKET_W,
        cards_w=0.0,
        dram_w=host_mem_gb * DRAM_W_PER_GB,
        base_w=NODE_BASE_W,
    )


def energy_kj(power_w: float, time_s: float) -> float:
    """Energy of a run in kilojoules."""
    if power_w < 0 or time_s < 0:
        raise ValueError("power and time must be non-negative")
    return power_w * time_s / 1e3


def gflops_per_watt(gflops: float, power_w: float) -> float:
    """The energy-efficiency figure of merit."""
    if power_w <= 0:
        raise ValueError("power must be positive")
    if gflops < 0:
        raise ValueError("gflops must be non-negative")
    return gflops / power_w


def _check(cards: int, mem_gb: float) -> None:
    if cards < 0:
        raise ValueError("cards must be non-negative")
    if mem_gb <= 0:
        raise ValueError("memory must be positive")
