"""TLB model — the other half of the Section III-A3 packing argument.

"Multiplying matrices stored in row or column-major format may result in
performance degradation, due to TLB pressure and cache associativity
conflicts, especially when these matrices have large leading dimensions."

:class:`TLBSim` is an LRU translation buffer; the access-stream helpers
generate the page-touch patterns of walking a matrix column with a large
leading dimension (one page per element: every access translates a new
page once the working set exceeds the TLB) versus walking a packed tile
(all columns inside a handful of pages). Together with
:class:`repro.machine.cache.CacheSim`, the associated tests demonstrate
*why* the packed format of Figure 3 exists.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List


class TLBSim:
    """A fully-associative LRU TLB (entries x page_bytes of reach)."""

    def __init__(self, entries: int = 64, page_bytes: int = 4096):
        if entries < 1 or page_bytes < 1:
            raise ValueError("entries and page size must be positive")
        self.entries = entries
        self.page_bytes = page_bytes
        self._lru: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def reach_bytes(self) -> int:
        """Memory covered without a miss (entries * page size)."""
        return self.entries * self.page_bytes

    def access(self, addr: int) -> bool:
        """Translate ``addr``; True on hit."""
        page = addr // self.page_bytes
        if page in self._lru:
            self._lru.move_to_end(page)
            self.hits += 1
            return True
        if len(self._lru) >= self.entries:
            self._lru.popitem(last=False)
        self._lru[page] = True
        self.misses += 1
        return False

    def access_array(self, addrs: Iterable[int]) -> int:
        before = self.misses
        for a in addrs:
            self.access(a)
        return self.misses - before

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


def column_walk_addresses(
    rows: int, leading_dim: int, elem_bytes: int = 8, col: int = 0
) -> List[int]:
    """Byte addresses of one column walk of a row-major (rows x ld)
    matrix: consecutive elements sit ``ld * elem_bytes`` apart."""
    if rows < 1 or leading_dim < 1:
        raise ValueError("rows and leading dimension must be positive")
    stride = leading_dim * elem_bytes
    return [r * stride + col * elem_bytes for r in range(rows)]


def packed_tile_addresses(
    rows: int, k: int, tile_rows: int = 30, elem_bytes: int = 8
) -> List[int]:
    """Byte addresses of reading packed column-major tiles end to end:
    contiguous, so the page footprint is the data footprint."""
    if rows < 1 or k < 1 or tile_rows < 1:
        raise ValueError("dimensions must be positive")
    n_tiles = -(-rows // tile_rows)
    total = n_tiles * tile_rows * k
    return [i * elem_bytes for i in range(total)]
