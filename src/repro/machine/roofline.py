"""The cache-blocking bandwidth analysis of Section III-A1.

For L2 blocks Ab (m x k), Bb (k x n), Cb (m x n) the paper derives:

* all three blocks must fit in the 512 KB L2:
  ``8 * (m*n + m*k + k*n) < 512 KB``;
* computing Cb takes ``m*n*k / 8`` vmadd cycles (8 vmadds/cycle/core);
* memory traffic is ``8 * (2*m*n + m*k + k*n)`` bytes (Cb read+written);
* required bandwidth is ``64 * (2/k + 1/n + 1/m)`` bytes/cycle/core,
  which for m=120, n=32, k=240 is ~1.1 B/cycle = ~74 GB/s over 60 cores
  at 1.1 GHz — well under the 150 GB/s STREAM bandwidth.

For large N the Ab load amortises and the bound loses its 1/n term:
``64 * (2/k + 1/m)``.
"""

from __future__ import annotations

from repro.machine.config import KNC, MachineConfig


def l2_block_bytes(m: int, n: int, k: int, elem_bytes: int = 8) -> int:
    """Bytes occupied in L2 by the three blocks Ab, Bb, Cb."""
    _validate(m, n, k)
    return elem_bytes * (m * n + m * k + k * n)


def l2_blocks_fit(
    m: int, n: int, k: int, machine: MachineConfig = KNC, elem_bytes: int = 8
) -> bool:
    """The paper's conservative inequality: all three blocks fit in L2."""
    return l2_block_bytes(m, n, k, elem_bytes) < machine.l2.size_bytes


def compute_cycles(m: int, n: int, k: int, vmadds_per_cycle: int = 8) -> float:
    """Minimum cycles to compute the m x n block: m*n*k / (8 vmadds/cycle)."""
    _validate(m, n, k)
    return m * n * k / vmadds_per_cycle


def memory_traffic_bytes(m: int, n: int, k: int, elem_bytes: int = 8) -> int:
    """Main-memory traffic to stream all blocks in; Cb counted twice."""
    _validate(m, n, k)
    return elem_bytes * (2 * m * n + m * k + k * n)


def required_bandwidth_bytes_per_cycle(
    m: int, n: int, k: int, amortize_a: bool = False, elem_bytes: int = 8
) -> float:
    """Per-core bandwidth demand, the paper's 64*(2/k + 1/n + 1/m).

    With ``amortize_a=True`` the 1/n term drops (large-N limit where the
    cost of bringing Ab into L2 is amortised): 64*(2/k + 1/m).
    """
    _validate(m, n, k)
    scale = 8 * elem_bytes  # 64 for doubles
    if amortize_a:
        return scale * (2.0 / k + 1.0 / m)
    return scale * (2.0 / k + 1.0 / n + 1.0 / m)


def required_bandwidth_gbs(
    m: int,
    n: int,
    k: int,
    machine: MachineConfig = KNC,
    cores: int | None = None,
    amortize_a: bool = False,
) -> float:
    """Aggregate bandwidth demand in GB/s over ``cores`` compute cores."""
    ncores = machine.compute_cores if cores is None else cores
    bpc = required_bandwidth_bytes_per_cycle(m, n, k, amortize_a=amortize_a)
    return bpc * ncores * machine.clock_ghz  # bytes/cycle * cycles/ns = GB/s


def bandwidth_feasible(
    m: int, n: int, k: int, machine: MachineConfig = KNC, amortize_a: bool = False
) -> bool:
    """Whether the blocking's demand stays under STREAM bandwidth."""
    return required_bandwidth_gbs(m, n, k, machine, amortize_a=amortize_a) < (
        machine.stream_bw_gbs
    )


def _validate(m: int, n: int, k: int) -> None:
    if m <= 0 or n <= 0 or k <= 0:
        raise ValueError("block dimensions must be positive")
