"""Campaign execution: fan a run matrix out, persist, resume, merge.

:func:`run_campaign` takes a :class:`~repro.campaign.spec.CampaignSpec`
and an output directory and drives the whole sweep:

* the matrix expands and deduplicates by canonical spec hash;
* completed artifacts are *served* from a
  :class:`~repro.service.cache.ResultCache` (``resume``) — by default
  over this campaign's own ``runs/`` directory, optionally the shared
  cache of a running benchmark service — so an interrupted campaign
  restarts, and a campaign whose cells a service already executed
  finishes, without re-running a single completed cell;
* the remaining specs fan out over a ``concurrent.futures`` process
  pool (``workers <= 1`` runs inline) with a coarse per-run timeout
  and crash capture — a worker that raises reports its traceback, a
  worker the OS kills is recorded as ``crash`` and the pool is rebuilt
  for the survivors;
* every run writes ``runs/<spec-hash>.json`` (status, spec, elapsed
  time and the full ``RunResult`` export), and the campaign ends with
  a merged ``report.json`` + human ``report.txt`` of best-per-cell
  rows (see :mod:`repro.campaign.report`).

Artifacts are the source of truth: the report is always rebuilt from
whatever artifacts exist, so partially-failed campaigns still produce
an honest summary.
"""

from __future__ import annotations

import json
import pathlib
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.campaign.report import merged_report, render_report
from repro.campaign.spec import CampaignSpec, expand_matrix
from repro.service.cache import SCHEMA, ResultCache
from repro.service.cache import failure_artifact as _make_failure
from repro.service.cache import load_artifact as _load_artifact
from repro.spec import RunSpec

__all__ = ["SCHEMA", "CampaignReport", "run_campaign"]


@dataclass
class CampaignReport:
    """What a campaign invocation produced, in memory."""

    name: str
    out_dir: pathlib.Path
    rows: List[dict]
    cells: List[dict]
    totals: Dict[str, int]

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "name": self.name,
            "totals": dict(self.totals),
            "cells": self.cells,
            "rows": self.rows,
        }


def _worker(spec_dict: dict) -> dict:
    """Execute one RunSpec in a pool worker; never raises.

    Importable at module top level so the process pool can pickle it.
    The actual work — run, time, wrap, catch — is
    :func:`repro.api.run_to_artifact`, the same path the benchmark
    service's workers execute, so campaign and service artifacts cannot
    drift apart.
    """
    from repro import api

    return api.run_to_artifact(spec_dict)


def _failure_artifact(spec: RunSpec, status: str, detail: str) -> dict:
    return _make_failure(spec, status, detail)


def _run_inline(specs: Sequence[RunSpec]) -> Dict[str, dict]:
    return {s.canonical_hash(): _worker(s.to_dict()) for s in specs}


def _run_pool(
    specs: Sequence[RunSpec], workers: int, timeout_s: Optional[float]
) -> Dict[str, dict]:
    """Fan specs over a process pool; capture timeouts and crashes.

    The timeout is a coarse guard: futures are collected in submission
    order, each waiting at most ``timeout_s`` from the moment it is
    inspected. On timeout the stuck workers are killed and the pool is
    rebuilt; on a hard worker death (``BrokenExecutor``) the spec being
    waited on is recorded as ``crash`` and the survivors are resubmitted
    to a fresh pool.
    """
    results: Dict[str, dict] = {}
    pending = list(specs)
    while pending:
        pool = ProcessPoolExecutor(max_workers=workers)
        futures = [(pool.submit(_worker, s.to_dict()), s) for s in pending]
        pending = []
        abandon = False
        kill = False
        try:
            for future, spec in futures:
                digest = spec.canonical_hash()
                if abandon:
                    if future.done() and not future.cancelled():
                        try:
                            results[digest] = future.result()
                            continue
                        except Exception:
                            pass
                    future.cancel()
                    if digest not in results:
                        pending.append(spec)
                    continue
                try:
                    results[digest] = future.result(timeout=timeout_s)
                except FuturesTimeout:
                    results[digest] = _failure_artifact(
                        spec, "timeout", f"no result within {timeout_s}s"
                    )
                    abandon = kill = True
                except BrokenExecutor:
                    results[digest] = _failure_artifact(
                        spec, "crash", "worker process died (BrokenExecutor)"
                    )
                    abandon = True
                except Exception:
                    # _worker catches run errors itself; this is pool plumbing.
                    results[digest] = _failure_artifact(
                        spec, "error", traceback.format_exc()
                    )
        finally:
            if kill:
                for proc in getattr(pool, "_processes", {}).values():
                    proc.kill()
            pool.shutdown(wait=not kill, cancel_futures=True)
    return results


def run_campaign(
    campaign: CampaignSpec,
    out_dir: "str | pathlib.Path",
    resume: bool = True,
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    cache: Optional[ResultCache] = None,
) -> CampaignReport:
    """Run (or resume) a campaign and write its artifacts and report.

    ``workers`` / ``timeout_s`` override the campaign document;
    ``workers <= 1`` executes inline (deterministic and debuggable),
    anything larger fans out over a process pool. With ``resume`` (the
    default) completed cells are served from the result cache and never
    re-executed.

    ``cache`` is the serving layer: by default a
    :class:`~repro.service.cache.ResultCache` over ``out_dir/runs``
    (pure resume, exactly the pre-service behaviour). Passing the cache
    of a running :class:`~repro.service.core.Service` instead makes the
    two share results both ways — a campaign re-run over a warm service
    cache executes zero runs, and campaign artifacts become service
    cache hits. When the shared cache persists somewhere other than
    ``out_dir/runs``, artifacts are mirrored there too so the campaign
    directory stays self-contained and resumable.
    """
    out = pathlib.Path(out_dir)
    runs_dir = out / "runs"
    runs_dir.mkdir(parents=True, exist_ok=True)
    if cache is None:
        cache = ResultCache(disk_dir=runs_dir)
    mirror = cache.disk_dir is None or cache.disk_dir.resolve() != runs_dir.resolve()
    pool_width = campaign.workers if workers is None else workers
    deadline = campaign.timeout_s if timeout_s is None else timeout_s

    specs, duplicates = expand_matrix(campaign)
    artifacts: Dict[str, dict] = {}
    to_run: List[RunSpec] = []
    cached = 0
    for spec in specs:
        digest = spec.canonical_hash()
        prior = cache.get(digest) if resume else None
        if prior is None and resume and mirror:
            # A cache pointed elsewhere may not know this campaign's own
            # prior artifacts; the runs/ directory is still authoritative.
            doc = _load_artifact(runs_dir / f"{digest}.json")
            if doc is not None and doc.get("status") == "ok":
                prior = doc
        if prior is not None:
            prior.pop("cached", None)
            artifacts[digest] = prior
            cached += 1
        else:
            to_run.append(spec)

    if to_run:
        if pool_width <= 1:
            fresh = _run_inline(to_run)
        else:
            fresh = _run_pool(to_run, pool_width, deadline)
        for digest, artifact in fresh.items():
            if artifact.get("spec_hash"):
                cache.put(artifact)
            if mirror:
                (runs_dir / f"{digest}.json").write_text(
                    json.dumps(artifact, indent=2, sort_keys=True) + "\n"
                )
        artifacts.update(fresh)

    rows, cells = merged_report(campaign, specs, artifacts)
    statuses = [artifacts[s.canonical_hash()].get("status") for s in specs]
    totals = {
        "runs": len(specs),
        "deduplicated": duplicates,
        "cached": cached,
        "executed": len(to_run),
        "ok": sum(1 for s in statuses if s == "ok"),
        "errors": sum(1 for s in statuses if s == "error"),
        "crashes": sum(1 for s in statuses if s == "crash"),
        "timeouts": sum(1 for s in statuses if s == "timeout"),
    }
    report = CampaignReport(
        name=campaign.name, out_dir=out, rows=rows, cells=cells, totals=totals
    )
    (out / "report.json").write_text(
        json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    (out / "report.txt").write_text(render_report(campaign, report) + "\n")
    return report
