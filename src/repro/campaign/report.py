"""Campaign result merging: per-run rows and best-per-cell tables.

The runner hands every artifact (one JSON document per executed spec)
to :func:`merged_report`, which flattens them into report rows and
reduces the rows into *cells*: for every distinct value of the
campaign's ``report_by`` keys (default ``n``/``p``/``q``), the swept
configuration that maximised the campaign ``objective`` (default
``gflops``). That is the deliverable of an HPL sweep — "on this
problem/grid, use NB=…, broadcast=…" — in the shape hpcbench-style
campaign exports use.

:func:`render_report` turns the same data into the fixed-width tables
of :mod:`repro.report` for ``report.txt`` and the CLI.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.campaign.spec import CampaignSpec
from repro.spec import RunSpec


def _objective_value(artifact: dict, objective: str):
    result = artifact.get("result") or {}
    value = result.get(objective)
    return value if isinstance(value, (int, float)) else None


def merged_report(
    campaign: CampaignSpec,
    specs: Sequence[RunSpec],
    artifacts: Dict[str, dict],
) -> Tuple[List[dict], List[dict]]:
    """Merge artifacts into ``(rows, cells)``.

    ``rows`` has one entry per matrix spec in expansion order; ``cells``
    one entry per distinct ``report_by`` tuple, carrying the best row's
    winning knobs. Ties go to the earlier row (expansion order), so the
    report is deterministic for deterministic objectives.
    """
    rows: List[dict] = []
    for spec in specs:
        digest = spec.canonical_hash()
        artifact = artifacts.get(digest, {})
        result = artifact.get("result") or {}
        rows.append(
            {
                "spec_hash": digest,
                "status": artifact.get("status", "missing"),
                "spec": spec.to_dict(),
                "elapsed_s": artifact.get("elapsed_s"),
                campaign.objective: _objective_value(artifact, campaign.objective),
                "time_s": result.get("time_s"),
                "error": artifact.get("error"),
            }
        )

    cells: Dict[tuple, dict] = {}
    for row in rows:
        if row["status"] != "ok" or row[campaign.objective] is None:
            continue
        key = tuple(row["spec"].get(k) for k in campaign.report_by)
        best = cells.get(key)
        if best is None or row[campaign.objective] > best[campaign.objective]:
            cells[key] = row
    cell_rows = [
        {
            "cell": dict(zip(campaign.report_by, key)),
            "best_spec": best["spec"],
            "spec_hash": best["spec_hash"],
            campaign.objective: best[campaign.objective],
            "time_s": best["time_s"],
        }
        for key, best in sorted(cells.items(), key=lambda item: _sort_key(item[0]))
    ]
    return rows, cell_rows


def _sort_key(key: tuple) -> tuple:
    """Cells ordered deterministically even with mixed value types."""
    return tuple((str(type(v).__name__), v if isinstance(v, (int, float)) else str(v))
                 for v in key)


def render_report(campaign: CampaignSpec, report) -> str:
    """The human report: totals line + best-per-cell table + failures."""
    from repro.report import Table

    totals = report.totals
    lines = [
        f"campaign {campaign.name}: {totals['runs']} unique runs "
        f"({totals['deduplicated']} duplicates dropped), "
        f"{totals['cached']} cached, {totals['executed']} executed, "
        f"{totals['ok']} ok / {totals['errors']} errors / "
        f"{totals['crashes']} crashes / {totals['timeouts']} timeouts",
        "",
    ]
    table = Table(
        f"Best per cell by {campaign.objective}",
        [*campaign.report_by, "nb", "lookahead", "bcast", campaign.objective, "spec"],
    )
    for cell in report.cells:
        spec = cell["best_spec"]
        table.add(
            *(cell["cell"][k] for k in campaign.report_by),
            spec.get("nb"),
            spec.get("lookahead") or "-",
            spec.get("bcast_algo") or "-",
            round(cell[campaign.objective], 3),
            cell["spec_hash"][:8],
        )
    lines.append(str(table))
    failures = [r for r in report.rows if r["status"] != "ok"]
    if failures:
        lines.append("")
        for row in failures:
            lines.append(
                f"  {row['status']:>8}  {row['spec_hash']}  "
                f"{RunSpec.from_dict(row['spec']).summary()}"
            )
    return "\n".join(lines)
