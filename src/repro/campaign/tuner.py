"""Successive-halving auto-tuner over the RunSpec configuration space.

Real ``HPL.dat`` tuning sweeps the NB / P x Q / broadcast knobs at full
problem size, which is quadratically wasteful: most candidates are
obviously bad long before N fills memory. Successive halving spends
the budget where it matters — every candidate configuration runs at a
small problem size first, only the better half graduates to the next,
larger, size (the "rung"), and the final rung times the survivors at
the target size. All trial runs go through :func:`repro.api.run`, so
each trial carries the full :class:`~repro.obs.result.RunResult`
metrics and the canonical spec hash, and the deterministic timing
models give identical tuning tables on every invocation.

:func:`tune_machine_models` applies the search once per registered
machine profile and emits the "best config per machine model" table —
the per-machine tuning deliverable of the benchmarking literature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import api
from repro.campaign.spec import CampaignSpec, expand_matrix
from repro.machine.profiles import MACHINE_PROFILES, machine_profile
from repro.spec import RunSpec

#: Default rung ladder for the hybrid timing model: trial sizes grow
#: ~3x per rung toward the paper's single-node N=84K regime.
DEFAULT_RUNGS = (12_000, 36_000, 84_000)

#: Default NB candidates: the paper's PCIe-bound 1200 plus neighbours
#: (the knobs ``hpl.tuner.tune`` historically searched).
DEFAULT_NB_AXIS = (600, 1200, 2400)


@dataclass(frozen=True)
class Trial:
    """One evaluated configuration at one rung."""

    spec: RunSpec
    spec_hash: str
    rung_n: int
    score: float
    time_s: float


@dataclass(frozen=True)
class HalvingResult:
    """The winner plus the full rung-by-rung history."""

    best: Trial
    rungs: Tuple[Tuple[Trial, ...], ...] = field(default_factory=tuple)
    objective: str = "gflops"

    @property
    def survivors_per_rung(self) -> Tuple[int, ...]:
        return tuple(len(r) for r in self.rungs)

    def describe(self) -> str:
        s = self.best.spec
        ladder = " -> ".join(str(c) for c in self.survivors_per_rung)
        return (
            f"{s.summary()}: {self.best.score:.1f} {self.objective} "
            f"at n={self.best.rung_n} (candidates {ladder})"
        )


def _evaluate(spec: RunSpec, rung_n: int, objective: str) -> Trial:
    trial_spec = spec.with_overrides({"n": rung_n}).normalized()
    result = api.run(trial_spec)
    value = getattr(result, objective, None)
    if not isinstance(value, (int, float)):
        raise ValueError(f"objective {objective!r} is not numeric on {result.kind}")
    return Trial(
        spec=trial_spec,
        spec_hash=trial_spec.canonical_hash(),
        rung_n=rung_n,
        score=float(value),
        time_s=float(getattr(result, "time_s", 0.0)),
    )


def successive_halving(
    base: RunSpec,
    axes: Mapping[str, Sequence],
    rungs: Sequence[int] = DEFAULT_RUNGS,
    keep_fraction: float = 0.5,
    objective: str = "gflops",
) -> HalvingResult:
    """Search ``axes`` over ``base`` with successive halving.

    ``rungs`` are the problem sizes of each round, ascending; at every
    rung all surviving candidates are evaluated through
    :func:`repro.api.run` and the top ``keep_fraction`` (at least one)
    graduate. Ranking is deterministic: higher ``objective`` first,
    ties broken by expansion order (stable sort), so identical inputs
    always produce identical tuning tables.
    """
    if not rungs:
        raise ValueError("need at least one rung size")
    if sorted(rungs) != list(rungs):
        raise ValueError("rung sizes must ascend (small trials first)")
    if not 0 < keep_fraction < 1:
        raise ValueError("keep_fraction must be in (0, 1)")
    campaign = CampaignSpec(
        name="halving", base={**base.to_dict()}, axes=dict(axes),
        objective=objective,
    )
    candidates, _ = expand_matrix(campaign)
    if not candidates:
        raise ValueError("axes expanded to zero candidates")

    history: List[Tuple[Trial, ...]] = []
    for i, rung_n in enumerate(rungs):
        trials = [_evaluate(c, rung_n, objective) for c in candidates]
        ranked = sorted(trials, key=lambda t: -t.score)  # stable: ties keep order
        history.append(tuple(ranked))
        if i + 1 < len(rungs):
            survivors = max(1, math.ceil(len(ranked) * keep_fraction))
            candidates = [t.spec for t in ranked[:survivors]]
    return HalvingResult(
        best=history[-1][0], rungs=tuple(history), objective=objective
    )


def tune_machine_models(
    machines: Optional[Sequence[str]] = None,
    nodes: int = 1,
    nb_axis: Sequence[int] = DEFAULT_NB_AXIS,
    lookahead_axis: Sequence[str] = ("basic", "pipelined"),
    rungs: Optional[Sequence[int]] = None,
    objective: str = "gflops",
) -> List[Dict]:
    """Best (NB, grid, look-ahead) per machine model.

    For every named profile (default: the whole registry) the NB/grid/
    look-ahead space is searched with successive halving on the hybrid
    timing model at ``nodes`` nodes; the rung ladder caps trial sizes
    at what the profile's host memory can hold. Returns one row per
    machine, in registry order, each carrying the winning spec and its
    hash — ready for ``repro.report.Table`` or JSON export.
    """
    from repro.hpl.tuner import grid_shapes, problem_size

    names = list(machines) if machines is not None else list(MACHINE_PROFILES)
    rows: List[Dict] = []
    for name in names:
        profile = machine_profile(name)
        n_max = problem_size(
            nodes, int(profile.mem_gb * 1024**3), nb=max(nb_axis)
        )
        ladder = tuple(rungs) if rungs is not None else tuple(
            sorted({min(r, n_max) for r in DEFAULT_RUNGS})
        )
        base = RunSpec(kind="hybrid", n=ladder[-1], machine=name)
        axes = {
            "nb": list(nb_axis),
            "grid": [list(s) for s in grid_shapes(nodes)],
            "lookahead": list(lookahead_axis),
        }
        tuned = successive_halving(
            base, axes, rungs=ladder, objective=objective
        )
        best = tuned.best
        rows.append(
            {
                "machine": name,
                "description": profile.description,
                "nodes": nodes,
                "n": best.spec.n,
                "nb": best.spec.nb,
                "p": best.spec.p,
                "q": best.spec.q,
                "lookahead": best.spec.lookahead,
                objective: best.score,
                "time_s": best.time_s,
                "spec_hash": best.spec_hash,
                "spec": best.spec.to_dict(),
                "candidates_per_rung": list(tuned.survivors_per_rung),
            }
        )
    return rows


def render_machine_table(rows: Sequence[Mapping], objective: str = "gflops"):
    """The per-machine tuning rows as a fixed-width table."""
    from repro.report import Table

    table = Table(
        f"Best configuration per machine model (by {objective})",
        ["machine", "N", "NB", "grid", "lookahead", objective, "spec"],
    )
    for row in rows:
        table.add(
            row["machine"],
            row["n"],
            row["nb"],
            f"{row['p']}x{row['q']}",
            row["lookahead"],
            round(row[objective], 1),
            row["spec_hash"][:8],
        )
    return table
