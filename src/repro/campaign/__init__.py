"""Campaign orchestration: declarative sweeps over the RunSpec space.

The paper's results are points in a large configuration space — N, NB,
P x Q, broadcast algorithm, look-ahead — that real HPL deployments
explore with ``HPL.dat`` sweeps and per-machine tuning tables. This
package turns that workflow into a declarative layer on top of
:func:`repro.api.run`:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec`: a YAML/JSON
  document with a base :class:`~repro.spec.RunSpec`, axis sweeps and
  explicit extra runs, expanded into a deduplicated run matrix;
* :mod:`repro.campaign.runner` — :func:`run_campaign`: fans the matrix
  out over a process pool with per-run timeouts and crash capture,
  writes one JSON artifact per run (named by canonical spec hash),
  resumes interrupted campaigns from those artifacts, and merges
  everything into a best-per-cell report;
* :mod:`repro.campaign.tuner` — successive-halving search over
  NB/grid/broadcast axes, and the "best config per machine model"
  table built from the registered machine profiles.
"""

from repro.campaign.spec import CampaignSpec, expand_matrix, load_campaign
from repro.campaign.runner import CampaignReport, run_campaign
from repro.campaign.tuner import (
    HalvingResult,
    successive_halving,
    tune_machine_models,
)

__all__ = [
    "CampaignSpec",
    "expand_matrix",
    "load_campaign",
    "CampaignReport",
    "run_campaign",
    "HalvingResult",
    "successive_halving",
    "tune_machine_models",
]
