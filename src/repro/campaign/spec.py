"""Campaign documents: a base RunSpec, axis sweeps, explicit runs.

A campaign file is YAML or JSON with this shape::

    name: nb-grid-sweep
    base:                     # RunSpec fields shared by every run
      kind: distributed
      n: 64
    axes:                     # swept axes: the cross-product expands
      nb: [8, 16]
      grid: [1x2, 2x2]        # pseudo-field: sets p and q together
      bcast_algo: [star, ring]
    runs:                     # optional explicit extra configurations
      - nb: 32
        grid: 1x1
    workers: 2                # process-pool width (0/1 = inline)
    timeout_s: 300            # per-run timeout in the pool
    report_by: [n, p, q]      # best-per-cell grouping keys
    objective: gflops         # "best" = max of this result key

Expansion (:func:`expand_matrix`) walks the axis cross-product in
document order — axes vary slowest-first in listing order, exactly like
``HPL.dat``'s nested lists — applies each combination over ``base``,
appends the explicit ``runs``, and deduplicates by canonical spec hash
(first occurrence wins), so repeat configurations are never run twice.

YAML parsing uses PyYAML when it is importable and otherwise falls
back to :func:`parse_mini_yaml`, a dependency-free parser for exactly
the subset shown above (two-space-indented mappings, inline ``[...]``
and ``- `` lists, plain scalars). JSON documents always work.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.spec import RunSpec


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative campaign, validated on construction."""

    name: str
    base: Mapping[str, Any]
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    runs: Sequence[Mapping[str, Any]] = field(default_factory=tuple)
    workers: int = 1
    timeout_s: Optional[float] = None
    report_by: Tuple[str, ...] = ("n", "p", "q")
    objective: str = "gflops"

    def __post_init__(self):
        if not self.name or "/" in self.name:
            raise ValueError("campaign name must be a non-empty, slash-free string")
        if "kind" not in self.base:
            raise ValueError("campaign base must set the run 'kind'")
        for axis, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"axis {axis!r} must list at least one value")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "CampaignSpec":
        """Build from a parsed campaign document (strict keys)."""
        known = {"name", "base", "axes", "runs", "workers", "timeout_s",
                 "report_by", "objective"}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ValueError(f"unknown campaign keys: {unknown}")
        if "name" not in d or "base" not in d:
            raise ValueError("a campaign needs at least 'name' and 'base'")
        kwargs = dict(d)
        kwargs["runs"] = tuple(kwargs.get("runs") or ())
        kwargs["report_by"] = tuple(kwargs.get("report_by") or ("n", "p", "q"))
        kwargs.setdefault("axes", {})
        kwargs.setdefault("workers", 1)
        return cls(**kwargs)

    def expand(self) -> List[RunSpec]:
        """The deduplicated run matrix (see :func:`expand_matrix`)."""
        return expand_matrix(self)[0]


def expand_matrix(campaign: CampaignSpec) -> Tuple[List[RunSpec], int]:
    """Expand a campaign into ``(unique_specs, duplicates_dropped)``.

    Deterministic: the cross-product follows the axes' document order
    (first axis varies slowest), explicit ``runs`` come last, and
    deduplication by canonical hash keeps the first occurrence.
    """
    overrides: List[Dict[str, Any]] = []
    axis_names = list(campaign.axes)
    for combo in itertools.product(*(campaign.axes[a] for a in axis_names)):
        overrides.append(dict(zip(axis_names, combo)))
    overrides.extend(dict(extra) for extra in campaign.runs)
    if not overrides:
        overrides.append({})

    base_fields = dict(campaign.base)
    kind = base_fields.pop("kind")
    placeholder_n = "n" not in base_fields
    if placeholder_n:
        base_fields["n"] = 1  # every override must then sweep n
    grid = base_fields.pop("grid", None)
    if grid is not None:
        base_fields["p"], base_fields["q"] = _grid_pair(grid)
    base = RunSpec.from_dict({"kind": kind, **base_fields})

    specs: List[RunSpec] = []
    seen: Dict[str, RunSpec] = {}
    duplicates = 0
    for override in overrides:
        spec = base.with_overrides(override)
        if placeholder_n and "n" not in override:
            raise ValueError(
                "every run needs an 'n': set it in base or sweep it as an axis"
            )
        digest = spec.canonical_hash()
        if digest in seen:
            duplicates += 1
            continue
        seen[digest] = spec
        specs.append(spec)
    return specs, duplicates


def _grid_pair(value: Any) -> Tuple[int, int]:
    from repro.spec import parse_grid

    return parse_grid(value)


# -- document loading -------------------------------------------------------

def load_campaign(path: "str | pathlib.Path") -> CampaignSpec:
    """Load a campaign document from a YAML or JSON file."""
    text = pathlib.Path(path).read_text()
    return parse_campaign(text)


def parse_campaign(text: str) -> CampaignSpec:
    """Parse campaign YAML/JSON text into a :class:`CampaignSpec`."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return CampaignSpec.from_dict(json.loads(text))
    try:
        import yaml  # an optional convenience, never a hard dependency
    except ImportError:
        return CampaignSpec.from_dict(parse_mini_yaml(text))
    return CampaignSpec.from_dict(yaml.safe_load(text))


def parse_mini_yaml(text: str) -> dict:
    """Parse the campaign-file YAML subset without PyYAML.

    Supports nested mappings by two-space indentation, inline
    ``[a, b]`` lists, ``- `` item lists (scalar items or one-line
    inline mappings like ``{nb: 32, grid: 1x1}``), comments, and
    plain int/float/bool/null/string scalars. This is deliberately
    exactly the subset the documented campaign format uses.
    """
    root: Dict[str, Any] = {}
    # Stack of (indent, container) from the root down to the open node.
    stack: List[Tuple[int, Any]] = [(-1, root)]
    pending_key: Optional[Tuple[int, Dict[str, Any], str]] = None

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        indent = len(line) - len(line.lstrip())
        content = line.strip()

        if pending_key is not None and indent > pending_key[0]:
            # The previous "key:" line opens a nested container; its
            # type depends on the first child line.
            container: Any = [] if content.startswith("- ") else {}
            pending_key[1][pending_key[2]] = container
            stack.append((indent, container))
            pending_key = None
        elif pending_key is not None:
            # "key:" with nothing nested means an empty mapping.
            pending_key[1][pending_key[2]] = {}
            pending_key = None

        # Each stack entry records the indent of the container's
        # *children*, so same-indent lines are siblings — only a
        # shallower line closes the container.
        while stack and indent < stack[-1][0]:
            stack.pop()
        if not stack:
            raise ValueError(f"bad indentation near {raw_line!r}")
        node = stack[-1][1]

        if content.startswith("- "):
            if not isinstance(node, list):
                raise ValueError(f"list item outside a list: {raw_line!r}")
            node.append(_mini_scalar(content[2:].strip()))
            continue
        if not isinstance(node, dict):
            raise ValueError(f"mapping entry inside a list: {raw_line!r}")
        if ":" not in content:
            raise ValueError(f"expected 'key: value' near {raw_line!r}")
        key, _, value = content.partition(":")
        key, value = key.strip(), value.strip()
        if value:
            node[key] = _mini_scalar(value)
        else:
            pending_key = (indent, node, key)
    if pending_key is not None:
        pending_key[1][pending_key[2]] = {}
    return root


def _mini_scalar(token: str) -> Any:
    """One scalar / inline-list / inline-mapping value."""
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        return [_mini_scalar(t.strip()) for t in _split_inline(inner)] if inner else []
    if token.startswith("{") and token.endswith("}"):
        out = {}
        inner = token[1:-1].strip()
        for part in _split_inline(inner) if inner else []:
            key, _, value = part.partition(":")
            out[key.strip()] = _mini_scalar(value.strip())
        return out
    if token.startswith(("'", '"')) and token.endswith(token[0]) and len(token) >= 2:
        return token[1:-1]
    lowered = token.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("null", "~"):
        return None  # NB: "none" stays a string (the hybrid look-ahead mode)
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _split_inline(inner: str) -> List[str]:
    """Split an inline collection body on top-level commas."""
    parts, depth, start = [], 0, 0
    for i, ch in enumerate(inner):
        if ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(inner[start:i])
            start = i + 1
    parts.append(inner[start:])
    return [p for p in (part.strip() for part in parts) if p]
