"""Execution trace recording: per-worker activity spans.

The Gantt charts of Figure 7 (native LU, static vs dynamic scheduling)
and the per-iteration breakdowns of Figure 9 (hybrid HPL with/without the
swapping pipeline) are renderings of this trace: every worker records
(kind, start, end) spans, and the recorder aggregates busy/idle time
globally, per worker, per kind, or within a time window.

Beyond the in-process queries, a trace exports to two machine-readable
formats: Chrome ``trace_event`` JSON (:meth:`TraceRecorder.to_chrome_trace`,
loadable in ``about:tracing`` / Perfetto — the interactive version of
Figures 7 and 9) and line-delimited JSON
(:meth:`TraceRecorder.to_jsonl` / :meth:`TraceRecorder.from_jsonl`) for
ad-hoc analysis pipelines.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Span:
    """One contiguous activity interval on one worker.

    ``info`` is a free-form label; ``attrs`` carries structured key/value
    pairs (stored as a sorted tuple so spans stay hashable) surfaced in
    the Chrome trace's ``args`` panel.
    """

    worker: str
    kind: str
    start: float
    end: float
    info: Optional[str] = None
    attrs: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def attrs_dict(self) -> Dict[str, Any]:
        """The structured key/value pairs as a plain dict."""
        return dict(self.attrs)


class TraceRecorder:
    """Collects spans and computes aggregate statistics."""

    def __init__(self) -> None:
        self.spans: List[Span] = []

    def record(
        self,
        worker: str,
        kind: str,
        start: float,
        end: float,
        info: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Append one span; keyword extras become structured attributes."""
        if end < start:
            raise ValueError(f"span ends before it starts: {start} > {end}")
        span = Span(worker, kind, start, end, info, tuple(sorted(attrs.items())))
        self.spans.append(span)
        return span

    # -- aggregate queries ---------------------------------------------------
    @property
    def makespan(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    def workers(self) -> List[str]:
        seen = dict.fromkeys(s.worker for s in self.spans)
        return list(seen)

    def kinds(self) -> List[str]:
        seen = dict.fromkeys(s.kind for s in self.spans)
        return list(seen)

    def busy_time(self, worker: Optional[str] = None, kind: Optional[str] = None) -> float:
        """Total span time, filtered by worker and/or kind."""
        return sum(
            s.duration
            for s in self.spans
            if (worker is None or s.worker == worker)
            and (kind is None or s.kind == kind)
        )

    def time_by_kind(self, worker: Optional[str] = None) -> Dict[str, float]:
        out: Dict[str, float] = defaultdict(float)
        for s in self.spans:
            if worker is None or s.worker == worker:
                out[s.kind] += s.duration
        return dict(out)

    def idle_fraction(self, worker: str, t_end: Optional[float] = None) -> float:
        """1 - busy/total for one worker over [0, t_end or makespan]."""
        total = self.makespan if t_end is None else t_end
        if total <= 0:
            return 0.0
        return max(0.0, 1.0 - self.busy_time(worker) / total)

    def window_by_kind(
        self, t0: float, t1: float, worker: Optional[str] = None
    ) -> Dict[str, float]:
        """Span time per kind clipped to the window [t0, t1]."""
        if t1 < t0:
            raise ValueError("window ends before it starts")
        out: Dict[str, float] = defaultdict(float)
        for s in self.spans:
            if worker is not None and s.worker != worker:
                continue
            lo, hi = max(s.start, t0), min(s.end, t1)
            if hi > lo:
                out[s.kind] += hi - lo
        return dict(out)

    def spans_for(self, worker: str) -> List[Span]:
        return [s for s in self.spans if s.worker == worker]

    def utilisation(self, workers: Optional[Iterable[str]] = None) -> float:
        """Mean busy fraction across the given (or all) workers."""
        names = list(workers) if workers is not None else self.workers()
        if not names or self.makespan == 0:
            return 0.0
        return sum(1.0 - self.idle_fraction(w) for w in names) / len(names)

    # -- export ----------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """The trace as a Chrome ``trace_event`` JSON object.

        Exactly one complete ("ph": "X") event per recorded span, sorted
        by start time; workers map to ``tid`` in first-seen order and the
        worker name, ``info`` label and structured attributes appear under
        ``args``. The object serialises to a file loadable in
        ``about:tracing`` or https://ui.perfetto.dev. Timestamps are
        microseconds (the trace_event unit); simulated seconds * 1e6.
        """
        tids = {w: i for i, w in enumerate(self.workers())}
        events = []
        for s in self.spans:
            args: Dict[str, Any] = {"worker": s.worker}
            if s.info is not None:
                args["info"] = s.info
            args.update(s.attrs)
            events.append(
                {
                    "name": s.kind,
                    "cat": s.kind,
                    "ph": "X",
                    "ts": s.start * 1e6,
                    "dur": s.duration * 1e6,
                    "pid": 0,
                    "tid": tids[s.worker],
                    "args": args,
                }
            )
        events.sort(key=lambda e: (e["ts"], e["tid"]))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        """Serialise :meth:`to_chrome_trace` to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def to_jsonl(self) -> str:
        """One JSON object per span, one span per line, recording order."""
        lines = []
        for s in self.spans:
            row: Dict[str, Any] = {
                "worker": s.worker,
                "kind": s.kind,
                "start": s.start,
                "end": s.end,
            }
            if s.info is not None:
                row["info"] = s.info
            if s.attrs:
                row["attrs"] = dict(s.attrs)
            lines.append(json.dumps(row, sort_keys=True))
        return "\n".join(lines)

    @classmethod
    def from_jsonl(cls, text: str) -> "TraceRecorder":
        """Rebuild a recorder from :meth:`to_jsonl` output (round-trip)."""
        rec = cls()
        for line in text.splitlines():
            if not line.strip():
                continue
            row = json.loads(line)
            rec.record(
                row["worker"],
                row["kind"],
                row["start"],
                row["end"],
                info=row.get("info"),
                **row.get("attrs", {}),
            )
        return rec
