"""Execution trace recording: per-worker activity spans.

The Gantt charts of Figure 7 (native LU, static vs dynamic scheduling)
and the per-iteration breakdowns of Figure 9 (hybrid HPL with/without the
swapping pipeline) are renderings of this trace: every worker records
(kind, start, end) spans, and the recorder aggregates busy/idle time
globally, per worker, per kind, or within a time window.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class Span:
    """One contiguous activity interval on one worker."""

    worker: str
    kind: str
    start: float
    end: float
    info: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Collects spans and computes aggregate statistics."""

    def __init__(self) -> None:
        self.spans: List[Span] = []

    def record(
        self, worker: str, kind: str, start: float, end: float, info: str = None
    ) -> Span:
        if end < start:
            raise ValueError(f"span ends before it starts: {start} > {end}")
        span = Span(worker, kind, start, end, info)
        self.spans.append(span)
        return span

    # -- aggregate queries ---------------------------------------------------
    @property
    def makespan(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    def workers(self) -> List[str]:
        seen = dict.fromkeys(s.worker for s in self.spans)
        return list(seen)

    def kinds(self) -> List[str]:
        seen = dict.fromkeys(s.kind for s in self.spans)
        return list(seen)

    def busy_time(self, worker: str = None, kind: str = None) -> float:
        """Total span time, filtered by worker and/or kind."""
        return sum(
            s.duration
            for s in self.spans
            if (worker is None or s.worker == worker)
            and (kind is None or s.kind == kind)
        )

    def time_by_kind(self, worker: str = None) -> Dict[str, float]:
        out: Dict[str, float] = defaultdict(float)
        for s in self.spans:
            if worker is None or s.worker == worker:
                out[s.kind] += s.duration
        return dict(out)

    def idle_fraction(self, worker: str, t_end: float = None) -> float:
        """1 - busy/total for one worker over [0, t_end or makespan]."""
        total = self.makespan if t_end is None else t_end
        if total <= 0:
            return 0.0
        return max(0.0, 1.0 - self.busy_time(worker) / total)

    def window_by_kind(self, t0: float, t1: float, worker: str = None) -> Dict[str, float]:
        """Span time per kind clipped to the window [t0, t1]."""
        if t1 < t0:
            raise ValueError("window ends before it starts")
        out: Dict[str, float] = defaultdict(float)
        for s in self.spans:
            if worker is not None and s.worker != worker:
                continue
            lo, hi = max(s.start, t0), min(s.end, t1)
            if hi > lo:
                out[s.kind] += hi - lo
        return dict(out)

    def spans_for(self, worker: str) -> List[Span]:
        return [s for s in self.spans if s.worker == worker]

    def utilisation(self, workers: Iterable[str] = None) -> float:
        """Mean busy fraction across the given (or all) workers."""
        names = list(workers) if workers is not None else self.workers()
        if not names or self.makespan == 0:
            return 0.0
        return sum(1.0 - self.idle_fraction(w) for w in names) / len(names)
