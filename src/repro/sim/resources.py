"""Synchronisation primitives for the DES: FIFO lock, barrier, store.

These model the shared resources of the paper's schedulers: the DAG
critical section (a lock whose contention the "master thread" design
reduces — Section IV-A), group and global barriers (static look-ahead and
super-stage regrouping), and memory-mapped request/response queues of the
offload DGEMM design (Figure 10b).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.sim.engine import Event, Simulator


class Lock:
    """FIFO mutex; optionally charges a fixed hold (service) time.

    Usage inside a process::

        yield from lock.acquire()
        ... critical section ...
        lock.release()
    """

    def __init__(self, sim: Simulator, service_time: float = 0.0):
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        self.sim = sim
        self.service_time = service_time
        self._locked = False
        self._queue: Deque[Event] = deque()
        # statistics
        self.acquisitions = 0
        self.total_wait = 0.0
        self.max_queue_len = 0

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Generator:
        """Generator to be delegated to with ``yield from``."""
        t0 = self.sim.now
        if self._locked:
            ev = self.sim.event()
            self._queue.append(ev)
            self.max_queue_len = max(self.max_queue_len, len(self._queue))
            yield ev
        self._locked = True
        self.acquisitions += 1
        self.total_wait += self.sim.now - t0
        if self.service_time:
            yield self.service_time

    def release(self) -> None:
        if not self._locked:
            raise RuntimeError("release of an unlocked Lock")
        if self._queue:
            # Hand over directly: stays locked, next waiter proceeds.
            self._queue.popleft().succeed()
        else:
            self._locked = False

    @property
    def mean_wait(self) -> float:
        return self.total_wait / self.acquisitions if self.acquisitions else 0.0


class Barrier:
    """Reusable n-party barrier.

    ``yield from barrier.wait()``; the last arriving party releases all.
    """

    def __init__(self, sim: Simulator, parties: int, overhead: float = 0.0):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        if overhead < 0:
            raise ValueError("overhead must be non-negative")
        self.sim = sim
        self.parties = parties
        self.overhead = overhead  # extra time charged to every party
        self._count = 0
        self._event = sim.event()
        self.generations = 0

    def wait(self) -> Generator:
        self._count += 1
        if self._count == self.parties:
            ev = self._event
            self._event = self.sim.event()
            self._count = 0
            self.generations += 1
            ev.succeed()
            if self.overhead:
                yield self.overhead
        else:
            ev = self._event
            yield ev
            if self.overhead:
                yield self.overhead


class Store:
    """Unbounded FIFO store (the req/res queues of Figure 10b).

    ``put`` is immediate; ``get`` suspends until an item is available.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.puts = 0
        self.gets = 0

    def put(self, item: Any) -> None:
        self.puts += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Generator:
        """``item = yield from store.get()``."""
        self.gets += 1
        if self._items:
            return self._items.popleft()
        ev = self.sim.event()
        self._getters.append(ev)
        item = yield ev
        return item

    def __len__(self) -> int:
        return len(self._items)
