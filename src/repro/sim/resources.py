"""Synchronisation primitives for the DES: FIFO lock, barrier, store.

These model the shared resources of the paper's schedulers: the DAG
critical section (a lock whose contention the "master thread" design
reduces — Section IV-A), group and global barriers (static look-ahead and
super-stage regrouping), and memory-mapped request/response queues of the
offload DGEMM design (Figure 10b).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Generator, List, Optional

from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, hints only
    from repro.obs.metrics import MetricsRegistry


class Lock:
    """FIFO mutex; optionally charges a fixed hold (service) time.

    Usage inside a process::

        yield from lock.acquire()
        ... critical section ...
        lock.release()
    """

    def __init__(self, sim: Simulator, service_time: float = 0.0):
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        self.sim = sim
        self.service_time = service_time
        self._locked = False
        self._queue: Deque[Event] = deque()
        # statistics
        self.acquisitions = 0
        self.total_wait = 0.0
        self.total_hold = 0.0
        self.max_queue_len = 0
        self._acquired_at = 0.0

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Generator:
        """Generator to be delegated to with ``yield from``."""
        t0 = self.sim.now
        if self._locked:
            ev = self.sim.event()
            self._queue.append(ev)
            self.max_queue_len = max(self.max_queue_len, len(self._queue))
            yield ev
        self._locked = True
        self.acquisitions += 1
        self.total_wait += self.sim.now - t0
        self._acquired_at = self.sim.now
        if self.service_time:
            yield self.service_time

    def release(self) -> None:
        if not self._locked:
            raise RuntimeError("release of an unlocked Lock")
        self.total_hold += self.sim.now - self._acquired_at
        if self._queue:
            # Hand over directly: stays locked, next waiter proceeds.
            self._queue.popleft().succeed()
            self._acquired_at = self.sim.now
        else:
            self._locked = False

    @property
    def mean_wait(self) -> float:
        return self.total_wait / self.acquisitions if self.acquisitions else 0.0

    def publish_metrics(self, registry: "MetricsRegistry", name: str) -> None:
        """Write this lock's contention statistics into ``registry``."""
        registry.counter(f"{name}.acquisitions").inc(self.acquisitions)
        registry.timer(f"{name}.wait").add(self.total_wait, count=self.acquisitions)
        registry.timer(f"{name}.hold").add(self.total_hold, count=self.acquisitions)
        registry.gauge(f"{name}.queue_len_hwm").update_max(self.max_queue_len)


class Barrier:
    """Reusable n-party barrier.

    ``yield from barrier.wait()``; the last arriving party releases all.
    """

    def __init__(self, sim: Simulator, parties: int, overhead: float = 0.0):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        if overhead < 0:
            raise ValueError("overhead must be non-negative")
        self.sim = sim
        self.parties = parties
        self.overhead = overhead  # extra time charged to every party
        self._count = 0
        self._event = sim.event()
        self.generations = 0

    def wait(self) -> Generator:
        self._count += 1
        if self._count == self.parties:
            ev = self._event
            self._event = self.sim.event()
            self._count = 0
            self.generations += 1
            ev.succeed()
            if self.overhead:
                yield self.overhead
        else:
            ev = self._event
            yield ev
            if self.overhead:
                yield self.overhead

    def publish_metrics(self, registry: "MetricsRegistry", name: str) -> None:
        """Write this barrier's generation count into ``registry``."""
        registry.counter(f"{name}.generations").inc(self.generations)


class Store:
    """Unbounded FIFO store (the req/res queues of Figure 10b).

    ``put`` is immediate; ``get`` suspends until an item is available.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.puts = 0
        self.gets = 0
        self.max_occupancy = 0

    def put(self, item: Any) -> None:
        self.puts += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)
            if len(self._items) > self.max_occupancy:
                self.max_occupancy = len(self._items)

    def get(self) -> Generator:
        """``item = yield from store.get()``."""
        self.gets += 1
        if self._items:
            return self._items.popleft()
        ev = self.sim.event()
        self._getters.append(ev)
        item = yield ev
        return item

    def publish_metrics(self, registry: "MetricsRegistry", name: str) -> None:
        """Write this store's throughput/occupancy stats into ``registry``."""
        registry.counter(f"{name}.puts").inc(self.puts)
        registry.counter(f"{name}.gets").inc(self.gets)
        registry.gauge(f"{name}.occupancy_hwm").update_max(self.max_occupancy)

    def __len__(self) -> int:
        return len(self._items)
