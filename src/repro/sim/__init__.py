"""A small deterministic discrete-event simulation (DES) engine.

The scheduling results of the paper (static look-ahead vs dynamic DAG
scheduling, hybrid look-ahead pipelining, offload work stealing) are all
emergent properties of tasks with data dependencies contending for
workers and shared resources. This package provides the substrate on
which those schedulers run in the timing layer:

* :class:`Simulator` — event loop over generator-based processes;
* :class:`Event`, :class:`Lock`, :class:`Barrier`, :class:`Store` —
  synchronisation primitives with simulated-time semantics;
* :class:`TraceRecorder` — per-worker interval traces from which the
  Gantt charts (Figure 7) and idle-time breakdowns (Figure 9) are built.

Determinism: with identical process creation order the simulation is
fully reproducible; ties in the event queue break by insertion order.
"""

from repro.sim.engine import Simulator, Event, Process, Interrupt
from repro.sim.resources import Lock, Barrier, Store
from repro.sim.trace import TraceRecorder, Span

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Interrupt",
    "Lock",
    "Barrier",
    "Store",
    "TraceRecorder",
    "Span",
]
