"""Generator-based discrete-event simulation core.

Processes are Python generators. A process may yield:

* a number — sleep for that many simulated seconds;
* an :class:`Event` — suspend until the event is triggered; the yield
  expression evaluates to the event's value;
* a :class:`Process` — suspend until that process terminates (join).

The engine is deterministic: events scheduled for the same time fire in
insertion order. Simulated time is a float in seconds (the machine
models convert cycles/bytes to seconds before scheduling).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, hints only
    from repro.obs.metrics import MetricsRegistry


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event; processes wait on it and resume when triggered."""

    __slots__ = ("sim", "_waiters", "triggered", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._waiters: List["Process"] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, waking all current waiters in FIFO order."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        for proc in self._waiters:
            self.sim._schedule(self.sim.now, proc._resume, value)
        self._waiters.clear()
        return self

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._schedule(self.sim.now, proc._resume, self.value)
        else:
            self._waiters.append(proc)

    def abandon(self, proc: "Process") -> None:
        """Remove a waiter (used when a process is interrupted)."""
        if proc in self._waiters:
            self._waiters.remove(proc)


class Process:
    """A running generator inside the simulator."""

    __slots__ = ("sim", "gen", "name", "alive", "_done_event", "result", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.result: Any = None
        self._done_event = Event(sim)
        self._waiting_on: Optional[Event] = None
        sim._schedule(sim.now, self._resume, None)

    @property
    def done(self) -> Event:
        """Event triggered when this process terminates."""
        return self._done_event

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.alive:
            return
        if self._waiting_on is not None:
            self._waiting_on.abandon(self)
            self._waiting_on = None
        self.sim._schedule(self.sim.now, self._throw, Interrupt(cause))

    # -- engine internals ----------------------------------------------------
    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        self._waiting_on = None
        try:
            target = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._handle_yield(target)

    def _throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        try:
            target = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._handle_yield(target)

    def _handle_yield(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            if target < 0:
                raise ValueError(f"process {self.name!r} slept negative time {target}")
            self.sim._schedule(self.sim.now + target, self._resume, None)
        elif isinstance(target, Event):
            self._waiting_on = target
            target._add_waiter(self)
        elif isinstance(target, Process):
            self._waiting_on = target._done_event
            target._done_event._add_waiter(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; expected a delay, "
                "Event, or Process"
            )

    def _finish(self, result: Any) -> None:
        self.alive = False
        self.result = result
        self._done_event.succeed(result)


class Simulator:
    """The event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List = []
        self._seq = 0  # tie-break counter for determinism
        self._active_processes = 0
        # Observability: always-on cheap counters, published on demand.
        self.events_processed = 0
        self.queue_depth_hwm = 0

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process starting now."""
        return Process(self, gen, name)

    def timeout_event(self, delay: float, value: Any = None) -> Event:
        """An event that triggers ``delay`` seconds from now."""
        ev = Event(self)
        self._schedule(self.now + delay, ev.succeed, value)
        return ev

    def any_of(self, events: List[Event]) -> Event:
        """An event triggering when the first of ``events`` triggers.

        The value is the (index, value) pair of the first trigger.
        """
        out = Event(self)

        def make_cb(i: int) -> Callable:
            def cb(value: Any) -> None:
                if not out.triggered:
                    out.succeed((i, value))

            return cb

        for i, ev in enumerate(events):
            watcher = _watcher(ev, make_cb(i))
            self.process(watcher, name="any_of_watcher")
        return out

    def all_of(self, events: List[Event]) -> Event:
        """An event triggering when all of ``events`` have triggered."""
        out = Event(self)
        remaining = [len(events)]
        if not events:
            self._schedule(self.now, out.succeed, None)
            return out

        def make_cb() -> Callable:
            def cb(_value: Any) -> None:
                remaining[0] -= 1
                if remaining[0] == 0:
                    out.succeed(None)

            return cb

        for ev in events:
            self.process(_watcher(ev, make_cb()), name="all_of_watcher")
        return out

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (or simulated time passes ``until``).

        Returns the final simulation time.
        """
        while self._heap:
            t, _seq, fn, arg = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = t
            self.events_processed += 1
            fn(arg)
        return self.now

    def publish_metrics(self, registry: "MetricsRegistry", prefix: str = "sim") -> None:
        """Write the engine's counters into ``registry`` (idempotent)."""
        registry.gauge(f"{prefix}.events_processed").set(self.events_processed)
        registry.gauge(f"{prefix}.queue_depth_hwm").set(self.queue_depth_hwm)
        registry.gauge(f"{prefix}.final_time_s").set(self.now)

    def _schedule(self, at: float, fn: Callable, arg: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (at, self._seq, fn, arg))
        if len(self._heap) > self.queue_depth_hwm:
            self.queue_depth_hwm = len(self._heap)


def _watcher(ev: Event, cb: Callable) -> Generator:
    value = yield ev
    cb(value)
