"""The canonical, declarative run configuration: :class:`RunSpec`.

Every way of launching a run — the ``native`` / ``hybrid`` /
``distributed`` CLI subcommands, an ``HPL.dat`` file, the auto-tuner,
a campaign YAML sweep — used to carry its own ad-hoc bundle of knobs.
This module gives them one typed, validated home:

* :class:`RunSpec` — a frozen dataclass covering every knob the
  drivers accept (problem geometry, scheduler, look-ahead, broadcast
  algorithm, substrate switches, resilience plan, regrid schedule,
  machine profile, seed), with ``to_dict`` / ``from_dict`` / :meth:`RunSpec.canonical_hash`
  round-trips. The hash is the run's *identity*: campaigns deduplicate
  repeat configurations and resume interrupted sweeps by it, and every
  :class:`~repro.obs.result.RunResult` export carries it.
* the **flag table** (:data:`RUN_FLAGS`) — the single definition of the
  CLI flags for all run subcommands, generated from RunSpec fields.
  :func:`run_flags_parser` builds a shared parent parser per kind and
  :func:`spec_from_args` maps parsed arguments back into a RunSpec, so
  the subcommands cannot drift apart flag by flag.

Execution lives in :func:`repro.api.run`; this module is pure
configuration and deliberately imports no driver.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.machine.profiles import MACHINE_PROFILES, machine_profile

#: Run kinds repro.api.run can execute.
KINDS = ("native", "hybrid", "distributed")

#: Native scheduler choices (mirrors ``NativeHPL.SCHEDULERS``).
SCHEDULERS = ("dynamic", "static")

#: Hybrid look-ahead schemes (mirrors :class:`repro.hybrid.lookahead.Lookahead`).
HYBRID_LOOKAHEADS = ("none", "basic", "pipelined")

#: Distributed look-ahead is an on/off pipeline switch.
DIST_LOOKAHEADS = ("on", "off")

#: Panel-broadcast menu (mirrors ``DistributedHPL.BCAST_ALGOS``).
BCAST_ALGOS = ("star", "ring", "binomial", "ring-mod")

#: Tile-executor backends (mirrors :data:`repro.parallel.EXECUTOR_BACKENDS`):
#: "thread" shares the GIL, "process" fans work across worker processes
#: over shared memory.
EXECUTORS = ("thread", "process")

#: Rank-death recovery modes (mirrors ``DistributedHPL``): "restart"
#: rolls back and re-runs on the same grid, "shrink" redistributes the
#: newest complete cut onto a grid fitted to the surviving ranks.
ON_RANK_DEATH = ("restart", "shrink")

#: Working precisions of the factorization. float32 runs the SP kernel
#: and GEMM models (16 lanes / 2x peak on KNC); pair it with ``mxp`` to
#: recover double accuracy through iterative refinement.
DTYPES = ("float64", "float32")

#: MxP refinement defaults: converge the scaled residual below 1.0
#: (comfortably inside the DP HPL pass threshold of 16) within 8
#: correction iterations before declaring a stall.
DEFAULT_REFINE_TOL = 1.0
DEFAULT_REFINE_MAX_ITERS = 8

#: Kind-specific ``nb`` defaults (the historical CLI/driver defaults):
#: native 300 (best kernel depth), distributed 16 (test-scale grids),
#: hybrid 1200 for the timing model (``HYBRID_KT``, the PCIe-bound
#: block) and 64 for numeric runs (materialised matrices stay modest).
DEFAULT_NB = {"native": 300, "distributed": 16}
DEFAULT_NB_HYBRID_MODEL = 1200
DEFAULT_NB_HYBRID_NUMERIC = 64

_HASH_LEN = 16


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(message)


@dataclass(frozen=True)
class RunSpec:
    """One run, fully described. Frozen, validated on construction.

    ``None`` means "use the kind-specific default"; :meth:`normalized`
    resolves every such field (and the machine profile) so two specs
    that mean the same run hash identically. Fields that do not apply
    to a kind must stay at their defaults — validation rejects, for
    example, a ``bcast_algo`` on a native run — which keeps the hash
    space free of aliases.
    """

    kind: str
    n: int
    nb: Optional[int] = None
    scheduler: str = "dynamic"
    p: int = 1
    q: int = 1
    cards: int = 1
    mem_gb: float = 64.0
    machine: Optional[str] = None
    lookahead: Optional[str] = None
    bcast_algo: str = "star"
    chunk_kb: Optional[float] = None
    numeric: bool = False
    dtype: str = "float64"
    mxp: bool = False
    refine_tol: Optional[float] = None
    refine_max_iters: Optional[int] = None
    workers: Optional[int] = None
    executor: str = "thread"
    pack_cache: bool = True
    buffer_pool: bool = True
    alloc_profile: bool = False
    fault_plan: Optional[str] = None
    checkpoint_every: Optional[int] = None
    retry_max: Optional[int] = None
    comm_timeout: Optional[float] = None
    regrid: Tuple[str, ...] = ()
    on_rank_death: str = "restart"
    seed: int = 42

    def __post_init__(self):
        _require(self.kind in KINDS, f"kind must be one of {KINDS}, got {self.kind!r}")
        _require(isinstance(self.n, int) and self.n >= 1, "n must be a positive int")
        _require(self.nb is None or (isinstance(self.nb, int) and self.nb >= 1),
                 "nb must be a positive int (or None for the kind default)")
        _require(self.p >= 1 and self.q >= 1, "grid dimensions must be positive")
        _require(self.cards >= 1, "cards must be >= 1")
        _require(self.mem_gb > 0, "mem_gb must be positive")
        _require(self.seed >= 0, "seed must be non-negative")
        _require(self.workers is None or self.workers >= 1,
                 "workers must be >= 1 (or None for all cores)")
        _require(self.executor in EXECUTORS,
                 f"executor must be one of {EXECUTORS}, got {self.executor!r}")
        _require(self.chunk_kb is None or self.chunk_kb > 0, "chunk_kb must be positive")
        _require(self.checkpoint_every is None or self.checkpoint_every >= 1,
                 "checkpoint_every must be positive")
        _require(self.retry_max is None or self.retry_max >= 0,
                 "retry_max must be >= 0")
        _require(self.comm_timeout is None or self.comm_timeout > 0,
                 "comm_timeout must be positive")
        _require(self.on_rank_death in ON_RANK_DEATH,
                 f"on_rank_death must be one of {ON_RANK_DEATH}, "
                 f"got {self.on_rank_death!r}")
        _require(isinstance(self.regrid, tuple)
                 and all(isinstance(e, str) for e in self.regrid),
                 "regrid must be a tuple of 'panel=K:PxQ' strings")
        if self.regrid:
            from repro.elastic.schedule import parse_schedule

            try:
                parse_schedule(self.regrid)
            except ValueError as exc:
                raise ValueError(f"invalid regrid schedule: {exc}") from None
        _require(self.scheduler in SCHEDULERS,
                 f"scheduler must be one of {SCHEDULERS}")
        if self.machine is not None:
            machine_profile(self.machine)  # raises on unknown names
            _require(self.kind == "hybrid",
                     "machine profiles pin cards/mem_gb, which only the "
                     "hybrid drivers read")
        # Kind gating: a knob that the kind's driver cannot read must stay
        # at its default, so every distinct hash is a distinct run.
        if self.kind == "native":
            _require(self.lookahead is None,
                     "native runs have no look-ahead knob")
            _require((self.p, self.q) == (1, 1) and self.cards == 1,
                     "native runs are single-card: leave p/q/cards unset")
        else:
            _require(self.scheduler == "dynamic",
                     "scheduler applies to native runs only")
        if self.kind == "hybrid":
            _require(self.lookahead is None or self.lookahead in HYBRID_LOOKAHEADS,
                     f"hybrid lookahead must be one of {HYBRID_LOOKAHEADS}")
        if self.kind == "distributed":
            _require(self.lookahead is None or self.lookahead in DIST_LOOKAHEADS,
                     f"distributed lookahead must be one of {DIST_LOOKAHEADS}")
            _require(not self.numeric,
                     "distributed runs are always numeric; leave numeric unset")
            _require(self.bcast_algo in BCAST_ALGOS,
                     f"bcast_algo must be one of {BCAST_ALGOS}")
        else:
            for name in ("bcast_algo", "chunk_kb", "fault_plan",
                         "checkpoint_every", "retry_max", "comm_timeout",
                         "regrid", "on_rank_death"):
                default = RunSpec.__dataclass_fields__[name].default
                _require(getattr(self, name) == default,
                         f"{name} applies to distributed runs only")
        if self.numeric:
            _require(self.kind in ("native", "hybrid"),
                     "numeric applies to native/hybrid runs")
        _require(self.dtype in DTYPES,
                 f"dtype must be one of {DTYPES}, got {self.dtype!r}")
        if self.mxp:
            _require(self.dtype == "float32",
                     "mxp factors in single precision: set dtype='float32'")
        else:
            _require(self.refine_tol is None and self.refine_max_iters is None,
                     "refine_tol/refine_max_iters apply to mxp runs only")
        _require(self.refine_tol is None or self.refine_tol > 0,
                 "refine_tol must be positive")
        _require(self.refine_max_iters is None or self.refine_max_iters >= 1,
                 "refine_max_iters must be >= 1")

    # -- canonical forms ---------------------------------------------------
    def normalized(self) -> "RunSpec":
        """Resolve every kind-specific default to an explicit value.

        Applies the machine profile (pinning ``cards``/``mem_gb``),
        fills ``nb`` and ``lookahead``, and folds degenerate geometry
        (the numeric hybrid path is single-node, so ``p``/``q``
        collapse to 1). Idempotent; the canonical hash is taken here.
        """
        changes: Dict[str, Any] = {}
        if self.machine is not None:
            overrides = machine_profile(self.machine).spec_overrides()
            for field_name, value in overrides.items():
                if getattr(self, field_name) != value:
                    changes[field_name] = value
        if self.nb is None:
            if self.kind == "hybrid":
                changes["nb"] = (DEFAULT_NB_HYBRID_NUMERIC
                                 if self.numeric or self.mxp
                                 else DEFAULT_NB_HYBRID_MODEL)
            else:
                changes["nb"] = DEFAULT_NB[self.kind]
        if self.lookahead is None and self.kind == "hybrid":
            changes["lookahead"] = "pipelined"
        if self.lookahead is None and self.kind == "distributed":
            changes["lookahead"] = "off"
        if self.mxp:
            # MxP is inherently numeric on native/hybrid (refinement needs
            # the real solution); the flags alone name the same run.
            if self.kind in ("native", "hybrid") and not self.numeric:
                changes["numeric"] = True
            if self.refine_tol is None:
                changes["refine_tol"] = DEFAULT_REFINE_TOL
            if self.refine_max_iters is None:
                changes["refine_max_iters"] = DEFAULT_REFINE_MAX_ITERS
        numeric = changes.get("numeric", self.numeric)
        if self.kind == "hybrid" and numeric and (self.p, self.q) != (1, 1):
            changes["p"] = 1
            changes["q"] = 1
        if self.regrid:
            # Canonical spelling and panel order: "panel=03:2X4" and
            # out-of-order entries hash like their tidy equivalents.
            from repro.elastic.schedule import parse_schedule

            canon = tuple(str(pt) for pt in parse_schedule(self.regrid))
            if canon != self.regrid:
                changes["regrid"] = canon
        return dataclasses.replace(self, **changes) if changes else self

    def to_dict(self) -> dict:
        """The normalized spec as a plain, JSON-ready dict."""
        d = dataclasses.asdict(self.normalized())
        # JSON has no tuples; emit the schedule as a list so the dict is
        # byte-identical across a JSON round-trip.
        d["regrid"] = list(d["regrid"])
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict keys)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ValueError(f"unknown RunSpec keys: {unknown}")
        if "kind" not in d or "n" not in d:
            raise ValueError("a RunSpec needs at least 'kind' and 'n'")
        return cls(**_coerce_fields(dict(d)))

    def canonical_hash(self) -> str:
        """Hex digest identifying this run's configuration.

        Taken over the normalized dict with sorted keys, so key order
        and omitted defaults never produce distinct hashes for the same
        run: ``nb=None`` hashes like the explicit kind default, hybrid
        ``lookahead=None`` like ``"pipelined"``, and a ``grid`` override
        like its expanded ``p``/``q``. Every *normalized field* is
        identity-relevant — including the ``machine`` profile name, so a
        shorthand spec and one spelling out the same ``cards``/``mem_gb``
        deliberately hash apart (the profile pins future defaults too).

        This digest is the cache key of the whole system: campaign
        artifacts live at ``runs/<hash>.json`` and the benchmark
        service (:mod:`repro.service`) serves repeat configurations by
        it instead of re-executing them.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:_HASH_LEN]

    # -- service scheduling hints -----------------------------------------
    def batch_key(self) -> Tuple[str, str, bool, str]:
        """Dispatch-compatibility key for service request batching.

        Jobs sharing this key — same kind, machine profile, numeric
        mode and executor backend — may ride in one worker dispatch
        (:class:`repro.service.batching.Batcher`): the worker executes
        lookalike runs back to back, amortizing the process round-trip.
        """
        s = self.normalized()
        return (s.kind, s.machine or "", bool(s.numeric), s.executor)

    def cost_units(self) -> float:
        """Coarse relative-work estimate for fair scheduling.

        Units are "one cheap model run ≈ 1". Numeric and distributed
        runs really factor an ``n × n`` matrix, so they charge by flop
        count (``2n³/3``, one unit per 10⁸ flops); analytic model runs
        charge by panel-stage count, which is what their simulation
        loop iterates. Deficit round-robin admission
        (:class:`repro.service.admission.AdmissionController`) charges
        tenants these units, and the batcher refuses to coalesce jobs
        above its ``max_cost_units`` threshold.
        """
        s = self.normalized()
        stages = max(1, -(-s.n // s.nb))
        if s.kind == "distributed" or s.numeric:
            return max(1.0, (2 * s.n**3 / 3) / 1e8)
        return max(1.0, stages / 32)

    def with_overrides(self, overrides: Mapping[str, Any]) -> "RunSpec":
        """A copy with campaign-axis overrides applied.

        Accepts every RunSpec field plus the ``grid`` pseudo-field — a
        ``(p, q)`` pair or ``"PxQ"`` string, the shape axes sweep as one
        unit.
        """
        changes = dict(overrides)
        if "grid" in changes:
            p, q = parse_grid(changes.pop("grid"))
            changes["p"], changes["q"] = p, q
        known = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(changes) - known)
        if unknown:
            raise ValueError(f"unknown RunSpec override keys: {unknown}")
        return dataclasses.replace(self, **_coerce_fields(changes))

    def summary(self) -> str:
        """One human line naming the run."""
        parts = [self.kind, f"n={self.n}"]
        s = self.normalized()
        parts.append(f"nb={s.nb}")
        if (s.p, s.q) != (1, 1):
            parts.append(f"grid={s.p}x{s.q}")
        if s.kind == "hybrid":
            parts.append(f"cards={s.cards} lookahead={s.lookahead}")
        if s.kind == "distributed":
            parts.append(f"bcast={s.bcast_algo} lookahead={s.lookahead}")
            if s.regrid:
                parts.append("regrid=" + ",".join(s.regrid))
            if s.on_rank_death != "restart":
                parts.append(f"on-death={s.on_rank_death}")
        if s.numeric:
            parts.append("numeric")
        if s.mxp:
            parts.append(f"mxp(tol={s.refine_tol:g},k<={s.refine_max_iters})")
        elif s.dtype != "float64":
            parts.append(s.dtype)
        return " ".join(parts)


def _coerce_fields(values: Dict[str, Any]) -> Dict[str, Any]:
    """Smooth over document-format quirks before constructing a spec.

    YAML 1.1 reads ``on``/``off`` as booleans, so a campaign axis
    ``lookahead: [on, off]`` arrives as ``[True, False]`` — map those
    back to the canonical strings. ``mem_gb`` accepts ints.
    """
    if isinstance(values.get("lookahead"), bool):
        values["lookahead"] = "on" if values["lookahead"] else "off"
    if isinstance(values.get("mem_gb"), int):
        values["mem_gb"] = float(values["mem_gb"])
    if isinstance(values.get("regrid"), list):
        # JSON and YAML documents carry the schedule as a list.
        values["regrid"] = tuple(values["regrid"])
    return values


def parse_grid(value: Any) -> Tuple[int, int]:
    """A grid axis value — ``[p, q]``, ``(p, q)`` or ``"PxQ"`` — as (p, q)."""
    if isinstance(value, str):
        try:
            p_text, q_text = value.lower().split("x")
            return int(p_text), int(q_text)
        except ValueError:
            raise ValueError(f"grid string must look like '2x4', got {value!r}") from None
    try:
        p, q = value
        return int(p), int(q)
    except (TypeError, ValueError):
        raise ValueError(f"grid must be a (p, q) pair or 'PxQ', got {value!r}") from None


# -- the flag table ---------------------------------------------------------
#
# One definition per CLI flag, mapped to its RunSpec field, with the
# kinds it applies to and any per-kind parser overrides. The per-kind
# dict values become argparse kwargs verbatim; a kind that is absent
# from the mapping does not get the flag at all.


@dataclass(frozen=True)
class FlagDef:
    """One CLI flag generated from a RunSpec field."""

    field: str
    option: str
    help: str
    kinds: Mapping[str, Mapping[str, Any]]
    type: Optional[Callable] = None
    action: Optional[str] = None
    choices: Optional[tuple] = None
    metavar: Optional[str] = None
    #: The option stores the *negation* of the field (--no-pack-cache).
    invert: bool = False

    @property
    def dest(self) -> str:
        return self.option.lstrip("-").replace("-", "_")

    def parser_kwargs(self, kind: str) -> dict:
        """The ``add_argument`` kwargs for this flag under ``kind``.

        Per-kind overrides win over the table-level settings *before*
        the flag's shape is decided, so a flag can be a value option
        for one kind and a ``store_true`` switch for another (the
        distributed ``--lookahead``).
        """
        merged: Dict[str, Any] = {"help": self.help, "action": self.action}
        if self.type is not None:
            merged["type"] = self.type
        if self.choices:
            merged["choices"] = self.choices
        if self.metavar:
            merged["metavar"] = self.metavar
        merged.update(self.kinds[kind])
        if merged.get("action") in ("store_true", "store_false"):
            for incompatible in ("type", "default", "choices", "metavar"):
                merged.pop(incompatible, None)
        else:
            # "append" keeps its action (repeatable value flags like
            # --regrid); anything else is a plain value option.
            if merged.get("action") != "append":
                merged.pop("action", None)
            merged.setdefault("type", int)
            merged.setdefault("default", None)
        return merged


def _regrid_entry(text: str) -> str:
    """argparse ``type`` for ``--regrid``: validate, keep the string.

    A malformed entry raises ``ArgumentTypeError`` so argparse exits 2
    with the parser's one-line message instead of a traceback.
    """
    from repro.elastic.schedule import parse_regrid

    try:
        parse_regrid(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


_ALL = ("native", "hybrid", "distributed")

#: The shared flag table: ordering here is the --help ordering.
RUN_FLAGS: Tuple[FlagDef, ...] = (
    FlagDef("n", "--n", "problem size N",
            kinds={"native": {"required": True}, "hybrid": {"required": True},
                   "distributed": {"default": 144}}),
    FlagDef("nb", "--nb", "block size NB",
            kinds={"native": {"default": 300},
                   "hybrid": {"help": "block size NB (default: 64 numeric, "
                                      "1200 model)"},
                   "distributed": {"default": 16}}),
    FlagDef("scheduler", "--scheduler", "native LU scheduler",
            choices=SCHEDULERS, type=str,
            kinds={"native": {"default": "dynamic"}}),
    FlagDef("cards", "--cards", "KNC cards per node",
            kinds={"hybrid": {"default": 1}}),
    FlagDef("p", "--p", "process-grid rows P",
            kinds={"hybrid": {"default": 1}, "distributed": {"default": 2}}),
    FlagDef("q", "--q", "process-grid columns Q",
            kinds={"hybrid": {"default": 1}, "distributed": {"default": 2}}),
    FlagDef("mem_gb", "--mem-gb", "host memory per node (GB)",
            kinds={"hybrid": {"default": 64}}),
    FlagDef("lookahead", "--lookahead", "look-ahead scheme",
            kinds={"hybrid": {"default": "pipelined", "action": None,
                              "type": str, "choices": HYBRID_LOOKAHEADS},
                   "distributed": {
                       "action": "store_true",
                       "help": "overlap panel broadcast with the trailing "
                               "update (Section IV)"}}),
    FlagDef("bcast_algo", "--bcast-algo",
            "panel-broadcast algorithm (ring-mod = pipelined segmented ring)",
            choices=BCAST_ALGOS, type=str,
            kinds={"distributed": {"default": "star"}}),
    FlagDef("chunk_kb", "--chunk-kb",
            "segment size for chunked non-blocking transfers (default 256)",
            type=float, metavar="KB", kinds={"distributed": {}}),
    FlagDef("fault_plan", "--fault-plan",
            "seeded fault plan: DSL ('seed=7;crash:rank=1,stage=2;"
            "corrupt:op=bcast,count=2;slow:rank=0,delay=0.001'), "
            "a JSON document, or a path to either",
            type=str, metavar="PLAN", kinds={"distributed": {}}),
    FlagDef("checkpoint_every", "--checkpoint-every",
            "checkpoint every K panel stages (enables rollback recovery)",
            metavar="K", kinds={"distributed": {}}),
    FlagDef("retry_max", "--retry-max",
            "bounded resend retries for the hardened channel",
            metavar="N", kinds={"distributed": {}}),
    FlagDef("comm_timeout", "--comm-timeout",
            "reliable-receive timeout before the first resend (seconds)",
            type=float, metavar="S", kinds={"distributed": {}}),
    FlagDef("regrid", "--regrid",
            "reshape the grid mid-run: at panel K, redistribute onto "
            "PxQ and continue there (repeatable for multi-step "
            "schedules; bitwise-identical to running on the final grid)",
            type=_regrid_entry, action="append", metavar="panel=K:PxQ",
            kinds={"distributed": {}}),
    FlagDef("on_rank_death", "--on-rank-death",
            "recovery mode when a rank dies with no spare: 'restart' "
            "re-runs the lost geometry, 'shrink' redistributes the "
            "newest cut onto the survivors",
            type=str, choices=ON_RANK_DEATH,
            kinds={"distributed": {"default": "restart"}}),
    FlagDef("numeric", "--numeric", "really solve and check",
            action="store_true",
            kinds={"native": {},
                   "hybrid": {"help": "really factor and solve through the "
                                      "offload engine (keep N modest)"}}),
    FlagDef("machine", "--machine",
            f"machine profile pinning cards/mem-gb: {', '.join(MACHINE_PROFILES)}",
            type=str, metavar="NAME", kinds={"hybrid": {}}),
    FlagDef("dtype", "--dtype",
            "working precision of the factorization (float32 runs the SP "
            "kernel/GEMM models; pair with --mxp to recover DP accuracy)",
            type=str, choices=DTYPES,
            kinds={k: {"default": "float64"} for k in _ALL}),
    FlagDef("mxp", "--mxp",
            "mixed-precision HPL-MxP: factor in float32, then iteratively "
            "refine the solution back to double precision",
            action="store_true", kinds={k: {} for k in _ALL}),
    FlagDef("refine_tol", "--refine-tol",
            "scaled-residual convergence target for MxP refinement "
            f"(default {DEFAULT_REFINE_TOL:g}; the DP HPL check passes at 16)",
            type=float, metavar="TOL", kinds={k: {} for k in _ALL}),
    FlagDef("refine_max_iters", "--refine-max-iters",
            "refinement iteration budget before falling back to a full-DP "
            f"factorization (default {DEFAULT_REFINE_MAX_ITERS})",
            metavar="K", kinds={k: {} for k in _ALL}),
    FlagDef("seed", "--seed", "matrix-generator seed for numeric runs",
            kinds={k: {"default": 42} for k in _ALL}),
    FlagDef("workers", "--workers",
            "tile-executor pool width for numeric runs (default: all cores)",
            metavar="N", kinds={k: {} for k in _ALL}),
    FlagDef("executor", "--executor",
            "tile-executor backend: 'thread' (in-process pool) or 'process' "
            "(GIL-free shared-memory worker processes)",
            choices=EXECUTORS, type=str,
            kinds={k: {"default": "thread"} for k in _ALL}),
    FlagDef("pack_cache", "--no-pack-cache",
            "disable the pack-once tile cache (re-pack every GEMM panel)",
            action="store_true", invert=True, kinds={k: {} for k in _ALL}),
    FlagDef("buffer_pool", "--no-buffer-pool",
            "disable the scratch-buffer arena (allocate per call instead)",
            action="store_true", invert=True, kinds={k: {} for k in _ALL}),
    FlagDef("alloc_profile", "--alloc-profile",
            "record tracemalloc allocation spans in the result's alloc field",
            action="store_true", kinds={k: {} for k in _ALL}),
)


def run_flags_parser(kind: str) -> argparse.ArgumentParser:
    """The shared parent parser holding ``kind``'s RunSpec flags."""
    if kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
    parent = argparse.ArgumentParser(add_help=False)
    for fd in RUN_FLAGS:
        if kind in fd.kinds:
            parent.add_argument(fd.option, **fd.parser_kwargs(kind))
    return parent


def spec_from_args(kind: str, args: argparse.Namespace) -> RunSpec:
    """Map a parsed namespace back into the canonical RunSpec."""
    values: Dict[str, Any] = {"kind": kind}
    for fd in RUN_FLAGS:
        if kind not in fd.kinds:
            continue
        value = getattr(args, fd.dest)
        if fd.invert:
            value = not value
        if fd.field == "lookahead" and kind == "distributed":
            value = "on" if value else "off"
        if fd.field == "mem_gb" and value is not None:
            value = float(value)
        if value is None and fd.field in ("scheduler", "bcast_algo",
                                          "regrid", "on_rank_death"):
            continue  # keep the dataclass default
        if fd.field == "regrid":
            value = tuple(value)
        values[fd.field] = value
    return RunSpec(**values)
