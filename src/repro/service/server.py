"""The service front end: newline-delimited JSON over TCP or stdio.

One protocol, two transports. Each request is a single JSON line; each
response line carries the request's ``id`` so one connection can
multiplex many in-flight submissions:

request lines
    ``{"op": "submit", "id": "1", "spec": {...}, "tenant": "t"}``
        run (or serve) a :class:`~repro.spec.RunSpec` dict;
    ``{"op": "stats", "id": "2"}``
        snapshot of :meth:`~repro.service.core.Service.stats`;
    ``{"op": "ping", "id": "3"}`` / ``{"op": "shutdown"}``
        liveness probe / orderly server stop.

response lines (all tagged with the request ``id``)
    progress events ``{"id", "event": "queued" | "running" | "done"}``
    streamed as the job advances, then exactly one terminal line:
    ``{"id", "event": "result", "artifact": {...}}`` — the full
    artifact, ``result`` payload and ``cached`` provenance included —
    or ``{"id", "event": "error", "error": "..."}`` for requests that
    never became a job (malformed JSON, invalid spec).

Writes from concurrent jobs are serialized through one writer queue per
connection, so event lines never interleave mid-line. The TCP transport
(:func:`serve`) prints ``service listening on HOST:PORT`` once bound —
with ``port=0`` the kernel picks the port, which is how tests and the
smoke example avoid collisions. The stdio transport (:func:`serve_stdio`)
reads requests from stdin until EOF: no sockets at all, which makes it
trivially scriptable (``repro service serve --stdio < requests.jsonl``).
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Optional, TextIO

from repro.service.core import Service
from repro.spec import RunSpec


class _LineWriter:
    """Serialize response lines from concurrent tasks onto one sink."""

    def __init__(self):
        self.queue: "asyncio.Queue[Optional[str]]" = asyncio.Queue()

    def send(self, payload: dict) -> None:
        """Queue one JSON line (compact, sorted keys: deterministic)."""
        self.queue.put_nowait(json.dumps(payload, sort_keys=True,
                                         separators=(",", ":")))

    async def drain_to_stream(self, writer: asyncio.StreamWriter) -> None:
        """Writer task for the TCP transport; ends on the None sentinel."""
        while True:
            line = await self.queue.get()
            if line is None:
                break
            writer.write(line.encode() + b"\n")
            try:
                await writer.drain()
            except ConnectionError:
                break

    async def drain_to_file(self, out: TextIO) -> None:
        """Writer task for the stdio transport."""
        while True:
            line = await self.queue.get()
            if line is None:
                break
            out.write(line + "\n")
            out.flush()


async def _handle_line(service: Service, line: str, out: _LineWriter,
                       stop: asyncio.Event) -> None:
    """Decode and execute one request line; never raises."""
    try:
        msg = json.loads(line)
        if not isinstance(msg, dict):
            raise ValueError("request must be a JSON object")
    except ValueError as exc:
        out.send({"id": None, "event": "error", "error": f"bad request: {exc}"})
        return
    req_id = msg.get("id")
    op = msg.get("op", "submit")
    if op == "ping":
        out.send({"id": req_id, "event": "pong"})
        return
    if op == "stats":
        out.send({"id": req_id, "event": "stats", "stats": service.stats()})
        return
    if op == "shutdown":
        out.send({"id": req_id, "event": "stopping"})
        stop.set()
        return
    if op != "submit":
        out.send({"id": req_id, "event": "error", "error": f"unknown op {op!r}"})
        return
    try:
        spec = RunSpec.from_dict(msg.get("spec") or {})
    except Exception as exc:
        out.send({"id": req_id, "event": "error", "error": f"invalid spec: {exc}"})
        return
    tenant = str(msg.get("tenant", "default"))
    artifact = await service.submit(
        spec, tenant=tenant,
        on_event=lambda ev: out.send({"id": req_id, **ev}),
    )
    out.send({"id": req_id, "event": "result", "artifact": artifact})


async def _read_requests(service: Service, reader: asyncio.StreamReader,
                         out: _LineWriter, stop: asyncio.Event) -> None:
    """Fan request lines out as concurrent tasks until EOF/shutdown."""
    pending = set()
    while not stop.is_set():
        read = asyncio.ensure_future(reader.readline())
        halt = asyncio.ensure_future(stop.wait())
        done, _ = await asyncio.wait({read, halt},
                                     return_when=asyncio.FIRST_COMPLETED)
        halt.cancel()
        if read not in done:
            read.cancel()
            break
        line = read.result()
        if not line:
            break
        text = line.decode(errors="replace").strip()
        if not text:
            continue
        task = asyncio.ensure_future(_handle_line(service, text, out, stop))
        pending.add(task)
        task.add_done_callback(pending.discard)
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)


async def serve(
    service: Service,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[asyncio.Event] = None,
    announce: TextIO = None,
) -> None:
    """Run the TCP front end until a client sends ``shutdown``.

    Announces ``service listening on HOST:PORT`` (stdout by default) so
    callers that asked for an ephemeral port (``port=0``) learn where to
    connect; ``ready`` is set once the socket is bound. The bound port
    is also recorded on ``service.bound_port``.
    """
    stop = asyncio.Event()

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        out = _LineWriter()
        pump = asyncio.ensure_future(out.drain_to_stream(writer))
        try:
            await _read_requests(service, reader, out, stop)
        finally:
            out.queue.put_nowait(None)
            try:
                await pump
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # Loop teardown after `shutdown` cancels lingering
                # handlers mid-cleanup; the connection is going away
                # either way, so finish quietly.
                pump.cancel()

    await service.start()
    server = await asyncio.start_server(handle, host=host, port=port)
    bound = server.sockets[0].getsockname()[1]
    service.bound_port = bound
    print(f"service listening on {host}:{bound}",
          file=announce or sys.stdout, flush=True)
    if ready is not None:
        ready.set()
    async with server:
        await stop.wait()


async def serve_stdio(service: Service, stdin: TextIO = None,
                      stdout: TextIO = None) -> None:
    """Run the protocol over stdin/stdout until EOF or ``shutdown``.

    No sockets: requests stream in on stdin, responses out on stdout,
    one JSON document per line — the transport CI smoke tests and shell
    pipelines use.
    """
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    out = _LineWriter()
    pump = asyncio.ensure_future(out.drain_to_file(stdout or sys.stdout))
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), stdin or sys.stdin
    )
    await service.start()
    try:
        await _read_requests(service, reader, out, stop)
    finally:
        out.queue.put_nowait(None)
        await pump
