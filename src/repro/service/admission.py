"""Admission control: bounded queues, per-tenant fairness, load shedding.

At saturation a benchmark service has three honest choices per request:
queue it, serve it from cache, or refuse it *explicitly*. This module
implements the queueing and refusal half:

* one FIFO queue per tenant behind a **global bound** (``max_queue``):
  when the bound is hit, :meth:`AdmissionController.offer` returns
  False and the service answers with an explicit ``rejected`` artifact
  instead of letting latency grow without limit (load shedding);
* **deficit round-robin** (DRR) scheduling across tenants: each
  scheduling turn visits the next tenant with queued work, grants it
  ``quantum`` units of deficit, and dequeues jobs while the accumulated
  deficit covers each job's :meth:`~repro.spec.RunSpec.cost_units`.
  Cheap jobs from a polite tenant cannot starve behind one tenant's
  flood of expensive ones — the flood spends its deficit and waits.

The controller is synchronous and loop-agnostic: the asyncio service
calls ``offer`` from ``submit`` and ``take`` from its scheduler task.
Items are opaque; cost is supplied at ``offer`` time so this layer never
imports the spec machinery.
"""

from __future__ import annotations

import collections
from typing import Any, Dict, List, Optional, Tuple


class AdmissionController:
    """Bounded per-tenant queues drained by deficit round-robin.

    Parameters
    ----------
    max_queue:
        Global bound on queued items across all tenants; ``offer``
        sheds (returns False) beyond it.
    quantum:
        Deficit granted to a tenant per scheduling turn, in the same
        units as the per-item costs. With unit costs and the default
        quantum this degenerates to plain round-robin.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` publishing
        ``service.admission.*`` counters and queue-depth gauges.
    """

    def __init__(self, max_queue: int = 64, quantum: float = 1.0, metrics=None):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.max_queue = max_queue
        self.quantum = quantum
        self.metrics = metrics
        self._queues: "collections.OrderedDict[str, collections.deque]" = (
            collections.OrderedDict()
        )
        self._deficit: Dict[str, float] = {}
        self._rotation: List[str] = []
        self._turn = 0
        self.accepted = 0
        self.rejected = 0
        self.served = 0

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def depth(self) -> int:
        """Queued items across every tenant."""
        return len(self)

    # -- enqueue ---------------------------------------------------------------
    def offer(self, tenant: str, item: Any, cost: float = 1.0) -> bool:
        """Queue ``item`` for ``tenant``; False means *shed it now*.

        Shedding is decided on the global bound only — a tenant cannot
        be starved out of admission, merely scheduled fairly afterwards.
        """
        if cost <= 0:
            raise ValueError("cost must be positive")
        if len(self) >= self.max_queue:
            self.rejected += 1
            self._count("rejected")
            return False
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = collections.deque()
            self._deficit.setdefault(tenant, 0.0)
            self._rotation.append(tenant)
        queue.append((item, cost))
        self.accepted += 1
        self._count("accepted")
        self._gauges()
        return True

    # -- dequeue (one DRR turn) ------------------------------------------------
    def take(self, limit: Optional[int] = None) -> List[Any]:
        """Dequeue one tenant's scheduling turn; [] when nothing is due.

        The next tenant in rotation with queued work earns ``quantum``
        deficit and yields queued jobs head-first while the deficit
        covers their cost. A head job costlier than one quantum makes
        its tenant accumulate deficit over successive turns; when every
        queued head is still too expensive after a full rotation, the
        rotation repeats (deficits grow each pass) until one job becomes
        eligible, so a non-empty controller always grants. An emptied
        tenant's residual deficit is cleared, as classic DRR requires,
        so idleness earns no credit.
        """
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1")
        while len(self):
            for _ in range(len(self._rotation)):
                tenant = self._rotation[self._turn % len(self._rotation)]
                self._turn += 1
                queue = self._queues.get(tenant)
                if not queue:
                    self._deficit[tenant] = 0.0
                    continue
                self._deficit[tenant] += self.quantum
                granted: List[Any] = []
                while queue and (limit is None or len(granted) < limit):
                    item, cost = queue[0]
                    if cost > self._deficit[tenant]:
                        break
                    queue.popleft()
                    self._deficit[tenant] -= cost
                    granted.append(item)
                if not queue:
                    self._deficit[tenant] = 0.0
                if granted:
                    self.served += len(granted)
                    self._count("served", len(granted))
                    self._gauges()
                    return granted
        return []

    def pending(self) -> List[Tuple[str, int]]:
        """(tenant, queued-count) rows, rotation-ordered, for stats."""
        return [(t, len(self._queues[t])) for t in self._rotation
                if self._queues.get(t)]

    # -- observability ---------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"service.admission.{name}").inc(amount)

    def _gauges(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("service.admission.queue_depth").set(len(self))
            self.metrics.gauge("service.admission.tenants").set(len(self._rotation))
            self.metrics.gauge("service.admission.queue_peak").update_max(len(self))

    def stats(self) -> Dict[str, Any]:
        """Snapshot for ``Service.stats`` and tests."""
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "served": self.served,
            "depth": len(self),
            "tenants": {t: n for t, n in self.pending()},
        }

    def __repr__(self) -> str:
        return (
            f"AdmissionController(depth={len(self)}/{self.max_queue}, "
            f"tenants={len(self._rotation)})"
        )
