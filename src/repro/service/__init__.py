"""Benchmark-as-a-service: cache, coalesce, admit, batch, execute.

The experiment layers below this package (drivers, campaigns, the
auto-tuner) all funnel through one call — ``repro.api.run(spec)`` — and
one identity — ``spec.canonical_hash()``. This package turns that pair
into a serving layer, so repeated and concurrent benchmark requests stop
paying for redundant execution:

* :mod:`~repro.service.cache` — :class:`ResultCache`, a two-tier
  (memory LRU + disk) store of run artifacts keyed by canonical hash,
  byte-compatible with campaign ``runs/<hash>.json`` files; also the
  home of the ``campaign-run-v1`` artifact schema and its constructors;
* :mod:`~repro.service.admission` — :class:`AdmissionController`,
  bounded per-tenant queues with deficit-round-robin fairness and
  explicit load shedding;
* :mod:`~repro.service.batching` — :class:`Batcher`, coalescing
  compatible small jobs into single worker dispatches;
* :mod:`~repro.service.core` — :class:`Service`, the asyncio engine
  wiring cache → single-flight → admission → batch → worker pool;
* :mod:`~repro.service.worker` — :func:`execute_batch`, the picklable
  pool entry point;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — the
  NDJSON front end (TCP or stdio) and its multiplexing client, exposed
  on the CLI as ``repro service serve`` / ``repro service submit``.

The cheapest benchmark is the one you do not run twice: a cache hit
answers in microseconds with ``cached: True``, N concurrent duplicates
execute once, and a campaign re-run over a warm service cache executes
zero runs.
"""

from repro.service.admission import AdmissionController
from repro.service.batching import Batcher
from repro.service.cache import (
    SCHEMA,
    ResultCache,
    failure_artifact,
    load_artifact,
    ok_artifact,
)
from repro.service.client import ServiceClient, ServiceError, submit_once
from repro.service.core import Service, default_service_workers
from repro.service.server import serve, serve_stdio
from repro.service.worker import execute_batch

__all__ = [
    "SCHEMA",
    "AdmissionController",
    "Batcher",
    "ResultCache",
    "Service",
    "ServiceClient",
    "ServiceError",
    "default_service_workers",
    "execute_batch",
    "failure_artifact",
    "load_artifact",
    "ok_artifact",
    "serve",
    "serve_stdio",
    "submit_once",
]
