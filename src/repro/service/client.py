"""Client for the NDJSON benchmark service.

:class:`ServiceClient` speaks the protocol of
:mod:`repro.service.server` over one TCP connection, multiplexing any
number of concurrent submissions: a background reader task routes each
response line to the request whose ``id`` it carries, and progress
events stream to the submitter's optional callback exactly as the local
:meth:`~repro.service.core.Service.submit` would deliver them.

Async usage::

    async with ServiceClient("127.0.0.1", port) as client:
        artifact = await client.submit({"kind": "hybrid", "n": 84000})

:func:`submit_once` wraps connect → submit → close into one synchronous
call for the ``repro service submit`` CLI and quick scripts.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Callable, Dict, List, Optional, Union

from repro.spec import RunSpec


class ServiceError(RuntimeError):
    """A request the server answered with an ``error`` line."""


class ServiceClient:
    """One multiplexed NDJSON connection to a running service."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._ids = itertools.count(1)
        self._done: Dict[str, "asyncio.Future[dict]"] = {}
        self._listeners: Dict[str, Callable[[dict], None]] = {}

    # -- lifecycle -------------------------------------------------------------
    async def connect(self) -> "ServiceClient":
        """Open the connection and start the response-routing task."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.ensure_future(self._route_responses())
        return self

    async def close(self) -> None:
        """Close the connection; pending requests fail with ServiceError."""
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._writer = None
        if self._reader_task is not None:
            await asyncio.wait({self._reader_task})
            self._reader_task = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # -- response routing ------------------------------------------------------
    async def _route_responses(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    msg = json.loads(line)
                except ValueError:
                    continue
                req_id = msg.get("id")
                fut = self._done.get(req_id)
                event = msg.get("event")
                if event in ("result", "stats", "pong", "stopping", "error"):
                    if fut is not None and not fut.done():
                        fut.set_result(msg)
                    continue
                listener = self._listeners.get(req_id)
                if listener is not None:
                    try:
                        listener(msg)
                    except Exception:
                        pass
        finally:
            for fut in self._done.values():
                if not fut.done():
                    fut.set_exception(ServiceError("connection closed"))

    async def _request(self, payload: dict,
                       on_event: Optional[Callable[[dict], None]] = None) -> dict:
        if self._writer is None:
            raise ServiceError("client is not connected")
        req_id = str(next(self._ids))
        payload = {**payload, "id": req_id}
        fut = asyncio.get_running_loop().create_future()
        self._done[req_id] = fut
        if on_event is not None:
            self._listeners[req_id] = on_event
        try:
            self._writer.write(
                json.dumps(payload, sort_keys=True).encode() + b"\n"
            )
            await self._writer.drain()
            msg = await fut
        finally:
            self._done.pop(req_id, None)
            self._listeners.pop(req_id, None)
        if msg.get("event") == "error":
            raise ServiceError(msg.get("error", "request failed"))
        return msg

    # -- operations ------------------------------------------------------------
    async def submit(
        self,
        spec: Union[RunSpec, dict],
        tenant: str = "default",
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Submit one spec; returns the full artifact document.

        Progress events (``queued``/``running``/``cached``/...) stream
        to ``on_event`` before the terminal artifact arrives.
        """
        doc = spec.to_dict() if isinstance(spec, RunSpec) else dict(spec)
        msg = await self._request(
            {"op": "submit", "spec": doc, "tenant": tenant}, on_event=on_event
        )
        return msg["artifact"]

    async def submit_many(
        self,
        specs: List[Union[RunSpec, dict]],
        tenant: str = "default",
    ) -> List[dict]:
        """Submit specs concurrently over the one connection."""
        return list(await asyncio.gather(
            *(self.submit(s, tenant=tenant) for s in specs)
        ))

    async def stats(self) -> dict:
        """The server's :meth:`~repro.service.core.Service.stats` snapshot."""
        return (await self._request({"op": "stats"}))["stats"]

    async def ping(self) -> bool:
        """True when the server answers the liveness probe."""
        return (await self._request({"op": "ping"})).get("event") == "pong"

    async def shutdown(self) -> None:
        """Ask the server to stop accepting work and exit its serve loop."""
        await self._request({"op": "shutdown"})


def submit_once(
    host: str,
    port: int,
    spec: Union[RunSpec, dict],
    tenant: str = "default",
    on_event: Optional[Callable[[dict], None]] = None,
) -> dict:
    """Connect, submit one spec, disconnect — the CLI's synchronous path."""

    async def _go() -> dict:
        async with ServiceClient(host, port) as client:
            return await client.submit(spec, tenant=tenant, on_event=on_event)

    return asyncio.run(_go())
