"""Request batching: coalesce compatible small jobs into one dispatch.

Dispatching a job to a worker process costs a pickle round-trip and a
scheduling wake-up — for the analytic model runs that dominate service
traffic, that overhead rivals the run itself. The :class:`Batcher`
groups jobs that may share a dispatch:

* **compatible** — same :meth:`~repro.spec.RunSpec.batch_key` (kind,
  machine profile, numeric mode, executor backend), so one worker
  executes lookalike work back to back with warm caches;
* **small** — :meth:`~repro.spec.RunSpec.cost_units` at most
  ``max_cost_units``, so one slow giant never rides along and delays a
  batch of quick jobs;
* **bounded** — at most ``max_jobs`` per batch.

Batching only ever groups *consecutively scheduled* jobs (the order the
admission controller granted), so it amortizes round-trips without
reordering anything the fairness layer decided.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence


class Batcher:
    """Group scheduled jobs into dispatch batches.

    Parameters
    ----------
    max_jobs:
        Upper bound on jobs per dispatch (1 disables coalescing).
    max_cost_units:
        A job above this :meth:`~repro.spec.RunSpec.cost_units` estimate
        always dispatches alone.
    key:
        Compatibility key for a job; defaults to ``job.spec.batch_key()``.
    cost:
        Cost estimate for a job; defaults to ``job.spec.cost_units()``.
    """

    def __init__(
        self,
        max_jobs: int = 8,
        max_cost_units: float = 8.0,
        key: Callable[[Any], tuple] = None,
        cost: Callable[[Any], float] = None,
    ):
        if max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        if max_cost_units <= 0:
            raise ValueError("max_cost_units must be positive")
        self.max_jobs = max_jobs
        self.max_cost_units = max_cost_units
        self._key = key if key is not None else (lambda job: job.spec.batch_key())
        self._cost = cost if cost is not None else (lambda job: job.spec.cost_units())
        self.batches = 0
        self.jobs = 0
        self.coalesced = 0
        self.largest = 0

    def plan(self, jobs: Sequence[Any]) -> List[List[Any]]:
        """Split one scheduling grant into dispatch batches, in order.

        Consecutive jobs sharing a compatibility key merge until
        ``max_jobs``; any job too costly to batch (or keyed differently
        from its predecessor) starts a new batch. Order within and
        across batches is exactly the input order.
        """
        plan: List[List[Any]] = []
        current: List[Any] = []
        current_key = None
        for job in jobs:
            small = self._cost(job) <= self.max_cost_units
            key = self._key(job) if small else object()  # unique: never merges
            if current and small and key == current_key and len(current) < self.max_jobs:
                current.append(job)
                continue
            if current:
                plan.append(current)
            current = [job]
            current_key = key
        if current:
            plan.append(current)
        self.batches += len(plan)
        self.jobs += sum(len(b) for b in plan)
        self.coalesced += sum(len(b) - 1 for b in plan)
        self.largest = max([self.largest] + [len(b) for b in plan])
        return plan

    def publish(self, metrics) -> None:
        """Copy the batching counters into a MetricsRegistry."""
        if metrics is None:
            return
        metrics.counter("service.batch.batches").inc(self.batches)
        metrics.counter("service.batch.jobs").inc(self.jobs)
        metrics.counter("service.batch.coalesced").inc(self.coalesced)
        metrics.gauge("service.batch.largest").update_max(self.largest)

    def stats(self) -> dict:
        """Snapshot for ``Service.stats`` and tests."""
        return {
            "batches": self.batches,
            "jobs": self.jobs,
            "coalesced": self.coalesced,
            "largest": self.largest,
        }

    def __repr__(self) -> str:
        return (
            f"Batcher(max_jobs={self.max_jobs}, "
            f"{self.jobs} jobs in {self.batches} batches)"
        )
