"""The service's pool-worker entry point.

One module-level function, picklable by ``concurrent.futures``, that a
worker process runs per *dispatch* — a batch of one or more spec dicts
coalesced by the :class:`~repro.service.batching.Batcher`. Executing a
whole batch inside one call is the round-trip amortization: one pickle,
one wake-up, N runs.

Every spec executes through :func:`repro.api.run_to_artifact`, which
never raises — a failing run becomes an ``error`` artifact and the rest
of the batch still executes. A worker the OS kills outright surfaces as
``BrokenProcessPool`` in the service's dispatch task, which fails just
that batch (``crash`` artifacts) and rebuilds the pool; the service
itself never goes down with a worker.

Note the nested-pool guard: these workers are already child processes,
so a spec asking for ``executor="process"`` is downgraded to the thread
executor by :func:`repro.parallel.make_executor` instead of forking
grandchildren.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def execute_batch(spec_dicts: Sequence[Dict]) -> List[dict]:
    """Run every spec dict in order; one artifact each, never raises."""
    from repro import api

    return [api.run_to_artifact(d) for d in spec_dicts]
