"""The hash-keyed result cache shared by campaigns and the service.

A run's identity is :meth:`repro.spec.RunSpec.canonical_hash`, so a
finished run can be *served* instead of re-executed — by a resumed
campaign, by the benchmark service, or by both against the same artifact
directory. This module owns the pieces that make that sharing work:

* the artifact **schema** (:data:`SCHEMA`, ``campaign-run-v1``): one JSON
  document per run — status, normalized spec, spec hash, elapsed wall
  time and the full :meth:`~repro.obs.result.RunResult.to_dict` payload —
  written as ``runs/<spec-hash>.json``. The campaign runner has emitted
  exactly this layout since PR 6; the service reads and writes the same
  files, which is what lets a campaign re-run over a warm service cache
  execute zero runs (and vice versa);
* :class:`ResultCache` — a two-tier cache over those artifacts: a
  bounded in-memory LRU tier in front of the disk tier. Only ``ok``
  artifacts are *served* (failures are persisted for reporting but must
  re-execute), and every lookup publishes ``service.cache.*`` metrics.

Single-flight deduplication (N concurrent requests for one spec execute
once) is an event-loop concern and lives with the asyncio machinery in
:class:`repro.service.core.Service`; this cache is synchronous and safe
to call from campaign workers and service coroutines alike.
"""

from __future__ import annotations

import collections
import json
import pathlib
import threading
from typing import Any, Dict, Mapping, Optional

from repro.spec import RunSpec

#: Artifact schema tag, bumped on incompatible layout changes; readers
#: ignore artifacts with a different schema instead of mis-reading them.
SCHEMA = "campaign-run-v1"


def ok_artifact(spec: RunSpec, result_dict: Mapping[str, Any],
                elapsed_s: float) -> dict:
    """A completed run as a schema-tagged artifact document."""
    return {
        "schema": SCHEMA,
        "status": "ok",
        "spec": spec.to_dict(),
        "spec_hash": spec.canonical_hash(),
        "elapsed_s": elapsed_s,
        "result": dict(result_dict),
    }


def failure_artifact(spec: RunSpec, status: str, detail: str,
                     elapsed_s: Optional[float] = None) -> dict:
    """A failed run (``error`` / ``crash`` / ``timeout`` / ``rejected``)."""
    return {
        "schema": SCHEMA,
        "status": status,
        "spec": spec.to_dict(),
        "spec_hash": spec.canonical_hash(),
        "elapsed_s": elapsed_s,
        "error": detail,
    }


def load_artifact(path: pathlib.Path) -> Optional[dict]:
    """The artifact at ``path``, or None when unreadable or foreign."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) and doc.get("schema") == SCHEMA else None


class ResultCache:
    """Two-tier result cache keyed by canonical spec hash.

    Parameters
    ----------
    disk_dir:
        Directory of ``<spec-hash>.json`` artifacts (typically a
        campaign's ``runs/`` directory). ``None`` keeps the cache purely
        in memory.
    memory_entries:
        LRU capacity of the memory tier. ``0`` disables it (every hit
        re-reads disk — useful to prove tier equivalence in tests).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; lookups
        and stores publish ``service.cache.*`` counters and gauges.

    Only artifacts with ``status == "ok"`` are returned by :meth:`get`;
    :meth:`put` persists *every* status to disk (failure artifacts are
    evidence for reports) but admits only ``ok`` ones to the serving
    tiers — exactly the campaign-resume rule, now shared.
    """

    def __init__(
        self,
        disk_dir: "str | pathlib.Path | None" = None,
        memory_entries: int = 256,
        metrics=None,
    ):
        if memory_entries < 0:
            raise ValueError("memory_entries must be >= 0")
        self.disk_dir = pathlib.Path(disk_dir) if disk_dir is not None else None
        self.memory_entries = memory_entries
        self.metrics = metrics
        self._memory: "collections.OrderedDict[str, dict]" = collections.OrderedDict()
        self._lock = threading.Lock()
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    # -- lookup ----------------------------------------------------------------
    def get(self, spec_hash: str) -> Optional[dict]:
        """The served (``ok``) artifact for ``spec_hash``, or None.

        Memory tier first (LRU-refreshed), then disk; a disk hit is
        promoted into the memory tier. Returns a shallow copy at the
        artifact level so callers can annotate (``cached`` flags) without
        mutating the cached document.
        """
        with self._lock:
            doc = self._memory.get(spec_hash)
            if doc is not None:
                self._memory.move_to_end(spec_hash)
                self.hits_memory += 1
                self._count("hits_memory")
                return dict(doc)
        if self.disk_dir is not None:
            doc = load_artifact(self.disk_dir / f"{spec_hash}.json")
            if doc is not None and doc.get("status") == "ok":
                with self._lock:
                    self.hits_disk += 1
                    self._count("hits_disk")
                    self._admit(spec_hash, doc)
                return dict(doc)
        with self._lock:
            self.misses += 1
            self._count("misses")
        return None

    def __contains__(self, spec_hash: str) -> bool:
        with self._lock:
            if spec_hash in self._memory:
                return True
        if self.disk_dir is None:
            return False
        doc = load_artifact(self.disk_dir / f"{spec_hash}.json")
        return doc is not None and doc.get("status") == "ok"

    # -- store -----------------------------------------------------------------
    def put(self, artifact: Mapping[str, Any]) -> None:
        """Persist ``artifact`` and admit it to the serving tiers if ok.

        The document must carry ``spec_hash`` and ``status``. Disk gets
        every status (campaign reports need the failures); the memory
        tier and future :meth:`get` hits only ever see ``ok``.
        """
        spec_hash = artifact.get("spec_hash")
        if not spec_hash:
            raise ValueError("artifact must carry a spec_hash")
        doc = dict(artifact)
        doc.pop("cached", None)  # provenance is per-serve, never persisted
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            (self.disk_dir / f"{spec_hash}.json").write_text(
                json.dumps(doc, indent=2, sort_keys=True) + "\n"
            )
        with self._lock:
            self.stores += 1
            self._count("stores")
            if doc.get("status") == "ok":
                self._admit(spec_hash, doc)

    def _admit(self, spec_hash: str, doc: dict) -> None:
        """Insert into the LRU memory tier, evicting the coldest entry.

        Callers hold ``_lock``.
        """
        if self.memory_entries == 0:
            return
        self._memory[spec_hash] = doc
        self._memory.move_to_end(spec_hash)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.evictions += 1
            self._count("evictions")

    # -- observability ---------------------------------------------------------
    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"service.cache.{name}").inc()
            self.metrics.gauge("service.cache.memory_entries").set(len(self._memory))

    @property
    def requests(self) -> int:
        """Total lookups (hits plus misses)."""
        return self.hits_memory + self.hits_disk + self.misses

    @property
    def hit_rate(self) -> float:
        """Served fraction of all lookups, 0.0 when idle."""
        if not self.requests:
            return 0.0
        return (self.hits_memory + self.hits_disk) / self.requests

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for ``Service.stats`` and test assertions."""
        with self._lock:
            return {
                "hits_memory": self.hits_memory,
                "hits_disk": self.hits_disk,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "memory_entries": len(self._memory),
                "hit_rate": self.hit_rate,
            }

    def __repr__(self) -> str:
        tier = str(self.disk_dir) if self.disk_dir else "memory-only"
        return (
            f"ResultCache({tier}, {len(self._memory)}/{self.memory_entries} "
            f"in memory, {self.requests} lookups)"
        )
