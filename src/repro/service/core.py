"""The asyncio benchmark service: submit specs, get artifacts back.

:class:`Service` turns :class:`~repro.spec.RunSpec` submissions into
schema-tagged result artifacts, fast-pathing everything that does not
need to execute:

1. **cache** — the canonical hash is looked up in the shared
   :class:`~repro.service.cache.ResultCache`; a hit answers in
   microseconds with ``cached: True``, never touching a worker;
2. **single-flight** — concurrent submissions of one uncached spec
   share a single execution: the first registers an in-flight future,
   the rest await it (``coalesced: True``) — N duplicate requests, one
   run;
3. **admission** — what must execute enters the bounded per-tenant
   queues of :class:`~repro.service.admission.AdmissionController`;
   beyond the bound the service answers immediately with an explicit
   ``rejected`` artifact instead of queueing without limit;
4. **batching + dispatch** — a scheduler task drains the queues in
   deficit-round-robin order, coalesces compatible small jobs
   (:class:`~repro.service.batching.Batcher`) and dispatches batches to
   a ``concurrent.futures`` pool running
   :func:`repro.service.worker.execute_batch`. A worker death fails
   only its batch (``crash`` artifacts) and rebuilds the pool — the
   service stays up. With ``elastic=True`` the scheduler also
   *resizes* the pool between dispatches: queue-depth pressure grows
   it toward ``max_workers``, an empty queue shrinks it back to
   ``min_workers``.

Progress streams as ``queued`` → ``running`` → ``done`` events through
the optional ``on_event`` callback (the NDJSON server forwards them to
clients), and every stage publishes ``service.*`` metrics — cache
hits/misses, queue depth, rejections, and the submit-latency and
queue-wait :class:`~repro.obs.metrics.Distribution` percentiles that
the service benchmark gates.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.service.admission import AdmissionController
from repro.service.batching import Batcher
from repro.service.cache import ResultCache, failure_artifact
from repro.service.worker import execute_batch
from repro.spec import RunSpec

EventCallback = Callable[[dict], None]


def default_service_workers() -> int:
    """Pool width when none is given: ``REPRO_WORKERS`` or half the cores.

    Service workers fan tile work out internally (thread executors), so
    claiming every core per worker oversubscribes; half the cores is the
    conventional front-end/back-end split.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, (os.cpu_count() or 2) // 2)


@dataclass
class _Job:
    """One admitted submission on its way to a worker."""

    spec: RunSpec
    spec_hash: str
    tenant: str
    future: "asyncio.Future[dict]"
    enqueued_at: float
    listeners: List[EventCallback] = field(default_factory=list)

    def emit(self, event: str, **extra) -> None:
        """Deliver a progress event to every listener, swallowing
        listener errors (a bad callback must not fail the job)."""
        payload = {"event": event, "spec_hash": self.spec_hash,
                   "tenant": self.tenant, **extra}
        for listener in self.listeners:
            try:
                listener(payload)
            except Exception:
                pass


class Service:
    """Benchmark-as-a-service over an async job queue.

    Parameters
    ----------
    cache:
        A :class:`~repro.service.cache.ResultCache` to serve from, or
        None to build one over ``cache_dir``. Pointing it at a campaign
        ``runs/`` directory shares artifacts both ways: warm service
        caches make a re-run campaign execute zero runs.
    cache_dir:
        Disk tier for the built-in cache (used when ``cache`` is None);
        None keeps results in memory only.
    workers:
        Worker-pool width (default :func:`default_service_workers`).
    use_processes:
        True (default) executes on a ``ProcessPoolExecutor`` — real
        isolation, crash capture, and the PR 7 guard keeps specs asking
        for ``executor="process"`` from forking grandchildren. False
        uses threads: no isolation, but instant startup for tests.
    max_queue / quantum:
        Admission bound and DRR quantum
        (:class:`~repro.service.admission.AdmissionController`).
    batch_max / batch_max_cost:
        Batch size bound and the per-job cost ceiling above which a job
        dispatches alone (:class:`~repro.service.batching.Batcher`).
    elastic / min_workers / max_workers:
        ``elastic=True`` lets the scheduler resize the worker pool
        between dispatches: under queue-depth pressure it grows toward
        ``max_workers`` (default: the configured ``workers``), and once
        the queue drains it shrinks back to ``min_workers`` (default
        1), releasing the idle processes. Resizes only happen while no
        batch is in flight, so running jobs never lose their pool.
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        cache_dir=None,
        workers: Optional[int] = None,
        use_processes: bool = True,
        max_queue: int = 64,
        quantum: float = 1.0,
        batch_max: int = 8,
        batch_max_cost: float = 8.0,
        elastic: bool = False,
        min_workers: Optional[int] = None,
        max_workers: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = cache if cache is not None else ResultCache(
            disk_dir=cache_dir, metrics=self.metrics
        )
        self.workers = workers if workers is not None else default_service_workers()
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.elastic = bool(elastic)
        if self.elastic:
            self.min_workers = 1 if min_workers is None else int(min_workers)
            self.max_workers = (
                self.workers if max_workers is None else int(max_workers)
            )
            if self.min_workers < 1:
                raise ValueError("min_workers must be >= 1")
            if self.max_workers < self.min_workers:
                raise ValueError("max_workers must be >= min_workers")
            self._pool_workers = min(
                max(self.workers, self.min_workers), self.max_workers
            )
        else:
            if min_workers is not None or max_workers is not None:
                raise ValueError(
                    "min_workers/max_workers require elastic=True"
                )
            self.min_workers = self.max_workers = self.workers
            self._pool_workers = self.workers
        self.pool_resizes = 0
        self.use_processes = use_processes
        self.admission = AdmissionController(
            max_queue=max_queue, quantum=quantum, metrics=self.metrics
        )
        self.batcher = Batcher(max_jobs=batch_max, max_cost_units=batch_max_cost)
        self._pool = None
        self._pool_generation = 0
        self.pool_rebuilds = 0
        self._inflight: Dict[str, "asyncio.Future[dict]"] = {}
        self._dispatching = 0
        self._wake: Optional[asyncio.Event] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._dispatch_tasks: "set[asyncio.Task]" = set()
        self._closed = False
        self.requests = 0
        self.coalesced = 0
        # Set by the TCP front end (repro.service.server.serve) once bound.
        self.bound_port: Optional[int] = None

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> "Service":
        """Create the worker pool and scheduler task (idempotent)."""
        if self._closed:
            raise RuntimeError("service is closed")
        if self._scheduler_task is None:
            self._wake = asyncio.Event()
            self._new_pool()
            self._scheduler_task = asyncio.get_running_loop().create_task(
                self._scheduler()
            )
        return self

    async def close(self) -> None:
        """Stop scheduling, fail pending jobs, shut the pool down."""
        if self._closed:
            return
        self._closed = True
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
        for task in list(self._dispatch_tasks):
            task.cancel()
        while True:
            # Jobs still queued (never dispatched) must not hang their
            # submitters: answer each with an explicit error artifact.
            stranded = self.admission.take(limit=None)
            if not stranded:
                break
            for job in stranded:
                if not job.future.done():
                    job.future.set_result(failure_artifact(
                        job.spec, "error", "service closed before execution"
                    ))
                self._inflight.pop(job.spec_hash, None)
        for digest, fut in list(self._inflight.items()):
            if not fut.done():
                fut.set_result({
                    "schema": "campaign-run-v1", "status": "error",
                    "spec_hash": digest,
                    "error": "service closed before execution",
                })
        self._inflight.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    async def __aenter__(self) -> "Service":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    def _new_pool(self):
        if self.use_processes:
            self._pool = ProcessPoolExecutor(max_workers=self._pool_workers)
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self._pool_workers,
                thread_name_prefix="repro-service",
            )
        self._pool_generation += 1
        self.metrics.gauge("service.pool.workers").set(self._pool_workers)

    def _resize_pool(self) -> None:
        """Elastic resize, called by the scheduler between dispatches.

        Grow when the queue is deeper than the current width (to the
        depth, capped at ``max_workers``); shrink to ``min_workers``
        once the queue is empty. The pool is idle here by construction
        (``_dispatching == 0``), so a rebuild strands no batch.
        """
        depth = self.admission.depth
        if depth > self._pool_workers and self._pool_workers < self.max_workers:
            target = min(self.max_workers, max(depth, self.min_workers))
        elif depth == 0 and self._pool_workers > self.min_workers:
            target = self.min_workers
        else:
            return
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool_workers = target
        self._new_pool()
        self.pool_resizes += 1
        self.metrics.counter("service.pool.resizes").inc()

    # -- the front door --------------------------------------------------------
    async def submit(
        self,
        spec: RunSpec,
        tenant: str = "default",
        on_event: Optional[EventCallback] = None,
    ) -> dict:
        """Resolve ``spec`` to an artifact: cache, coalesce, or execute.

        Returns the artifact document (``status`` ok/error/crash/
        rejected) annotated with ``cached`` — and ``coalesced: True``
        when this submission drafted behind an identical in-flight one.
        Progress events (``queued``/``running``/``done``, plus
        ``cached``/``coalesced``/``rejected`` notices) go to
        ``on_event`` as they happen.
        """
        if isinstance(spec, dict):
            spec = RunSpec.from_dict(spec)
        elif not isinstance(spec, RunSpec):
            raise TypeError(f"submit() takes a RunSpec, got {type(spec).__name__}")
        await self.start()
        s = spec.normalized()
        digest = s.canonical_hash()
        t0 = time.perf_counter()
        self.requests += 1
        self.metrics.counter("service.requests").inc()

        hit = self.cache.get(digest)
        if hit is not None:
            hit["cached"] = True
            self._notify(on_event, "cached", digest, tenant)
            self._observe_latency(t0)
            return hit

        existing = self._inflight.get(digest)
        if existing is not None:
            self.coalesced += 1
            self.metrics.counter("service.cache.single_flight_coalesced").inc()
            self._notify(on_event, "coalesced", digest, tenant)
            artifact = dict(await asyncio.shield(existing))
            artifact["cached"] = False
            artifact["coalesced"] = True
            self._observe_latency(t0)
            return artifact

        job = _Job(
            spec=s,
            spec_hash=digest,
            tenant=tenant,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=t0,
        )
        if on_event is not None:
            job.listeners.append(on_event)
        if not self.admission.offer(tenant, job, cost=s.cost_units()):
            artifact = failure_artifact(
                s, "rejected",
                f"admission queue full ({self.admission.max_queue}); retry later",
            )
            artifact["cached"] = False
            job.emit("rejected")
            self._observe_latency(t0)
            return artifact
        self._inflight[digest] = job.future
        job.emit("queued", queue_depth=self.admission.depth)
        self._wake.set()
        artifact = dict(await asyncio.shield(job.future))
        artifact["cached"] = False
        self._observe_latency(t0)
        return artifact

    def _notify(self, on_event, event, digest, tenant) -> None:
        if on_event is None:
            return
        try:
            on_event({"event": event, "spec_hash": digest, "tenant": tenant})
        except Exception:
            pass

    def _observe_latency(self, t0: float) -> None:
        self.metrics.distribution("service.submit.latency_s").observe(
            time.perf_counter() - t0
        )

    # -- scheduling ------------------------------------------------------------
    async def _scheduler(self) -> None:
        """Drain admission in DRR turns; dispatch batches as slots free."""
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self.elastic and self._dispatching == 0:
                self._resize_pool()
            while self.admission.depth and self._dispatching < self._pool_workers:
                # One scheduling round accumulates several DRR turns (a
                # single turn grants as little as one unit-cost job, and
                # a one-job grant can never coalesce) up to the batch
                # bound, then lets the batcher split the round into
                # compatible dispatches.
                grant: List[_Job] = []
                while len(grant) < self.batcher.max_jobs and self.admission.depth:
                    turn = self.admission.take(
                        limit=self.batcher.max_jobs - len(grant)
                    )
                    if not turn:
                        break
                    grant.extend(turn)
                if not grant:
                    break
                for batch in self.batcher.plan(grant):
                    self._dispatching += 1
                    task = asyncio.get_running_loop().create_task(
                        self._dispatch(batch)
                    )
                    self._dispatch_tasks.add(task)
                    task.add_done_callback(self._dispatch_tasks.discard)
            self.metrics.gauge("service.pool.busy").set(self._dispatching)

    async def _dispatch(self, batch: List[_Job]) -> None:
        """Run one batch on the pool; crash-capture and resolve futures."""
        now = time.perf_counter()
        for job in batch:
            job.emit("running", batch_size=len(batch))
        self.metrics.counter("service.dispatches").inc()
        self.metrics.counter("service.dispatched_jobs").inc(len(batch))
        generation = self._pool_generation
        loop = asyncio.get_running_loop()
        try:
            artifacts = await loop.run_in_executor(
                self._pool, execute_batch, [j.spec.to_dict() for j in batch]
            )
        except BrokenExecutor as exc:
            # A worker the OS killed takes its batch, not the service:
            # record crash artifacts and rebuild the pool once.
            self.metrics.counter("service.pool.crashes").inc()
            if generation == self._pool_generation and not self._closed:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._new_pool()
                self.pool_rebuilds += 1
            artifacts = [
                failure_artifact(j.spec, "crash", f"worker process died: {exc!r}")
                for j in batch
            ]
        except asyncio.CancelledError:
            for job in batch:
                if not job.future.done():
                    job.future.set_result(
                        failure_artifact(job.spec, "error", "service closed")
                    )
                self._inflight.pop(job.spec_hash, None)
            raise
        except Exception as exc:  # pool plumbing, not run errors
            artifacts = [
                failure_artifact(j.spec, "error", f"dispatch failed: {exc!r}")
                for j in batch
            ]
        finally:
            self._dispatching -= 1
            if self._wake is not None:
                self._wake.set()
        for job, artifact in zip(batch, artifacts):
            if artifact.get("spec_hash"):
                self.cache.put(artifact)
            self.metrics.distribution("service.submit.queue_wait_s").observe(
                max(0.0, now - job.enqueued_at)
            )
            self.metrics.timer("service.run.elapsed").add(
                max(0.0, artifact.get("elapsed_s") or 0.0)
            )
            job.emit("done", status=artifact.get("status"))
            if not job.future.done():
                job.future.set_result(artifact)
            self._inflight.pop(job.spec_hash, None)

    # -- observability ---------------------------------------------------------
    def stats(self) -> dict:
        """One JSON-ready snapshot of every service-layer counter."""
        latency = self.metrics.distribution("service.submit.latency_s")
        queue_wait = self.metrics.distribution("service.submit.queue_wait_s")
        return {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "cache": self.cache.stats(),
            "admission": self.admission.stats(),
            "batching": self.batcher.stats(),
            "pool": {
                "backend": "process" if self.use_processes else "thread",
                "workers": self._pool_workers,
                "elastic": self.elastic,
                "min_workers": self.min_workers,
                "max_workers": self.max_workers,
                "rebuilds": self.pool_rebuilds,
                "resizes": self.pool_resizes,
                "dispatching": self._dispatching,
            },
            "latency": latency.to_dict(),
            "queue_wait": queue_wait.to_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"Service(workers={self.workers}, requests={self.requests}, "
            f"queue={self.admission.depth})"
        )
