"""Metric primitives: counters, gauges, timers, and their registry.

Every layer of the system — the DES engine (events processed, queue
depth), the synchronisation primitives (lock wait/hold time), the
schedulers (tasks, barriers, idle time), the offload engine (tiles,
PCIe bytes, queue occupancy) and the communicator (messages, bytes) —
publishes into one :class:`MetricsRegistry` that travels on the run's
:class:`~repro.obs.result.RunResult`. The registry is deliberately
minimal: four metric kinds (the service layer added
:class:`Distribution` for latency percentiles), hierarchical
dot-separated names, and a deterministic, sorted
:meth:`MetricsRegistry.to_dict` so two identical seeded runs serialise
byte-identically and can be diffed across PRs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (events, tasks, bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (queue depth, idle fraction, high-water mark)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def update_max(self, value: Number) -> None:
        """Keep the high-water mark of the observed values."""
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Timer:
    """Accumulated duration over a number of observations.

    Durations are simulated seconds when fed from the DES (``add``) or
    wall-clock seconds when used as a context manager (``time``).
    """

    __slots__ = ("name", "total_s", "count", "max_s")

    def __init__(self, name: str):
        self.name = name
        self.total_s = 0.0
        self.count = 0
        self.max_s = 0.0

    def add(self, seconds: float, count: int = 1) -> None:
        """Record ``count`` observations totalling ``seconds``."""
        if seconds < 0:
            raise ValueError(f"timer {self.name!r} cannot record negative time")
        self.total_s += seconds
        self.count += count
        if count == 1 and seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    @contextmanager
    def time(self) -> Iterator[None]:
        """Wall-clock a ``with`` block into this timer."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(time.perf_counter() - t0)

    def __repr__(self) -> str:
        return f"Timer({self.name}: {self.total_s:.6g}s / {self.count})"


class Distribution:
    """Observed values with percentile export (latency distributions).

    The benchmark service treats latency *percentiles* as first-class,
    gated outputs — p50/p99 of submit latency and queue wait — so the
    registry needs a metric kind that keeps individual observations, not
    just sums. A bounded sliding window (the most recent ``window``
    values) holds memory constant for long-lived services while the
    lifetime ``count``/``total``/``max`` stay exact.

    Percentiles use the nearest-rank method over a sorted copy of the
    window: deterministic for deterministic inputs, and never
    interpolating values that were not observed.
    """

    __slots__ = ("name", "window", "values", "count", "total", "max_value")

    def __init__(self, name: str, window: int = 8192):
        if window < 1:
            raise ValueError("distribution window must be >= 1")
        self.name = name
        self.window = window
        self.values: List[float] = []
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def observe(self, value: Number) -> None:
        """Record one observation (must be non-negative)."""
        if value < 0:
            raise ValueError(f"distribution {self.name!r} takes non-negative values")
        self.values.append(float(value))
        if len(self.values) > self.window:
            del self.values[: len(self.values) - self.window]
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = float(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100, nearest rank) of the window."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = -(-q * len(ordered) // 100)  # ceil(q/100 * N)
        rank = max(1, min(len(ordered), int(rank)))
        return ordered[rank - 1]

    def to_dict(self) -> dict:
        """Deterministic export: count, mean, p50/p99, max."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.max_value,
        }

    def __repr__(self) -> str:
        return f"Distribution({self.name}: n={self.count}, p99={self.percentile(99):.6g})"


class MetricsRegistry:
    """A named collection of counters, gauges, timers and distributions.

    Metrics are created on first access (``registry.counter("sim.events")``)
    so publishers need no registration step, and exported deterministically:
    :meth:`to_dict` sorts every name, which makes the JSON of two identical
    seeded runs byte-identical.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._distributions: Dict[str, Distribution] = {}

    # -- access (get-or-create) ----------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge(name)
            return g

    def timer(self, name: str) -> Timer:
        """The timer called ``name``, created on first use."""
        try:
            return self._timers[name]
        except KeyError:
            t = self._timers[name] = Timer(name)
            return t

    def distribution(self, name: str, window: int = 8192) -> Distribution:
        """The distribution called ``name``, created on first use."""
        try:
            return self._distributions[name]
        except KeyError:
            d = self._distributions[name] = Distribution(name, window=window)
            return d

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges) + len(self._timers)
                + len(self._distributions))

    def __contains__(self, name: str) -> bool:
        return (name in self._counters or name in self._gauges
                or name in self._timers or name in self._distributions)

    # -- export ----------------------------------------------------------------
    def to_dict(self) -> dict:
        """Deterministic nested dict:
        ``{"counters", "gauges", "timers", "distributions"}``."""
        return {
            "counters": {n: self._counters[n].value for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
            "timers": {
                n: {
                    "total_s": self._timers[n].total_s,
                    "count": self._timers[n].count,
                    "mean_s": self._timers[n].mean_s,
                    "max_s": self._timers[n].max_s,
                }
                for n in sorted(self._timers)
            },
            "distributions": {
                n: self._distributions[n].to_dict()
                for n in sorted(self._distributions)
            },
        }

    def flatten(self) -> List[Tuple[str, Number]]:
        """Sorted ``(name, scalar)`` rows for table rendering: counters and
        gauges verbatim, timers as ``name.total_s`` / ``name.count``."""
        rows: List[Tuple[str, Number]] = []
        for n in self._counters:
            rows.append((n, self._counters[n].value))
        for n in self._gauges:
            rows.append((n, self._gauges[n].value))
        for n in self._timers:
            t = self._timers[n]
            rows.append((f"{n}.total_s", t.total_s))
            rows.append((f"{n}.count", t.count))
        for n in self._distributions:
            d = self._distributions[n]
            rows.append((f"{n}.count", d.count))
            rows.append((f"{n}.p50", d.percentile(50)))
            rows.append((f"{n}.p99", d.percentile(99)))
        rows.sort()
        return rows

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._timers)} timers, "
            f"{len(self._distributions)} distributions)"
        )
