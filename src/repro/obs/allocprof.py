"""Allocation profiler: tracemalloc spans and per-phase byte counters.

The buffer-arena work (:mod:`repro.blas.buffers`) claims the hot paths
stop allocating; this module is how the claim is measured. An
:class:`AllocProfiler` wraps phases of a run ("factor", "solve",
"update") in :meth:`AllocProfiler.span` blocks and records, per phase:

* ``temp_bytes`` — Python-level bytes that were allocated inside the
  span and released by its end (the tracemalloc peak above the span's
  resident baseline): the NumPy temporaries the pool eliminates;
* ``retained_bytes`` — the change in resident traced bytes across the
  span (what the span allocated and kept);
* ``peak_temp_bytes`` — the largest single-span temporary high-water
  mark seen for the phase;
* ``calls`` — how many spans the phase accumulated.

Spans must not nest: each span resets tracemalloc's peak counter
(:func:`tracemalloc.reset_peak`), which would corrupt an enclosing
span's measurement. Profiling is optional and cheap to leave wired in —
a disabled profiler's spans are no-ops — so drivers accept an
``alloc_profile`` flag, thread one profiler through their phases, and
record :meth:`AllocProfiler.to_dict` into their
:class:`~repro.obs.result.RunResult`.

tracemalloc sees Python-level allocations (every NumPy array object's
data buffer) but not allocator-internal reuse; numbers are therefore a
faithful *relative* measure — pooled vs allocating runs of the same
code — which is exactly what the regression gate compares.
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class AllocProfiler:
    """Per-phase allocation accounting built on :mod:`tracemalloc`.

    With ``enabled=False`` every method is a no-op, so callers can
    thread a profiler unconditionally and let a CLI flag decide.
    The profiler starts tracemalloc on first use and stops it on
    :meth:`close` only if it was the one to start it.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.phases: Dict[str, Dict[str, int]] = {}
        self._started_tracing = False
        self._in_span = False

    # -- spans -----------------------------------------------------------------
    @contextmanager
    def span(self, phase: str) -> Iterator[None]:
        """Measure one phase occurrence. Spans must not nest (each span
        resets tracemalloc's peak, which would corrupt the outer one)."""
        if not self.enabled:
            yield
            return
        if self._in_span:
            raise RuntimeError("AllocProfiler spans must not nest")
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        self._in_span = True
        cur0, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        try:
            yield
        finally:
            cur1, peak = tracemalloc.get_traced_memory()
            self._in_span = False
            temp = max(0, peak - max(cur0, cur1))
            rec = self.phases.setdefault(
                phase,
                {
                    "calls": 0,
                    "temp_bytes": 0,
                    "peak_temp_bytes": 0,
                    "retained_bytes": 0,
                },
            )
            rec["calls"] += 1
            rec["temp_bytes"] += temp
            rec["peak_temp_bytes"] = max(rec["peak_temp_bytes"], temp)
            rec["retained_bytes"] += cur1 - cur0

    # -- results ---------------------------------------------------------------
    def temp_bytes(self, phase: str) -> int:
        """Total temporary bytes recorded for ``phase`` (0 if unseen)."""
        return self.phases.get(phase, {}).get("temp_bytes", 0)

    def to_dict(self) -> Optional[dict]:
        """Plain-data per-phase counters (None when disabled/unused) —
        the form drivers record into their RunResult."""
        if not self.enabled or not self.phases:
            return None
        return {phase: dict(rec) for phase, rec in sorted(self.phases.items())}

    def publish(self, metrics) -> None:
        """Copy per-phase counters into a MetricsRegistry as
        ``alloc.<phase>.*`` entries."""
        if metrics is None or not self.enabled:
            return
        for phase, rec in self.phases.items():
            metrics.counter(f"alloc.{phase}.calls").inc(rec["calls"])
            metrics.counter(f"alloc.{phase}.temp_bytes").inc(rec["temp_bytes"])
            metrics.gauge(f"alloc.{phase}.peak_temp_bytes").update_max(
                rec["peak_temp_bytes"]
            )
            metrics.gauge(f"alloc.{phase}.retained_bytes").set(
                rec["retained_bytes"]
            )

    def close(self) -> None:
        """Stop tracemalloc if this profiler started it."""
        if self._started_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracing = False

    def __enter__(self) -> "AllocProfiler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        if not self.enabled:
            return "AllocProfiler(disabled)"
        return f"AllocProfiler({len(self.phases)} phases)"


def measure_temp_bytes(fn, *args, **kwargs) -> tuple:
    """Run ``fn(*args, **kwargs)`` under a fresh one-span profiler.

    Returns ``(result, temp_bytes)`` — the benchmark helper behind
    ``benchmarks/bench_alloc.py``.
    """
    with AllocProfiler() as prof:
        with prof.span("call"):
            result = fn(*args, **kwargs)
    return result, prof.temp_bytes("call")
