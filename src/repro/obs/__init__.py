"""Observability: the metrics registry and the unified RunResult API.

The DESIGN promise — "who wins, by what factor, where the crossovers
fall comes out of the simulator" — needs a measurement surface, not ad
hoc dataclass fields. This package provides it:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, timers and latency distributions that the DES engine,
  schedulers, offload engine, communicator and benchmark service
  publish into;
* :mod:`repro.obs.result` — :class:`RunResult`, the base every driver's
  result extends, with ``to_dict()`` / ``to_json()`` / ``summary()`` and
  the attached metrics/trace;
* :mod:`repro.obs.allocprof` — :class:`AllocProfiler`, tracemalloc-based
  per-phase allocation spans behind the drivers' ``--alloc-profile``
  flag (and the measurement side of the buffer-arena work).

Trace export (Chrome ``trace_event`` JSON and JSONL) lives on
:class:`~repro.sim.trace.TraceRecorder` itself; the CLI exposes all of
it uniformly as ``--json`` / ``--trace-out PATH`` / ``--metrics``.
"""

from repro.obs.allocprof import AllocProfiler, measure_temp_bytes
from repro.obs.metrics import Counter, Distribution, Gauge, MetricsRegistry, Timer
from repro.obs.result import RunResult

__all__ = [
    "AllocProfiler",
    "measure_temp_bytes",
    "Counter",
    "Distribution",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "RunResult",
]
