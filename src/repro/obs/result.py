"""The unified run-result API shared by every driver.

All drivers — native (:class:`~repro.hpl.driver.NativeHPL`), hybrid
(:class:`~repro.hybrid.driver.HybridHPL`), distributed
(:class:`~repro.cluster.hpl_mpi.DistributedHPL`), native-cluster
(:class:`~repro.cluster.native_cluster.NativeClusterHPL`) and the
offload engine — return a dataclass extending :class:`RunResult`, which
guarantees:

* consistent headline fields: ``time_s``, ``gflops``, ``efficiency``;
* an attached :class:`~repro.obs.metrics.MetricsRegistry` (``metrics``)
  and, where a DES ran, a :class:`~repro.sim.trace.TraceRecorder`
  (``trace``);
* machine-readable export — :meth:`RunResult.to_dict` /
  :meth:`RunResult.to_json` — with deterministic key order, so two runs
  with identical arguments and seed serialise byte-identically;
* a one-line human :meth:`RunResult.summary`.

Heavy payloads (trace recorders, NumPy arrays) are deliberately left out
of the dict export: traces have their own exporters
(:meth:`~repro.sim.trace.TraceRecorder.to_chrome_trace`), and arrays
belong to the numeric verification path, not the report.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import TraceRecorder


def _jsonable(value: Any) -> Any:
    """Coerce a field value into plain JSON types (tuples become lists)."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


class RunResult:
    """Base class (mixin) for all driver result dataclasses.

    Subclasses stay ordinary dataclasses; this base contributes the
    uniform export surface. It expects the conventional field names
    ``n``, ``time_s``, ``gflops`` and ``efficiency`` where they apply
    and degrades gracefully where they do not.
    """

    #: Short machine-readable run-kind tag (``"native"``, ``"hybrid"``, ...).
    #: Deliberately *not* annotated with a field type: a plain class
    #: attribute stays out of the subclasses' dataclass field machinery.
    kind = "run"

    #: The :class:`~repro.spec.RunSpec` this result was produced from,
    #: attached by :func:`repro.api.run`. A plain class attribute for
    #: the same reason as ``kind``: results built by calling a driver
    #: directly simply leave it ``None`` and export unchanged.
    spec = None

    @property
    def tflops(self) -> float:
        """The headline rate in TFLOPS (cluster results quote TFLOPS).

        The shared back-compat helper: every result derives it from
        ``gflops`` here instead of keeping per-class duplicates.
        """
        return getattr(self, "gflops", 0.0) / 1e3

    def to_dict(self) -> dict:
        """Plain-data view of the result.

        Every dataclass field appears under its own name except traces
        and NumPy arrays (dropped — they have dedicated exporters) and
        the metrics registry (exported via
        :meth:`~repro.obs.metrics.MetricsRegistry.to_dict`). When the
        result came through :func:`repro.api.run`, the normalized spec
        and its canonical hash ride along as ``spec`` / ``spec_hash``.
        """
        if not dataclasses.is_dataclass(self):
            raise TypeError("RunResult subclasses must be dataclasses")
        out: dict = {"kind": self.kind}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (TraceRecorder, np.ndarray)):
                continue
            if isinstance(value, MetricsRegistry):
                out[f.name] = value.to_dict()
                continue
            out[f.name] = _jsonable(value)
        if self.spec is not None:
            out["spec"] = self.spec.to_dict()
            out["spec_hash"] = self.spec.canonical_hash()
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Deterministic JSON (sorted keys) of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """One human line: problem size, rate, efficiency, wall time."""
        parts: List[str] = [self.kind]
        n = getattr(self, "n", None)
        if n:
            parts.append(f"N={n}")
        gflops = getattr(self, "gflops", None)
        if gflops:
            parts.append(
                f"{gflops / 1e3:.2f} TFLOPS" if gflops >= 1e3 else f"{gflops:.1f} GFLOPS"
            )
        efficiency = getattr(self, "efficiency", None)
        if efficiency:
            parts.append(f"({100 * efficiency:.1f}%)")
        time_s = getattr(self, "time_s", None)
        if time_s:
            parts.append(f"in {time_s:.3f}s")
        passed = getattr(self, "passed", None)
        if passed is not None:
            parts.append("PASSED" if passed else "FAILED")
        return " ".join(parts)

    def metric_rows(self) -> List[Tuple[str, Any]]:
        """The attached registry flattened to sorted (name, value) rows."""
        metrics: Optional[MetricsRegistry] = getattr(self, "metrics", None)
        return metrics.flatten() if metrics is not None else []
