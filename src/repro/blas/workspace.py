"""Pack-once workspace: a cache of packed tile panels.

The paper's DGEMM amortizes the Knights Corner tile packing over many
outer products (Section III-A, Figure 3), and its hybrid scheme keeps
resident panels on the card so each is shipped — and packed — once
(Figure 10). The functional layer's analogue is :class:`PackCache`:
callers name an operand slice with a key (``("lu.l21", stage)``,
``("offload.a", r0, r1)``, ...) and the cache packs it on first use,
then serves the same :class:`~repro.blas.packing.PackedA` /
:class:`~repro.blas.packing.PackedB` to every later consumer — the
blocked LU's trailing updates all reuse one packed L21 panel per stage
instead of re-packing it for every trailing tile.

Staleness is handled two ways:

* **explicit invalidation** — :meth:`PackCache.invalidate` drops a
  key's entries (or everything); the LU workspace calls it when a
  stage's panel is dead;
* **validation on hit** — entries remember a deterministic sample of
  the source values (``validate="sample"``, the default: corners plus a
  strided interior sample) or are checked in full against the source
  (``validate="full"``); a mismatch is counted as a stale eviction and
  the slice is re-packed. ``validate="none"`` trusts keys entirely.

The cache is thread-safe: the LU tile executor may ask for the same
panel from several workers at once, and exactly one of them packs
(deterministic hit/miss counts at any worker count).

Counters (also published to a :class:`~repro.obs.metrics.MetricsRegistry`
via :meth:`PackCache.publish`): ``blas.pack_cache.hits`` / ``.misses`` /
``.stale_evictions`` / ``.bytes_packed`` / ``.uncached_packs``.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.blas.packing import TILE_A_ROWS, TILE_B_COLS, PackedA, PackedB, pack_a, pack_b

#: Interior sample points (per axis) used by ``validate="sample"``.
_SAMPLE_PER_AXIS = 4

_VALIDATE_MODES = ("none", "sample", "full")


def _sample_indices(shape: Tuple[int, int]) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic probe coordinates: the four corners plus an evenly
    strided interior grid — cheap, and guaranteed to include element
    (0, 0), which mutation tests and real LU pivoting touch first."""
    m, n = shape
    ri = np.unique(np.linspace(0, m - 1, _SAMPLE_PER_AXIS, dtype=np.int64))
    ci = np.unique(np.linspace(0, n - 1, _SAMPLE_PER_AXIS, dtype=np.int64))
    rows = np.repeat(ri, len(ci))
    cols = np.tile(ci, len(ri))
    return rows, cols


class _Entry:
    """One cached packed slice plus the evidence to detect staleness."""

    __slots__ = ("packed", "sample_rows", "sample_cols", "sample_vals")

    def __init__(self, packed, src: np.ndarray):
        self.packed = packed
        self.sample_rows, self.sample_cols = _sample_indices(src.shape)
        self.sample_vals = src[self.sample_rows, self.sample_cols].copy()

    def is_fresh(self, src: np.ndarray, mode: str) -> bool:
        if mode == "none":
            return True
        if mode == "full":
            return bool(np.array_equal(self.packed.unpack(), src))
        return bool(
            np.array_equal(src[self.sample_rows, self.sample_cols], self.sample_vals)
        )


class PackCache:
    """Keyed cache of packed A/B panels with explicit invalidation.

    ``alloc(shape, dtype)`` / ``free(array)`` override where *cached*
    panels live: the process executor passes a shared-arena allocator
    so worker processes can address the packed tiles by
    :class:`~repro.parallel.shm.ArrayRef`, and the matching ``free`` is
    called with each panel's backing array as its entry is invalidated
    or evicted (uncached one-shot packs stay ordinary NumPy memory —
    nothing would ever free them).
    """

    def __init__(self, validate: str = "sample", alloc=None, free=None):
        if validate not in _VALIDATE_MODES:
            raise ValueError(f"validate must be one of {_VALIDATE_MODES}")
        self.validate = validate
        self._alloc_fn = alloc
        self._free_fn = free
        self._entries: Dict[tuple, _Entry] = {}
        self._lock = threading.RLock()
        # -- counters ----------------------------------------------------
        self.hits = 0
        self.misses = 0
        self.stale_evictions = 0
        self.bytes_packed = 0
        self.uncached_packs = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- packing ---------------------------------------------------------------
    def pack_a(
        self, a: np.ndarray, key=None, tile_rows: int = TILE_A_ROWS
    ) -> PackedA:
        """Packed-A for ``a``; cached under ``key`` when one is given."""
        return self._get("A", a, key, tile_rows, pack_a)

    def pack_b(
        self, b: np.ndarray, key=None, tile_cols: int = TILE_B_COLS
    ) -> PackedB:
        """Packed-B for ``b``; cached under ``key`` when one is given."""
        return self._get("B", b, key, tile_cols, pack_b)

    def _get(self, side: str, src: np.ndarray, key, tile_dim: int, packer):
        src = np.asarray(src)
        if key is None:
            packed = packer(src, tile_dim)
            with self._lock:
                self.uncached_packs += 1
                self.bytes_packed += packed.data.nbytes
            return packed
        # The full key pins geometry so a reused name with a different
        # slice shape/dtype can never produce a false hit.
        full_key = (side, key, src.shape, src.dtype.str, tile_dim)
        with self._lock:
            entry = self._entries.get(full_key)
            if entry is not None:
                if entry.is_fresh(src, self.validate):
                    self.hits += 1
                    return entry.packed
                self.stale_evictions += 1
                del self._entries[full_key]
                self._free_entry(entry)
            packed = packer(src, tile_dim, alloc=self._alloc_fn)
            self._entries[full_key] = _Entry(packed, src)
            self.misses += 1
            self.bytes_packed += packed.data.nbytes
            return packed

    # -- invalidation ----------------------------------------------------------
    @staticmethod
    def _key_matches(cached, key) -> bool:
        """True when ``cached`` is ``key`` itself or a k-slice of it.

        The GEMM driver caches each ``k_block`` slice of an operand
        under ``(user_key, k0)``, so invalidating the user's key must
        drop every slice."""
        if cached == key:
            return True
        return (
            isinstance(cached, tuple) and len(cached) == 2 and cached[0] == key
        )

    def _free_entry(self, entry: "_Entry") -> None:
        """Release a dropped entry's backing array (lock held)."""
        if self._free_fn is None:
            return
        packed = entry.packed
        backing = getattr(packed, "panel", None)
        if backing is None:
            backing = packed.data
        self._free_fn(backing)

    def invalidate(self, key=None) -> int:
        """Drop every entry cached under ``key`` — including the
        per-k-slice ``(key, k0)`` entries the GEMM driver creates — on
        both sides and at every geometry; with no key, clear the whole
        cache. Returns the number of entries dropped."""
        with self._lock:
            if key is None:
                dropped = list(self._entries.values())
                self._entries.clear()
                for entry in dropped:
                    self._free_entry(entry)
                return len(dropped)
            doomed = [fk for fk in self._entries if self._key_matches(fk[1], key)]
            for fk in doomed:
                entry = self._entries.pop(fk)
                self._free_entry(entry)
            return len(doomed)

    # -- observability ---------------------------------------------------------
    def publish(self, metrics) -> None:
        """Copy the cache counters into a MetricsRegistry."""
        if metrics is None:
            return
        metrics.counter("blas.pack_cache.hits").inc(self.hits)
        metrics.counter("blas.pack_cache.misses").inc(self.misses)
        metrics.counter("blas.pack_cache.stale_evictions").inc(self.stale_evictions)
        metrics.counter("blas.pack_cache.bytes_packed").inc(self.bytes_packed)
        metrics.counter("blas.pack_cache.uncached_packs").inc(self.uncached_packs)
        metrics.gauge("blas.pack_cache.entries").set(len(self))

    def __repr__(self) -> str:
        return (
            f"PackCache({len(self)} entries, {self.hits} hits, "
            f"{self.misses} misses, {self.stale_evictions} stale)"
        )
