"""DLASWP: apply a pivot vector's row interchanges to a matrix block.

After panel factorization the pivot swaps must be applied to the rows of
the trailing sub-matrix (and, in the blocked LU, to the already-factored
columns on the left) — the light-blue DLASWP regions of Figure 7. The
paper's hybrid scheme pipelines this bandwidth-bound operation with the
trailing update (Section V-A).

The pivot convention matches :mod:`repro.blas.getrf`: ``ipiv[j] = r``
means rows j and r (offset by ``offset`` into the target) were swapped at
step j; forward order applies a factorization's swaps, backward order
undoes them.
"""

from __future__ import annotations

import numpy as np


def laswp(
    a: np.ndarray,
    ipiv: np.ndarray,
    offset: int = 0,
    forward: bool = True,
) -> np.ndarray:
    """Apply row interchanges in place and return ``a``.

    Parameters
    ----------
    a:
        The matrix block whose rows are swapped.
    ipiv:
        Pivot vector; entry j names the partner row of row ``offset + j``
        (also offset, i.e. indices are local to the factored block).
    offset:
        Row of ``a`` corresponding to pivot entry 0.
    forward:
        Apply swaps in factorization order (True) or reverse (False).
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("laswp expects a 2-D block")
    ipiv = np.asarray(ipiv, dtype=np.int64)
    steps = range(len(ipiv)) if forward else range(len(ipiv) - 1, -1, -1)
    for j in steps:
        p = int(ipiv[j])
        if p != j:
            r0, r1 = offset + j, offset + p
            if not (0 <= r0 < a.shape[0] and 0 <= r1 < a.shape[0]):
                raise IndexError(f"pivot swap ({r0}, {r1}) outside block of {a.shape[0]} rows")
            a[[r0, r1], :] = a[[r1, r0], :]
    return a


def apply_pivots_to_vector(
    x: np.ndarray, ipiv: np.ndarray, offset: int = 0, forward: bool = True
) -> np.ndarray:
    """The right-hand-side counterpart of :func:`laswp` (in place)."""
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError("expected a vector")
    ipiv = np.asarray(ipiv, dtype=np.int64)
    steps = range(len(ipiv)) if forward else range(len(ipiv) - 1, -1, -1)
    for j in steps:
        p = int(ipiv[j])
        if p != j:
            r0, r1 = offset + j, offset + p
            x[r0], x[r1] = x[r1], x[r0]
    return x


def pivots_to_permutation(ipiv: np.ndarray, n: int, offset: int = 0) -> np.ndarray:
    """The permutation vector perm with P @ A == A[perm] equivalent to
    applying the swaps forward — a convenience for verification."""
    perm = np.arange(n)
    for j in range(len(ipiv)):
        p = int(ipiv[j])
        if p != j:
            r0, r1 = offset + j, offset + p
            perm[r0], perm[r1] = perm[r1], perm[r0]
    return perm
