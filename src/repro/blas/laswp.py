"""DLASWP: apply a pivot vector's row interchanges to a matrix block.

After panel factorization the pivot swaps must be applied to the rows of
the trailing sub-matrix (and, in the blocked LU, to the already-factored
columns on the left) — the light-blue DLASWP regions of Figure 7. The
paper's hybrid scheme pipelines this bandwidth-bound operation with the
trailing update (Section V-A).

The pivot convention matches :mod:`repro.blas.getrf`: ``ipiv[j] = r``
means rows j and r (offset by ``offset`` into the target) were swapped at
step j; forward order applies a factorization's swaps, backward order
undoes them.

Implementation note: the swap sequence is first collapsed into a single
permutation vector (:func:`pivots_to_permutation`, vectorized via
pointer doubling for the partial-pivoting case ``ipiv[j] >= j``), and
the swaps are then applied as **one gather per block** — ``a[changed] =
a[perm[changed]]`` — instead of one two-row exchange per pivot. Both
formulations move the same rows to the same places, so the result is
bitwise identical to the step-by-step loop.

With a :class:`~repro.blas.buffers.BufferPool` passed as ``pool`` the
gather goes through a rented staging buffer (``np.take(..., out=)``
followed by the scatter) instead of materialising a fresh
``a[perm[changed]]`` array per call — the same rows land in the same
places, bitwise identically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blas.buffers import BufferPool


def _check_swap_bounds(ipiv: np.ndarray, n_rows: int, offset: int) -> None:
    """Raise IndexError if any nontrivial swap leaves the block."""
    j = np.arange(len(ipiv), dtype=np.int64)
    nontrivial = ipiv != j
    if not nontrivial.any():
        return
    touched = np.concatenate(
        [offset + j[nontrivial], offset + ipiv[nontrivial]]
    )
    bad = (touched < 0) | (touched >= n_rows)
    if bad.any():
        r = int(touched[bad][0])
        raise IndexError(
            f"pivot swap touching row {r} outside block of {n_rows} rows"
        )


def _gather_rows(a: np.ndarray, idx: np.ndarray, buf: np.ndarray) -> None:
    """Gather ``a[idx]`` into ``buf`` without a hidden temporary.

    ``np.take``'s fast path writes straight into ``out`` only for a
    C-contiguous source (and only with mode="clip"/"wrap" — "raise"
    stages through a scratch array); for the strided column-slice views
    the blocked LU hands us, it first materialises a contiguous copy of
    the *whole* source, which would defeat the pool. Row-wise copyto
    moves exactly the same values in that case.
    """
    if a.flags.c_contiguous:
        np.take(a, idx, axis=0, out=buf, mode="clip")
    else:
        for k, r in enumerate(idx):
            np.copyto(buf[k], a[r])


def _forward_permutation(
    ipiv: np.ndarray, n: int, offset: int, forward: bool
) -> np.ndarray:
    """Permutation ``perm`` with ``a[perm]`` == the swapped block."""
    perm = pivots_to_permutation(ipiv, n, offset)
    if forward:
        return perm
    # Undoing the swaps is gathering with the inverse permutation.
    inv = np.empty_like(perm)
    inv[perm] = np.arange(n, dtype=perm.dtype)
    return inv


def laswp(
    a: np.ndarray,
    ipiv: np.ndarray,
    offset: int = 0,
    forward: bool = True,
    pool: Optional[BufferPool] = None,
) -> np.ndarray:
    """Apply row interchanges in place and return ``a``.

    Parameters
    ----------
    a:
        The matrix block whose rows are swapped.
    ipiv:
        Pivot vector; entry j names the partner row of row ``offset + j``
        (also offset, i.e. indices are local to the factored block).
    offset:
        Row of ``a`` corresponding to pivot entry 0.
    forward:
        Apply swaps in factorization order (True) or reverse (False).
    pool:
        Optional :class:`~repro.blas.buffers.BufferPool` the gather
        staging buffer is rented from (no fresh gather array per call).
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("laswp expects a 2-D block")
    ipiv = np.asarray(ipiv, dtype=np.int64)
    if len(ipiv) == 0:
        return a
    _check_swap_bounds(ipiv, a.shape[0], offset)
    perm = _forward_permutation(ipiv, a.shape[0], offset, forward)
    changed = np.flatnonzero(perm != np.arange(a.shape[0]))
    if changed.size:
        # The gather is materialised before the scatter, so the in-place
        # row cycle is safe.
        if pool is not None:
            with pool.rent(
                (changed.size, a.shape[1]), a.dtype, key="laswp.gather"
            ) as buf:
                _gather_rows(a, perm[changed], buf)
                a[changed] = buf
        else:
            a[changed] = a[perm[changed]]
    return a


def apply_pivots_to_vector(
    x: np.ndarray,
    ipiv: np.ndarray,
    offset: int = 0,
    forward: bool = True,
    pool: Optional[BufferPool] = None,
) -> np.ndarray:
    """The right-hand-side counterpart of :func:`laswp` (in place)."""
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError("expected a vector")
    ipiv = np.asarray(ipiv, dtype=np.int64)
    if len(ipiv) == 0:
        return x
    _check_swap_bounds(ipiv, x.shape[0], offset)
    perm = _forward_permutation(ipiv, x.shape[0], offset, forward)
    changed = np.flatnonzero(perm != np.arange(x.shape[0]))
    if changed.size:
        if pool is not None:
            with pool.rent((changed.size,), x.dtype, key="laswp.gather") as buf:
                if x.flags.c_contiguous:
                    np.take(x, perm[changed], out=buf, mode="clip")
                else:
                    buf[...] = x[perm[changed]]
                x[changed] = buf
        else:
            x[changed] = x[perm[changed]]
    return x


def _pivots_to_permutation_loop(
    ipiv: np.ndarray, n: int, offset: int = 0
) -> np.ndarray:
    """Reference step-by-step construction — the definition the
    vectorized path is property-tested against, and the fallback for
    arbitrary (non-partial-pivoting) swap sequences."""
    perm = np.arange(n, dtype=np.int64)
    for j in range(len(ipiv)):
        p = int(ipiv[j])
        if p != j:
            r0, r1 = offset + j, offset + p
            perm[r0], perm[r1] = perm[r1], perm[r0]
    return perm


def pivots_to_permutation(ipiv: np.ndarray, n: int, offset: int = 0) -> np.ndarray:
    """The permutation vector perm with P @ A == A[perm] equivalent to
    applying the swaps forward.

    Vectorized for the partial-pivoting convention ``ipiv[j] >= j``
    (which :mod:`repro.blas.getrf` guarantees): because step j is the
    last step ever to touch row ``offset + j``, every row's final
    occupant is found by chasing "which earlier step last deposited a
    value here" links — a forest resolved with pointer doubling in
    O(log #pivots) passes instead of a Python loop. Arbitrary swap
    sequences fall back to the step-by-step loop.
    """
    ipiv = np.asarray(ipiv, dtype=np.int64)
    m = len(ipiv)
    perm = np.arange(n, dtype=np.int64)
    if m == 0:
        return perm
    steps = np.arange(m, dtype=np.int64)
    if np.any(ipiv < steps):
        # Not a partial-pivoting sequence; rows below the diagonal may be
        # revisited, so the finalized-at-own-step argument breaks.
        return _pivots_to_permutation_loop(ipiv, n, offset)
    nt = np.flatnonzero(ipiv != steps)  # nontrivial steps, in order
    if nt.size == 0:
        return perm
    src = offset + nt  # row finalized at this step
    tgt = offset + ipiv[nt]  # partner row (>= src, may repeat)

    # last_t[q]: index (into nt) of the last nontrivial step whose
    # partner row is q, or -1. Any step targeting row src[i] precedes
    # step i, so these links always point strictly backwards.
    last_t = np.full(n, -1, dtype=np.int64)
    np.maximum.at(last_t, tgt, np.arange(nt.size, dtype=np.int64))

    # f[i] = the original row sitting at src[i] just before step i:
    # follow "deposited by" links to the chain root via pointer doubling.
    link = last_t[src]
    root = np.where(link < 0, np.arange(nt.size, dtype=np.int64), link)
    while True:
        nxt = root[root]
        if np.array_equal(nxt, root):
            break
        root = nxt
    f = src[root]

    # Rows touched only as partner targets keep whatever the last
    # targeting step deposited.
    targeted = np.flatnonzero(last_t >= 0)
    perm[targeted] = f[last_t[targeted]]

    # Source rows are finalized at their own step: they receive the value
    # sitting at their partner row just beforehand — deposited by the
    # previous step with the same partner, or the partner row itself.
    order = np.argsort(tgt, kind="stable")
    prev = np.full(nt.size, -1, dtype=np.int64)
    same = tgt[order][1:] == tgt[order][:-1]
    prev[order[1:][same]] = order[:-1][same]
    perm[src] = np.where(prev >= 0, f[np.maximum(prev, 0)], tgt)
    return perm
