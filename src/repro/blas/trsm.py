"""Triangular solves (DTRSM) used by the blocked LU.

Three variants cover everything the factorization and the final
substitutions need:

* :func:`trsm_lower_unit_left` — B <- L^{-1} B for unit lower-triangular
  L: the forward solve that turns the swapped row panel into Ui
  (Figure 5a's "forward solver", the orange DTRSM of Figure 7);
* :func:`trsm_upper_left` — B <- U^{-1} B for non-unit upper-triangular
  U: the back substitution of the final solve;
* :func:`trsm_lower_unit_right` — B <- B L^{-T}-style right solve
  variant used when updating a column panel against a factored diagonal
  block.

All are blocked: the triangular factor is processed in ``block``-sized
diagonal chunks with GEMM updates in between, so the bulk of the FLOPs
run through matrix-matrix products (the standard high-performance TRSM
formulation). Each diagonal chunk is handed to LAPACK's native solver
(:func:`scipy.linalg.solve_triangular`) in one call; a pure-NumPy
column-loop fallback keeps the module importable without SciPy.

With a :class:`~repro.blas.buffers.BufferPool` passed as ``pool`` the
inter-chunk GEMM products (and the loop fallback's rank-1 products) run
through a rented workspace with ``np.matmul``/``np.multiply(...,
out=)`` instead of allocating a temporary per chunk. The products and
subtraction order are unchanged, so pooled and allocating runs are
bitwise identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blas.buffers import BufferPool, matmul_into, subtract_into

try:  # SciPy is a declared dependency, but keep a pure-NumPy fallback.
    from scipy.linalg import solve_triangular as _solve_triangular
except ImportError:  # pragma: no cover - exercised via the _FORCE_LOOPS knob
    _solve_triangular = None

#: Test/benchmark knob: force the column-loop fallback even with SciPy.
_FORCE_LOOPS = False


def _native(
    t: np.ndarray,
    b: np.ndarray,
    lower: bool,
    unit: bool,
    pool: Optional[BufferPool] = None,
) -> np.ndarray | None:
    """One LAPACK solve of the diagonal chunk, or None if unavailable.

    With a pool, chunk operands contiguous in neither memory order are
    staged through rented buffers — SciPy otherwise ``np.asarray``-copies
    them per chunk. The solver sees the same values either way, so the
    result is bitwise identical.
    """
    if _solve_triangular is None or _FORCE_LOOPS:
        return None
    staged = []
    try:
        if pool is not None:
            if not (t.flags.c_contiguous or t.flags.f_contiguous):
                tc = pool.checkout(t.shape, t.dtype, key="trsm.tri")
                np.copyto(tc, t)
                staged.append(tc)
                t = tc
            if not (b.flags.c_contiguous or b.flags.f_contiguous):
                bc = pool.checkout(b.shape, b.dtype, key="trsm.rhs")
                np.copyto(bc, b)
                staged.append(bc)
                b = bc
        return _solve_triangular(
            t, b, lower=lower, unit_diagonal=unit, check_finite=False
        )
    finally:
        for buf in staged:
            pool.release(buf)


def _check(t: np.ndarray, b: np.ndarray, left: bool = True) -> tuple:
    t = np.asarray(t)
    b = np.asarray(b)
    if t.ndim != 2 or t.shape[0] != t.shape[1]:
        raise ValueError("triangular factor must be square")
    if b.ndim != 2:
        raise ValueError("right-hand side must be 2-D")
    need = b.shape[0] if left else b.shape[1]
    if t.shape[0] != need:
        raise ValueError(
            f"dimension mismatch: factor is {t.shape[0]}x{t.shape[0]}, "
            f"rhs needs {need}"
        )
    return t, b


def _sub_product(
    target: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    work: Optional[np.ndarray],
    pool: Optional[BufferPool] = None,
) -> None:
    """``target -= x @ y`` — through the rented flat workspace when one
    is given, via the allocating temporary otherwise."""
    if work is None:
        target -= x @ y
    elif target.size:
        w = work[: target.size].reshape(target.shape)
        matmul_into(pool, x, y, w, key="trsm.stage")
        subtract_into(target, w)


def _sub_outer(
    target: np.ndarray, x: np.ndarray, y: np.ndarray, work: Optional[np.ndarray]
) -> None:
    """``target -= np.outer(x, y)`` with the same workspace contract."""
    if work is None:
        target -= np.outer(x, y)
    elif target.size:
        w = work[: target.size].reshape(target.shape)
        # k=1 GEMM outer product: bitwise equal to np.outer without the
        # broadcast ufunc's internal iteration buffers.
        np.matmul(x[:, None], y[None, :], out=w)
        subtract_into(target, w)


def trsm_lower_unit_left(
    l: np.ndarray,
    b: np.ndarray,
    block: int = 64,
    pool: Optional[BufferPool] = None,
) -> np.ndarray:
    """Solve L X = B in place (unit lower-triangular L); returns B."""
    l, b = _check(l, b)
    n = l.shape[0]
    work_ctx = (
        pool.rent((b.size,), b.dtype, key="trsm.work")
        if pool is not None and b.size
        else None
    )
    work = work_ctx.__enter__() if work_ctx is not None else None
    try:
        for j0 in range(0, n, block):
            j1 = min(j0 + block, n)
            solved = _native(
                l[j0:j1, j0:j1], b[j0:j1, :], lower=True, unit=True, pool=pool
            )
            if solved is not None:
                b[j0:j1, :] = solved
            else:
                for j in range(j0, j1):
                    # Unit diagonal: no division.
                    _sub_outer(b[j + 1 : j1, :], l[j + 1 : j1, j], b[j, :], work)
            if j1 < n:
                _sub_product(b[j1:, :], l[j1:, j0:j1], b[j0:j1, :], work, pool)
    finally:
        if work_ctx is not None:
            work_ctx.__exit__(None, None, None)
    return b


def trsm_upper_left(
    u: np.ndarray,
    b: np.ndarray,
    block: int = 64,
    pool: Optional[BufferPool] = None,
) -> np.ndarray:
    """Solve U X = B in place (non-unit upper-triangular U); returns B."""
    u, b = _check(u, b)
    n = u.shape[0]
    if n and np.any(np.diag(u) == 0):
        raise np.linalg.LinAlgError("singular upper factor in TRSM")
    work_ctx = (
        pool.rent((b.size,), b.dtype, key="trsm.work")
        if pool is not None and b.size
        else None
    )
    work = work_ctx.__enter__() if work_ctx is not None else None
    try:
        for j1 in range(n, 0, -block):
            j0 = max(j1 - block, 0)
            solved = _native(
                u[j0:j1, j0:j1], b[j0:j1, :], lower=False, unit=False, pool=pool
            )
            if solved is not None:
                b[j0:j1, :] = solved
            else:
                for j in range(j1 - 1, j0 - 1, -1):
                    b[j, :] /= u[j, j]
                    _sub_outer(b[j0:j, :], u[j0:j, j], b[j, :], work)
            if j0 > 0:
                _sub_product(b[:j0, :], u[:j0, j0:j1], b[j0:j1, :], work, pool)
    finally:
        if work_ctx is not None:
            work_ctx.__exit__(None, None, None)
    return b


def trsm_lower_unit_right(
    l: np.ndarray,
    b: np.ndarray,
    block: int = 64,
    pool: Optional[BufferPool] = None,
) -> np.ndarray:
    """Solve X L^T = B in place for unit lower-triangular L; returns B.

    Equivalently X = B @ L^{-T}; used to update a column panel against a
    factored diagonal block when the panel sits to the *left* of it.
    """
    l, b = _check(l, b, left=False)
    n = l.shape[0]
    work_ctx = (
        pool.rent((b.size,), b.dtype, key="trsm.work")
        if pool is not None and b.size
        else None
    )
    work = work_ctx.__enter__() if work_ctx is not None else None
    try:
        for j0 in range(0, n, block):
            j1 = min(j0 + block, n)
            # X L_blk^T = B_blk transposes to L_blk X^T = B_blk^T.
            solved = _native(
                l[j0:j1, j0:j1], b[:, j0:j1].T, lower=True, unit=True, pool=pool
            )
            if solved is not None:
                b[:, j0:j1] = solved.T
            else:
                for j in range(j0, j1):
                    _sub_outer(b[:, j + 1 : j1], b[:, j], l[j + 1 : j1, j], work)
            if j1 < n:
                _sub_product(b[:, j1:], b[:, j0:j1], l[j1:, j0:j1].T, work, pool)
    finally:
        if work_ctx is not None:
            work_ctx.__exit__(None, None, None)
    return b
