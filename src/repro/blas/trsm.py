"""Triangular solves (DTRSM) used by the blocked LU.

Three variants cover everything the factorization and the final
substitutions need:

* :func:`trsm_lower_unit_left` — B <- L^{-1} B for unit lower-triangular
  L: the forward solve that turns the swapped row panel into Ui
  (Figure 5a's "forward solver", the orange DTRSM of Figure 7);
* :func:`trsm_upper_left` — B <- U^{-1} B for non-unit upper-triangular
  U: the back substitution of the final solve;
* :func:`trsm_lower_unit_right` — B <- B L^{-T}-style right solve
  variant used when updating a column panel against a factored diagonal
  block.

All are blocked: the triangular factor is processed in ``block``-sized
diagonal chunks with GEMM updates in between, so the bulk of the FLOPs
run through matrix-matrix products (the standard high-performance TRSM
formulation). Each diagonal chunk is handed to LAPACK's native solver
(:func:`scipy.linalg.solve_triangular`) in one call; a pure-NumPy
column-loop fallback keeps the module importable without SciPy.
"""

from __future__ import annotations

import numpy as np

try:  # SciPy is a declared dependency, but keep a pure-NumPy fallback.
    from scipy.linalg import solve_triangular as _solve_triangular
except ImportError:  # pragma: no cover - exercised via the _FORCE_LOOPS knob
    _solve_triangular = None

#: Test/benchmark knob: force the column-loop fallback even with SciPy.
_FORCE_LOOPS = False


def _native(t: np.ndarray, b: np.ndarray, lower: bool, unit: bool) -> np.ndarray | None:
    """One LAPACK solve of the diagonal chunk, or None if unavailable."""
    if _solve_triangular is None or _FORCE_LOOPS:
        return None
    return _solve_triangular(
        t, b, lower=lower, unit_diagonal=unit, check_finite=False
    )


def _check(t: np.ndarray, b: np.ndarray, left: bool = True) -> tuple:
    t = np.asarray(t)
    b = np.asarray(b)
    if t.ndim != 2 or t.shape[0] != t.shape[1]:
        raise ValueError("triangular factor must be square")
    if b.ndim != 2:
        raise ValueError("right-hand side must be 2-D")
    need = b.shape[0] if left else b.shape[1]
    if t.shape[0] != need:
        raise ValueError(
            f"dimension mismatch: factor is {t.shape[0]}x{t.shape[0]}, "
            f"rhs needs {need}"
        )
    return t, b


def trsm_lower_unit_left(l: np.ndarray, b: np.ndarray, block: int = 64) -> np.ndarray:
    """Solve L X = B in place (unit lower-triangular L); returns B."""
    l, b = _check(l, b)
    n = l.shape[0]
    for j0 in range(0, n, block):
        j1 = min(j0 + block, n)
        solved = _native(l[j0:j1, j0:j1], b[j0:j1, :], lower=True, unit=True)
        if solved is not None:
            b[j0:j1, :] = solved
        else:
            for j in range(j0, j1):
                # Unit diagonal: no division.
                b[j + 1 : j1, :] -= np.outer(l[j + 1 : j1, j], b[j, :])
        if j1 < n:
            b[j1:, :] -= l[j1:, j0:j1] @ b[j0:j1, :]
    return b


def trsm_upper_left(u: np.ndarray, b: np.ndarray, block: int = 64) -> np.ndarray:
    """Solve U X = B in place (non-unit upper-triangular U); returns B."""
    u, b = _check(u, b)
    n = u.shape[0]
    if n and np.any(np.diag(u) == 0):
        raise np.linalg.LinAlgError("singular upper factor in TRSM")
    for j1 in range(n, 0, -block):
        j0 = max(j1 - block, 0)
        solved = _native(u[j0:j1, j0:j1], b[j0:j1, :], lower=False, unit=False)
        if solved is not None:
            b[j0:j1, :] = solved
        else:
            for j in range(j1 - 1, j0 - 1, -1):
                b[j, :] /= u[j, j]
                b[j0:j, :] -= np.outer(u[j0:j, j], b[j, :])
        if j0 > 0:
            b[:j0, :] -= u[:j0, j0:j1] @ b[j0:j1, :]
    return b


def trsm_lower_unit_right(l: np.ndarray, b: np.ndarray, block: int = 64) -> np.ndarray:
    """Solve X L^T = B in place for unit lower-triangular L; returns B.

    Equivalently X = B @ L^{-T}; used to update a column panel against a
    factored diagonal block when the panel sits to the *left* of it.
    """
    l, b = _check(l, b, left=False)
    n = l.shape[0]
    for j0 in range(0, n, block):
        j1 = min(j0 + block, n)
        # X L_blk^T = B_blk transposes to L_blk X^T = B_blk^T.
        solved = _native(
            l[j0:j1, j0:j1], b[:, j0:j1].T, lower=True, unit=True
        )
        if solved is not None:
            b[:, j0:j1] = solved.T
        else:
            for j in range(j0, j1):
                b[:, j + 1 : j1] -= np.outer(b[:, j], l[j + 1 : j1, j])
        if j1 < n:
            b[:, j1:] -= b[:, j0:j1] @ l[j1:, j0:j1].T
    return b
