"""Row-major outer-product GEMM built on the packed tile formats.

The paper decomposes C = alpha*A@B + beta*C into a sequence of rank-k
updates C += alpha * Ai @ Bi over K/k outer products (Section III-A).
This module implements exactly that decomposition:

* the K dimension is chopped into ``k_block`` deep slices,
* each slice's Ai / Bi is packed into the Knights Corner-friendly format
  — directly, or through a :class:`~repro.blas.workspace.PackCache` so a
  panel reused across many calls (the blocked LU's L21, the offload
  engine's resident strips) is packed exactly once,
* the packed tiles are multiplied by one of two strategies:

  - ``"stripe"`` (default for the fast kernel): each 30-row a tile is
    multiplied against the whole packed-B panel in a single BLAS call
    into a preallocated per-thread accumulator — the functional-layer
    analogue of handing one a tile to one core (Figure 2a). Stripes
    write disjoint row bands of C, so a
    :class:`~repro.parallel.TileExecutor` fans them across cores with
    bitwise-identical results at any worker count;
  - ``"tiles"``: the original tile-by-tile loop over the full
    (a tile, b tile) grid — required by the instruction-level emulated
    kernels, and kept as the serial reference the benchmark regression
    gate compares against.

All matrices are row-major, matching the paper's convention (footnote 3
notes the column-major case reduces to this one by transposition).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blas.buffers import BufferPool
from repro.blas.kernels import (
    KERNEL1_ROWS,
    KERNEL2_ROWS,
    basic_kernel_1,
    basic_kernel_2,
    tile_multiply_fast,
)
from repro.machine.vector_batch import schedule_for
from repro.blas.packing import TILE_B_COLS, pack_a, pack_b
from repro.parallel import as_executor, is_process_executor, scratch_buffer, shm_task

_EMULATED_KERNELS = {KERNEL1_ROWS: basic_kernel_1, KERNEL2_ROWS: basic_kernel_2}

_STRATEGIES = ("stripe", "tiles")

#: a tiles fused into one stripe task. Eight 30-row tiles give the BLAS
#: call a 240-row operand (good kernel shape) while leaving enough
#: stripes per outer product to keep a pool busy. Fixed — never derived
#: from the worker count — so the stripe geometry, and therefore every
#: floating-point sum, is identical at any pool width.
STRIPE_TILES = 8


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    k_block: int = 300,
    tile_rows: int = KERNEL2_ROWS,
    kernel: str = "fast",
    strategy: str = "stripe",
    executor=None,
    pack_cache=None,
    a_key=None,
    b_key=None,
    pool: Optional[BufferPool] = None,
) -> np.ndarray:
    """C = alpha * A @ B + beta * C via packed outer products.

    Parameters
    ----------
    a, b:
        Row-major (M, K) and (K, N) operands of a common float dtype.
    c:
        Optional (M, N) accumulator, updated in place. Created zeroed if
        omitted (beta is then irrelevant).
    k_block:
        Depth of each outer product (the paper's k; 300 is the best
        DGEMM depth per Table II).
    tile_rows:
        30 selects Basic Kernel 2 tiling (default), 31 Basic Kernel 1.
    kernel:
        "fast" (NumPy tile multiply), "emulated" (vector-ISA semantics
        via the batched instruction schedule — one NumPy sweep per k
        iteration), or "emulated-step" (the per-instruction
        :class:`~repro.machine.vector.VectorMachine` reference; only
        sensible for small matrices). The two emulated modes are
        bitwise identical; "emulated" is merely orders of magnitude
        less Python dispatch.
    strategy:
        "stripe" (vectorized row-stripe path, default) or "tiles" (the
        per-tile reference loop). ``kernel="emulated"`` always runs
        tile-by-tile.
    executor:
        ``None`` (serial), a worker count, or a
        :class:`~repro.parallel.TileExecutor` to fan the stripe grid
        across threads. Results are bitwise independent of the choice.
    pack_cache / a_key / b_key:
        With a :class:`~repro.blas.workspace.PackCache` and keys, the
        packed k-slices of A/B are cached under ``(key, k0)`` and reused
        by later calls on the same operand slice.
    pool:
        Optional :class:`~repro.blas.buffers.BufferPool` the stripe
        path rents its fused-stripe operand and accumulator from
        (instead of a fresh ``transpose().reshape()`` copy plus the
        thread-local scratch buffer). The operand values and BLAS call
        are unchanged, so pooled and unpooled results are bitwise
        identical.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("gemm operands must be 2-D")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if a.dtype != b.dtype:
        raise ValueError("operands must share a dtype")
    if k_block < 1:
        raise ValueError("k_block must be positive")
    if kernel not in ("fast", "emulated", "emulated-step"):
        raise ValueError(f"unknown kernel {kernel!r}")
    if strategy not in _STRATEGIES:
        raise ValueError(f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
    if kernel != "fast" and tile_rows not in _EMULATED_KERNELS:
        raise ValueError(
            f"emulated kernels exist for tile_rows in "
            f"{tuple(sorted(_EMULATED_KERNELS))}, got tile_rows={tile_rows}"
        )

    m, k_total = a.shape
    n = b.shape[1]
    if c is None:
        c = np.zeros((m, n), dtype=a.dtype)
        beta = 0.0
    else:
        if c.shape != (m, n):
            raise ValueError(f"c must be {(m, n)}, got {c.shape}")
        if c.dtype != a.dtype:
            raise ValueError("c dtype must match operands")
        if beta != 1.0:
            c *= a.dtype.type(beta)

    executor = as_executor(executor)
    alpha = a.dtype.type(alpha)
    for k0 in range(0, k_total, k_block):
        k1 = min(k0 + k_block, k_total)
        if pack_cache is not None:
            pa = pack_cache.pack_a(
                a[:, k0:k1],
                key=None if a_key is None else (a_key, k0),
                tile_rows=tile_rows,
            )
            pb = pack_cache.pack_b(
                b[k0:k1, :],
                key=None if b_key is None else (b_key, k0),
                tile_cols=TILE_B_COLS,
            )
        else:
            pa = pack_a(a[:, k0:k1], tile_rows=tile_rows)
            pb = pack_b(b[k0:k1, :], tile_cols=TILE_B_COLS)
        if kernel != "fast" or strategy == "tiles":
            _outer_product_tiles(c, pa, pb, alpha, kernel)
        else:
            _outer_product_stripes(c, pa, pb, alpha, executor, pool)
    return c


@shm_task("gemm.stripe")
def _stripe_task(
    ctx,
    *,
    a_ref,
    b_ref,
    c_ref,
    t0,
    stripe_tiles,
    n_tiles,
    tile_rows,
    m,
    k,
    ncols,
    alpha,
):
    """Worker-side stripe: byte-for-byte the same operand layout and
    BLAS call as :func:`_outer_product_stripes`'s ``run_stripe`` — a
    C-contiguous (nrows, k) fused stripe times the packed-B panel into
    a C-contiguous accumulator, folded into the stripe's disjoint row
    band of shared c. Identical inputs to the identical kernel give
    bitwise-identical output at any worker count and on any backend."""
    data = ctx.resolve(a_ref)  # (n_tiles, k, tile_rows)
    b_panel = ctx.resolve(b_ref)  # (k, panel width)
    c = ctx.resolve(c_ref)
    dtype = c.dtype
    t1 = min(t0 + stripe_tiles, n_tiles)
    rlo = t0 * tile_rows
    rhi = min(t1 * tile_rows, m)
    nrows = (t1 - t0) * tile_rows
    rows_per_task = stripe_tiles * tile_rows
    sbuf = scratch_buffer((rows_per_task, k), dtype)
    stripe = sbuf[:nrows]
    stripe.reshape(t1 - t0, tile_rows, k)[...] = data[t0:t1].transpose(0, 2, 1)
    obuf = scratch_buffer((rows_per_task, b_panel.shape[1]), dtype)
    out = obuf[:nrows]
    np.matmul(stripe, b_panel, out=out)
    a = dtype.type(alpha)
    if a != 1.0:
        np.multiply(out, a, out=out)
    c[rlo:rhi, :ncols] += out[: rhi - rlo, :ncols]
    return None


def _outer_product_stripes_process(c, pa, pb, alpha, executor) -> None:
    """The stripe fan-out over worker processes: ship ArrayRef
    descriptors, never operands.

    Operands already resident in the executor's shared arena (packed
    panels from an arena-backed pack cache, c a view of an adopted
    matrix) are referenced in place; anything process-private is staged
    into the arena with one memcpy — a parent-side copy, so the
    zero-payload pipe invariant holds either way — and c is copied back
    when it had to be staged.
    """
    arena = executor.arena
    b_panel = pb.row_major()
    staged = []
    a_ref = arena.ref_of(pa.data)
    if a_ref is None:
        sa = arena.adopt(pa.data, key="gemm.stage.a")
        staged.append(sa)
        a_ref = arena.ref_of(sa)
    b_ref = arena.ref_of(b_panel)
    if b_ref is None:
        sb = arena.adopt(b_panel, key="gemm.stage.b")
        staged.append(sb)
        b_ref = arena.ref_of(sb)
    c_ref = arena.ref_of(c)
    staged_c = None
    if c_ref is None:
        staged_c = arena.adopt(c, key="gemm.stage.c")
        c_ref = arena.ref_of(staged_c)
    try:
        common = {
            "a_ref": a_ref,
            "b_ref": b_ref,
            "c_ref": c_ref,
            "stripe_tiles": STRIPE_TILES,
            "n_tiles": pa.n_tiles,
            "tile_rows": pa.tile_rows,
            "m": pa.m,
            "k": pa.k,
            "ncols": pb.n,
            "alpha": float(alpha),
        }
        items = [{"t0": int(t0)} for t0 in range(0, pa.n_tiles, STRIPE_TILES)]
        executor.run_tasks("gemm.stripe", items, common=common)
        if staged_c is not None:
            np.copyto(c, staged_c)
    finally:
        if staged_c is not None:
            arena.release(staged_c)
        for buf in staged:
            arena.release(buf)


def _outer_product_stripes(c, pa, pb, alpha, executor, pool=None) -> None:
    """Accumulate alpha * unpack(pa) @ unpack(pb) into c, one row stripe
    per a tile.

    Each stripe multiplies its (tile_rows, k) a tile against the whole
    packed-B panel in a single BLAS call into a thread-local scratch
    accumulator, then folds the valid region into its disjoint row band
    of c. Because stripes never share output rows and the k-slice loop
    above stays serial, the executor's scheduling cannot alter any
    floating-point sum — serial and parallel runs are bitwise identical.
    A process-backed executor takes the descriptor path instead
    (:func:`_outer_product_stripes_process`); the worker-side kernel is
    the same computation, so the backends are bitwise identical too.
    """
    if executor is not None and is_process_executor(executor):
        _outer_product_stripes_process(c, pa, pb, alpha, executor)
        return
    b_panel = pb.row_major()  # (k, n_tiles * tile_cols), padding included
    ncols = pb.n
    dtype = c.dtype
    k = pa.k
    rows_per_task = STRIPE_TILES * pa.tile_rows

    def run_stripe(t0: int) -> None:
        t1 = min(t0 + STRIPE_TILES, pa.n_tiles)
        rlo = t0 * pa.tile_rows
        rhi = min(t1 * pa.tile_rows, pa.m)
        nrows = (t1 - t0) * pa.tile_rows
        # Tiles are stored (k, tile_rows); lay the fused stripe out as
        # one (rows, k) operand for a single BLAS call. With a pool the
        # copy lands in a rented buffer (via the strided assignment);
        # without one, transpose().reshape() materialises it.
        if pool is not None:
            stripe = pool.checkout((nrows, k), dtype, key="gemm.stripe")
            stripe.reshape(t1 - t0, pa.tile_rows, k)[...] = pa.data[
                t0:t1
            ].transpose(0, 2, 1)
            out = pool.checkout((nrows, b_panel.shape[1]), dtype, key="gemm.out")
        else:
            stripe = pa.data[t0:t1].transpose(0, 2, 1).reshape(-1, k)
            buf = scratch_buffer((rows_per_task, b_panel.shape[1]), dtype)
            out = buf[:nrows]
        try:
            np.matmul(stripe, b_panel, out=out)
            if alpha != 1.0:
                np.multiply(out, alpha, out=out)
            c[rlo:rhi, :ncols] += out[: rhi - rlo, :ncols]
        finally:
            if pool is not None:
                pool.release(stripe)
                pool.release(out)

    starts = range(0, pa.n_tiles, STRIPE_TILES)
    if executor is None:
        for t0 in starts:
            run_stripe(t0)
    else:
        executor.map(run_stripe, starts)


def _outer_product_tiles(c, pa, pb, alpha, kernel) -> None:
    """Accumulate alpha * unpack(pa) @ unpack(pb) into c, tile by tile —
    the reference loop over the full (a tile, b tile) grid."""
    # PackedB tiles are strided views of the row-major panel; the
    # tile-by-tile loop touches each one many times, so take one
    # contiguous copy of the grid up front (the legacy layout).
    b_tiles = np.ascontiguousarray(pb.data)
    if kernel == "emulated":
        _emulated_batched_tiles(c, pa, pb, b_tiles, alpha)
        return
    emulated = (
        _EMULATED_KERNELS.get(pa.tile_rows) if kernel == "emulated-step" else None
    )
    for ta in range(pa.n_tiles):
        rlo, rhi = pa.tile_row_range(ta)
        a_tile = pa.tile(ta)
        for tb in range(pb.n_tiles):
            clo, chi = pb.tile_col_range(tb)
            if emulated is not None:
                block = emulated(a_tile, b_tiles[tb])
            else:
                block = tile_multiply_fast(a_tile, b_tiles[tb])
            c[rlo:rhi, clo:chi] += alpha * block[: rhi - rlo, : chi - clo]


def _emulated_batched_tiles(c, pa, pb, b_tiles, alpha) -> None:
    """The emulated-kernel grid as batched schedule replays: each a
    tile's row of the grid — all its b-tile multiplies — runs as one
    :meth:`~repro.machine.vector_batch.KernelSchedule.execute` call.

    The a tile is broadcast (no copy) across the b-tile batch, the
    resulting (n_b_tiles, rows, lanes) blocks are laid side by side into
    the tile's row band, and the band folds into c with the same one
    multiply + one add per element as the per-tile loop — so "emulated"
    and "emulated-step" are bitwise identical.
    """
    schedule = schedule_for(pa.tile_rows, lanes=b_tiles.shape[2])
    ncols = pb.n
    for ta in range(pa.n_tiles):
        rlo, rhi = pa.tile_row_range(ta)
        a_rep = np.broadcast_to(
            pa.tile(ta), (pb.n_tiles,) + pa.tile(ta).shape
        )
        blocks = schedule.execute(a_rep, b_tiles)
        band = blocks.transpose(1, 0, 2).reshape(pa.tile_rows, -1)
        c[rlo:rhi, :ncols] += alpha * band[: rhi - rlo, :ncols]


def dgemm(a, b, c=None, alpha=1.0, beta=0.0, k_block=300, **kw) -> np.ndarray:
    """Double-precision GEMM; inputs are cast to float64."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return gemm(a, b, c, alpha, beta, k_block, **kw)


def sgemm(a, b, c=None, alpha=1.0, beta=0.0, k_block=400, **kw) -> np.ndarray:
    """Single-precision GEMM; k_block defaults to SGEMM's best depth
    (Table II: 400)."""
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    return gemm(a, b, c, alpha, beta, k_block, **kw)
