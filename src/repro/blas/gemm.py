"""Row-major outer-product GEMM built on the packed tile formats.

The paper decomposes C = alpha*A@B + beta*C into a sequence of rank-k
updates C += alpha * Ai @ Bi over K/k outer products (Section III-A).
This module implements exactly that decomposition:

* the K dimension is chopped into ``k_block`` deep slices,
* each slice's Ai / Bi is packed into the Knights Corner-friendly format,
* the packed tiles are multiplied tile-by-tile (30 x 8 c blocks) by
  either the fast NumPy tile kernel or the instruction-level emulated
  Basic Kernel 2 (31-row tiles select Basic Kernel 1),
* c blocks accumulate into the row-major C.

All matrices are row-major, matching the paper's convention (footnote 3
notes the column-major case reduces to this one by transposition).
"""

from __future__ import annotations

import numpy as np

from repro.blas.kernels import (
    KERNEL1_ROWS,
    KERNEL2_ROWS,
    basic_kernel_1,
    basic_kernel_2,
    tile_multiply_fast,
)
from repro.blas.packing import TILE_B_COLS, pack_a, pack_b

_EMULATED_KERNELS = {KERNEL1_ROWS: basic_kernel_1, KERNEL2_ROWS: basic_kernel_2}


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    k_block: int = 300,
    tile_rows: int = KERNEL2_ROWS,
    kernel: str = "fast",
) -> np.ndarray:
    """C = alpha * A @ B + beta * C via packed outer products.

    Parameters
    ----------
    a, b:
        Row-major (M, K) and (K, N) operands of a common float dtype.
    c:
        Optional (M, N) accumulator, updated in place. Created zeroed if
        omitted (beta is then irrelevant).
    k_block:
        Depth of each outer product (the paper's k; 300 is the best
        DGEMM depth per Table II).
    tile_rows:
        30 selects Basic Kernel 2 tiling (default), 31 Basic Kernel 1.
    kernel:
        "fast" (NumPy tile multiply) or "emulated" (vector-ISA emulation;
        only sensible for small matrices).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("gemm operands must be 2-D")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if a.dtype != b.dtype:
        raise ValueError("operands must share a dtype")
    if k_block < 1:
        raise ValueError("k_block must be positive")
    if kernel not in ("fast", "emulated"):
        raise ValueError(f"unknown kernel {kernel!r}")
    if kernel == "emulated" and tile_rows not in _EMULATED_KERNELS:
        raise ValueError(f"emulated kernels exist for tile_rows in (30, 31)")

    m, k_total = a.shape
    n = b.shape[1]
    if c is None:
        c = np.zeros((m, n), dtype=a.dtype)
        beta = 0.0
    else:
        if c.shape != (m, n):
            raise ValueError(f"c must be {(m, n)}, got {c.shape}")
        if c.dtype != a.dtype:
            raise ValueError("c dtype must match operands")
        if beta != 1.0:
            c *= a.dtype.type(beta)

    alpha = a.dtype.type(alpha)
    for k0 in range(0, k_total, k_block):
        k1 = min(k0 + k_block, k_total)
        pa = pack_a(a[:, k0:k1], tile_rows=tile_rows)
        pb = pack_b(b[k0:k1, :], tile_cols=TILE_B_COLS)
        _outer_product(c, pa, pb, alpha, kernel)
    return c


def _outer_product(c, pa, pb, alpha, kernel) -> None:
    """Accumulate alpha * unpack(pa) @ unpack(pb) into c, tile by tile."""
    emulated = _EMULATED_KERNELS.get(pa.tile_rows) if kernel == "emulated" else None
    for ta in range(pa.n_tiles):
        rlo, rhi = pa.tile_row_range(ta)
        a_tile = pa.tile(ta)
        for tb in range(pb.n_tiles):
            clo, chi = pb.tile_col_range(tb)
            if emulated is not None:
                block = emulated(a_tile, pb.tile(tb))
            else:
                block = tile_multiply_fast(a_tile, pb.tile(tb))
            c[rlo:rhi, clo:chi] += alpha * block[: rhi - rlo, : chi - clo]


def dgemm(a, b, c=None, alpha=1.0, beta=0.0, k_block=300, **kw) -> np.ndarray:
    """Double-precision GEMM; inputs are cast to float64."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return gemm(a, b, c, alpha, beta, k_block, **kw)


def sgemm(a, b, c=None, alpha=1.0, beta=0.0, k_block=400, **kw) -> np.ndarray:
    """Single-precision GEMM; k_block defaults to SGEMM's best depth
    (Table II: 400)."""
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    return gemm(a, b, c, alpha, beta, k_block, **kw)
