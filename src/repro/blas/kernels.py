"""The two basic matrix-multiply kernels of Section III-A2 (Figure 2).

Both kernels multiply a packed a tile (rows x k, column-major) by a
packed b tile (k x 8, row-major) into a (rows x 8) c block held entirely
in vector registers. They are implemented twice:

* **emulated** — instruction by instruction on the
  :class:`~repro.machine.vector.VectorMachine`, following Figure 2b/2c
  exactly (register allocation, broadcast flavours, swizzles). This path
  exists to *verify the kernel algorithm*: the tests check both that the
  numbers match NumPy and that the instruction census matches the
  paper's efficiency arithmetic (31 or 30 vmadds out of 32 vector
  instructions per iteration).
* **fast** — a NumPy matmul over the same packed tiles, used by the GEMM
  driver for anything larger than toy sizes.

Kernel 1 keeps 31 c rows in v0..v30 and loads the b row into v31; every
iteration's 31 vmadds take their a element as a 1to8 memory broadcast.
Kernel 2 keeps 30 c rows in v0..v29, 4to8-broadcasts the first four a
elements into v30 and swizzles them out of the register for the first
four vmadds, creating the four port-free cycles that let L1 prefetch
fills complete without stalling the pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.machine.vector import VLEN, VectorMachine
from repro.machine.vector_batch import schedule_for

#: c rows held in registers by each kernel.
KERNEL1_ROWS = 31
KERNEL2_ROWS = 30

#: Cache lines touched per iteration: one for the b row, four for the
#: 31-element a column (shared among the core's four threads), so on
#: average two fills per thread per iteration (Section III-A2).
LINES_PER_ITER_B = 1
LINES_PER_ITER_A = 4


def _check_tiles(a_tile: np.ndarray, b_tile: np.ndarray, rows: int) -> tuple:
    a_tile = np.asarray(a_tile)
    b_tile = np.asarray(b_tile)
    if a_tile.ndim != 2 or b_tile.ndim != 2:
        raise ValueError("tiles must be 2-D")
    if a_tile.shape[0] != b_tile.shape[0]:
        raise ValueError(
            f"k mismatch: a tile has k={a_tile.shape[0]}, b tile k={b_tile.shape[0]}"
        )
    if a_tile.shape[1] != rows:
        raise ValueError(f"a tile must have {rows} rows (got {a_tile.shape[1]})")
    if b_tile.shape[1] != VLEN:
        raise ValueError(f"b tile must be {VLEN} wide (got {b_tile.shape[1]})")
    return a_tile, b_tile


def basic_kernel_1(
    a_tile: np.ndarray, b_tile: np.ndarray, vm: VectorMachine | None = None
) -> np.ndarray:
    """Figure 2b: c(31 x 8) = a_tile.T @ b_tile via 31 memory-broadcast
    vmadds per iteration.

    ``a_tile`` is the packed (k, 31) column-major tile; ``b_tile`` the
    packed (k, 8) row-major tile.
    """
    a_tile, b_tile = _check_tiles(a_tile, b_tile, KERNEL1_ROWS)
    k = a_tile.shape[0]
    vm = vm or VectorMachine()
    if vm.n_registers < 32:
        raise ValueError("Basic Kernel 1 needs 32 vector registers")
    for r in range(KERNEL1_ROWS):
        vm.vzero(r)
    b_row_reg = 31
    for i in range(k):
        vm.vload(b_row_reg, b_tile[i])  # one vector load of the b row
        vm.prefetch()  # L1 prefetch, b line
        vm.prefetch()  # L1 prefetch, shared a line (avg per thread)
        for r in range(KERNEL1_ROWS):
            # c_r += b_row * 1to8_broadcast(a[i, r])
            vm.vmadd_mem_1to8(r, b_row_reg, a_tile[i, r])
    out = np.empty((KERNEL1_ROWS, VLEN), dtype=vm.dtype)
    for r in range(KERNEL1_ROWS):
        vm.vstore(r, out[r])
    return out


def basic_kernel_2(
    a_tile: np.ndarray, b_tile: np.ndarray, vm: VectorMachine | None = None
) -> np.ndarray:
    """Figure 2c: c(30 x 8) = a_tile.T @ b_tile, trading one accumulator
    row for a 4to8 broadcast + 4 swizzle vmadds that free the L1 ports.
    """
    a_tile, b_tile = _check_tiles(a_tile, b_tile, KERNEL2_ROWS)
    k = a_tile.shape[0]
    vm = vm or VectorMachine()
    if vm.n_registers < 32:
        raise ValueError("Basic Kernel 2 needs 32 vector registers")
    for r in range(KERNEL2_ROWS):
        vm.vzero(r)
    bcast_reg, b_row_reg = 30, 31
    for i in range(k):
        vm.vload(b_row_reg, b_tile[i])
        # Load-broadcast the first four a elements: [a0 a1 a2 a3 a0 a1 a2 a3].
        vm.broadcast_4to8(bcast_reg, a_tile[i, :4])
        vm.prefetch()
        vm.prefetch()
        for r in range(4):
            # Swizzle a_r out of the register: no memory access — a "hole"
            # in the L1 port schedule for the prefetch fill.
            vm.vmadd_swizzle(r, b_row_reg, bcast_reg, r)
        for r in range(4, KERNEL2_ROWS):
            vm.vmadd_mem_1to8(r, b_row_reg, a_tile[i, r])
    out = np.empty((KERNEL2_ROWS, VLEN), dtype=vm.dtype)
    for r in range(KERNEL2_ROWS):
        vm.vstore(r, out[r])
    return out


#: Lanes of a 512-bit register in single precision.
SP_LANES = 16


def basic_kernel_2_sp(
    a_tile: np.ndarray, b_tile: np.ndarray, vm: VectorMachine | None = None
) -> np.ndarray:
    """The SGEMM flavour of Basic Kernel 2 (the paper applies "the same
    optimizations to SGEMM as well"): identical structure, 16 float32
    lanes per register, so the b tile is 16 wide and each vmadd does
    twice the FLOPs.
    """
    a_tile = np.asarray(a_tile, dtype=np.float32)
    b_tile = np.asarray(b_tile, dtype=np.float32)
    if a_tile.shape[0] != b_tile.shape[0]:
        raise ValueError("k mismatch between tiles")
    if a_tile.shape[1] != KERNEL2_ROWS:
        raise ValueError(f"a tile must have {KERNEL2_ROWS} rows")
    if b_tile.shape[1] != SP_LANES:
        raise ValueError(f"SP b tile must be {SP_LANES} wide")
    k = a_tile.shape[0]
    vm = vm or VectorMachine(dtype=np.float32, lanes=SP_LANES)
    if vm.n_registers < 32 or vm.lanes != SP_LANES:
        raise ValueError("SP Kernel 2 needs 32 registers of 16 float32 lanes")
    for r in range(KERNEL2_ROWS):
        vm.vzero(r)
    bcast_reg, b_row_reg = 30, 31
    for i in range(k):
        vm.vload(b_row_reg, b_tile[i])
        vm.broadcast_4to8(bcast_reg, a_tile[i, :4])
        vm.prefetch()
        vm.prefetch()
        for r in range(4):
            vm.vmadd_swizzle(r, b_row_reg, bcast_reg, r)
        for r in range(4, KERNEL2_ROWS):
            vm.vmadd_mem_1to8(r, b_row_reg, a_tile[i, r])
    out = np.empty((KERNEL2_ROWS, SP_LANES), dtype=np.float32)
    for r in range(KERNEL2_ROWS):
        vm.vstore(r, out[r])
    return out


def _batched(rows: int, lanes: int, a_tiles, b_tiles, vm: VectorMachine | None):
    schedule = schedule_for(rows, lanes)
    if vm is not None:
        if vm.lanes != schedule.lanes or vm.dtype != schedule.dtype:
            raise ValueError(
                f"{schedule.name} needs {schedule.lanes} lanes of "
                f"{schedule.dtype}, machine has {vm.lanes} of {vm.dtype}"
            )
        return schedule.execute(a_tiles, b_tiles, counts=vm.counts)
    return schedule.execute(a_tiles, b_tiles)


def batched_kernel_1(
    a_tiles: np.ndarray, b_tiles: np.ndarray, vm: VectorMachine | None = None
) -> np.ndarray:
    """Basic Kernel 1 over a batch of tile pairs: (T, k, 31) x (T, k, 8)
    -> (T, 31, 8), bitwise identical to T :func:`basic_kernel_1` calls.

    The schedule replays as one NumPy sweep per k iteration instead of
    per-instruction dispatch; with ``vm``, its counters advance by the
    exact census the per-instruction path would record.
    """
    return _batched(KERNEL1_ROWS, VLEN, a_tiles, b_tiles, vm)


def batched_kernel_2(
    a_tiles: np.ndarray, b_tiles: np.ndarray, vm: VectorMachine | None = None
) -> np.ndarray:
    """Basic Kernel 2 over a batch: (T, k, 30) x (T, k, 8) -> (T, 30, 8),
    bitwise identical to T :func:`basic_kernel_2` calls, census included
    (the swizzled rows replicate the same operand values, so the batched
    sweep covers them too)."""
    return _batched(KERNEL2_ROWS, VLEN, a_tiles, b_tiles, vm)


def batched_kernel_2_sp(
    a_tiles: np.ndarray, b_tiles: np.ndarray, vm: VectorMachine | None = None
) -> np.ndarray:
    """The SGEMM flavour of the batched Kernel 2: (T, k, 30) x
    (T, k, 16) float32 -> (T, 30, 16)."""
    return _batched(KERNEL2_ROWS, SP_LANES, a_tiles, b_tiles, vm)


def tile_multiply_fast(a_tile: np.ndarray, b_tile: np.ndarray) -> np.ndarray:
    """NumPy path over the same packed tiles: (k, R).T @ (k, 8)."""
    a_tile = np.asarray(a_tile)
    b_tile = np.asarray(b_tile)
    if a_tile.shape[0] != b_tile.shape[0]:
        raise ValueError("k mismatch between tiles")
    return a_tile.T @ b_tile


#: Hardware threads cooperating on one core's a tile (Figure 2a).
THREADS_PER_CORE = 4

#: 64-byte cache lines per 30/31-element f64 column of a.
A_LINES_PER_COLUMN = 4


def core_multiply(
    a_tile: np.ndarray,
    b_tiles,
    kernel=basic_kernel_2,
    vms=None,
):
    """Figure 2a: the four hardware threads of one core multiply the
    *shared* a tile by their own b tiles into their own c tiles.

    Returns the list of c blocks (one per thread). Each thread runs the
    full emulated kernel; sharing is about the memory system, not the
    arithmetic — see :func:`core_a_line_traffic`.
    """
    b_tiles = list(b_tiles)
    if len(b_tiles) != THREADS_PER_CORE:
        raise ValueError(f"a core runs {THREADS_PER_CORE} hardware threads")
    if vms is not None and len(vms) != THREADS_PER_CORE:
        raise ValueError("need one vector machine per thread")
    out = []
    for t, b_tile in enumerate(b_tiles):
        vm = vms[t] if vms is not None else None
        out.append(kernel(a_tile, b_tile, vm))
    return out


def core_a_line_traffic(k: int, synchronized: bool) -> int:
    """L2->L1 line fills for the a tile over one k-loop of the core.

    With the paper's "frequent fast inter-thread synchronization" the
    four threads stay on the same iteration, so each of the 4 a-column
    lines is brought into L1 once and reused by the other three threads.
    Unsynchronized threads drift apart and each fetches its own copy
    (worst case): 4x the traffic — and 5 fills per thread per iteration
    instead of the average 2 the stall analysis of Section III-A2 needs.
    """
    if k < 1:
        raise ValueError("k must be positive")
    per_iteration = (
        A_LINES_PER_COLUMN if synchronized else A_LINES_PER_COLUMN * THREADS_PER_CORE
    )
    return per_iteration * k


def fills_per_thread_iteration(synchronized: bool) -> float:
    """Average L1 fills each thread absorbs per iteration: one b line
    plus its share of the a lines (Section III-A2's "two cache lines")."""
    b_lines = 1.0
    a_share = A_LINES_PER_COLUMN / (THREADS_PER_CORE if synchronized else 1)
    return b_lines + a_share
