"""L2 block-size selection (Section III-A1).

The paper chooses L2 blocks (m x k for Ab, k x n for Bb, m x n for Cb)
such that all three fit in the core's 512 KB L2 and the implied memory
bandwidth 64*(2/k + 1/n + 1/m) bytes/cycle stays under what the machine
delivers; Ab gets the largest share of L2 (Goto-style), with practical
preferences pinning m to a multiple of the kernel's 30-row tile and n to
a multiple of 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.calibration import default_calibration
from repro.machine.config import KNC, MachineConfig
from repro.machine.roofline import (
    l2_block_bytes,
    required_bandwidth_gbs,
)

#: Kernel footprint the block sizes must be multiples of.
M_STEP = 30
N_STEP = 8


@dataclass(frozen=True)
class BlockChoice:
    """A selected (m, n, k) blocking with its model metrics."""

    m: int
    n: int
    k: int
    l2_bytes: int
    bandwidth_gbs: float
    l2_fraction: float


def choose_blocking(
    machine: MachineConfig = KNC,
    elem_bytes: int = 8,
    k_candidates=(120, 180, 240, 300, 340, 400),
    l2_budget_fraction: float = 0.9,
    n: int = 32,
) -> BlockChoice:
    """Pick (m, n, k) for the given machine.

    For every candidate k the largest m (multiple of 30) that keeps
    Ab + Bb + Cb within ``l2_budget_fraction`` of L2 is computed; among
    candidates whose bandwidth demand is feasible, the one with the best
    calibrated kernel efficiency (which encodes the paper's 1/k c-update
    amortisation and the L2-spill penalty of Table II) wins — on KNC this
    reproduces the paper's k=300 for doubles and k=400 for singles.
    """
    if not 0 < l2_budget_fraction <= 1:
        raise ValueError("l2_budget_fraction must be in (0, 1]")
    if n % N_STEP:
        raise ValueError(f"n must be a multiple of {N_STEP}")
    cal = default_calibration()
    eff_of_k = cal.dgemm_eff_k if elem_bytes == 8 else cal.sgemm_eff_k
    budget = machine.l2.size_bytes * l2_budget_fraction
    best: BlockChoice | None = None
    best_eff = -1.0
    for k in k_candidates:
        # Largest m with elem*(m*n + m*k + k*n) <= budget.
        m_max = int((budget / elem_bytes - k * n) / (n + k))
        m = (m_max // M_STEP) * M_STEP
        if m < M_STEP:
            continue
        bw = required_bandwidth_gbs(m, n, k, machine, amortize_a=True)
        if bw >= machine.stream_bw_gbs:
            continue
        choice = BlockChoice(
            m=m,
            n=n,
            k=k,
            l2_bytes=l2_block_bytes(m, n, k, elem_bytes),
            bandwidth_gbs=bw,
            l2_fraction=l2_block_bytes(m, n, k, elem_bytes) / machine.l2.size_bytes,
        )
        eff = eff_of_k(k)
        if eff > best_eff:
            best, best_eff = choice, eff
    if best is None:
        raise ValueError("no feasible blocking for this machine")
    return best
