"""Buffer arena: pooled scratch memory for the allocation-free hot paths.

The paper's DGEMM/LU design is an exercise in controlling memory
behaviour — pack once, block for L2, never touch a line you don't need
(Sections III-A1/A2). The functional layer's hidden enemy is the NumPy
temporary: every ``np.outer`` rank-1 update, fancy-index row swap and
``L21 @ U12`` product allocates (and immediately discards) a fresh
array, so the "hot" loops spend their time in the allocator instead of
the kernels. :class:`BufferPool` is the fix: a keyed arena of reusable
scratch blocks with checkout/release semantics that the kernels thread
``out=`` parameters into, so steady-state stages allocate nothing.

Design:

* **arena blocks** — the pool owns flat byte arrays; a checkout carves a
  ``(shape, dtype)`` view off the smallest free block that fits (best
  fit), allocating a new block only when none does. Releasing returns
  the block to the free list, so a loop whose request sizes shrink (an
  LU factorization's trailing updates) reuses one block for every
  stage;
* **keys** — checkouts are tagged (``"getf2.rank1"``, ``"laswp.gather"``,
  ``"comm.segment"``, ...) purely for accounting: per-key rent counts
  identify which kernel is churning;
* **leak detection** — every checkout must be released exactly once;
  releasing a buffer twice (or one the pool never issued) raises
  :class:`BufferPoolError`, and :attr:`BufferPool.active` exposes the
  outstanding count so tests can assert nothing leaked;
* **thread safety** — the free list and lease table are lock-protected;
  tile-executor workers checkout/release concurrently. The pool hands
  out disjoint blocks, so the
  :class:`~repro.parallel.TileExecutor` disjoint-write contract (and
  with it bitwise determinism at any worker count) is preserved.

Counters (published to a :class:`~repro.obs.metrics.MetricsRegistry`
via :meth:`BufferPool.publish`): ``blas.buffer_pool.checkouts`` /
``.releases`` / ``.allocations`` / ``.reuses`` / ``.bytes_served``,
plus ``.arena_bytes`` / ``.peak_bytes`` gauges.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np


class BufferPoolError(RuntimeError):
    """A pool-protocol violation (double release, foreign buffer)."""


class BufferPool:
    """An arena of reusable, shape/dtype-tagged scratch arrays.

    With ``arena`` set to a :class:`~repro.parallel.shm.SharedArena`,
    the pool's backing blocks are carved out of shared memory instead
    of private ``np.empty`` allocations — every buffer the pool issues
    is then addressable by child processes through an
    :class:`~repro.parallel.shm.ArrayRef`, which is how the process
    executor's GEMM stripes consume pool-staged operands without a
    copy. The checkout/release protocol, the best-fit reuse and the
    lease accounting are identical either way.
    """

    def __init__(self, name: str = "blas.buffer_pool", arena=None):
        self.name = name
        self.arena = arena
        self._lock = threading.Lock()
        #: Free arena blocks (1-D uint8), kept sorted by size for best fit.
        self._free: List[np.ndarray] = []
        #: Outstanding leases: id(view) -> (view, backing block, key, dtype).
        #: The dtype is part of the lease identity: a view is only ever
        #: handed out at exactly the requested precision (blocks are raw
        #: bytes, so reuse across dtypes is safe — but a *live* lease can
        #: never alias another dtype's bytes).
        self._leases: Dict[int, Tuple[np.ndarray, np.ndarray, str, str]] = {}
        # -- counters ----------------------------------------------------
        self.checkouts = 0
        self.releases = 0
        self.allocations = 0  # checkouts that had to allocate a new block
        self.reuses = 0  # checkouts served from the free list
        self.bytes_served = 0  # sum of checked-out view sizes
        self.arena_bytes = 0  # total bytes owned (free + leased blocks)
        self.peak_bytes = 0  # high-water mark of arena_bytes
        self.by_key: Dict[str, int] = {}
        self.by_dtype: Dict[str, int] = {}  # checkouts per dtype str

    # -- checkout / release ----------------------------------------------------
    def checkout(
        self, shape: tuple, dtype, key: str = "anonymous"
    ) -> np.ndarray:
        """A C-contiguous scratch array of the requested geometry.

        Contents are undefined; callers must fully overwrite it (e.g.
        via ``np.matmul(..., out=buf)``). Must be passed back to
        :meth:`release` exactly once.
        """
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        with self._lock:
            block = self._take_block(nbytes)
            view = block[:nbytes].view(dtype).reshape(shape)
            self._leases[id(view)] = (view, block, key, dtype.name)
            self.checkouts += 1
            self.bytes_served += nbytes
            self.by_key[key] = self.by_key.get(key, 0) + 1
            self.by_dtype[dtype.name] = self.by_dtype.get(dtype.name, 0) + 1
        return view

    def release(self, buf: np.ndarray) -> None:
        """Return a checked-out buffer to the pool.

        Raises :class:`BufferPoolError` on a double release or a buffer
        this pool never issued — the leak detector of the tests.
        """
        with self._lock:
            lease = self._leases.pop(id(buf), None)
            if lease is None:
                raise BufferPoolError(
                    f"{self.name}: buffer is not leased "
                    "(double release, or not from this pool)"
                )
            _view, block, _key, _dtype = lease
            self._insert_free(block)
            self.releases += 1

    @contextmanager
    def rent(
        self, shape: tuple, dtype, key: str = "anonymous"
    ) -> Iterator[np.ndarray]:
        """Checkout scoped to a ``with`` block (released on exit)."""
        buf = self.checkout(shape, dtype, key=key)
        try:
            yield buf
        finally:
            self.release(buf)

    # -- internals -------------------------------------------------------------
    def _take_block(self, nbytes: int) -> np.ndarray:
        """Best-fit block of at least ``nbytes`` (lock held)."""
        for i, block in enumerate(self._free):  # sorted: first fit = best fit
            if block.nbytes >= nbytes:
                self.reuses += 1
                return self._free.pop(i)
        if self.arena is not None:
            block = self.arena.checkout((nbytes,), np.uint8, key=f"{self.name}.block")
        else:
            block = np.empty(nbytes, dtype=np.uint8)
        self.allocations += 1
        self.arena_bytes += nbytes
        if self.arena_bytes > self.peak_bytes:
            self.peak_bytes = self.arena_bytes
        return block

    def _insert_free(self, block: np.ndarray) -> None:
        """Insert keeping the free list sorted by size (lock held)."""
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid].nbytes < block.nbytes:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, block)

    # -- introspection ---------------------------------------------------------
    @property
    def active(self) -> int:
        """Number of outstanding (checked-out, unreleased) buffers."""
        with self._lock:
            return len(self._leases)

    def active_keys(self) -> List[str]:
        """Keys of the outstanding leases (for leak diagnostics)."""
        with self._lock:
            return sorted(key for (_v, _b, key, _d) in self._leases.values())

    def active_leases(self) -> List[Tuple[str, str, int]]:
        """``(key, dtype, nbytes)`` per outstanding lease.

        The dtype column is what the cross-precision tests assert on:
        a live SP lease and a live DP lease must never share bytes, and
        a lease's recorded dtype always matches the view it backs.
        """
        with self._lock:
            return sorted(
                (key, dt, view.nbytes)
                for (view, _b, key, dt) in self._leases.values()
            )

    def clear(self) -> int:
        """Drop every free block (leases stay out); returns bytes freed.
        Arena-backed blocks are returned to the shared arena."""
        with self._lock:
            freed = sum(b.nbytes for b in self._free)
            if self.arena is not None:
                for block in self._free:
                    self.arena.release(block)
            self._free.clear()
            self.arena_bytes -= freed
            return freed

    # -- observability ---------------------------------------------------------
    def publish(self, metrics) -> None:
        """Copy the pool counters into a MetricsRegistry."""
        if metrics is None:
            return
        metrics.counter(f"{self.name}.checkouts").inc(self.checkouts)
        metrics.counter(f"{self.name}.releases").inc(self.releases)
        metrics.counter(f"{self.name}.allocations").inc(self.allocations)
        metrics.counter(f"{self.name}.reuses").inc(self.reuses)
        metrics.counter(f"{self.name}.bytes_served").inc(self.bytes_served)
        metrics.gauge(f"{self.name}.arena_bytes").set(self.arena_bytes)
        metrics.gauge(f"{self.name}.peak_bytes").update_max(self.peak_bytes)
        metrics.gauge(f"{self.name}.active").set(self.active)
        for dt, count in sorted(self.by_dtype.items()):
            metrics.counter(f"{self.name}.checkouts.{dt}").inc(count)

    def __repr__(self) -> str:
        return (
            f"BufferPool({self.name}: {self.arena_bytes} arena bytes, "
            f"{self.checkouts} checkouts, {self.reuses} reuses, "
            f"{self.active} active)"
        )


def matmul_into(
    pool: BufferPool,
    x: np.ndarray,
    y: np.ndarray,
    out: np.ndarray,
    key: str = "matmul.stage",
) -> np.ndarray:
    """``np.matmul(x, y, out=out)`` with operands staged through the pool.

    NumPy's matmul copies an operand that is contiguous in neither
    memory order into a hidden C-ordered temporary before calling BLAS
    — an allocation per product that defeats the arena. Staging the
    same C-ordered copy through a rented buffer hands BLAS
    bitwise-identical inputs without touching the allocator. Operands
    that are already contiguous (either order) pass straight through,
    exactly as ``np.matmul`` would take them.

    Vector-like products (any dimension of the GEMM is 1) also pass
    straight through: NumPy routes those to GEMV-style kernels that
    consume leading-dimension strides without copying, so there is no
    allocation to avoid — and staging would *change* the kernel (and
    with it the floating-point summation order).

    All three arrays must share one dtype: a mixed-precision product
    would silently upcast through a hidden temporary, exactly the
    allocation (and precision surprise) this helper exists to prevent,
    so mismatches raise :class:`TypeError` instead.
    """
    if not (x.dtype == y.dtype == out.dtype):
        raise TypeError(
            "matmul_into requires matching dtypes (no silent promotion): "
            f"x={x.dtype}, y={y.dtype}, out={out.dtype}"
        )
    if 1 in (x.shape[0], x.shape[1], y.shape[1]):
        np.matmul(x, y, out=out)
        return out
    staged = []
    try:
        if not (x.flags.c_contiguous or x.flags.f_contiguous):
            xc = pool.checkout(x.shape, x.dtype, key=key)
            np.copyto(xc, x)
            staged.append(xc)
            x = xc
        if not (y.flags.c_contiguous or y.flags.f_contiguous):
            yc = pool.checkout(y.shape, y.dtype, key=key)
            np.copyto(yc, y)
            staged.append(yc)
            y = yc
        np.matmul(x, y, out=out)
    finally:
        for buf in staged:
            pool.release(buf)
    return out


def subtract_into(target: np.ndarray, value: np.ndarray) -> np.ndarray:
    """``target -= value`` without the buffered-iterator allocation.

    NumPy routes a binary ufunc whose ``out`` is a non-contiguous view
    through the buffered nditer path, allocating ~128 KiB of iteration
    buffers per call — exactly the trailing-update shape the blocked LU
    subtracts into. Going row by row keeps every operand of the inner
    call contiguous, so the unbuffered loop runs; the per-element
    arithmetic is unchanged, so the result is bitwise identical.

    ``target`` and ``value`` must share one dtype — a mixed-precision
    subtract would round ``value`` through a casting buffer per call,
    so mismatches raise :class:`TypeError` instead of promoting.
    """
    if target.dtype != value.dtype:
        raise TypeError(
            "subtract_into requires matching dtypes (no silent promotion): "
            f"target={target.dtype}, value={value.dtype}"
        )
    if target.ndim == 2 and not target.flags.c_contiguous:
        for i in range(target.shape[0]):
            np.subtract(target[i], value[i], out=target[i])
    else:
        np.subtract(target, value, out=target)
    return target


def as_buffer_pool(pool) -> Optional[BufferPool]:
    """Coerce ``None | bool | BufferPool`` into a pool (or None).

    ``True`` builds a fresh pool, ``False``/``None`` disable pooling —
    the same convention :class:`~repro.blas.workspace.PackCache`
    consumers use for their ``pack_cache`` arguments.
    """
    if pool is None or pool is False:
        return None
    if pool is True:
        return BufferPool()
    if isinstance(pool, BufferPool):
        return pool
    raise TypeError(f"pool must be None, a bool or a BufferPool, got {pool!r}")
