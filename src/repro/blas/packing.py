"""Packing into the Knights Corner-friendly data layout (Figure 3).

Prior to an outer product C += Ai @ Bi the paper packs

* ``Ai`` (M x k) into block row-major format of 30 x k tiles, each tile
  stored **column-major** — so the basic kernel reads a 30-element column
  of a contiguously (Figure 3a). Kernel 1 uses 31-row tiles; the tile
  height is a parameter.
* ``Bi`` (k x N) into block row-major format of k x 8 tiles, each tile
  stored **row-major** — so the kernel reads an 8-element row of b as one
  vector load (Figure 3b).

Ragged edges (M not a multiple of the tile height, N not a multiple of
8) are zero-padded inside the last tile; the logical sizes are kept so
unpacking and the GEMM driver slice the padding away. Zero padding is
numerically exact for the multiply.

Tiles are exposed as views into one contiguous backing array per packed
matrix — mirroring the "temporary storage" the paper packs into — so the
packing cost is a predictable, bandwidth-bound pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Tile height of packed A for Basic Kernel 2 (30 accumulator rows).
TILE_A_ROWS = 30
#: Tile width of packed B (one 512-bit vector of doubles).
TILE_B_COLS = 8


@dataclass
class PackedA:
    """Ai packed as (n_tiles, k, tile_rows): ``data[t, j, :]`` is column j
    of tile t — the contiguous column access the kernel wants."""

    data: np.ndarray  # shape (n_tiles, k, tile_rows)
    m: int  # logical row count of the original Ai
    tile_rows: int

    @property
    def n_tiles(self) -> int:
        return self.data.shape[0]

    @property
    def k(self) -> int:
        return self.data.shape[1]

    def tile(self, t: int) -> np.ndarray:
        """Tile t as a (k, tile_rows) array (column j at [j, :])."""
        return self.data[t]

    def tile_row_range(self, t: int) -> tuple:
        """Rows [lo, hi) of the original matrix covered by tile t
        (hi clips at m for the ragged last tile)."""
        lo = t * self.tile_rows
        return lo, min(lo + self.tile_rows, self.m)

    def unpack(self) -> np.ndarray:
        """Reconstruct the original (m, k) matrix."""
        # data transposed per tile: (n_tiles, tile_rows, k) stacked.
        full = self.data.transpose(0, 2, 1).reshape(self.n_tiles * self.tile_rows, -1)
        return np.ascontiguousarray(full[: self.m])


@dataclass
class PackedB:
    """Bi packed as (n_tiles, k, tile_cols): ``data[t, j, :]`` is row j of
    tile t — one contiguous vector load per kernel iteration.

    Storage trick: the primary allocation is the contiguous row-major
    (k, n_tiles * tile_cols) *panel* (zero padding in the last tile's
    columns), and ``data`` is a zero-copy strided view of it shaped as
    the Figure 3b tile grid. Both the tile consumers (kernels) and the
    stripe GEMM (which multiplies against the whole panel in one BLAS
    call per a stripe) read the same bytes — packing costs a single
    bandwidth-bound copy of Bi.
    """

    data: np.ndarray  # shape (n_tiles, k, tile_cols); view of the panel
    n: int  # logical column count of the original Bi
    tile_cols: int
    # The contiguous (k, n_tiles * tile_cols) backing panel.
    panel: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    @property
    def n_tiles(self) -> int:
        return self.data.shape[0]

    @property
    def k(self) -> int:
        return self.data.shape[1]

    def tile(self, t: int) -> np.ndarray:
        """Tile t as a (k, tile_cols) array (row j at [j, :])."""
        return self.data[t]

    def tile_col_range(self, t: int) -> tuple:
        lo = t * self.tile_cols
        return lo, min(lo + self.tile_cols, self.n)

    def row_major(self) -> np.ndarray:
        """All tiles side by side as one contiguous (k, n_tiles *
        tile_cols) panel (zero padding kept in the last tile). This is
        the backing storage, so cache hits reuse it for free."""
        if self.panel is None:  # externally-built PackedB (tests)
            self.panel = np.ascontiguousarray(
                self.data.transpose(1, 0, 2).reshape(self.k, -1)
            )
        return self.panel

    def unpack(self) -> np.ndarray:
        """Reconstruct the original (k, n) matrix."""
        return np.ascontiguousarray(self.row_major()[:, : self.n])


def pack_a(a: np.ndarray, tile_rows: int = TILE_A_ROWS, alloc=None) -> PackedA:
    """Pack an (m, k) block of A into column-major tiles (Figure 3a).

    ``alloc(shape, dtype)`` overrides the backing allocation (the pack
    cache passes a shared-arena allocator so packed panels are visible
    to worker processes); the pack fully overwrites the buffer, padding
    included, so uninitialised allocators are fine.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("pack_a expects a 2-D block")
    if tile_rows < 1:
        raise ValueError("tile_rows must be positive")
    m, k = a.shape
    n_tiles = -(-m // tile_rows)  # ceil division
    if alloc is None:
        data = np.zeros((n_tiles, k, tile_rows), dtype=a.dtype)
    else:
        data = alloc((n_tiles, k, tile_rows), a.dtype)
        if n_tiles * tile_rows != m:  # zero only the ragged tile's padding
            data[m // tile_rows, :, m - (m // tile_rows) * tile_rows :] = 0
    # Full tiles in one transposed copy; only the ragged tail (if any)
    # needs its own slab — the pack stays a bandwidth-bound pass with no
    # per-tile Python loop.
    full = m // tile_rows
    if full:
        data[:full] = a[: full * tile_rows].reshape(
            full, tile_rows, k
        ).transpose(0, 2, 1)
    if full < n_tiles:
        lo = full * tile_rows
        # Column-major tile: transpose the row slab into (k, rows).
        data[full, :, : m - lo] = a[lo:].T
    return PackedA(data=data, m=m, tile_rows=tile_rows)


def pack_b(b: np.ndarray, tile_cols: int = TILE_B_COLS, alloc=None) -> PackedB:
    """Pack a (k, n) block of B into row-major tiles (Figure 3b).

    ``alloc`` as in :func:`pack_a` — the panel is fully overwritten
    (logical columns copied, padding columns zeroed).
    """
    b = np.asarray(b)
    if b.ndim != 2:
        raise ValueError("pack_b expects a 2-D block")
    if tile_cols < 1:
        raise ValueError("tile_cols must be positive")
    k, n = b.shape
    n_tiles = -(-n // tile_cols)
    # One contiguous padded copy of Bi; the tile grid is a strided view
    # of it (tile t, row j, col c) -> panel[j, t * tile_cols + c].
    if alloc is None:
        panel = np.zeros((k, n_tiles * tile_cols), dtype=b.dtype)
    else:
        panel = alloc((k, n_tiles * tile_cols), b.dtype)
        if n_tiles * tile_cols != n:
            panel[:, n:] = 0
    panel[:, :n] = b
    s = panel.strides
    data = np.lib.stride_tricks.as_strided(
        panel,
        shape=(n_tiles, k, tile_cols),
        strides=(tile_cols * s[1], s[0], s[1]),
        writeable=False,
    )
    return PackedB(data=data, n=n, tile_cols=tile_cols, panel=panel)


def packing_bytes(m: int, n: int, k: int, elem_bytes: int = 8) -> int:
    """Memory traffic of one pack pass (read + write of Ai and Bi) — the
    quantity whose bandwidth-bound cost the Figure 4 overhead curve
    models."""
    if min(m, n, k) < 0:
        raise ValueError("dimensions must be non-negative")
    return 2 * elem_bytes * (m * k + k * n)
