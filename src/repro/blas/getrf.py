"""Panel factorization: LU with partial pivoting (DGETRF).

The panel factorization [DLi] of stage i (Figure 5a) factors a tall
M x nb panel in place into unit-lower L (below the diagonal) and upper U
(on/above), producing the pivot vector the row swaps are based on.

Two variants:

* :func:`getf2` — unblocked right-looking factorization (the classic
  rank-1 update loop), used at the recursion base;
* :func:`getrf` — recursive blocked factorization splitting the column
  range in half, applying swaps and a triangular solve to the right
  half, then a GEMM update. Recursion converts most of the panel work
  into matrix-matrix products, which is what makes a highly optimised
  panel factorization possible on Knights Corner (Section IV).

Pivot convention is LAPACK's: ``ipiv[j] = r`` means row j was swapped
with row r (r >= j, indices local to the factored block) *at step j*.

Allocation discipline: the pivot search computes |column| into a
reusable scratch vector (one allocation per call, not one per column),
row swaps go through an explicit swap-row buffer instead of the
double-copying fancy-index idiom, and — with a
:class:`~repro.blas.buffers.BufferPool` passed as ``pool`` — all
scratch (including the rank-1 and trailing-GEMM workspaces, which
replace ``np.outer`` / ``@`` temporaries with ``np.multiply`` /
``np.matmul(..., out=)``) is rented from the arena, so steady-state
panel factorizations allocate nothing. The pooled and allocating paths
compute the same products in the same order and are bitwise identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blas.buffers import BufferPool, matmul_into, subtract_into


class SingularMatrixError(np.linalg.LinAlgError):
    """Raised when a zero pivot column makes the factorization break down."""


def _swap_rows(a: np.ndarray, j: int, p: int, row_buf: np.ndarray) -> None:
    """Exchange rows j and p of ``a`` through ``row_buf`` (one row copy
    instead of the two (2, n) gathers of ``a[[j, p]] = a[[p, j]]``)."""
    row_buf[...] = a[j]
    a[j] = a[p]
    a[p] = row_buf


def getf2(
    a: np.ndarray,
    ipiv: np.ndarray | None = None,
    pool: Optional[BufferPool] = None,
) -> np.ndarray:
    """Unblocked in-place LU with partial pivoting of an (m, n) block.

    Returns ``ipiv`` (length min(m, n)). With ``pool`` the scratch
    (pivot-search vector, swap row, rank-1 workspace) is rented from
    the arena and the rank-1 update runs through
    ``np.multiply``/``np.subtract(..., out=)``; without it the update
    stays the allocating ``np.outer`` reference. Both paths are bitwise
    identical.
    """
    a = _check_panel(a)
    m, n = a.shape
    kmax = min(m, n)
    if ipiv is None:
        ipiv = np.zeros(kmax, dtype=np.int64)
    if kmax == 0:
        return ipiv
    rank1_elems = (m - 1) * (n - 1)
    if pool is not None:
        abs_col = pool.checkout((m,), a.dtype, key="getf2.abs")
        row_buf = pool.checkout((n,), a.dtype, key="getf2.swap")
        rank1 = pool.checkout((rank1_elems,), a.dtype, key="getf2.rank1")
    else:
        # Reusable per-call scratch: one allocation per panel, not one
        # np.abs temporary per column / one (2, n) gather per swap.
        abs_col = np.empty(m, dtype=a.dtype)
        row_buf = np.empty(n, dtype=a.dtype)
        rank1 = None
    try:
        for j in range(kmax):
            scratch = abs_col[: m - j]
            np.abs(a[j:, j], out=scratch)
            p = j + int(np.argmax(scratch))
            if a[p, j] == 0.0:
                raise SingularMatrixError(f"zero pivot column at step {j}")
            ipiv[j] = p
            if p != j:
                _swap_rows(a, j, p, row_buf)
            a[j + 1 :, j] /= a[j, j]
            if j + 1 < n:
                # Rank-1 trailing update.
                trailing = a[j + 1 :, j + 1 :]
                if rank1 is None:
                    trailing -= np.outer(a[j + 1 :, j], a[j, j + 1 :])
                elif trailing.size:
                    w = rank1[: trailing.size].reshape(trailing.shape)
                    # Outer product via k=1 GEMM: one multiply per
                    # element, bitwise equal to np.outer, and unlike the
                    # broadcast ufunc it never stages through numpy's
                    # internal iteration buffers.
                    np.matmul(a[j + 1 :, j, None], a[None, j, j + 1 :], out=w)
                    subtract_into(trailing, w)
    finally:
        if pool is not None:
            pool.release(abs_col)
            pool.release(row_buf)
            pool.release(rank1)
    return ipiv


def getrf(
    a: np.ndarray, min_block: int = 16, pool: Optional[BufferPool] = None
) -> np.ndarray:
    """Recursive blocked in-place LU with partial pivoting.

    Splits columns in half; the left half recursion produces pivots that
    are applied to the right half, followed by a unit-lower triangular
    solve and a GEMM update of the bottom-right block. Returns the pivot
    vector in the same convention as :func:`getf2`. ``pool`` threads a
    :class:`~repro.blas.buffers.BufferPool` through the recursion so the
    swap rows, forward-solve workspaces and trailing-GEMM products are
    rented instead of allocated.
    """
    a = _check_panel(a)
    m, n = a.shape
    kmax = min(m, n)
    ipiv = np.zeros(kmax, dtype=np.int64)
    _getrf_rec(a, ipiv, min_block, pool)
    return ipiv


def _apply_swaps(
    a: np.ndarray,
    ipiv: np.ndarray,
    kmax: int,
    pool: Optional[BufferPool],
    key: str,
) -> None:
    """Apply ``ipiv[:kmax]``'s swaps to the rows of ``a`` through one
    swap-row buffer."""
    if a.shape[1] == 0:
        return
    if pool is not None:
        with pool.rent((a.shape[1],), a.dtype, key=key) as row_buf:
            for j in range(kmax):
                p = ipiv[j]
                if p != j:
                    _swap_rows(a, j, p, row_buf)
        return
    row_buf = np.empty(a.shape[1], dtype=a.dtype)
    for j in range(kmax):
        p = ipiv[j]
        if p != j:
            _swap_rows(a, j, p, row_buf)


def _getrf_rec(
    a: np.ndarray,
    ipiv: np.ndarray,
    min_block: int,
    pool: Optional[BufferPool] = None,
) -> None:
    m, n = a.shape
    kmax = min(m, n)
    if kmax <= min_block:
        getf2(a, ipiv[:kmax], pool=pool)
        return
    n1 = kmax // 2
    left = a[:, :n1]
    _getrf_rec(left, ipiv[:n1], min_block, pool)
    # Apply the left half's swaps to the right half.
    right = a[:, n1:]
    _apply_swaps(right, ipiv, n1, pool, "getrf.swap_right")
    # U12 = L11^{-1} @ A12 (unit lower triangular forward solve) ...
    l11 = left[:n1, :]
    u12 = right[:n1, :]
    _forward_solve_unit_inplace(l11, u12, pool=pool)
    # ... then the trailing GEMM: A22 -= L21 @ U12.
    if m > n1:
        a22 = right[n1:, :]
        if pool is not None and a22.size:
            with pool.rent(a22.shape, a.dtype, key="getrf.gemm") as w:
                matmul_into(pool, left[n1:, :], u12, w, key="getrf.gemm")
                subtract_into(a22, w)
        else:
            a22 -= left[n1:, :] @ u12
        sub_ipiv = np.zeros(kmax - n1, dtype=np.int64)
        _getrf_rec(a[n1:, n1:], sub_ipiv, min_block, pool)
        # Apply the sub-factorization's swaps to the left columns and
        # rebase its pivot indices.
        _apply_swaps(a[n1:, :n1], sub_ipiv, kmax - n1, pool, "getrf.swap_left")
        ipiv[n1:] = sub_ipiv + n1


def _forward_solve_unit_inplace(
    l: np.ndarray, b: np.ndarray, pool: Optional[BufferPool] = None
) -> None:
    """b <- L^{-1} b for unit lower-triangular L, blocked loop.

    With ``pool`` the per-column rank-1 products and the inter-block
    GEMM run through rented workspaces (``out=``) instead of
    temporaries; the products and subtraction order are unchanged, so
    the result is bitwise identical.
    """
    n = l.shape[0]
    step = 32
    ncols = b.shape[1]
    if pool is None or ncols == 0 or n == 0:
        for j0 in range(0, n, step):
            j1 = min(j0 + step, n)
            for j in range(j0, j1):
                b[j + 1 : j1, :] -= np.outer(l[j + 1 : j1, j], b[j, :])
            if j1 < n:
                b[j1:, :] -= l[j1:, j0:j1] @ b[j0:j1, :]
        return
    with pool.rent((n * ncols,), b.dtype, key="fsolve.work") as work:
        for j0 in range(0, n, step):
            j1 = min(j0 + step, n)
            for j in range(j0, j1):
                rows = b[j + 1 : j1, :]
                if rows.size:
                    w = work[: rows.size].reshape(rows.shape)
                    np.matmul(l[j + 1 : j1, j, None], b[None, j, :], out=w)
                    subtract_into(rows, w)
            if j1 < n:
                below = b[j1:, :]
                w = work[: below.size].reshape(below.shape)
                matmul_into(pool, l[j1:, j0:j1], b[j0:j1, :], w, key="fsolve.work")
                subtract_into(below, w)


def _check_panel(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("panel must be 2-D")
    if a.dtype.kind != "f":
        raise ValueError("panel must be a float array (factored in place)")
    if not a.flags.writeable:
        raise ValueError("panel must be writeable (factored in place)")
    return a


def reconstruct_lu(a: np.ndarray) -> tuple:
    """Split an in-place factored (m, n) block into (L, U) with unit
    diagonal L — a test helper mirroring LAPACK's storage convention."""
    m, n = a.shape
    kmax = min(m, n)
    lower = np.tril(a[:, :kmax], -1) + np.eye(m, kmax, dtype=a.dtype)
    upper = np.triu(a[:kmax, :])
    return lower, upper
