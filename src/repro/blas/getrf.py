"""Panel factorization: LU with partial pivoting (DGETRF).

The panel factorization [DLi] of stage i (Figure 5a) factors a tall
M x nb panel in place into unit-lower L (below the diagonal) and upper U
(on/above), producing the pivot vector the row swaps are based on.

Two variants:

* :func:`getf2` — unblocked right-looking factorization (the classic
  rank-1 update loop), used at the recursion base;
* :func:`getrf` — recursive blocked factorization splitting the column
  range in half, applying swaps and a triangular solve to the right
  half, then a GEMM update. Recursion converts most of the panel work
  into matrix-matrix products, which is what makes a highly optimised
  panel factorization possible on Knights Corner (Section IV).

Pivot convention is LAPACK's: ``ipiv[j] = r`` means row j was swapped
with row r (r >= j, indices local to the factored block) *at step j*.
"""

from __future__ import annotations

import numpy as np


class SingularMatrixError(np.linalg.LinAlgError):
    """Raised when a zero pivot column makes the factorization break down."""


def getf2(a: np.ndarray, ipiv: np.ndarray | None = None) -> np.ndarray:
    """Unblocked in-place LU with partial pivoting of an (m, n) block.

    Returns ``ipiv`` (length min(m, n)).
    """
    a = _check_panel(a)
    m, n = a.shape
    kmax = min(m, n)
    if ipiv is None:
        ipiv = np.zeros(kmax, dtype=np.int64)
    for j in range(kmax):
        p = j + int(np.argmax(np.abs(a[j:, j])))
        if a[p, j] == 0.0:
            raise SingularMatrixError(f"zero pivot column at step {j}")
        ipiv[j] = p
        if p != j:
            a[[j, p], :] = a[[p, j], :]
        a[j + 1 :, j] /= a[j, j]
        if j + 1 < n:
            # Rank-1 trailing update.
            a[j + 1 :, j + 1 :] -= np.outer(a[j + 1 :, j], a[j, j + 1 :])
    return ipiv


def getrf(a: np.ndarray, min_block: int = 16) -> np.ndarray:
    """Recursive blocked in-place LU with partial pivoting.

    Splits columns in half; the left half recursion produces pivots that
    are applied to the right half, followed by a unit-lower triangular
    solve and a GEMM update of the bottom-right block. Returns the pivot
    vector in the same convention as :func:`getf2`.
    """
    a = _check_panel(a)
    m, n = a.shape
    kmax = min(m, n)
    ipiv = np.zeros(kmax, dtype=np.int64)
    _getrf_rec(a, ipiv, min_block)
    return ipiv


def _getrf_rec(a: np.ndarray, ipiv: np.ndarray, min_block: int) -> None:
    m, n = a.shape
    kmax = min(m, n)
    if kmax <= min_block:
        getf2(a, ipiv[:kmax])
        return
    n1 = kmax // 2
    left = a[:, :n1]
    _getrf_rec(left, ipiv[:n1], min_block)
    # Apply the left half's swaps to the right half.
    right = a[:, n1:]
    for j in range(n1):
        p = ipiv[j]
        if p != j:
            right[[j, p], :] = right[[p, j], :]
    # U12 = L11^{-1} @ A12 (unit lower triangular forward solve) ...
    l11 = left[:n1, :]
    u12 = right[:n1, :]
    _forward_solve_unit_inplace(l11, u12)
    # ... then the trailing GEMM: A22 -= L21 @ U12.
    if m > n1:
        right[n1:, :] -= left[n1:, :] @ u12
        sub_ipiv = np.zeros(kmax - n1, dtype=np.int64)
        _getrf_rec(a[n1:, n1:], sub_ipiv, min_block)
        # Apply the sub-factorization's swaps to the left columns and
        # rebase its pivot indices.
        bottom_left = a[n1:, :n1]
        for j in range(kmax - n1):
            p = sub_ipiv[j]
            if p != j:
                bottom_left[[j, p], :] = bottom_left[[p, j], :]
        ipiv[n1:] = sub_ipiv + n1


def _forward_solve_unit_inplace(l: np.ndarray, b: np.ndarray) -> None:
    """b <- L^{-1} b for unit lower-triangular L, blocked loop."""
    n = l.shape[0]
    step = 32
    for j0 in range(0, n, step):
        j1 = min(j0 + step, n)
        for j in range(j0, j1):
            b[j + 1 : j1, :] -= np.outer(l[j + 1 : j1, j], b[j, :])
        if j1 < n:
            b[j1:, :] -= l[j1:, j0:j1] @ b[j0:j1, :]


def _check_panel(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError("panel must be 2-D")
    if a.dtype.kind != "f":
        raise ValueError("panel must be a float array (factored in place)")
    if not a.flags.writeable:
        raise ValueError("panel must be writeable (factored in place)")
    return a


def reconstruct_lu(a: np.ndarray) -> tuple:
    """Split an in-place factored (m, n) block into (L, U) with unit
    diagonal L — a test helper mirroring LAPACK's storage convention."""
    m, n = a.shape
    kmax = min(m, n)
    lower = np.tril(a[:, :kmax], -1) + np.eye(m, kmax, dtype=a.dtype)
    upper = np.triu(a[:kmax, :])
    return lower, upper
