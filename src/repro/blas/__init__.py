"""BLAS substrate: the dense linear-algebra kernels of the paper,
implemented for real.

Everything here computes actual numbers (verified against NumPy/SciPy);
the corresponding *timing* lives in :mod:`repro.machine`. The package
implements:

* the Knights Corner-friendly packed tile formats of Figure 3
  (:mod:`repro.blas.packing`),
* the two basic matrix-multiply kernels of Figure 2, both through the
  vector-ISA emulator and through fast NumPy paths
  (:mod:`repro.blas.kernels`),
* row-major outer-product DGEMM/SGEMM built on the packed tiles
  (:mod:`repro.blas.gemm`),
* the LU building blocks: panel factorization with partial pivoting
  (:mod:`repro.blas.getrf`), row interchanges (:mod:`repro.blas.laswp`)
  and triangular solves (:mod:`repro.blas.trsm`),
* the L2 block-size chooser implementing the Section III-A1 inequality
  (:mod:`repro.blas.blocking`),
* the pack-once workspace — :class:`~repro.blas.workspace.PackCache` —
  that lets GEMM consumers pack each operand panel exactly once and
  reuse the tiles across all trailing updates
  (:mod:`repro.blas.workspace`),
* the buffer arena — :class:`~repro.blas.buffers.BufferPool` — that the
  kernels rent their scratch from so steady-state stages allocate
  nothing (:mod:`repro.blas.buffers`).
"""

from repro.blas.buffers import BufferPool, BufferPoolError, as_buffer_pool
from repro.blas.packing import PackedA, PackedB, pack_a, pack_b, TILE_A_ROWS, TILE_B_COLS
from repro.blas.kernels import (
    basic_kernel_1,
    basic_kernel_2,
    basic_kernel_2_sp,
    core_multiply,
    tile_multiply_fast,
)
from repro.blas.gemm import gemm, dgemm, sgemm
from repro.blas.getrf import getf2, getrf
from repro.blas.laswp import laswp, apply_pivots_to_vector, pivots_to_permutation
from repro.blas.workspace import PackCache
from repro.blas.trsm import trsm_lower_unit_left, trsm_upper_left, trsm_lower_unit_right
from repro.blas.blocking import choose_blocking, BlockChoice

__all__ = [
    "BufferPool",
    "BufferPoolError",
    "as_buffer_pool",
    "PackedA",
    "PackedB",
    "pack_a",
    "pack_b",
    "TILE_A_ROWS",
    "TILE_B_COLS",
    "basic_kernel_1",
    "basic_kernel_2",
    "basic_kernel_2_sp",
    "core_multiply",
    "tile_multiply_fast",
    "gemm",
    "dgemm",
    "sgemm",
    "getf2",
    "getrf",
    "laswp",
    "apply_pivots_to_vector",
    "pivots_to_permutation",
    "PackCache",
    "trsm_lower_unit_left",
    "trsm_upper_left",
    "trsm_lower_unit_right",
    "choose_blocking",
    "BlockChoice",
]
