"""Distributed HPL over the simulated MPI world — numerically real.

The full multi-node benchmark: every rank generates its own block-cyclic
piece of the global HPL matrix (using the jumpable generator, exactly as
real HPL does), then the grid factors it stage by stage:

1. the owner column gathers the stage panel to the diagonal rank, which
   factors it with partial pivoting and scatters the factored rows back
   (a gather-based panel factorization — simple, and bit-identical to
   the single-node panel, which is what lets the tests verify the
   distributed run against :func:`repro.lu.factorize.blocked_lu`);
2. the pivot pairs broadcast world-wide and every process column applies
   the distributed row exchange (:mod:`repro.cluster.swap`);
3. the factored panel broadcasts along process rows
   (:mod:`repro.cluster.panel_bcast`); the diagonal row solves its U
   blocks (DTRSM) and broadcasts them down the columns;
4. every rank GEMM-updates its local trailing block.

After the last stage the matrix is gathered at rank 0, the system is
solved and the HPL residual checked. Per-rank traffic statistics are
reported so the cluster timing model can be cross-checked against the
actual communication volume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.blas.gemm import gemm
from repro.blas.getrf import getrf
from repro.blas.trsm import trsm_lower_unit_left
from repro.blas.workspace import PackCache
from repro.cluster.comm import Comm, World
from repro.cluster.grid import BlockCyclic, ProcessGrid
from repro.cluster.bcast_algos import binomial_bcast, ring_bcast
from repro.cluster.panel_bcast import bcast_along_col, bcast_along_row
from repro.cluster.swap import (
    exchange_pivot_rows,
    exchange_pivot_rows_long,
    pivot_pairs_from_ipiv,
)
from repro.hpl.matgen import hpl_submatrix, hpl_system
from repro.hpl.residual import hpl_residual, residual_passes
from repro.lu.factorize import lu_solve
from repro.lu.timing import LUTiming
from repro.obs import MetricsRegistry, RunResult
from repro.parallel import TileExecutor


@dataclass
class DistributedResult(RunResult):
    """Rank-0 report of a distributed factorization and solve.

    Unlike the timing-model drivers this is a *real* computation, so
    ``time_s`` is measured wall-clock of the SPMD run and ``gflops``
    follows from the HPL operation count; ``efficiency`` is kept for API
    uniformity but reported as 0.0 — there is no meaningful hardware
    peak for a thread-simulated MPI world.
    """

    n: int
    nb: int
    p: int
    q: int
    residual: float
    passed: bool
    x: np.ndarray
    lu: np.ndarray
    ipiv: np.ndarray
    bytes_by_rank: List[int]
    total_bytes: int
    time_s: float = 0.0
    gflops: float = 0.0
    efficiency: float = 0.0
    metrics: Optional[MetricsRegistry] = None

    kind = "distributed"


class DistributedHPL:
    """HPL on a P x Q grid of simulated ranks.

    With ``use_offload=True`` every rank's local trailing update runs
    through the offload-DGEMM engine (tiles, queues, work stealing) —
    the complete multi-node hybrid system of Section V, executed
    numerically end to end.
    """

    #: Panel-broadcast algorithm choices (HPL's BCAST menu, abridged).
    BCAST_ALGOS = ("star", "ring", "binomial")
    #: Row-swap variants: ordered pairwise exchange vs the long swap.
    SWAP_ALGOS = ("pairwise", "long")

    def __init__(
        self,
        n: int,
        nb: int,
        p: int,
        q: int,
        seed: int = 42,
        use_offload: bool = False,
        bcast_algo: str = "star",
        swap_algo: str = "pairwise",
        workers: Optional[int] = None,
        pack_cache: bool = False,
    ):
        if n < 1 or nb < 1:
            raise ValueError("n and nb must be positive")
        if bcast_algo not in self.BCAST_ALGOS:
            raise ValueError(f"bcast_algo must be one of {self.BCAST_ALGOS}")
        if swap_algo not in self.SWAP_ALGOS:
            raise ValueError(f"swap_algo must be one of {self.SWAP_ALGOS}")
        self.n, self.nb, self.seed = n, nb, seed
        self.use_offload = use_offload
        self.bcast_algo = bcast_algo
        self.swap_algo = swap_algo
        # Pack-once + tile-executor substrate for every rank's local
        # trailing update. The executor is shared by all rank threads
        # (its map degrades to inline inside worker threads); each rank
        # keeps its own PackCache, and rank 0's counters are published.
        self.workers = workers
        self.pack_cache = pack_cache
        self._executor = None
        self.grid = ProcessGrid(p, q)
        self.bc = BlockCyclic(n, nb, self.grid)

    # -- the SPMD body ------------------------------------------------------------
    def _rank_main(self, comm: Comm):
        bc, grid = self.bc, self.grid
        my_row, my_col = grid.coords(comm.rank)
        rows = bc.local_rows(my_row)
        cols = bc.local_cols(my_col)
        # Local piece of the global matrix, generated independently.
        a_loc = hpl_submatrix(self.n, rows, cols, seed=self.seed)
        cache = PackCache() if self.pack_cache else None
        stage_pivots: List[np.ndarray] = []
        bcast_wall_s, bcast_calls = 0.0, 0  # per-algorithm broadcast time

        for k in range(bc.n_blocks):
            k0 = k * self.nb
            kw = min(self.nb, self.n - k0)
            owner_row = k % grid.p
            owner_col = k % grid.q
            panel_root = grid.rank_of(owner_row, owner_col)
            panel_global_cols = np.arange(k0, k0 + kw)
            my_panel_cols = np.flatnonzero(np.isin(cols, panel_global_cols))
            below = rows >= k0  # local rows in the panel's row range

            # 1. Gather the panel to the diagonal rank and factor it.
            factored_mine = None
            ipiv = None
            if my_col == owner_col:
                part = (rows[below], a_loc[np.ix_(np.flatnonzero(below), my_panel_cols)])
                parts = comm.gather(part, root=panel_root, ranks=grid.col_ranks(owner_col))
                if comm.rank == panel_root:
                    panel = np.empty((self.n - k0, kw))
                    for g_rows, block in parts:
                        panel[g_rows - k0] = block
                    ipiv = getrf(panel)
                    # Scatter factored rows back by owner.
                    for r in range(grid.p):
                        dest_rows = bc.local_rows(r)
                        mask = dest_rows >= k0
                        sel = dest_rows[mask] - k0
                        payload = (dest_rows[mask], panel[sel], ipiv)
                        if grid.rank_of(r, owner_col) == comm.rank:
                            factored_mine = payload
                        else:
                            comm.send(payload, grid.rank_of(r, owner_col), tag=500 + k)
                if factored_mine is None:
                    factored_mine = comm.recv(panel_root, tag=500 + k)
                _g_rows, block, ipiv = factored_mine
                a_loc[np.ix_(np.flatnonzero(below), my_panel_cols)] = block

            # Pivots broadcast world-wide.
            ipiv = comm.bcast(ipiv, root=panel_root)
            stage_pivots.append(np.asarray(ipiv))
            pairs = pivot_pairs_from_ipiv(k0, ipiv)

            # 2. Distributed row exchange on everything but the panel cols.
            col_mask = ~np.isin(cols, panel_global_cols)
            exchange = (
                exchange_pivot_rows_long
                if self.swap_algo == "long"
                else exchange_pivot_rows
            )
            exchange(comm, bc, a_loc, pairs, col_mask, tag_base=10_000 + 1000 * k)

            # 3a. Panel broadcast along process rows: each rank receives
            # the factored panel rows matching its own local rows.
            if my_col == owner_col:
                payload = (rows[below], a_loc[np.ix_(np.flatnonzero(below), my_panel_cols)])
            else:
                payload = None
            t_bc = time.perf_counter()
            g_rows, panel_rows = self._row_bcast(comm, payload, my_row, owner_col)
            bcast_wall_s += time.perf_counter() - t_bc
            bcast_calls += 1

            # 3b. The diagonal row solves its trailing U blocks and
            # broadcasts them down the columns.
            l11_rows = (g_rows >= k0) & (g_rows < k0 + kw)
            trail_cols_mask = cols >= k0 + kw
            if my_row == owner_row:
                l11 = panel_rows[l11_rows][np.argsort(g_rows[l11_rows])]
                u_rows_local = np.flatnonzero((rows >= k0) & (rows < k0 + kw))
                if trail_cols_mask.any():
                    u_block = a_loc[np.ix_(u_rows_local, np.flatnonzero(trail_cols_mask))]
                    trsm_lower_unit_left(l11, u_block)
                    a_loc[np.ix_(u_rows_local, np.flatnonzero(trail_cols_mask))] = u_block
                else:
                    u_block = np.empty((kw, 0))
                u_payload = u_block
            else:
                u_payload = None
            u_block = bcast_along_col(comm, grid, u_payload, owner_row)

            # 4. Local trailing update (optionally via the offload engine).
            trail_rows_mask = rows >= k0 + kw
            if trail_rows_mask.any() and trail_cols_mask.any():
                l21 = panel_rows[g_rows >= k0 + kw]
                # panel_rows are ordered like this rank's local rows, so
                # l21 aligns with the local trailing rows.
                sub = np.ix_(
                    np.flatnonzero(trail_rows_mask), np.flatnonzero(trail_cols_mask)
                )
                if self.use_offload:
                    from repro.hybrid.offload import OffloadDGEMM

                    m_t = int(trail_rows_mask.sum())
                    n_t = int(trail_cols_mask.sum())
                    c = np.ascontiguousarray(a_loc[sub])
                    OffloadDGEMM(
                        m_t,
                        n_t,
                        kt=kw,
                        tile=(max(1, m_t // 2), max(1, n_t // 2)),
                        host_assist=True,
                    ).run(-np.ascontiguousarray(l21), np.ascontiguousarray(u_block), c)
                    a_loc[sub] = c
                elif cache is not None or self._executor is not None:
                    # Pack-once + stripe substrate: the fancy-indexed
                    # region is gathered, updated in place, scattered back.
                    c = a_loc[sub]
                    gemm(
                        np.ascontiguousarray(l21),
                        u_block,
                        c,
                        alpha=-1.0,
                        beta=1.0,
                        pack_cache=cache,
                        a_key=("dist.l21", k),
                        b_key=("dist.u", k),
                        executor=self._executor,
                    )
                    a_loc[sub] = c
                    if cache is not None:
                        cache.invalidate(("dist.l21", k))
                        cache.invalidate(("dist.u", k))
                else:
                    a_loc[sub] -= l21 @ u_block

        # Gather the factored matrix at rank 0 and solve there.
        # Snapshot traffic before the result gather adds its own bytes.
        snapshot = comm.stats.bytes_sent
        bytes_by_rank = comm.gather(snapshot, root=0)
        pieces = comm.gather((rows, cols, a_loc), root=0)
        if comm.rank != 0:
            return None
        total = sum(bytes_by_rank)
        lu = np.empty((self.n, self.n))
        for g_rows, g_cols, piece in pieces:
            lu[np.ix_(g_rows, g_cols)] = piece
        ipiv_global = np.concatenate(
            [piv + i * self.nb for i, piv in enumerate(stage_pivots)]
        )
        a0, b = hpl_system(self.n, self.seed)
        x = lu_solve(lu, ipiv_global, b)
        metrics = MetricsRegistry()
        metrics.counter("comm.messages").inc(comm.stats.messages_sent)
        metrics.counter("comm.total_bytes").inc(total)
        for op in sorted(comm.stats.by_op):
            metrics.counter(f"comm.rank0.bytes.{op}").inc(comm.stats.by_op[op])
        for r, nbytes in enumerate(bytes_by_rank):
            metrics.gauge(f"comm.bytes_by_rank.{r}").set(nbytes)
        metrics.timer(f"comm.bcast.{self.bcast_algo}").add(
            bcast_wall_s, count=bcast_calls
        )
        metrics.counter("hpl.stages").inc(self.bc.n_blocks)
        if cache is not None:
            cache.publish(metrics)
        return DistributedResult(
            n=self.n,
            nb=self.nb,
            p=self.grid.p,
            q=self.grid.q,
            residual=hpl_residual(a0, x, b),
            passed=residual_passes(a0, x, b),
            x=x,
            lu=lu,
            ipiv=ipiv_global,
            bytes_by_rank=bytes_by_rank,
            total_bytes=total,
            metrics=metrics,
        )

    def _row_bcast(self, comm: Comm, payload, my_row: int, owner_col: int):
        """Panel broadcast along this rank's process row with the
        configured algorithm."""
        group = self.grid.row_ranks(my_row)
        root = self.grid.rank_of(my_row, owner_col)
        if self.bcast_algo == "ring":
            return ring_bcast(comm, payload, root, group)
        if self.bcast_algo == "binomial":
            return binomial_bcast(comm, payload, root, group)
        return comm.bcast(payload, root=root, ranks=group)

    def run(self) -> DistributedResult:
        world = World(self.grid.size)
        executor = TileExecutor(self.workers) if self.workers is not None else None
        self._executor = executor
        t0 = time.perf_counter()
        try:
            results = world.run(self._rank_main)
        finally:
            self._executor = None
        wall_s = time.perf_counter() - t0
        out: DistributedResult = results[0]
        out.time_s = wall_s
        out.gflops = LUTiming.hpl_flops(self.n) / wall_s / 1e9
        if out.metrics is not None:
            out.metrics.gauge("hpl.wall_time_s").set(wall_s)
            if executor is not None:
                executor.publish(out.metrics)
        if executor is not None:
            executor.close()
        return out
