"""Distributed HPL over the simulated MPI world — numerically real.

The full multi-node benchmark: every rank generates its own block-cyclic
piece of the global HPL matrix (using the jumpable generator, exactly as
real HPL does), then the grid factors it stage by stage:

1. the owner column gathers the stage panel to the diagonal rank, which
   factors it with partial pivoting and scatters the factored rows back
   (a gather-based panel factorization — simple, and bit-identical to
   the single-node panel, which is what lets the tests verify the
   distributed run against :func:`repro.lu.factorize.blocked_lu`);
2. the pivot pairs broadcast world-wide and every process column applies
   the distributed row exchange (:mod:`repro.cluster.swap`);
3. the factored panel broadcasts along process rows
   (:mod:`repro.cluster.panel_bcast`); the diagonal row solves its U
   blocks (DTRSM) and broadcasts them down the columns;
4. every rank GEMM-updates its local trailing block.

With ``lookahead=True`` the schedule is restructured into the paper's
Section IV pipeline: during stage *k*'s trailing update the next panel's
owner column updates **its own next-panel columns first**, factors panel
*k+1* and starts broadcasting it (pivots riding along) with non-blocking
chunked ``isend`` — then finishes the rest of its trailing update while
the broadcast drains on the background sender threads. Every other
column posts its panel ``irecv`` before updating, so by the time stage
*k+1* begins the panel has usually already landed and the broadcast
never sits on the critical path. The U broadcast is overlapped the same
way (``isend`` per column peer). The factorization is bit-for-bit
identical to the synchronous schedule — only the order of independent
work changes — and the overlap is real wall-clock, since BLAS releases
the GIL under the communication threads.

After the last stage the matrix is gathered at rank 0, the system is
solved and the HPL residual checked. Per-rank traffic statistics and
overlap accounting (exposed wait time vs. hidden drain time) are
reported so the cluster timing model can be cross-checked against the
actual communication volume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.blas.buffers import BufferPool, as_buffer_pool, matmul_into
from repro.blas.gemm import gemm
from repro.blas.getrf import getrf
from repro.blas.trsm import trsm_lower_unit_left
from repro.blas.workspace import PackCache
from repro.cluster.comm import Comm, DEFAULT_CHUNK_BYTES, RecvRequest, World
from repro.cluster.grid import BlockCyclic, ProcessGrid
from repro.cluster.bcast_algos import (
    binomial_bcast,
    ring_bcast,
    segmented_ring_bcast_nb,
)
from repro.cluster.panel_bcast import (
    ibcast_panel_finish,
    ibcast_panel_post,
    ibcast_panel_start,
)
from repro.cluster.swap import (
    exchange_pivot_rows,
    exchange_pivot_rows_long,
    pivot_pairs_from_ipiv,
)
from repro.hpl.matgen import hpl_submatrix, hpl_system
from repro.hpl.residual import hpl_residual, residual_passes
from repro.lu.factorize import lu_solve
from repro.lu.timing import LUTiming
from repro.obs import AllocProfiler, MetricsRegistry, RunResult
from repro.parallel import EXECUTOR_BACKENDS, make_executor
from repro.elastic.plan import plan_relayout
from repro.elastic.redistribute import redistribute
from repro.elastic.schedule import parse_schedule, segments, survivor_grid
from repro.resilience import (
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    LayoutHeader,
    RankCrashError,
    RetryPolicy,
)

#: Tag bases for the look-ahead panel / U broadcast streams (one tag per
#: stage keeps concurrent stages from cross-matching).
_PANEL_TAG = 7_000_000
_U_TAG = 8_000_000


@dataclass
class DistributedResult(RunResult):
    """Rank-0 report of a distributed factorization and solve.

    Unlike the timing-model drivers this is a *real* computation, so
    ``time_s`` is measured wall-clock of the SPMD run and ``gflops``
    follows from the HPL operation count; ``efficiency`` is kept for API
    uniformity but reported as 0.0 — there is no meaningful hardware
    peak for a thread-simulated MPI world.

    ``exposed_comm_s`` is the wall time rank threads spent blocked in
    receives/waits (communication on the critical path) summed over
    ranks; ``hidden_comm_s`` is the background-drain time that never
    blocked compute — the look-ahead's win.

    ``resilience`` is the recovery report of a hardened run (attempts,
    recoveries, retry/resend counters, checkpoint traffic); it stays
    ``None`` on plain runs, whose results are bit-identical to a build
    without the resilience subsystem.
    """

    n: int
    nb: int
    p: int
    q: int
    residual: float
    passed: bool
    x: np.ndarray
    lu: np.ndarray
    ipiv: np.ndarray
    bytes_by_rank: List[int]
    total_bytes: int
    time_s: float = 0.0
    gflops: float = 0.0
    efficiency: float = 0.0
    lookahead: bool = False
    bcast_algo: str = "star"
    exposed_comm_s: float = 0.0
    hidden_comm_s: float = 0.0
    metrics: Optional[MetricsRegistry] = None
    alloc: Optional[dict] = None
    resilience: Optional[dict] = None
    dtype: str = "float64"
    #: Wall seconds outside the MxP refinement (None on non-MxP runs).
    factor_time_s: Optional[float] = None
    #: Measured wall seconds of the MxP refinement (None unless mxp).
    refine_time_s: Optional[float] = None
    #: :meth:`repro.hpl.mxp.RefineReport.to_dict` of the refinement loop.
    refine: Optional[dict] = None
    #: Completed mid-run grid reconfigurations (regrid schedule cuts
    #: plus shrink-to-survivors recoveries). ``p``/``q`` above always
    #: name the *final* grid the run finished on.
    regrids: int = 0
    #: Measured wall seconds inside the block-cyclic redistribution.
    regrid_wall_s: float = 0.0
    #: Bytes the redistribution engine moved across all regrids.
    regrid_moved_bytes: int = 0

    kind = "distributed"


class DistributedHPL:
    """HPL on a P x Q grid of simulated ranks.

    With ``use_offload=True`` every rank's local trailing update runs
    through the offload-DGEMM engine (tiles, queues, work stealing) —
    the complete multi-node hybrid system of Section V, executed
    numerically end to end. With ``lookahead=True`` the stages run the
    paper's look-ahead pipeline over the non-blocking communicator:
    panel broadcasts (and pivots) overlap the trailing update.
    """

    #: Panel-broadcast algorithm choices (HPL's BCAST menu, abridged).
    #: ``ring-mod`` is the pipelined segmented ring (HPL's long bcast).
    BCAST_ALGOS = ("star", "ring", "binomial", "ring-mod")
    #: Row-swap variants: ordered pairwise exchange vs the long swap.
    SWAP_ALGOS = ("pairwise", "long")

    def __init__(
        self,
        n: int,
        nb: int,
        p: int,
        q: int,
        seed: int = 42,
        use_offload: bool = False,
        bcast_algo: str = "star",
        swap_algo: str = "pairwise",
        workers: Optional[int] = None,
        executor: str = "thread",
        pack_cache: bool = False,
        lookahead: bool = False,
        chunk_kb: Optional[float] = None,
        buffer_pool: bool = True,
        alloc_profile: bool = False,
        fault_plan: "FaultPlan | str | None" = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        retry: Optional[RetryPolicy] = None,
        max_recoveries: int = 3,
        regrid=None,
        on_rank_death: str = "restart",
        dtype: str = "float64",
        mxp: bool = False,
        refine_tol: float = 1.0,
        refine_max_iters: int = 8,
    ):
        if n < 1 or nb < 1:
            raise ValueError("n and nb must be positive")
        if dtype not in ("float64", "float32"):
            raise ValueError(f"dtype must be 'float64' or 'float32', got {dtype!r}")
        if mxp and dtype != "float32":
            raise ValueError("mxp factors in single precision: set dtype='float32'")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")
        if max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
        if bcast_algo not in self.BCAST_ALGOS:
            raise ValueError(f"bcast_algo must be one of {self.BCAST_ALGOS}")
        if swap_algo not in self.SWAP_ALGOS:
            raise ValueError(f"swap_algo must be one of {self.SWAP_ALGOS}")
        if chunk_kb is not None and chunk_kb <= 0:
            raise ValueError("chunk_kb must be positive")
        if executor not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_BACKENDS}, got {executor!r}"
            )
        self.n, self.nb, self.seed = n, nb, seed
        self.dtype = dtype
        self.np_dtype = np.float32 if dtype == "float32" else np.float64
        self.mxp = mxp
        self.refine_tol = refine_tol
        self.refine_max_iters = refine_max_iters
        self.use_offload = use_offload
        self.bcast_algo = bcast_algo
        self.swap_algo = swap_algo
        self.lookahead = bool(lookahead)
        self.chunk_bytes = (
            DEFAULT_CHUNK_BYTES if chunk_kb is None else int(chunk_kb * 1024)
        )
        # Pack-once + tile-executor substrate for every rank's local
        # trailing update. The executor is shared by all rank threads
        # (its map degrades to inline inside worker threads); each rank
        # keeps its own PackCache, and rank 0's counters are published.
        self.workers = workers
        self.executor = executor
        self.pack_cache = pack_cache
        # Buffer arena: every rank rents its kernel scratch and comm
        # staging from its own pool (bitwise identical to the allocating
        # paths); alloc_profile wraps the run in a tracemalloc span.
        self.buffer_pool = bool(buffer_pool)
        self.alloc_profile = bool(alloc_profile)
        self._executor = None
        self.grid = ProcessGrid(p, q)
        self.bc = BlockCyclic(n, nb, self.grid)
        # Resilience wiring: a fault plan (object, DSL/JSON string, or
        # path), panel-boundary checkpointing, and the reliable-channel
        # retry policy. A run is "resilient" when any of them is set —
        # plain runs keep the original wire format and result fields.
        self.fault_plan = (
            None if fault_plan is None else FaultPlan.load(fault_plan)
        )
        self._injector = (
            FaultInjector(self.fault_plan) if self.fault_plan is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.checkpoint_store = checkpoint_store
        # Elastic wiring: a regrid schedule cuts the run into segments
        # (one simulated world per grid, a block-cyclic redistribution
        # between them), and on_rank_death="shrink" lets recovery
        # continue on the survivors instead of restarting the lost
        # geometry. Both ride on the checkpoint store.
        if on_rank_death not in ("restart", "shrink"):
            raise ValueError(
                f"on_rank_death must be 'restart' or 'shrink', "
                f"got {on_rank_death!r}"
            )
        self.on_rank_death = on_rank_death
        self.regrid = parse_schedule(regrid) if regrid else ()
        if self.regrid:
            # Validates panel ranges and grid transitions eagerly.
            segments(self.bc.n_blocks, self.grid, self.regrid)
        if self.checkpoint_store is None and (
            checkpoint_every is not None or self.regrid
        ):
            self.checkpoint_store = CheckpointStore()
        self.retry = retry
        self.max_recoveries = max_recoveries
        self.resilient = (
            self._injector is not None
            or retry is not None
            or checkpoint_every is not None
            or bool(self.regrid)
        )
        self._grid0 = self.grid
        self._k_stop = self.bc.n_blocks
        self._resume_cursor: Optional[int] = None
        self._epoch = 0

    def _set_grid(self, grid: ProcessGrid) -> None:
        """Point the driver at one segment's grid (rebuilds the
        block-cyclic algebra; ``n``/``nb`` never change)."""
        self.grid = grid
        self.bc = BlockCyclic(self.n, self.nb, grid)

    def _layout(self) -> LayoutHeader:
        """The checkpoint layout header of the *current* grid."""
        return LayoutHeader(
            p=self.grid.p, q=self.grid.q, nb=self.nb, n=self.n,
            dtype=self.dtype,
        )

    # -- shared stage pieces ------------------------------------------------------
    def _factor_panel(
        self,
        comm: Comm,
        a_loc: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        k: int,
        pool: Optional[BufferPool] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather the stage-k panel to the diagonal rank, factor it with
        partial pivoting and scatter the factored rows back.

        Must be called (SPMD) by every rank of the owner column; writes
        the factored block into ``a_loc`` and returns
        ``(global_rows, factored_block, ipiv)`` for this rank.
        """
        bc, grid = self.bc, self.grid
        k0 = k * self.nb
        kw = min(self.nb, self.n - k0)
        owner_row = k % grid.p
        owner_col = k % grid.q
        panel_root = grid.rank_of(owner_row, owner_col)
        panel_global_cols = np.arange(k0, k0 + kw)
        my_panel_cols = np.flatnonzero(np.isin(cols, panel_global_cols))
        below = rows >= k0

        part = (rows[below], a_loc[np.ix_(np.flatnonzero(below), my_panel_cols)])
        parts = comm.gather(part, root=panel_root, ranks=grid.col_ranks(owner_col))
        factored_mine = None
        if comm.rank == panel_root:
            panel = np.empty((self.n - k0, kw), dtype=a_loc.dtype)
            for g_rows, block in parts:
                panel[g_rows - k0] = block
            ipiv = getrf(panel, pool=pool)
            # Scatter factored rows back by owner.
            for r in range(grid.p):
                dest_rows = bc.local_rows(r)
                mask = dest_rows >= k0
                sel = dest_rows[mask] - k0
                payload = (dest_rows[mask], panel[sel], ipiv)
                if grid.rank_of(r, owner_col) == comm.rank:
                    factored_mine = payload
                else:
                    comm.send(payload, grid.rank_of(r, owner_col), tag=500 + k)
        if factored_mine is None:
            factored_mine = comm.recv(panel_root, tag=500 + k)
        g_rows, block, ipiv = factored_mine
        a_loc[np.ix_(np.flatnonzero(below), my_panel_cols)] = block
        return g_rows, block, ipiv

    def _local_update(
        self,
        a_loc: np.ndarray,
        sub_rows: np.ndarray,
        sub_cols: np.ndarray,
        l21: np.ndarray,
        u_block: np.ndarray,
        cache: Optional[PackCache],
        k: int,
        u_key: tuple,
        pool: Optional[BufferPool] = None,
    ) -> None:
        """GEMM-update ``a_loc[sub_rows, sub_cols] -= l21 @ u_block``
        through the configured substrate (offload engine, pack-once +
        tile executor, or plain BLAS). ``pool`` rents the staging and
        product workspaces from the rank's arena; the call shapes and
        values are unchanged, so pooled runs stay bitwise identical."""
        sub = np.ix_(sub_rows, sub_cols)
        if self.use_offload:
            from repro.hybrid.offload import OffloadDGEMM

            m_t, n_t = sub_rows.size, sub_cols.size
            c = np.ascontiguousarray(a_loc[sub])
            if pool is not None:
                neg_l21 = pool.checkout(l21.shape, l21.dtype, key="dist.l21neg")
                np.negative(l21, out=neg_l21)
            else:
                neg_l21 = -np.ascontiguousarray(l21)
            try:
                OffloadDGEMM(
                    m_t,
                    n_t,
                    kt=l21.shape[1],
                    tile=(max(1, m_t // 2), max(1, n_t // 2)),
                    host_assist=True,
                    buffer_pool=pool,
                ).run(neg_l21, np.ascontiguousarray(u_block), c)
            finally:
                if pool is not None:
                    pool.release(neg_l21)
            a_loc[sub] = c
        elif cache is not None or self._executor is not None:
            # Pack-once + stripe substrate: the fancy-indexed region is
            # gathered, updated in place, scattered back.
            c = a_loc[sub]
            gemm(
                np.ascontiguousarray(l21),
                u_block,
                c,
                alpha=-1.0,
                beta=1.0,
                pack_cache=cache,
                a_key=("dist.l21", k),
                b_key=u_key,
                executor=self._executor,
                pool=pool,
            )
            a_loc[sub] = c
        elif pool is not None:
            # Same gather / update-in-place / scatter the fancy-indexed
            # in-place subtraction performs, with the product rented.
            c = a_loc[sub]
            with pool.rent(c.shape, c.dtype, key="dist.trailing") as w:
                matmul_into(pool, l21, u_block, w, key="dist.trailing")
                np.subtract(c, w, out=c)
            a_loc[sub] = c
        else:
            a_loc[sub] -= l21 @ u_block

    def _split_trailing_cols(
        self, cols: np.ndarray, trail_cols_mask: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Split this rank's trailing columns of stage ``k`` into the
        next panel's columns (updated first under look-ahead) and the
        rest. ``early`` is non-empty only on the column owning panel
        k+1; at the last stage everything is ``rest``. Both schedules
        route through this so their GEMM call shapes match exactly.
        """
        k0 = k * self.nb
        kw = min(self.nb, self.n - k0)
        k1 = k0 + kw
        kw1 = min(self.nb, self.n - k1)
        trail_cols = np.flatnonzero(trail_cols_mask)
        early = np.array([], dtype=np.intp)
        if k + 1 < self.bc.n_blocks:
            trail_globals = cols[trail_cols_mask]
            early = np.flatnonzero((trail_globals >= k1) & (trail_globals < k1 + kw1))
        if early.size:
            rest = np.setdiff1d(np.arange(trail_cols.size), early, assume_unique=True)
        else:
            rest = np.arange(trail_cols.size)
        return early, rest

    # -- checkpoint / restore hooks -------------------------------------------------
    def _panel_boundary(
        self,
        comm: Comm,
        k: int,
        k_start: int,
        a_loc: np.ndarray,
        stage_pivots: List[np.ndarray],
        panel_state=None,
    ) -> None:
        """The resilience hook at the top of stage ``k``: save a
        checkpoint when the cadence says so (skipping stage 0 and the
        stage just restored), then give the fault injector its chance
        to kill this rank.

        A checkpoint at cursor ``k`` holds everything stage ``k`` needs:
        the local tiles with every stage ``< k`` applied, the
        accumulated pivots, the progress cursor/epoch, and (look-ahead
        owner columns) the already-factored stage-``k`` panel whose
        broadcast was in flight.
        """
        every = self.checkpoint_every
        if every and k > 0 and k % every == 0 and k != k_start:
            self._save_cut(comm, k, a_loc, stage_pivots, panel_state)
        if self._injector is not None:
            self._injector.crash_point(comm.rank, k)

    def _save_cut(
        self,
        comm: Comm,
        k: int,
        a_loc: np.ndarray,
        stage_pivots: List[np.ndarray],
        panel_state=None,
    ) -> None:
        """Write this rank's blob at cursor ``k`` under the current
        grid's layout header — the cadence checkpoints and the forced
        regrid-cut checkpoints share this one serialisation."""
        state = {
            "epoch": self._epoch,
            "cursor": k,
            "a_loc": a_loc,
            "pivots": [np.asarray(p) for p in stage_pivots],
        }
        if panel_state is not None:
            g_rows, block, ipiv = panel_state
            state["panel_g_rows"] = np.asarray(g_rows)
            state["panel_block"] = np.asarray(block)
            state["panel_ipiv"] = np.asarray(ipiv)
        self.checkpoint_store.save(comm.rank, k, state, layout=self._layout())

    def _restore(self, comm: Comm, a_loc: np.ndarray):
        """Roll this rank back to the resume cursor (no-op on a fresh
        start). Returns ``(k_start, stage_pivots, panel_state)``.

        The blob's recorded layout must match this run's current grid —
        a mismatch (resuming a ``2x4`` cut on a ``2x2`` run without
        redistribution) raises
        :class:`~repro.resilience.CheckpointLayoutError` instead of a
        shape crash deep in the stage loop.
        """
        cursor = self._resume_cursor
        if cursor is None:
            return 0, [], None
        state = self.checkpoint_store.load(
            comm.rank, cursor, expect_layout=self._layout()
        )
        np.copyto(a_loc, state["a_loc"])
        pivots = [np.asarray(p) for p in state["pivots"]]
        panel_state = None
        if "panel_block" in state:
            panel_state = (
                np.asarray(state["panel_g_rows"]),
                np.asarray(state["panel_block"]),
                np.asarray(state["panel_ipiv"]),
            )
        return cursor, pivots, panel_state

    # -- the synchronous SPMD body ------------------------------------------------
    def _rank_main(self, comm: Comm):
        bc, grid = self.bc, self.grid
        my_row, my_col = grid.coords(comm.rank)
        rows = bc.local_rows(my_row)
        cols = bc.local_cols(my_col)
        # Local piece of the global matrix, generated independently (at
        # the working precision — each rank rounds the same DP stream).
        a_loc = hpl_submatrix(self.n, rows, cols, seed=self.seed,
                              dtype=self.np_dtype)
        cache = PackCache() if self.pack_cache else None
        pool = as_buffer_pool(self.buffer_pool)  # per-rank arena
        k_start, stage_pivots, _saved_panel = self._restore(comm, a_loc)
        bcast_wall_s, bcast_calls = 0.0, 0  # per-algorithm broadcast time

        for k in range(k_start, self._k_stop):
            self._panel_boundary(comm, k, k_start, a_loc, stage_pivots)
            k0 = k * self.nb
            kw = min(self.nb, self.n - k0)
            owner_row = k % grid.p
            owner_col = k % grid.q
            panel_root = grid.rank_of(owner_row, owner_col)
            panel_global_cols = np.arange(k0, k0 + kw)
            my_panel_cols = np.flatnonzero(np.isin(cols, panel_global_cols))
            below = rows >= k0  # local rows in the panel's row range

            # 1. Gather the panel to the diagonal rank and factor it.
            ipiv = None
            if my_col == owner_col:
                _g_rows, _block, ipiv = self._factor_panel(
                    comm, a_loc, rows, cols, k, pool=pool
                )

            # Pivots broadcast world-wide.
            ipiv = comm.bcast(ipiv, root=panel_root)
            stage_pivots.append(np.asarray(ipiv))
            pairs = pivot_pairs_from_ipiv(k0, ipiv)

            # 2. Distributed row exchange on everything but the panel cols.
            col_mask = ~np.isin(cols, panel_global_cols)
            exchange = (
                exchange_pivot_rows_long
                if self.swap_algo == "long"
                else exchange_pivot_rows
            )
            exchange(comm, bc, a_loc, pairs, col_mask, tag_base=10_000 + 1000 * k)

            # 3a. Panel broadcast along process rows: each rank receives
            # the factored panel rows matching its own local rows.
            if my_col == owner_col:
                payload = (rows[below], a_loc[np.ix_(np.flatnonzero(below), my_panel_cols)])
            else:
                payload = None
            t_bc = time.perf_counter()
            g_rows, panel_rows = self._row_bcast(comm, payload, my_row, owner_col)
            bcast_wall_s += time.perf_counter() - t_bc
            bcast_calls += 1

            # 3b. The diagonal row solves its trailing U blocks and
            # broadcasts them down the columns.
            l11_rows = (g_rows >= k0) & (g_rows < k0 + kw)
            trail_cols_mask = cols >= k0 + kw
            if my_row == owner_row:
                l11 = panel_rows[l11_rows][np.argsort(g_rows[l11_rows])]
                u_rows_local = np.flatnonzero((rows >= k0) & (rows < k0 + kw))
                if trail_cols_mask.any():
                    u_block = a_loc[np.ix_(u_rows_local, np.flatnonzero(trail_cols_mask))]
                    trsm_lower_unit_left(l11, u_block, pool=pool)
                    a_loc[np.ix_(u_rows_local, np.flatnonzero(trail_cols_mask))] = u_block
                else:
                    u_block = np.empty((kw, 0), dtype=a_loc.dtype)
                u_payload = u_block
            else:
                u_payload = None
            u_block = comm.bcast(
                u_payload,
                root=grid.rank_of(owner_row, my_col),
                ranks=grid.col_ranks(my_col),
            )

            # 4. Local trailing update (optionally via the offload
            # engine). The update is issued as the same early/rest
            # column split the look-ahead schedule uses — BLAS results
            # depend on the operand shapes, so sharing the exact call
            # sequence is what keeps the two schedules bit-for-bit
            # identical.
            trail_rows = np.flatnonzero(rows >= k0 + kw)
            trail_cols = np.flatnonzero(trail_cols_mask)
            # panel_rows are ordered like this rank's local rows, so
            # l21 aligns with the local trailing rows.
            l21 = panel_rows[g_rows >= k0 + kw]
            early_sel, rest_sel = self._split_trailing_cols(cols, trail_cols_mask, k)
            if trail_rows.size and early_sel.size:
                self._local_update(
                    a_loc, trail_rows, trail_cols[early_sel], l21,
                    u_block[:, early_sel], cache, k, ("dist.u", k, "early"),
                    pool=pool,
                )
            if trail_rows.size and rest_sel.size:
                self._local_update(
                    a_loc, trail_rows, trail_cols[rest_sel], l21,
                    u_block[:, rest_sel], cache, k, ("dist.u", k, "rest"),
                    pool=pool,
                )
            if cache is not None:
                cache.invalidate(("dist.l21", k))
                cache.invalidate(("dist.u", k, "early"))
                cache.invalidate(("dist.u", k, "rest"))

        if self._k_stop < bc.n_blocks:
            # Segment boundary: force a consistent cut at the regrid
            # panel; the redistribution engine rewrites it for the next
            # grid and run() resumes from there.
            self._save_cut(comm, self._k_stop, a_loc, stage_pivots)
            return None

        return self._epilogue(
            comm, a_loc, rows, cols, stage_pivots, cache, bcast_wall_s,
            bcast_calls, [], pool=pool,
        )

    # -- the look-ahead SPMD body --------------------------------------------------
    def _rank_main_lookahead(self, comm: Comm):
        bc, grid = self.bc, self.grid
        my_row, my_col = grid.coords(comm.rank)
        rows = bc.local_rows(my_row)
        cols = bc.local_cols(my_col)
        a_loc = hpl_submatrix(self.n, rows, cols, seed=self.seed,
                              dtype=self.np_dtype)
        cache = PackCache() if self.pack_cache else None
        pool = as_buffer_pool(self.buffer_pool)  # per-rank arena
        k_start, stage_pivots, saved_panel = self._restore(comm, a_loc)
        nstages = bc.n_blocks
        algo = self.bcast_algo
        chunk = self.chunk_bytes
        send_reqs: List[Any] = []
        pending: Optional[RecvRequest] = None
        panel_state = None  # (g_rows, block, ipiv) on owner-column ranks
        track = comm.rank == 0  # rank 0 records per-stage overlap deltas
        stage_overlap: List[Tuple[float, float]] = []

        # The first stage has nothing to hide behind: factor its panel
        # (on a restore: reuse the checkpointed, already-factored panel
        # whose broadcast was in flight at the cut) and launch the
        # broadcast up front.
        first_owner_col = k_start % grid.q
        if my_col == first_owner_col:
            if k_start and saved_panel is None:
                raise RuntimeError(
                    f"rank {comm.rank}: checkpoint at cursor {k_start} is "
                    "missing the in-flight panel state"
                )
            panel_state = (
                saved_panel
                if saved_panel is not None
                else self._factor_panel(comm, a_loc, rows, cols, k_start, pool=pool)
            )
            send_reqs += ibcast_panel_start(
                comm, grid, panel_state, first_owner_col, _PANEL_TAG + k_start,
                algo=algo, chunk_bytes=chunk,
            )
        else:
            pending = ibcast_panel_post(
                comm, grid, first_owner_col, _PANEL_TAG + k_start, algo=algo
            )

        for k in range(k_start, self._k_stop):
            k0 = k * self.nb
            kw = min(self.nb, self.n - k0)
            owner_row = k % grid.p
            owner_col = k % grid.q
            self._panel_boundary(
                comm, k, k_start, a_loc, stage_pivots,
                panel_state=panel_state if my_col == owner_col else None,
            )
            snap0 = comm.stats.overlap_snapshot() if track else None

            # 1. Collect the stage panel (+ pivots, riding along) that
            # started broadcasting during the previous stage.
            if my_col == owner_col:
                g_rows, panel_rows, ipiv = panel_state
            else:
                (g_rows, panel_rows, ipiv), fwd = ibcast_panel_finish(
                    comm, grid, pending, owner_col, _PANEL_TAG + k, algo=algo, chunk_bytes=chunk
                )
                send_reqs += fwd
            stage_pivots.append(np.asarray(ipiv))
            pairs = pivot_pairs_from_ipiv(k0, ipiv)

            # 2. Distributed row exchange on everything but the panel cols.
            panel_global_cols = np.arange(k0, k0 + kw)
            col_mask = ~np.isin(cols, panel_global_cols)
            exchange = (
                exchange_pivot_rows_long
                if self.swap_algo == "long"
                else exchange_pivot_rows
            )
            exchange(comm, bc, a_loc, pairs, col_mask, tag_base=10_000 + 1000 * k)

            # 3. U solve on the diagonal row; the U broadcast drains via
            # isend behind the sender's own trailing update.
            l11_rows = (g_rows >= k0) & (g_rows < k0 + kw)
            trail_cols_mask = cols >= k0 + kw
            if my_row == owner_row:
                l11 = panel_rows[l11_rows][np.argsort(g_rows[l11_rows])]
                u_rows_local = np.flatnonzero((rows >= k0) & (rows < k0 + kw))
                if trail_cols_mask.any():
                    u_block = a_loc[np.ix_(u_rows_local, np.flatnonzero(trail_cols_mask))]
                    trsm_lower_unit_left(l11, u_block, pool=pool)
                    a_loc[np.ix_(u_rows_local, np.flatnonzero(trail_cols_mask))] = u_block
                else:
                    u_block = np.empty((kw, 0), dtype=a_loc.dtype)
                for peer in grid.col_ranks(my_col):
                    if peer != comm.rank:
                        send_reqs.append(
                            comm.isend(u_block, peer, tag=_U_TAG + k, chunk_bytes=chunk, op="bcast")
                        )
            else:
                u_block = comm.recv(grid.rank_of(owner_row, my_col), tag=_U_TAG + k)

            # 4. Trailing update with look-ahead: the next panel's
            # columns go first, panel k+1 is factored and its broadcast
            # starts, then the rest of the update hides the drain.
            trail_rows = np.flatnonzero(rows >= k0 + kw)
            trail_cols = np.flatnonzero(trail_cols_mask)
            l21 = panel_rows[g_rows >= k0 + kw]
            have_next = k + 1 < nstages
            next_owner_col = (k + 1) % grid.q
            early_sel, rest_sel = self._split_trailing_cols(cols, trail_cols_mask, k)
            if have_next and my_col == next_owner_col:
                if trail_rows.size and early_sel.size:
                    self._local_update(
                        a_loc,
                        trail_rows,
                        trail_cols[early_sel],
                        l21,
                        u_block[:, early_sel],
                        cache,
                        k,
                        ("dist.u", k, "early"),
                        pool=pool,
                    )
                panel_state = self._factor_panel(
                    comm, a_loc, rows, cols, k + 1, pool=pool
                )
                send_reqs += ibcast_panel_start(
                    comm, grid, panel_state, next_owner_col, _PANEL_TAG + k + 1,
                    algo=algo, chunk_bytes=chunk,
                )
            elif have_next:
                pending = ibcast_panel_post(
                    comm, grid, next_owner_col, _PANEL_TAG + k + 1, algo=algo
                )

            if trail_rows.size and rest_sel.size:
                self._local_update(
                    a_loc,
                    trail_rows,
                    trail_cols[rest_sel],
                    l21,
                    u_block[:, rest_sel],
                    cache,
                    k,
                    ("dist.u", k, "rest"),
                    pool=pool,
                )
            if cache is not None:
                cache.invalidate(("dist.l21", k))
                cache.invalidate(("dist.u", k, "early"))
                cache.invalidate(("dist.u", k, "rest"))

            # Settle completed sends so hidden time accrues per stage.
            send_reqs = [r for r in send_reqs if not r.test()]
            if track:
                snap1 = comm.stats.overlap_snapshot()
                stage_overlap.append(
                    (
                        snap1["hidden_s"] - snap0["hidden_s"],
                        snap1["wait_s"] - snap0["wait_s"],
                    )
                )

        comm.waitall(send_reqs)

        if self._k_stop < nstages:
            # Segment boundary. The look-ahead already factored panel
            # ``k_stop`` (during stage ``k_stop - 1``) and wrote it back
            # into ``a_loc``, so the cut carries the in-flight panel
            # state exactly like a cadence checkpoint would.
            self._save_cut(
                comm, self._k_stop, a_loc, stage_pivots,
                panel_state=(
                    panel_state
                    if my_col == self._k_stop % grid.q
                    else None
                ),
            )
            return None

        return self._epilogue(
            comm, a_loc, rows, cols, stage_pivots, cache, 0.0, 0, stage_overlap,
            pool=pool,
        )

    # -- epilogue: gather, solve, report ------------------------------------------
    def _epilogue(
        self,
        comm: Comm,
        a_loc: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        stage_pivots: List[np.ndarray],
        cache: Optional[PackCache],
        bcast_wall_s: float,
        bcast_calls: int,
        stage_overlap: List[Tuple[float, float]],
        pool: Optional[BufferPool] = None,
    ):
        # Gather the factored matrix at rank 0 and solve there.
        # Snapshot traffic before the result gather adds its own bytes.
        snapshot = comm.stats.bytes_sent
        overlap = comm.stats.overlap_snapshot()
        per_rank = comm.gather((snapshot, overlap), root=0)
        pieces = comm.gather((rows, cols, a_loc), root=0)
        if comm.rank != 0:
            return None
        bytes_by_rank = [b for b, _o in per_rank]
        total = sum(bytes_by_rank)
        lu = np.empty((self.n, self.n), dtype=self.np_dtype)
        for g_rows, g_cols, piece in pieces:
            lu[np.ix_(g_rows, g_cols)] = piece
        ipiv_global = np.concatenate(
            [piv + i * self.nb for i, piv in enumerate(stage_pivots)]
        )
        refine_report = None
        if self.mxp:
            # Rank 0 refines the SP factors against the DP ground truth,
            # so the distributed MxP run faces the standard DP check.
            from repro.hpl.mxp import refine_to_double

            a0, b = hpl_system(self.n, self.seed)
            x, refine_report = refine_to_double(
                a0, b, lu, ipiv_global,
                tol=self.refine_tol,
                max_iters=self.refine_max_iters,
                pool=pool,
                fallback_nb=self.nb,
                fallback_workers=self._executor,
            )
        else:
            a0, b = hpl_system(self.n, self.seed, dtype=self.np_dtype)
            x = lu_solve(lu, ipiv_global, b, pool=pool)
        eps_dtype = np.float64 if self.mxp else self.np_dtype
        metrics = MetricsRegistry()
        metrics.counter("comm.messages").inc(comm.stats.messages_sent)
        metrics.counter("comm.total_bytes").inc(total)
        for op in sorted(comm.stats.by_op):
            metrics.counter(f"comm.rank0.bytes.{op}").inc(comm.stats.by_op[op])
        # Send-side staging split: pooled (reused) vs freshly copied.
        metrics.counter("comm.rank0.staged_bytes").inc(comm.stats.staged_bytes)
        metrics.counter("comm.rank0.copied_bytes").inc(comm.stats.copied_bytes)
        if comm.pool is not None:
            comm.pool.publish(metrics)
        if pool is not None:
            pool.publish(metrics)
        for r, nbytes in enumerate(bytes_by_rank):
            metrics.gauge(f"comm.bytes_by_rank.{r}").set(nbytes)
        if bcast_calls:
            metrics.timer(f"comm.bcast.{self.bcast_algo}").add(
                bcast_wall_s, count=bcast_calls
            )
        # Overlap accounting, summed across ranks: exposed wait is the
        # communication on rank critical paths; hidden is drain time the
        # background senders absorbed while compute proceeded.
        wait_total = sum(o["wait_s"] for _b, o in per_rank)
        drain_total = sum(o["drain_s"] for _b, o in per_rank)
        hidden_total = sum(o["hidden_s"] for _b, o in per_rank)
        metrics.gauge("comm.overlap.wait_s").set(wait_total)
        metrics.gauge("comm.overlap.drain_s").set(drain_total)
        metrics.gauge("comm.overlap.hidden_s").set(hidden_total)
        for hidden_d, wait_d in stage_overlap:
            metrics.timer("comm.overlap.stage_hidden_s").add(max(0.0, hidden_d))
            metrics.timer("comm.overlap.stage_wait_s").add(max(0.0, wait_d))
        metrics.counter("hpl.stages").inc(self.bc.n_blocks)
        if cache is not None:
            cache.publish(metrics)
        if refine_report is not None:
            metrics.gauge("hpl.refine_time_s").set(refine_report.refine_wall_s)
            metrics.gauge("hpl.refine_iterations").set(refine_report.iterations)
        return DistributedResult(
            n=self.n,
            nb=self.nb,
            p=self.grid.p,
            q=self.grid.q,
            residual=hpl_residual(a0, x, b, eps_dtype=eps_dtype),
            passed=residual_passes(a0, x, b, eps_dtype=eps_dtype),
            x=x,
            lu=lu,
            ipiv=ipiv_global,
            bytes_by_rank=bytes_by_rank,
            total_bytes=total,
            lookahead=self.lookahead,
            bcast_algo=self.bcast_algo,
            exposed_comm_s=wait_total,
            hidden_comm_s=hidden_total,
            metrics=metrics,
            dtype=self.dtype,
            refine_time_s=(refine_report.refine_wall_s
                           if refine_report is not None else None),
            refine=(refine_report.to_dict()
                    if refine_report is not None else None),
        )

    def _row_bcast(self, comm: Comm, payload, my_row: int, owner_col: int):
        """Panel broadcast along this rank's process row with the
        configured algorithm."""
        group = self.grid.row_ranks(my_row)
        root = self.grid.rank_of(my_row, owner_col)
        if self.bcast_algo == "ring":
            return ring_bcast(comm, payload, root, group)
        if self.bcast_algo == "binomial":
            return binomial_bcast(comm, payload, root, group)
        if self.bcast_algo == "ring-mod":
            segments = 1
            if payload is not None:
                segments = max(1, -(-payload[1].nbytes // self.chunk_bytes))
            return segmented_ring_bcast_nb(
                comm, payload, root, group, segments=segments
            )
        return comm.bcast(payload, root=root, ranks=group)

    def _harvest_resilience(self, world: World, totals: dict) -> None:
        """Accumulate every rank's reliable-channel counters from one
        (possibly failed) attempt into the run totals."""
        for comm in world.comms:
            snap = comm.rstats.snapshot()
            for key in (
                "retries",
                "resend_requests",
                "resends",
                "corruption_detected",
                "duplicates_dropped",
            ):
                totals[key] = totals.get(key, 0) + snap[key]
            hist = totals.setdefault("retry_histogram", {})
            for attempt, count in snap["retry_histogram"].items():
                hist[attempt] = hist.get(attempt, 0) + count

    def _resilience_report(
        self, attempts: int, recoveries: int, totals: dict
    ) -> dict:
        """The run's ``resilience`` block: recovery and retry counters
        plus fault-injection and checkpoint accounting."""
        report = {"attempts": attempts, "recoveries": recoveries}
        report.update(totals)
        report.setdefault("retry_histogram", {})
        if self._injector is not None:
            report["faults_injected"] = self._injector.fired_summary()
        if self.checkpoint_store is not None:
            report.update(self.checkpoint_store.stats.snapshot())
        return report

    def _publish_resilience(self, metrics: MetricsRegistry, report: dict) -> None:
        """Mirror the resilience report into the metrics registry."""
        for key in (
            "attempts",
            "recoveries",
            "shrinks",
            "retries",
            "resend_requests",
            "resends",
            "corruption_detected",
            "duplicates_dropped",
            "checkpoints",
            "checkpoint_bytes",
            "restores",
            "restored_bytes",
        ):
            if key in report:
                metrics.counter(f"resilience.{key}").inc(report[key])
        for attempt in sorted(report["retry_histogram"]):
            metrics.counter(f"resilience.retry_histogram.{attempt}").inc(
                report["retry_histogram"][attempt]
            )
        if report.get("checkpoints"):
            metrics.timer("resilience.checkpoint_time_s").add(
                report["checkpoint_time_s"], count=report["checkpoints"]
            )

    def run(self) -> DistributedResult:
        # A pool is built when a width was asked for, or whenever the
        # process backend was picked (its whole point is the pool).
        executor = (
            make_executor(self.executor, self.workers)
            if self.workers is not None or self.executor != "thread"
            else None
        )
        self._executor = executor
        body = self._rank_main_lookahead if self.lookahead else self._rank_main
        profiler = AllocProfiler(enabled=self.alloc_profile)
        totals: dict = {}
        attempts = 0
        recoveries = 0
        regrids = 0
        regrid_wall_s = 0.0
        regrid_moved = 0
        self._resume_cursor = None
        spans = list(segments(self.bc.n_blocks, self._grid0, self.regrid))
        seg = 0
        t0 = time.perf_counter()
        try:
            with profiler.span("dist.run"):
                # Outer loop over regrid segments (one world per grid)
                # doubling as the rollback-recovery loop: a rank crash
                # rolls every rank back to the newest complete
                # checkpoint and re-runs on a fresh world — on the same
                # grid, or (``on_rank_death="shrink"``) on a smaller one
                # fitted to the survivors; the surviving faults (already
                # consumed by the one-shot injector) cannot re-fire.
                while True:
                    attempts += 1
                    self._epoch = attempts
                    grid, _seg_start, k_stop = spans[seg]
                    self._set_grid(grid)
                    self._k_stop = k_stop
                    world = World(
                        self.grid.size,
                        buffer_pool=self.buffer_pool,
                        injector=self._injector,
                        retry=self.retry,
                    )
                    try:
                        results = world.run(body)
                        self._harvest_resilience(world, totals)
                        if k_stop >= self.bc.n_blocks:
                            break
                        # Segment boundary: rewrite the forced cut for
                        # the next grid and resume from it there.
                        next_grid = spans[seg + 1][0]
                        plan = plan_relayout(
                            self.n, self.nb, self.grid, next_grid,
                            dtype=self.dtype,
                        )
                        stats = redistribute(
                            self.checkpoint_store, plan, k_stop,
                            chunk_bytes=self.chunk_bytes,
                            buffer_pool=self.buffer_pool,
                        )
                        regrids += 1
                        regrid_wall_s += stats["wall_s"]
                        regrid_moved += int(stats["moved_bytes"])
                        self._resume_cursor = k_stop
                        seg += 1
                    except RankCrashError:
                        self._harvest_resilience(world, totals)
                        recoveries += 1
                        if recoveries > self.max_recoveries:
                            raise
                        store = self.checkpoint_store
                        survivors = self.grid.size - len(world.crashed_ranks())
                        if (
                            self.on_rank_death == "shrink"
                            and store is not None
                            and 1 <= survivors < self.grid.size
                        ):
                            # No spare ranks: refit the segment onto the
                            # survivors. With a complete cut, carry the
                            # work over; without one, restart the
                            # segment from scratch on the smaller grid.
                            new_grid = survivor_grid(survivors)
                            cut = store.latest_complete(self.grid.size)
                            if cut is not None:
                                plan = plan_relayout(
                                    self.n, self.nb, self.grid, new_grid,
                                    dtype=self.dtype,
                                )
                                stats = redistribute(
                                    store, plan, cut,
                                    chunk_bytes=self.chunk_bytes,
                                    buffer_pool=self.buffer_pool,
                                )
                                regrids += 1
                                regrid_wall_s += stats["wall_s"]
                                regrid_moved += int(stats["moved_bytes"])
                            self._resume_cursor = cut
                            totals["shrinks"] = totals.get("shrinks", 0) + 1
                            spans[seg] = (
                                new_grid,
                                0 if cut is None else cut,
                                k_stop,
                            )
                        else:
                            if store is None:
                                raise
                            # Newest cursor every rank checkpointed. A
                            # crash can land before the surviving ranks
                            # reach that boundary (no complete cut yet)
                            # — then the rollback target is the initial
                            # state (None).
                            self._resume_cursor = store.latest_complete(
                                self.grid.size
                            )
                    finally:
                        # The driver's error path: stop sender threads,
                        # cancel partial transfers, drain the mailboxes.
                        world.close()
        finally:
            self._executor = None
            profiler.close()
        wall_s = time.perf_counter() - t0
        out: DistributedResult = results[0]
        out.time_s = wall_s
        if out.refine_time_s is not None:
            out.factor_time_s = max(0.0, wall_s - out.refine_time_s)
        out.gflops = LUTiming.hpl_flops(self.n) / wall_s / 1e9
        out.alloc = profiler.to_dict()
        out.regrids = regrids
        out.regrid_wall_s = regrid_wall_s
        out.regrid_moved_bytes = regrid_moved
        if self.resilient:
            out.resilience = self._resilience_report(attempts, recoveries, totals)
        if out.metrics is not None:
            out.metrics.gauge("hpl.wall_time_s").set(wall_s)
            profiler.publish(out.metrics)
            if executor is not None:
                executor.publish(out.metrics)
            if out.resilience is not None:
                self._publish_resilience(out.metrics, out.resilience)
            if regrids:
                out.metrics.counter("elastic.regrids").inc(regrids)
                out.metrics.gauge("elastic.regrid_wall_s").set(regrid_wall_s)
                out.metrics.counter("elastic.regrid_moved_bytes").inc(
                    regrid_moved
                )
        if executor is not None:
            executor.close()
        return out
