"""Multi-node substrate: simulated MPI, process grids, distributed HPL.

The paper's cluster runs use MPI over single-rail FDR InfiniBand
(Table III: up to a 10 x 10 process grid / 100 nodes). This package
provides the in-process stand-in:

* :mod:`repro.cluster.comm` — a thread-based message-passing world with
  mpi4py-style point-to-point and collective operations carrying real
  NumPy payloads (blocking and non-blocking: ``isend``/``irecv`` with
  Request handles and chunked transfers), plus per-rank traffic and
  overlap accounting;
* :mod:`repro.cluster.grid` — the P x Q process grid and 2-D
  block-cyclic distribution maps HPL uses;
* :mod:`repro.cluster.panel_bcast` — panel broadcast along process rows;
* :mod:`repro.cluster.swap` — distributed pivot row exchange;
* :mod:`repro.cluster.hpl_mpi` — the distributed LU/HPL: numerically
  real, verified against the single-node factorization, with traffic
  statistics that feed the network timing model, and an optional
  look-ahead schedule that overlaps panel broadcast with the trailing
  update (bitwise-identical results).
"""

from repro.cluster.comm import (
    World,
    Comm,
    CommStats,
    CommError,
    CommTimeout,
    CommCorruption,
    RankDeadError,
    Request,
    SendRequest,
    RecvRequest,
    waitall,
)
from repro.cluster.grid import ProcessGrid, BlockCyclic
from repro.cluster.panel_bcast import (
    bcast_along_row,
    bcast_along_col,
    ibcast_panel_start,
    ibcast_panel_post,
    ibcast_panel_finish,
)
from repro.cluster.swap import (
    exchange_pivot_rows,
    exchange_pivot_rows_long,
    resolve_final_sources,
)
from repro.cluster.bcast_algos import (
    ring_bcast,
    binomial_bcast,
    segmented_ring_bcast,
    segmented_ring_bcast_nb,
    bcast_time_model,
)
from repro.cluster.hpl_mpi import DistributedHPL, DistributedResult
from repro.cluster.native_cluster import NativeClusterHPL, NativeClusterResult

__all__ = [
    "World",
    "Comm",
    "CommStats",
    "CommError",
    "CommTimeout",
    "CommCorruption",
    "RankDeadError",
    "Request",
    "SendRequest",
    "RecvRequest",
    "waitall",
    "ProcessGrid",
    "BlockCyclic",
    "bcast_along_row",
    "bcast_along_col",
    "ibcast_panel_start",
    "ibcast_panel_post",
    "ibcast_panel_finish",
    "exchange_pivot_rows",
    "exchange_pivot_rows_long",
    "resolve_final_sources",
    "ring_bcast",
    "binomial_bcast",
    "segmented_ring_bcast",
    "segmented_ring_bcast_nb",
    "bcast_time_model",
    "DistributedHPL",
    "DistributedResult",
    "NativeClusterHPL",
    "NativeClusterResult",
]
