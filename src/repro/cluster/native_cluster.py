"""Fully-native multi-node Linpack — the paper's future work (§VII).

"Our fully native 79% efficient single-node Linpack implementation on
Knights Corner is a first step in the direction of running the Linpack
directly on a cluster of Knights Corners, while CPU cores are put into a
deep sleep state to significantly reduce their energy."

This driver models exactly that system: a P x Q grid of Knights Corner
cards holding the block-cyclic matrix in their own GDDR and running
every kernel natively — panel factorization (the weak point: the
in-order cores are several times slower on it than the host), swaps,
DTRSM and the trailing update at native DGEMM rates. The cards
communicate over InfiniBand *through* the PCIe link of their sleeping
hosts, so the effective network bandwidth is the minimum of the two.

Differences from the hybrid driver that matter:

* no offload loss: the update runs at native DGEMM efficiency (89.4%
  ceiling) instead of the offload 85-86%, and all 61 cores minus the OS
  core compute;
* the block size is free: nb = 300 (the best kernel depth) instead of
  the PCIe-imposed 1200, so panels are 4x cheaper per stage;
* no host assist, and the 8 GB of GDDR caps the aggregate problem at
  sqrt(P*Q*1 GiB-count) — a 10x10 cluster maxes out near N = 320K.

The energy benchmark combines this with :mod:`repro.machine.energy` to
quantify the paper's GFLOPS/W argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.hybrid.driver import Network
from repro.lu.timing import LUTiming
from repro.machine.calibration import Calibration, default_calibration
from repro.machine.config import KNC
from repro.machine.energy import gflops_per_watt, native_node_power
from repro.obs import MetricsRegistry, RunResult
from repro.sim import Simulator, TraceRecorder


@dataclass
class NativeClusterResult(RunResult):
    """One native-cluster run."""

    n: int
    nb: int
    p: int
    q: int
    time_s: float
    gflops: float
    efficiency: float  # vs all-61-core card peak per node
    gflops_per_watt: float
    trace: TraceRecorder
    metrics: Optional[MetricsRegistry] = None

    kind = "native-cluster"
    # tflops comes from the shared RunResult property (gflops / 1e3).


class NativeClusterHPL:
    """Timing model of Linpack on a cluster of bare Knights Corners."""

    #: Chunks for overlapping swap/bcast with the update (the native
    #: dynamic scheduler overlaps communication like the pipelined
    #: look-ahead overlaps host steps).
    CHUNKS = 8

    #: Scheduling losses (tile quantisation, DAG-lock traffic, panel
    #: chains, super-stage drains) that the full
    #: :class:`~repro.lu.dynamic.DynamicScheduler` DES resolves but this
    #: per-stage model cannot: calibrated so the 1x1 grid reproduces the
    #: validated native single-card result (~831 GFLOPS at N=30K).
    SCHED_OVERHEAD = 0.145

    def __init__(
        self,
        n: int,
        nb: int = 300,
        p: int = 1,
        q: int = 1,
        network: Network | None = None,
        cal: Calibration | None = None,
    ):
        if n < 1 or nb < 1:
            raise ValueError("n and nb must be positive")
        if p < 1 or q < 1:
            raise ValueError("grid dimensions must be positive")
        self.n, self.nb, self.p, self.q = n, nb, p, q
        self.cal = cal or default_calibration()
        base_net = network or Network()
        # IB reached through the sleeping host's PCIe: bandwidth is the
        # min of the two paths, latency adds the PCIe hop.
        self.network = Network(
            bw_gbs=min(base_net.bw_gbs, KNC.pcie_bw_gbs * 0.8),
            latency_s=base_net.latency_s + 3e-6,
        )
        self.timing = LUTiming(machine=KNC, cal=self.cal)
        self.n_panels = -(-n // nb)
        local_bytes = 8 * n * n / (p * q)
        if local_bytes > KNC.dram_bytes:
            raise ValueError(
                f"N={n} needs {local_bytes / 2**30:.1f} GiB per card but the "
                f"card has {KNC.dram_bytes / 2**30:.0f} GiB of GDDR"
            )

    @classmethod
    def max_n(cls, p: int, q: int) -> int:
        """Largest N the grid's aggregate GDDR can hold."""
        return int(math.sqrt(p * q * KNC.dram_bytes / 8))

    # -- per-stage pieces -----------------------------------------------------
    def _trailing(self, i: int) -> int:
        return self.n - (i + 1) * self.nb

    def _loc(self, size: int, div: int) -> int:
        return max(0, math.ceil(size / div))

    def panel_time_s(self, i: int) -> float:
        rows = self._loc(self.n - i * self.nb, self.p)
        if rows <= 0:
            return 0.0
        width = min(self.nb, self.n - i * self.nb)
        # The whole card attacks the panel (late-superstage regrouping).
        return self.timing.panel_time(rows, width, KNC.compute_cores)

    def comm_time_s(self, i: int) -> float:
        """Panel + U broadcasts and the swap exchange for one stage."""
        rows = self._loc(self._trailing(i) + self.nb, self.p)
        cols = self._loc(self._trailing(i), self.q)
        t = self.network.transfer_s(8 * rows * self.nb, hops=_depth(self.q))
        t += self.network.transfer_s(8 * self.nb * cols, hops=_depth(self.p))  # U
        t += self.network.transfer_s(8 * self.nb * cols, hops=_depth(self.p))  # swap
        return t

    def local_stage_time_s(self, i: int) -> tuple:
        """(swap_local, trsm, gemm) on the card for one stage."""
        rows = self._loc(self._trailing(i) + self.nb, self.p)
        cols = self._loc(self._trailing(i), self.q)
        if cols <= 0 or rows <= 0:
            return (0.0, 0.0, 0.0)
        comps = self.timing.update_components(
            rows, min(self.nb, rows), cols, KNC.compute_cores, bw_sharers=1
        )
        return tuple(c * (1.0 + self.SCHED_OVERHEAD) for c in comps)

    # -- the run ---------------------------------------------------------------
    def run(self) -> NativeClusterResult:
        sim = Simulator()
        trace = TraceRecorder()

        def span(worker: str, kind: str, dur: float):
            t0 = sim.now
            yield dur
            trace.record(worker, kind, t0, sim.now)

        def stage(i: int):
            swap_l, trsm, gemm = self.local_stage_time_s(i)
            comm = self.comm_time_s(i)
            has_next = i + 1 < self.n_panels
            panel = self.panel_time_s(i + 1) if has_next else 0.0
            chunks = self.CHUNKS
            ready = [sim.event() for _ in range(chunks)]

            def comm_side():
                # Swap + broadcasts, chunked and overlapped with the update
                # (dynamic scheduling's natural overlap).
                for c in range(chunks):
                    yield from span("net", "comm", comm / chunks)
                    yield from span("card", "dlaswp", swap_l / chunks)
                    yield from span("card", "dtrsm", trsm / chunks)
                    ready[c].succeed()
                if has_next:
                    yield from span("card", "dgetrf", panel)

            def update_side():
                for c in range(chunks):
                    yield ready[c]
                    yield from span("card", "dgemm", gemm / chunks)

            a = sim.process(comm_side())
            b = sim.process(update_side())
            yield a
            yield b

        def driver():
            # Stage 0's panel is exposed start-up.
            yield sim.process(span("card", "dgetrf", self.panel_time_s(0)))
            for i in range(self.n_panels):
                yield sim.process(stage(i))

        sim.process(driver(), name="native-cluster")
        time_s = sim.run()
        flops = LUTiming.hpl_flops(self.n)
        tflops = flops / time_s / 1e12
        node_peak_tf = KNC.peak_dp_gflops() / 1e3
        nodes = self.p * self.q
        power_w = nodes * native_node_power(cards=1).total_w
        metrics = MetricsRegistry()
        metrics.counter("cluster.stages").inc(self.n_panels)
        metrics.gauge("cluster.card_idle_fraction").set(
            1.0 - trace.busy_time("card") / time_s
        )
        metrics.gauge("cluster.comm_time_s").set(trace.busy_time("net"))
        sim.publish_metrics(metrics)
        return NativeClusterResult(
            n=self.n,
            nb=self.nb,
            p=self.p,
            q=self.q,
            time_s=time_s,
            gflops=tflops * 1e3,
            efficiency=tflops / (nodes * node_peak_tf),
            gflops_per_watt=gflops_per_watt(tflops * 1e3, power_w),
            trace=trace,
            metrics=metrics,
        )


def _depth(parties: int) -> int:
    return int(math.ceil(math.log2(parties))) if parties > 1 else 0
