"""Distributed pivot row exchange (the multi-node DLASWP).

The stage's pivot pairs (r0 <-> r1, global row indices) are applied by
every process column independently: each rank holds full rows for its
local columns, so a swap either happens locally (both rows on this grid
row) or as a symmetric exchange with the rank of the partner grid row in
the *same* process column. The exchanges are tagged per pivot so
concurrent stages cannot cross-match. This is the traffic the paper's
"swapping, constrained by both DRAM and interconnect bandwidth" refers
to, and what the pipelined look-ahead overlaps with the trailing update.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.cluster.comm import Comm
from repro.cluster.grid import BlockCyclic


def exchange_pivot_rows(
    comm: Comm,
    bc: BlockCyclic,
    a_loc: np.ndarray,
    pivot_pairs: Sequence[Tuple[int, int]],
    col_mask: np.ndarray,
    tag_base: int = 1000,
) -> None:
    """Apply the ordered global pivot pairs to this rank's local rows.

    Parameters
    ----------
    a_loc:
        The rank's local block-cyclic array (modified in place).
    pivot_pairs:
        Ordered (r0, r1) global row pairs from the panel factorization.
    col_mask:
        Boolean mask over the local columns to touch (the current panel's
        columns are excluded — they are replaced by the factored panel).
    """
    my_row, my_col = bc.grid.coords(comm.rank)
    for idx, (r0, r1) in enumerate(pivot_pairs):
        if r0 == r1:
            continue
        o0, o1 = bc.row_owner(r0), bc.row_owner(r1)
        l0, l1 = bc.global_to_local_row(r0), bc.global_to_local_row(r1)
        tag = tag_base + idx
        if o0 == my_row and o1 == my_row:
            rows = a_loc[[l0, l1]][:, col_mask]
            a_loc[np.ix_([l1, l0], np.flatnonzero(col_mask))] = rows
        elif o0 == my_row:
            peer = bc.grid.rank_of(o1, my_col)
            mine = a_loc[l0, col_mask].copy()
            theirs = comm.sendrecv(mine, peer, tag=tag)
            a_loc[l0, col_mask] = theirs
        elif o1 == my_row:
            peer = bc.grid.rank_of(o0, my_col)
            mine = a_loc[l1, col_mask].copy()
            theirs = comm.sendrecv(mine, peer, tag=tag)
            a_loc[l1, col_mask] = theirs


def pivot_pairs_from_ipiv(k0: int, ipiv: np.ndarray) -> list:
    """Convert a panel's LAPACK-style local pivot vector (offsets within
    the panel, panel starting at global row ``k0``) into ordered global
    (r0, r1) pairs."""
    return [(k0 + j, k0 + int(p)) for j, p in enumerate(ipiv)]


def resolve_final_sources(pivot_pairs: Sequence[Tuple[int, int]]) -> dict:
    """Collapse an ordered swap sequence into its net effect: a map
    ``destination global row -> source global row`` over the rows the
    sequence touches (identity entries dropped)."""
    involved = sorted({r for pair in pivot_pairs for r in pair})
    src = {g: g for g in involved}
    for r0, r1 in pivot_pairs:
        src[r0], src[r1] = src[r1], src[r0]
    return {g: s for g, s in src.items() if g != s}


def exchange_pivot_rows_long(
    comm: Comm,
    bc: BlockCyclic,
    a_loc: np.ndarray,
    pivot_pairs: Sequence[Tuple[int, int]],
    col_mask: np.ndarray,
    tag_base: int = 1000,
) -> None:
    """The HPL "long" (spread) swap: identical net effect to
    :func:`exchange_pivot_rows`, but the whole stage's row movement is
    collapsed into one batched message per grid-row pair — the
    bandwidth-optimal variant reference HPL prefers for wide trailing
    matrices, and the volume the hybrid timing model charges.
    """
    my_row, my_col = bc.grid.coords(comm.rank)
    moves = resolve_final_sources(pivot_pairs)
    if not moves:
        return
    cols_idx = np.flatnonzero(col_mask)

    # Snapshot the original contents of every involved row this rank owns.
    snapshot = {}
    for g in {s for s in moves.values()} | set(moves):
        if bc.row_owner(g) == my_row:
            snapshot[g] = a_loc[bc.global_to_local_row(g), cols_idx].copy()

    # One batched send per destination grid row.
    for peer in range(bc.grid.p):
        if peer == my_row:
            continue
        outgoing = {
            s: snapshot[s]
            for g, s in moves.items()
            if bc.row_owner(g) == peer and bc.row_owner(s) == my_row
        }
        needs_from_peer = any(
            bc.row_owner(g) == my_row and bc.row_owner(s) == peer
            for g, s in moves.items()
        )
        peer_rank = bc.grid.rank_of(peer, my_col)
        if outgoing or needs_from_peer:
            # Symmetric tag so both sides of the exchange match.
            pair_tag = tag_base + 61 * min(my_row, peer) + max(my_row, peer)
            received = comm.sendrecv(outgoing, peer_rank, tag=pair_tag)
            snapshot.update(received)

    # Write final contents for the rows this rank owns.
    for g, s in moves.items():
        if bc.row_owner(g) == my_row:
            a_loc[bc.global_to_local_row(g), cols_idx] = snapshot[s]
