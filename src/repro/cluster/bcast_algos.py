"""Panel-broadcast algorithms.

Reference HPL ships six broadcast variants because the panel broadcast
sits on the critical path of every stage; the paper's U broadcast
pipelining (Section V-A) exists for the same reason. This module
implements the three classic shapes over the simulated communicator —
all functionally verified to deliver identical payloads — plus analytic
cost models used by the broadcast ablation benchmark:

* **ring** (HPL's ``1ring``): rank i forwards to i+1; latency scales
  with the group size, but each link carries the payload once — good
  when the broadcast can be overlapped with compute.
* **binomial tree**: log2(size) rounds; the standard latency-optimal
  tree for unsegmented messages.
* **segmented ring** (HPL's bandwidth-optimal long broadcast): the
  payload is cut into segments pipelined around the ring; for large
  payloads the cost approaches one payload transfer regardless of the
  group size.
* **ring-modified** (:func:`segmented_ring_bcast_nb`): the non-blocking
  segmented ring the look-ahead schedule uses — each hop forwards a
  segment with ``isend`` as soon as it arrives, so the forward of
  segment *s* overlaps the receive of segment *s+1* and the whole
  broadcast can drain behind the trailing update.
"""

from __future__ import annotations

import math
from typing import Any, List, Sequence

import numpy as np

from repro.cluster.comm import Comm

_TAG = -7
_NB_TAG = -97


def _group_pos(group: Sequence[int], rank: int) -> int:
    try:
        return list(group).index(rank)
    except ValueError:
        raise ValueError(f"rank {rank} is not in the broadcast group") from None


def ring_bcast(comm: Comm, payload: Any, root: int, group: Sequence[int]) -> Any:
    """1-ring: root -> next -> next ... around the group."""
    group = list(group)
    pos = _group_pos(group, comm.rank)
    rpos = _group_pos(group, root)
    size = len(group)
    if size == 1:
        return payload
    rel = (pos - rpos) % size
    if rel == 0:
        comm.send(payload, group[(pos + 1) % size], tag=_TAG)
        return payload
    got = comm.recv(group[(pos - 1) % size], tag=_TAG)
    if rel != size - 1:
        comm.send(got, group[(pos + 1) % size], tag=_TAG)
    return got


def binomial_bcast(comm: Comm, payload: Any, root: int, group: Sequence[int]) -> Any:
    """Binomial tree: ceil(log2(size)) rounds.

    In relative ranks: a non-root receives from ``rel - lowbit(rel)``,
    then both it and the root fan out to ``rel + mask`` for every mask
    below the bit they received on (the root starts at the top bit).
    """
    group = list(group)
    size = len(group)
    rpos = _group_pos(group, root)
    rel = (_group_pos(group, comm.rank) - rpos) % size

    def abs_rank(relative: int) -> int:
        return group[(relative + rpos) % size]

    if rel == 0:
        got = payload
        mask = 1 << max(0, (size - 1).bit_length() - 1)
    else:
        low = rel & -rel
        got = comm.recv(abs_rank(rel - low), tag=_TAG)
        mask = low >> 1
    while mask >= 1:
        dst = rel + mask
        if dst < size:
            comm.send(got, abs_rank(dst), tag=_TAG)
        mask >>= 1
    return got


def segmented_ring_bcast(
    comm: Comm,
    payload: np.ndarray,
    root: int,
    group: Sequence[int],
    segments: int = 4,
) -> np.ndarray:
    """Pipelined ring broadcast of an array in ``segments`` pieces."""
    group = list(group)
    size = len(group)
    pos = _group_pos(group, comm.rank)
    rpos = _group_pos(group, root)
    if size == 1:
        return payload
    rel = (pos - rpos) % size
    nxt = group[(pos + 1) % size]
    prv = group[(pos - 1) % size]
    if rel == 0:
        arr = np.asarray(payload)
        for s, part in enumerate(np.array_split(arr.ravel(), segments)):
            comm.send((s, arr.shape, part), nxt, tag=_TAG - 1 - s)
        return payload
    parts: List = [None] * segments
    shape = None
    for s in range(segments):
        s_got, shape, part = comm.recv(prv, tag=_TAG - 1 - s)
        parts[s_got] = part
        if rel != size - 1:
            comm.send((s_got, shape, part), nxt, tag=_TAG - 1 - s)
    return np.concatenate(parts).reshape(shape)


def segmented_ring_bcast_nb(
    comm: Comm,
    payload: Any,
    root: int,
    group: Sequence[int],
    segments: int = 4,
    tag: int = _NB_TAG,
) -> Any:
    """HPL's "ring-modified" broadcast: pipelined segmented ring with
    non-blocking forwarding.

    The payload — an ndarray, or a tuple/list of ndarrays whose leading
    dimensions match the first array's (they are split in tandem, like a
    panel's ``(global_rows, L_block)`` pair) — is cut into ``segments``
    pieces. Every hop forwards each segment with ``isend`` the moment it
    arrives, so the forward of segment *s* overlaps the receive of
    segment *s+1*; non-array components (and arrays with a different
    leading dimension) ride with segment 0. Only the root needs to know
    ``segments``: every message is self-describing.
    """
    group = list(group)
    size = len(group)
    pos = _group_pos(group, comm.rank)
    rpos = _group_pos(group, root)
    if size == 1:
        return payload
    rel = (pos - rpos) % size
    nxt = group[(pos + 1) % size]
    prv = group[(pos - 1) % size]

    if rel == 0:
        was_seq = isinstance(payload, (tuple, list))
        items = list(payload) if was_seq else [np.asarray(payload)]
        lead = np.asarray(items[0]).shape[0] if np.asarray(items[0]).ndim else 0
        nseg = max(1, min(int(segments), max(1, lead)))
        splits = np.array_split(np.arange(lead), nseg)
        reqs = []
        for s, idx in enumerate(splits):
            seg = [
                a[idx]
                if isinstance(a, np.ndarray) and a.ndim and a.shape[0] == lead
                else (a if s == 0 else None)
                for a in items
            ]
            reqs.append(comm.isend((s, nseg, was_seq, seg), nxt, tag=tag, op="bcast"))
        comm.waitall(reqs)
        return payload

    first = comm.recv(prv, tag=tag)
    nseg = first[1]
    segs: List[Any] = [None] * nseg
    reqs = []
    msg = first
    received = 0
    while True:
        s, _n, was_seq, seg = msg
        if rel != size - 1:
            reqs.append(comm.isend(msg, nxt, tag=tag, op="bcast"))
        segs[s] = seg
        received += 1
        if received == nseg:
            break
        msg = comm.recv(prv, tag=tag)
    comm.waitall(reqs)
    n_items = len(segs[0])
    out = []
    for i in range(n_items):
        parts = [seg[i] for seg in segs]
        if all(p is None for p in parts[1:]):
            out.append(parts[0])
        else:
            out.append(np.concatenate(parts))
    return tuple(out) if was_seq else out[0]


#: Named registry used by the ablation benchmark and the docs.
ALGORITHMS = {
    "ring": ring_bcast,
    "binomial": binomial_bcast,
    "segmented-ring": segmented_ring_bcast,
    "ring-mod": segmented_ring_bcast_nb,
}


def bcast_time_model(
    nbytes: float,
    group_size: int,
    bw_gbs: float,
    latency_s: float,
    algorithm: str,
    segments: int = 4,
) -> float:
    """Analytic completion-time models for the three shapes."""
    if group_size < 1:
        raise ValueError("group must be non-empty")
    if nbytes < 0:
        raise ValueError("bytes must be non-negative")
    if group_size == 1:
        return 0.0
    t_msg = latency_s + nbytes / (bw_gbs * 1e9)
    if algorithm == "ring":
        return (group_size - 1) * t_msg
    if algorithm == "binomial":
        return math.ceil(math.log2(group_size)) * t_msg
    if algorithm in ("segmented-ring", "ring-mod"):
        t_seg = latency_s + nbytes / segments / (bw_gbs * 1e9)
        return (group_size - 2 + segments) * t_seg
    raise ValueError(f"unknown broadcast algorithm {algorithm!r}")
