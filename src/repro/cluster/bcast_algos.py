"""Panel-broadcast algorithms.

Reference HPL ships six broadcast variants because the panel broadcast
sits on the critical path of every stage; the paper's U broadcast
pipelining (Section V-A) exists for the same reason. This module
implements the three classic shapes over the simulated communicator —
all functionally verified to deliver identical payloads — plus analytic
cost models used by the broadcast ablation benchmark:

* **ring** (HPL's ``1ring``): rank i forwards to i+1; latency scales
  with the group size, but each link carries the payload once — good
  when the broadcast can be overlapped with compute.
* **binomial tree**: log2(size) rounds; the standard latency-optimal
  tree for unsegmented messages.
* **segmented ring** (HPL's bandwidth-optimal long broadcast): the
  payload is cut into segments pipelined around the ring; for large
  payloads the cost approaches one payload transfer regardless of the
  group size.
"""

from __future__ import annotations

import math
from typing import Any, List, Sequence

import numpy as np

from repro.cluster.comm import Comm

_TAG = -7


def _group_pos(group: Sequence[int], rank: int) -> int:
    try:
        return list(group).index(rank)
    except ValueError:
        raise ValueError(f"rank {rank} is not in the broadcast group") from None


def ring_bcast(comm: Comm, payload: Any, root: int, group: Sequence[int]) -> Any:
    """1-ring: root -> next -> next ... around the group."""
    group = list(group)
    pos = _group_pos(group, comm.rank)
    rpos = _group_pos(group, root)
    size = len(group)
    if size == 1:
        return payload
    rel = (pos - rpos) % size
    if rel == 0:
        comm.send(payload, group[(pos + 1) % size], tag=_TAG)
        return payload
    got = comm.recv(group[(pos - 1) % size], tag=_TAG)
    if rel != size - 1:
        comm.send(got, group[(pos + 1) % size], tag=_TAG)
    return got


def binomial_bcast(comm: Comm, payload: Any, root: int, group: Sequence[int]) -> Any:
    """Binomial tree: ceil(log2(size)) rounds.

    In relative ranks: a non-root receives from ``rel - lowbit(rel)``,
    then both it and the root fan out to ``rel + mask`` for every mask
    below the bit they received on (the root starts at the top bit).
    """
    group = list(group)
    size = len(group)
    rpos = _group_pos(group, root)
    rel = (_group_pos(group, comm.rank) - rpos) % size

    def abs_rank(relative: int) -> int:
        return group[(relative + rpos) % size]

    if rel == 0:
        got = payload
        mask = 1 << max(0, (size - 1).bit_length() - 1)
    else:
        low = rel & -rel
        got = comm.recv(abs_rank(rel - low), tag=_TAG)
        mask = low >> 1
    while mask >= 1:
        dst = rel + mask
        if dst < size:
            comm.send(got, abs_rank(dst), tag=_TAG)
        mask >>= 1
    return got


def segmented_ring_bcast(
    comm: Comm,
    payload: np.ndarray,
    root: int,
    group: Sequence[int],
    segments: int = 4,
) -> np.ndarray:
    """Pipelined ring broadcast of an array in ``segments`` pieces."""
    group = list(group)
    size = len(group)
    pos = _group_pos(group, comm.rank)
    rpos = _group_pos(group, root)
    if size == 1:
        return payload
    rel = (pos - rpos) % size
    nxt = group[(pos + 1) % size]
    prv = group[(pos - 1) % size]
    if rel == 0:
        arr = np.asarray(payload)
        for s, part in enumerate(np.array_split(arr.ravel(), segments)):
            comm.send((s, arr.shape, part), nxt, tag=_TAG - 1 - s)
        return payload
    parts: List = [None] * segments
    shape = None
    for s in range(segments):
        s_got, shape, part = comm.recv(prv, tag=_TAG - 1 - s)
        parts[s_got] = part
        if rel != size - 1:
            comm.send((s_got, shape, part), nxt, tag=_TAG - 1 - s)
    return np.concatenate(parts).reshape(shape)


#: Named registry used by the ablation benchmark and the docs.
ALGORITHMS = {
    "ring": ring_bcast,
    "binomial": binomial_bcast,
}


def bcast_time_model(
    nbytes: float,
    group_size: int,
    bw_gbs: float,
    latency_s: float,
    algorithm: str,
    segments: int = 4,
) -> float:
    """Analytic completion-time models for the three shapes."""
    if group_size < 1:
        raise ValueError("group must be non-empty")
    if nbytes < 0:
        raise ValueError("bytes must be non-negative")
    if group_size == 1:
        return 0.0
    t_msg = latency_s + nbytes / (bw_gbs * 1e9)
    if algorithm == "ring":
        return (group_size - 1) * t_msg
    if algorithm == "binomial":
        return math.ceil(math.log2(group_size)) * t_msg
    if algorithm == "segmented-ring":
        t_seg = latency_s + nbytes / segments / (bw_gbs * 1e9)
        return (group_size - 2 + segments) * t_seg
    raise ValueError(f"unknown broadcast algorithm {algorithm!r}")
