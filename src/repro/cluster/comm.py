"""In-process message passing: the MPI stand-in for multi-node runs.

Each rank runs in its own thread; point-to-point messages travel through
per-(source, destination) FIFO queues with tag matching, mirroring the
mpi4py calls the real system would use (``send``/``recv``/``sendrecv``,
``isend``/``irecv``, ``bcast``, ``gather``, ``barrier``, ``allreduce``).
NumPy payloads are copied on send, so ranks never alias each other's
buffers — the same isolation a real network gives.

Non-blocking transfers power the multi-node look-ahead schedule:
``isend`` hands the message to a per-rank background sender thread and
returns a :class:`Request` immediately, so the payload copy, optional
segmentation and enqueue all drain while the rank's NumPy compute
proceeds (BLAS releases the GIL, so the overlap is real wall-clock).
``irecv`` returns a :class:`Request` whose ``wait`` collects the
message; messages that arrived while the rank was computing complete
instantly. As in MPI, the send buffer must not be mutated until the
request completes — every payload our callers post is a fresh copy.

Chunked (segmented) transfers: ``isend(..., chunk_bytes=...)`` splits
large ndarray components of the payload into segments that travel as
individual messages and are reassembled transparently on the receive
side — the transport HPL's segmented ("ring-modified") broadcast
pipelines around process rows.

Every communicator records traffic statistics (messages and bytes by
operation — each byte counted exactly once) plus overlap accounting:
``wait_s`` (time the rank thread was blocked receiving or waiting on
requests), ``drain_s`` (background sender busy time) and ``hidden_s``
(the portion of drain time that never blocked compute).

Send-side staging: with a :class:`~repro.blas.buffers.BufferPool`
attached (``World(..., buffer_pool=True)``), the segments of a chunked
transfer are staged in buffers rented from the sender's arena instead
of freshly allocated per isend; the receiver returns each segment to
the owning pool after reassembly. ``CommStats`` splits the payload
accounting into ``staged_bytes`` (pooled staging) vs ``copied_bytes``
(fresh deep copies), so overlap accounting distinguishes reused
staging from true allocation.

Determinism and safety: queue operations use a global timeout so a
deadlocked exchange fails the test with :class:`CommError` instead of
hanging, and ``World.run`` re-raises the first rank exception.

Hardened (resilient) mode: constructing the world with a
:class:`~repro.resilience.faults.FaultInjector` and/or a
:class:`~repro.resilience.retry.RetryPolicy` turns the wire into a
reliable channel. Every message travels inside a sequenced,
checksummed ``_Envelope``; receivers discard duplicates, reorder past
gaps, detect bit-flip corruption and request targeted resends from the
sender's retained send window. Blocking receives run the retry state
machine — timeout slices with exponential backoff, bounded resend
rounds — and fail with the typed :class:`CommTimeout` /
:class:`CommCorruption` / :class:`RankDeadError` taxonomy instead of
hanging. Fault-free construction (no injector, no policy) keeps the
original zero-overhead wire format byte for byte.
"""

from __future__ import annotations

import queue
import threading
import time
import zlib
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.blas.buffers import BufferPool, as_buffer_pool
from repro.resilience.retry import CommResilienceStats, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover — hints only
    from repro.obs.metrics import MetricsRegistry
    from repro.resilience.faults import FaultInjector

#: Seconds a blocking receive waits before declaring a deadlock.
DEFAULT_TIMEOUT_S = 60.0

#: Default segment size for chunked transfers (the CLI's ``--chunk-kb``).
DEFAULT_CHUNK_BYTES = 256 * 1024

#: Pump granularity of the reliable receive loop: how often a blocked
#: rank re-checks the dead-rank registry and its retry deadline.
_POLL_SLICE_S = 0.05

#: Envelopes a sender retains per (dest, tag) channel for resends.
_SEND_WINDOW = 512


class CommError(RuntimeError):
    """A communication failure (timeout / mismatched exchange)."""


class CommTimeout(CommError):
    """A reliable receive exhausted its retry budget without data."""


class CommCorruption(CommError):
    """A payload checksum mismatch that retries could not heal."""


class RankDeadError(CommError):
    """The peer rank died (its thread exited with an exception)."""


@dataclass
class CommStats:
    """Traffic and overlap accounting for one rank.

    Byte counts are single-attribution: every byte a rank puts on the
    wire lands in ``bytes_sent`` once and in exactly one ``by_op``
    bucket (``send`` for point-to-point, the collective's name for
    collective traffic), so ``sum(by_op.values()) == bytes_sent``.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    by_op: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: Payload bytes staged through pooled (reused) send buffers.
    staged_bytes: int = 0
    #: Payload bytes that went out as fresh deep copies.
    copied_bytes: int = 0
    #: Wall time the rank thread spent blocked in recv/wait (exposed comm).
    wait_s: float = 0.0
    #: Background sender busy time (copy + segment + enqueue).
    drain_s: float = 0.0
    #: Portion of drain time that did not block the compute thread.
    hidden_s: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, op: str, nbytes: int) -> None:
        with self._lock:
            self.messages_sent += 1
            self.bytes_sent += nbytes
            self.by_op[op] += nbytes

    def record_staging(self, staged: int = 0, copied: int = 0) -> None:
        """Attribute payload bytes to pooled staging vs fresh copies."""
        with self._lock:
            self.staged_bytes += staged
            self.copied_bytes += copied

    def add_wait(self, seconds: float) -> None:
        with self._lock:
            self.wait_s += seconds

    def add_drain(self, seconds: float) -> None:
        with self._lock:
            self.drain_s += seconds

    def add_hidden(self, seconds: float) -> None:
        with self._lock:
            self.hidden_s += seconds

    def overlap_snapshot(self) -> Dict[str, float]:
        """The three overlap figures as a plain dict (for gathers)."""
        with self._lock:
            return {
                "wait_s": self.wait_s,
                "drain_s": self.drain_s,
                "hidden_s": self.hidden_s,
            }

    def publish(self, registry: "MetricsRegistry", prefix: str = "comm") -> None:
        """Write this rank's traffic accounting into ``registry``."""
        registry.counter(f"{prefix}.messages").inc(self.messages_sent)
        registry.counter(f"{prefix}.bytes").inc(self.bytes_sent)
        for op in sorted(self.by_op):
            registry.counter(f"{prefix}.bytes.{op}").inc(self.by_op[op])
        registry.counter(f"{prefix}.staged_bytes").inc(self.staged_bytes)
        registry.counter(f"{prefix}.copied_bytes").inc(self.copied_bytes)
        registry.gauge(f"{prefix}.overlap.wait_s").set(self.wait_s)
        registry.gauge(f"{prefix}.overlap.drain_s").set(self.drain_s)
        registry.gauge(f"{prefix}.overlap.hidden_s").set(self.hidden_s)


def _payload_bytes(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (list, tuple)):
        return sum(_payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_payload_bytes(v) for v in obj.values())
    return 64  # headers / scalars / pickled small objects


def _copy(obj: Any) -> Any:
    """Deep-copy NumPy content so ranks cannot alias buffers."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_copy(x) for x in obj)
    if isinstance(obj, list):
        return [_copy(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _copy(v) for k, v in obj.items()}
    return obj


# -- reliable-channel wire format -----------------------------------------------


class _Envelope:
    """Resilient-mode wire frame: per-(src, dest, tag) sequence number
    plus a CRC32 over the payload's array bytes."""

    __slots__ = ("seq", "checksum", "payload")

    def __init__(self, seq: int, checksum: int, payload: Any):
        self.seq = seq
        self.checksum = checksum
        self.payload = payload


def _arrays_in(obj: Any):
    """Yield every ndarray in a wire payload in deterministic order."""
    if isinstance(obj, np.ndarray):
        yield obj
    elif isinstance(obj, _ChunkSeg):
        yield obj.part
    elif isinstance(obj, _ChunkHeader):
        yield from _arrays_in(obj.skeleton)
    elif isinstance(obj, (list, tuple)):
        for x in obj:
            yield from _arrays_in(x)
    elif isinstance(obj, dict):
        for key in obj:
            yield from _arrays_in(obj[key])


def _checksum(obj: Any) -> int:
    """CRC32 over the array content of one wire payload."""
    acc = 0
    for arr in _arrays_in(obj):
        acc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), acc)
    return acc


def _wire_copy(msg: Any) -> Any:
    """Deep-copy a wire payload for duplicate/corrupt/resend delivery.

    The copy never references a buffer pool, so discarding it (dedup,
    abort drain) can never double-release staged arena memory.
    """
    if isinstance(msg, _ChunkSeg):
        return _ChunkSeg(msg.arr_idx, msg.seg_idx, msg.part.copy(), None)
    if isinstance(msg, _ChunkHeader):
        return _ChunkHeader(_copy(msg.skeleton), list(msg.plans))
    return _copy(msg)


def _release_wire(payload: Any) -> None:
    """Hand a drained, undelivered message's pooled staging back."""
    if isinstance(payload, _ChunkSeg) and payload.pool is not None:
        payload.pool.release(payload.part)


# -- chunked (segmented) transfer protocol --------------------------------------


class _Slot:
    """Placeholder for a chunked array inside a payload skeleton."""

    __slots__ = ("idx",)

    def __init__(self, idx: int):
        self.idx = idx


class _ChunkHeader:
    """First message of a segmented transfer: payload skeleton + plans."""

    __slots__ = ("skeleton", "plans")

    def __init__(self, skeleton: Any, plans: List[Tuple[tuple, np.dtype, int]]):
        self.skeleton = skeleton
        self.plans = plans  # per array: (shape, dtype, n_segments)


class _ChunkSeg:
    """One segment of one chunked array. ``pool`` names the sender's
    arena the part was staged in (None for a fresh copy); the receiver
    returns pooled parts after reassembly."""

    __slots__ = ("arr_idx", "seg_idx", "part", "pool")

    def __init__(
        self,
        arr_idx: int,
        seg_idx: int,
        part: np.ndarray,
        pool: Optional[BufferPool] = None,
    ):
        self.arr_idx = arr_idx
        self.seg_idx = seg_idx
        self.part = part
        self.pool = pool


def _encode_chunks(obj: Any, chunk_bytes: int, pool: Optional[BufferPool] = None):
    """Split large ndarray components of ``obj`` into segments.

    Returns ``(header, segments)`` or ``None`` when nothing in the
    payload is big enough to be worth segmenting. With ``pool`` the
    segment buffers are rented from the sender's arena (released by the
    receiver after reassembly) instead of freshly copied per isend.
    """
    arrays: List[np.ndarray] = []

    def walk(x: Any) -> Any:
        if isinstance(x, np.ndarray):
            if x.nbytes > chunk_bytes:
                arrays.append(x)
                return _Slot(len(arrays) - 1)
            return x.copy()
        if isinstance(x, tuple):
            return tuple(walk(v) for v in x)
        if isinstance(x, list):
            return [walk(v) for v in x]
        if isinstance(x, dict):
            return {k: walk(v) for k, v in x.items()}
        return x

    skeleton = walk(obj)
    if not arrays:
        return None
    plans: List[Tuple[tuple, np.dtype, int]] = []
    segments: List[_ChunkSeg] = []
    for ai, arr in enumerate(arrays):
        flat = np.ascontiguousarray(arr).reshape(-1)
        per_seg = max(1, chunk_bytes // max(1, arr.itemsize))
        nseg = -(-flat.size // per_seg)
        plans.append((arr.shape, arr.dtype, nseg))
        for si in range(nseg):
            src = flat[si * per_seg : (si + 1) * per_seg]
            if pool is not None:
                part = pool.checkout(src.shape, src.dtype, key="comm.segment")
                np.copyto(part, src)
            else:
                part = src.copy()
            segments.append(_ChunkSeg(ai, si, part, pool))
    return _ChunkHeader(skeleton, plans), segments


class _PartialMessage:
    """Receive-side reassembly state for one segmented transfer."""

    def __init__(self, header: _ChunkHeader):
        self.header = header
        self.parts: List[List[Optional[np.ndarray]]] = [
            [None] * nseg for (_shape, _dtype, nseg) in header.plans
        ]
        self.remaining = sum(nseg for (_s, _d, nseg) in header.plans)
        #: Pooled segments to hand back to their sender's arena once the
        #: reassembled copy exists.
        self._pooled: List[Tuple[BufferPool, np.ndarray]] = []

    def add(self, seg: _ChunkSeg) -> bool:
        """Store one segment; True when the transfer is complete."""
        if self.parts[seg.arr_idx][seg.seg_idx] is not None:
            raise CommError("duplicate chunk segment")
        self.parts[seg.arr_idx][seg.seg_idx] = seg.part
        if seg.pool is not None:
            self._pooled.append((seg.pool, seg.part))
        self.remaining -= 1
        return self.remaining == 0

    def assemble(self) -> Any:
        arrays = []
        for parts, (shape, dtype, _nseg) in zip(self.parts, self.header.plans):
            if len(parts) == 1:
                # A single-segment transfer may hand us pool memory
                # directly; copy so the receiver never aliases the arena.
                flat = parts[0] if not self._pooled else parts[0].copy()
            else:
                flat = np.concatenate(parts)
            arrays.append(flat.astype(dtype, copy=False).reshape(shape))
        # The concatenated copies above are receiver-owned; the staged
        # segments go back to the sender's arena.
        for pool, part in self._pooled:
            pool.release(part)
        self._pooled.clear()

        def unwalk(x: Any) -> Any:
            if isinstance(x, _Slot):
                return arrays[x.idx]
            if isinstance(x, tuple):
                return tuple(unwalk(v) for v in x)
            if isinstance(x, list):
                return [unwalk(v) for v in x]
            if isinstance(x, dict):
                return {k: unwalk(v) for k, v in x.items()}
            return x

        return unwalk(self.header.skeleton)

    def cancel(self) -> None:
        """Abort the reassembly: return staged segments to their
        sender's arena and drop the partial state."""
        for pool, part in self._pooled:
            pool.release(part)
        self._pooled.clear()
        self.parts = []
        self.remaining = 0


# -- requests -------------------------------------------------------------------


class Request:
    """Handle for an in-flight non-blocking operation (MPI_Request)."""

    def wait(self, timeout: Optional[float] = None) -> Any:  # pragma: no cover
        raise NotImplementedError

    def test(self) -> bool:  # pragma: no cover
        raise NotImplementedError


class SendRequest(Request):
    """Completion handle for :meth:`Comm.isend`.

    The message drains (payload copy, segmentation, enqueue) on the
    communicator's background sender thread; ``wait`` blocks until the
    drain finished and credits the non-blocking portion to
    ``CommStats.hidden_s``.
    """

    def __init__(self, comm: "Comm"):
        self._comm = comm
        self._event = threading.Event()
        self._error: Optional[BaseException] = None
        self._accounted = False
        self.drain_s = 0.0

    def test(self) -> bool:
        done = self._event.is_set()
        if done:
            self._settle(blocked=0.0)
        return done

    def wait(self, timeout: Optional[float] = None) -> None:
        limit = self._comm.world.timeout_s if timeout is None else timeout
        t0 = time.perf_counter()
        if not self._event.wait(limit):
            raise CommError(
                f"rank {self._comm.rank}: isend did not complete within {limit}s"
            )
        if self._error is not None:
            raise self._error
        blocked = time.perf_counter() - t0
        self._comm.stats.add_wait(blocked)
        self._settle(blocked)

    def _settle(self, blocked: float) -> None:
        if not self._accounted and self._error is None:
            self._accounted = True
            self._comm.stats.add_hidden(max(0.0, self.drain_s - blocked))


class RecvRequest(Request):
    """Completion handle for :meth:`Comm.irecv`.

    Matching is lazy: ``test`` polls the mailbox without blocking;
    ``wait`` blocks until the message (all segments of a chunked
    transfer) has arrived and returns the payload. A message that landed
    while the rank was computing completes with no blocked time.
    """

    def __init__(self, comm: "Comm", source: int, tag: int):
        self._comm = comm
        self.source = source
        self.tag = tag
        self._value: Any = None
        self._done = False

    def test(self) -> bool:
        if self._done:
            return True
        comm = self._comm
        key = (self.source, self.tag)
        while True:
            q = comm._stash.get(key)
            if q:
                self._value = q.popleft()
                self._done = True
                return True
            if not comm._pump(self.source, timeout=None):
                return False

    def wait(self, timeout: Optional[float] = None) -> Any:
        if self._done:
            return self._value
        if self.test():  # already arrived: fully hidden receive
            return self._value
        comm = self._comm
        if comm.world.retry is not None and timeout is None:
            # Hardened channel: run the retry/timeout state machine
            # instead of the single long block.
            self._value = comm._recv_reliable(self.source, self.tag)
            self._done = True
            return self._value
        key = (self.source, self.tag)
        limit = comm.world.timeout_s if timeout is None else timeout
        t0 = time.perf_counter()
        while True:
            if not comm._pump(self.source, timeout=limit):
                raise CommError(
                    f"rank {comm.rank} timed out waiting for tag {self.tag} "
                    f"from {self.source}"
                )
            q = comm._stash.get(key)
            if q:
                self._value = q.popleft()
                self._done = True
                comm.stats.add_wait(time.perf_counter() - t0)
                return self._value


def waitall(requests: Sequence[Request], timeout: Optional[float] = None) -> List[Any]:
    """Wait on every request; returns their values (None for sends)."""
    return [r.wait(timeout) for r in requests]


class World:
    """A fixed-size set of ranks with mailboxes and barrier state.

    ``buffer_pool=True`` gives every rank's communicator its own
    :class:`~repro.blas.buffers.BufferPool` for send-side segment
    staging (pass a shared instance to pool across ranks).

    ``injector`` / ``retry`` switch the wire into resilient mode (see
    the module docstring): an injector without an explicit policy gets
    the default :class:`~repro.resilience.retry.RetryPolicy`, so every
    injected fault is met by the full heal machinery.
    """

    def __init__(
        self,
        size: int,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        buffer_pool=None,
        injector: Optional["FaultInjector"] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        if size < 1:
            raise ValueError("world size must be positive")
        self.size = size
        self.timeout_s = timeout_s
        self.injector = injector
        if injector is not None and retry is None:
            retry = RetryPolicy()
        self.retry = retry
        #: Resilient mode: messages travel in sequenced, checksummed
        #: envelopes and receives run the retry state machine.
        self.resilient = retry is not None
        self._dead: set = set()
        self._dead_lock = threading.Lock()
        #: Per-rank exception of the last :meth:`run` (None = clean).
        self._errors: List[Optional[BaseException]] = [None] * size
        self._closed = False
        self._boxes: Dict[Tuple[int, int], queue.Queue] = {
            (s, d): queue.Queue() for s in range(size) for d in range(size)
        }
        self._barrier = threading.Barrier(size)
        self.comms = [
            Comm(self, rank, buffer_pool=buffer_pool) for rank in range(size)
        ]

    def declare_dead(self, rank: int) -> None:
        """Mark a rank as failed so peers stop waiting on it."""
        with self._dead_lock:
            self._dead.add(rank)

    def is_dead(self, rank: int) -> bool:
        """Whether ``rank`` has been declared failed."""
        with self._dead_lock:
            return rank in self._dead

    def crashed_ranks(self) -> List[int]:
        """Ranks whose body raised a *root-cause* (non-comm) exception
        in the last :meth:`run` — the genuinely dead ranks, excluding
        survivors that only cascaded into secondary timeouts. This is
        what shrink-to-survivors recovery sizes its new grid by."""
        return sorted(
            r
            for r, exc in enumerate(self._errors)
            if exc is not None and not isinstance(exc, CommError)
        )

    def run(self, fn: Callable, *args, **kwargs) -> List[Any]:
        """SPMD-launch ``fn(comm, *args, **kwargs)`` on every rank and
        return the per-rank results.

        On failure the root cause wins: a non-:class:`CommError` rank
        exception (e.g. an injected crash) is re-raised in preference to
        the secondary timeouts/dead-peer errors it cascades into on the
        surviving ranks.
        """
        results: List[Any] = [None] * self.size
        errors: List[Optional[BaseException]] = [None] * self.size
        self._errors = errors

        def runner(rank: int) -> None:
            try:
                results[rank] = fn(self.comms[rank], *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors[rank] = exc
                self.declare_dead(rank)
                self._barrier.abort()

        threads = [
            threading.Thread(target=runner, args=(r,), daemon=True)
            for r in range(self.size)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=self.timeout_s * 4)
                if t.is_alive():
                    raise CommError("rank thread did not terminate (deadlock?)")
        finally:
            for comm in self.comms:
                comm._shutdown_tx()
        first_comm_error: Optional[BaseException] = None
        for exc in errors:
            if exc is None:
                continue
            if isinstance(exc, CommError):
                if first_comm_error is None:
                    first_comm_error = exc
            else:
                raise exc
        if first_comm_error is not None:
            raise first_comm_error
        return results

    def close(self) -> None:
        """Idempotent teardown for aborted (or finished) runs: close
        every rank's communicator — stopping sender threads, cancelling
        partial transfers, clearing stashes — then drain the mailboxes,
        returning any staged segments still in flight to their arenas.
        """
        if self._closed:
            return
        self._closed = True
        for comm in self.comms:
            comm.close()
        for box in self._boxes.values():
            while True:
                try:
                    _tag, payload = box.get_nowait()
                except queue.Empty:
                    break
                _release_wire(payload)

    def __enter__(self) -> "World":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Comm:
    """One rank's endpoint."""

    def __init__(self, world: World, rank: int, buffer_pool=None):
        self.world = world
        self.rank = rank
        self.stats = CommStats()
        #: Send-side staging arena (None: fresh copies per message).
        #: ``True`` builds a per-rank pool, so ranks never contend; the
        #: distinct name keeps its published counters separate from the
        #: compute pools'.
        if buffer_pool is True:
            self.pool: Optional[BufferPool] = BufferPool(name="comm.buffer_pool")
        else:
            self.pool = as_buffer_pool(buffer_pool)
        #: Reassembled messages awaiting a matching recv, FIFO per
        #: (source, tag) — O(1) under heavy tag traffic.
        self._stash: Dict[Tuple[int, int], Deque[Any]] = {}
        #: In-progress segmented transfers, per (source, tag).
        self._partial: Dict[Tuple[int, int], _PartialMessage] = {}
        self._tx_queue: Optional[queue.Queue] = None
        self._tx_thread: Optional[threading.Thread] = None
        self._tx_lock = threading.Lock()
        self._closed = False
        #: Reliable-channel accounting (always present; populated only
        #: in resilient mode).
        self.rstats = CommResilienceStats()
        # Reliable-channel state: send-side sequence counters and the
        # retained resend window per (dest, tag); receive-side expected
        # sequence, out-of-order buffer and pending-resend markers per
        # (source, tag).
        self._wire_lock = threading.Lock()
        self._out_seq: Dict[Tuple[int, int], int] = {}
        self._sent: Dict[Tuple[int, int], Deque[_Envelope]] = {}
        self._in_seq: Dict[Tuple[int, int], int] = {}
        self._reorder: Dict[Tuple[int, int], Dict[int, _Envelope]] = {}
        self._resend_pending: Dict[Tuple[int, int], int] = {}

    @property
    def size(self) -> int:
        return self.world.size

    def close(self) -> None:
        """Idempotent endpoint teardown: stop the background sender,
        cancel partial transfers (returning staged segments to their
        arenas) and clear the stash and reliable-channel windows. Safe
        to call from the driver's error path mid-transfer."""
        if self._closed:
            return
        self._closed = True
        self._shutdown_tx()
        for partial in self._partial.values():
            partial.cancel()
        self._partial.clear()
        self._stash.clear()
        with self._wire_lock:
            self._out_seq.clear()
            self._sent.clear()
            self._in_seq.clear()
            self._reorder.clear()
            self._resend_pending.clear()

    def __enter__(self) -> "Comm":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- background sender ------------------------------------------------------
    def _ensure_tx(self) -> None:
        with self._tx_lock:
            if self._tx_thread is None or not self._tx_thread.is_alive():
                self._tx_queue = queue.Queue()
                self._tx_thread = threading.Thread(
                    target=self._tx_main, args=(self._tx_queue,), daemon=True
                )
                self._tx_thread.start()

    def _shutdown_tx(self) -> None:
        with self._tx_lock:
            thread, q = self._tx_thread, self._tx_queue
            self._tx_thread = None
            self._tx_queue = None
        if thread is not None and thread.is_alive():
            q.put(None)
            thread.join(timeout=5.0)

    def _tx_main(self, q: queue.Queue) -> None:
        while True:
            item = q.get()
            if item is None:
                return
            obj, dest, tag, chunk_bytes, op, req = item
            t0 = time.perf_counter()
            try:
                self._deliver(obj, dest, tag, chunk_bytes, op)
            except BaseException as exc:  # noqa: BLE001 — re-raised at wait()
                req._error = exc
            req.drain_s = time.perf_counter() - t0
            self.stats.add_drain(req.drain_s)
            req._event.set()

    def _deliver(
        self, obj: Any, dest: int, tag: int, chunk_bytes: Optional[int], op: str
    ) -> None:
        """Copy (or stage), optionally segment, account and enqueue one
        message."""
        injector = self.world.injector
        if injector is not None:
            delay = injector.send_delay(self.rank)
            if delay > 0.0:
                time.sleep(delay)
        if chunk_bytes:
            # In resilient mode segments are fresh copies, never pooled
            # staging: dedup-discard, abort drains and resends can then
            # never double-release arena memory.
            stage_pool = None if self.world.resilient else self.pool
            encoded = _encode_chunks(obj, chunk_bytes, pool=stage_pool)
            if encoded is not None:
                header, segments = encoded
                skeleton_bytes = _payload_bytes(header.skeleton)
                self.stats.record(op, skeleton_bytes)
                self.stats.record_staging(copied=skeleton_bytes)
                self._put_wire(dest, tag, header, op)
                for seg in segments:
                    self.stats.record(op, seg.part.nbytes)
                    if seg.pool is not None:
                        self.stats.record_staging(staged=seg.part.nbytes)
                    else:
                        self.stats.record_staging(copied=seg.part.nbytes)
                    self._put_wire(dest, tag, seg, op)
                return
        payload = _copy(obj)
        nbytes = _payload_bytes(payload)
        self.stats.record(op, nbytes)
        self.stats.record_staging(copied=nbytes)
        self._put_wire(dest, tag, payload, op)

    def _put_wire(self, dest: int, tag: int, msg: Any, op: str) -> None:
        """Enqueue one wire message; in resilient mode, wrap it in a
        sequenced, checksummed envelope, retain it for resends and give
        the fault injector its shot at the delivery."""
        box = self.world._boxes[(self.rank, dest)]
        if not self.world.resilient:
            box.put((tag, msg))
            return
        injector = self.world.injector
        with self._wire_lock:
            key = (dest, tag)
            seq = self._out_seq.get(key, 0)
            self._out_seq[key] = seq + 1
            env = _Envelope(seq, _checksum(msg), msg)
            self._sent.setdefault(key, deque(maxlen=_SEND_WINDOW)).append(env)
        action = (
            injector.wire_action(self.rank, dest, tag, op)
            if injector is not None
            else None
        )
        if action == "drop":
            return  # retained in the send window; healed by resend
        if action == "corrupt":
            # Deliver a bit-flipped copy under the pristine checksum, so
            # the receiver detects the damage and requests the original.
            payload = _wire_copy(msg)
            injector.corrupt_arrays(list(_arrays_in(payload)))
            box.put((tag, _Envelope(seq, env.checksum, payload)))
            return
        box.put((tag, env))
        if action == "duplicate":
            box.put((tag, _Envelope(seq, env.checksum, _wire_copy(msg))))

    # -- receive machinery ------------------------------------------------------
    def _route(self, source: int, tag: int, payload: Any) -> None:
        """File one incoming message: segment assembly or the stash."""
        key = (source, tag)
        if isinstance(payload, _ChunkHeader):
            if key in self._partial:
                raise CommError(f"overlapping chunked transfers on {key}")
            self._partial[key] = _PartialMessage(payload)
        elif isinstance(payload, _ChunkSeg):
            partial = self._partial.get(key)
            if partial is None:
                raise CommError(f"chunk segment without header on {key}")
            if partial.add(payload):
                del self._partial[key]
                self._stash.setdefault(key, deque()).append(partial.assemble())
        else:
            self._stash.setdefault(key, deque()).append(payload)

    def _pump(self, source: int, timeout: Optional[float]) -> bool:
        """Process one message from ``source``'s mailbox.

        ``timeout=None`` polls without blocking. Returns False when no
        message was available within the timeout.
        """
        box = self.world._boxes[(source, self.rank)]
        try:
            if timeout is None:
                got_tag, payload = box.get_nowait()
            else:
                got_tag, payload = box.get(timeout=timeout)
        except queue.Empty:
            return False
        if isinstance(payload, _Envelope):
            self._route_envelope(source, got_tag, payload)
        else:
            self._route(source, got_tag, payload)
        return True

    # -- reliable channel (resilient mode) ---------------------------------------
    def _route_envelope(self, source: int, tag: int, env: _Envelope) -> None:
        """Sequence-check one envelope: discard duplicates, buffer
        out-of-order arrivals (requesting a resend across the gap),
        verify the checksum and deliver in order."""
        key = (source, tag)
        expected = self._in_seq.get(key, 0)
        if env.seq < expected:
            self.rstats.record_duplicate()
            return
        if env.seq > expected:
            self._reorder.setdefault(key, {})[env.seq] = env
            self._request_resend(source, tag, expected)
            return
        if not self._accept(source, tag, env):
            return
        buffered = self._reorder.get(key)
        while buffered:
            nxt = buffered.pop(self._in_seq.get(key, 0), None)
            if nxt is None:
                break
            if not self._accept(source, tag, nxt):
                break
        if buffered is not None and not buffered:
            self._reorder.pop(key, None)

    def _accept(self, source: int, tag: int, env: _Envelope) -> bool:
        """Checksum-verify and deliver the next-in-sequence envelope.
        Returns False (after requesting a resend) on corruption."""
        key = (source, tag)
        if _checksum(env.payload) != env.checksum:
            self.rstats.record_corruption()
            policy = self.world.retry
            if policy is None or policy.max_retries == 0:
                raise CommCorruption(
                    f"rank {self.rank}: checksum mismatch on tag {tag} "
                    f"from {source} (seq {env.seq})"
                )
            self._request_resend(source, tag, env.seq, force=True)
            return False
        self._in_seq[key] = env.seq + 1
        self._resend_pending.pop(key, None)
        self._route(source, tag, env.payload)
        return True

    def _request_resend(
        self, source: int, tag: int, from_seq: int, force: bool = False
    ) -> None:
        """Ask ``source`` to retransmit its (tag) window from
        ``from_seq``; deduplicated unless ``force`` (corruption and
        timeout escalations always re-request)."""
        key = (source, tag)
        if not force and self._resend_pending.get(key) == from_seq:
            return
        self._resend_pending[key] = from_seq
        self.rstats.record_resend_request()
        self.world.comms[source]._do_resend(self.rank, tag, from_seq)

    def _do_resend(self, dest: int, tag: int, from_seq: int) -> None:
        """Retransmit retained envelopes with ``seq >= from_seq`` (as
        fresh copies; duplicates are discarded by sequence number).
        Runs on the requester's thread — all state is lock-protected."""
        with self._wire_lock:
            envs = [
                (e.seq, e.checksum, e.payload)
                for e in self._sent.get((dest, tag), ())
                if e.seq >= from_seq
            ]
        box = self.world._boxes[(self.rank, dest)]
        for seq, checksum, payload in envs:
            box.put((tag, _Envelope(seq, checksum, _wire_copy(payload))))
        if envs:
            self.rstats.record_resends(len(envs))

    def _recv_reliable(self, source: int, tag: int) -> Any:
        """Blocking receive under the retry state machine: wait in
        backoff-growing slices, requesting a resend whenever a slice
        expires, until the message lands or the budget is exhausted."""
        policy = self.world.retry
        key = (source, tag)
        t0 = time.perf_counter()
        attempt = 0
        deadline = t0 + policy.slice_s(0)
        while True:
            q = self._stash.get(key)
            if q:
                self.stats.add_wait(time.perf_counter() - t0)
                return q.popleft()
            if self.world.is_dead(source):
                raise RankDeadError(
                    f"rank {self.rank}: peer {source} died while waiting "
                    f"for tag {tag}"
                )
            now = time.perf_counter()
            if now >= deadline:
                attempt += 1
                self.rstats.record_retry(attempt)
                if attempt > policy.max_retries:
                    raise CommTimeout(
                        f"rank {self.rank}: no message with tag {tag} from "
                        f"{source} after {policy.max_retries} retries "
                        f"({now - t0:.2f}s)"
                    )
                self._request_resend(
                    source, tag, self._in_seq.get(key, 0), force=True
                )
                deadline = now + policy.slice_s(attempt)
            self._pump(
                source, timeout=max(1e-4, min(_POLL_SLICE_S, deadline - now))
            )

    def _check_rank(self, rank: int, role: str) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"{role} {rank} out of range")

    # -- point to point ---------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0, op: str = "send") -> None:
        self._check_rank(dest, "destination")
        self._deliver(obj, dest, tag, None, op)

    def isend(
        self,
        obj: Any,
        dest: int,
        tag: int = 0,
        chunk_bytes: Optional[int] = None,
        op: str = "send",
    ) -> SendRequest:
        """Non-blocking send: returns immediately, the message drains on
        the background sender thread. As in MPI, ``obj`` must not be
        mutated until the request completes."""
        self._check_rank(dest, "destination")
        req = SendRequest(self)
        self._ensure_tx()
        self._tx_queue.put((obj, dest, tag, chunk_bytes, op, req))
        return req

    def recv(self, source: int, tag: int = 0) -> Any:
        self._check_rank(source, "source")
        if self.world.retry is not None:
            return self._recv_reliable(source, tag)
        key = (source, tag)
        while True:
            q = self._stash.get(key)
            if q:
                return q.popleft()
            t0 = time.perf_counter()
            if not self._pump(source, timeout=self.world.timeout_s):
                raise CommError(
                    f"rank {self.rank} timed out receiving tag {tag} from {source}"
                )
            self.stats.add_wait(time.perf_counter() - t0)

    def irecv(self, source: int, tag: int = 0) -> RecvRequest:
        """Non-blocking receive: matching happens at ``test``/``wait``;
        a message that arrived during compute completes instantly."""
        self._check_rank(source, "source")
        return RecvRequest(self, source, tag)

    def waitall(
        self, requests: Sequence[Request], timeout: Optional[float] = None
    ) -> List[Any]:
        """Wait on every request; returns their values (None for sends)."""
        return waitall(requests, timeout)

    def sendrecv(self, obj: Any, peer: int, tag: int = 0, op: str = "send") -> Any:
        """Symmetric exchange with ``peer`` (deadlock-free: send first,
        then receive — sends never block in this world)."""
        self.send(obj, peer, tag, op=op)
        return self.recv(peer, tag)

    # -- collectives ------------------------------------------------------------
    def barrier(self) -> None:
        try:
            self.world._barrier.wait(timeout=self.world.timeout_s)
        except threading.BrokenBarrierError:
            raise CommError(f"barrier broken at rank {self.rank}") from None

    def bcast(
        self,
        obj: Any,
        root: int = 0,
        ranks: Optional[List[int]] = None,
        op: str = "bcast",
    ) -> Any:
        """Broadcast among ``ranks`` (default: the whole world)."""
        group = list(range(self.size)) if ranks is None else list(ranks)
        if root not in group:
            raise ValueError("root must belong to the broadcast group")
        if self.rank not in group:
            raise ValueError(f"rank {self.rank} is not in the broadcast group")
        if self.rank == root:
            for r in group:
                if r != root:
                    self.send(obj, r, tag=-2, op=op)
            return _copy(obj)
        return self.recv(root, tag=-2)

    def gather(
        self,
        obj: Any,
        root: int = 0,
        ranks: Optional[List[int]] = None,
        op: str = "gather",
    ):
        group = list(range(self.size)) if ranks is None else list(ranks)
        if root not in group:
            raise ValueError("root must belong to the gather group")
        if self.rank == root:
            out = {}
            for r in group:
                out[r] = _copy(obj) if r == root else self.recv(r, tag=-3)
            return [out[r] for r in group]
        self.send(obj, root, tag=-3, op=op)
        return None

    def allreduce(self, value, op: Callable = None, algo: str = "auto"):
        """Reduce-to-all (default: sum).

        ``algo="rd"`` runs recursive doubling for *any* world size:
        power-of-two worlds exchange in log2(P) rounds exactly as
        before; non-power-of-two worlds add the classic pre/post phase
        (the first ``2r`` ranks pair up, the odd partner joining the
        power-of-two core and handing the result back at the end).
        ``algo="gather"`` is the O(P) gather + star-broadcast fallback.
        ``algo="auto"`` keeps the historical selection (recursive
        doubling for power-of-two sizes, gather otherwise).

        The reduction ``op`` must be associative and commutative.
        Values are always combined in the same rank-ordered balanced
        binary tree over the core values — the gather fallback's root
        replays exactly the tree recursive doubling computes — so every
        rank, under either algorithm, produces bit-identical results.
        """
        size = self.size
        if size == 1:
            return _copy(value)
        combine = (lambda a, b: a + b) if op is None else op
        pow2 = size & (size - 1) == 0
        if algo == "auto":
            algo = "rd" if pow2 else "gather"
        if algo not in ("rd", "gather"):
            raise ValueError(f"unknown allreduce algo {algo!r}")
        m = 1  # largest power of two <= size; r pairs fold in/out
        while m * 2 <= size:
            m *= 2
        r = size - m
        if algo == "gather":
            gathered = self.gather(value, root=0, op="allreduce")
            if self.rank == 0:
                core = [
                    combine(gathered[2 * j], gathered[2 * j + 1])
                    for j in range(r)
                ] + gathered[2 * r :]
                while len(core) > 1:  # the rank-ordered balanced tree
                    core = [
                        combine(core[i], core[i + 1])
                        for i in range(0, len(core), 2)
                    ]
                return self.bcast(core[0], root=0, op="allreduce")
            return self.bcast(None, root=0, op="allreduce")
        acc = _copy(value)
        if self.rank < 2 * r:
            if self.rank % 2 == 0:
                # Pre-phase even rank: contribute and wait for the result.
                self.send(acc, self.rank + 1, tag=-5, op="allreduce")
                return self.recv(self.rank + 1, tag=-6)
            acc = combine(self.recv(self.rank - 1, tag=-5), acc)
            idx = self.rank // 2
        else:
            idx = self.rank - r
        mask = 1
        while mask < m:
            peer_idx = idx ^ mask
            peer = 2 * peer_idx + 1 if peer_idx < r else peer_idx + r
            theirs = self.sendrecv(acc, peer, tag=-5, op="allreduce")
            lo, hi = (acc, theirs) if idx < peer_idx else (theirs, acc)
            acc = combine(lo, hi)
            mask <<= 1
        if self.rank < 2 * r:  # post-phase: hand the even partner its copy
            self.send(acc, self.rank - 1, tag=-6, op="allreduce")
        return acc
