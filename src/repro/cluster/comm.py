"""In-process message passing: the MPI stand-in for multi-node runs.

Each rank runs in its own thread; point-to-point messages travel through
per-(source, destination) FIFO queues with tag matching, mirroring the
mpi4py calls the real system would use (``send``/``recv``/``sendrecv``,
``bcast``, ``gather``, ``barrier``, ``allreduce``). NumPy payloads are
copied on send, so ranks never alias each other's buffers — the same
isolation a real network gives.

Every communicator records traffic statistics (messages and bytes by
operation); the cluster timing model turns those into FDR InfiniBand
transfer times.

Determinism and safety: queue operations use a global timeout so a
deadlocked exchange fails the test with :class:`CommError` instead of
hanging, and ``World.run`` re-raises the first rank exception.
"""

from __future__ import annotations

import queue
import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover — hints only
    from repro.obs.metrics import MetricsRegistry

#: Seconds a blocking receive waits before declaring a deadlock.
DEFAULT_TIMEOUT_S = 60.0


class CommError(RuntimeError):
    """A communication failure (timeout / mismatched exchange)."""


@dataclass
class CommStats:
    """Traffic accounting for one rank."""

    messages_sent: int = 0
    bytes_sent: int = 0
    by_op: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, op: str, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes
        self.by_op[op] += nbytes

    def publish(self, registry: "MetricsRegistry", prefix: str = "comm") -> None:
        """Write this rank's traffic accounting into ``registry``."""
        registry.counter(f"{prefix}.messages").inc(self.messages_sent)
        registry.counter(f"{prefix}.bytes").inc(self.bytes_sent)
        for op in sorted(self.by_op):
            registry.counter(f"{prefix}.bytes.{op}").inc(self.by_op[op])


def _payload_bytes(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (list, tuple)):
        return sum(_payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_payload_bytes(v) for v in obj.values())
    return 64  # headers / scalars / pickled small objects


def _copy(obj: Any) -> Any:
    """Deep-copy NumPy content so ranks cannot alias buffers."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_copy(x) for x in obj)
    if isinstance(obj, list):
        return [_copy(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _copy(v) for k, v in obj.items()}
    return obj


class World:
    """A fixed-size set of ranks with mailboxes and barrier state."""

    def __init__(self, size: int, timeout_s: float = DEFAULT_TIMEOUT_S):
        if size < 1:
            raise ValueError("world size must be positive")
        self.size = size
        self.timeout_s = timeout_s
        self._boxes: Dict[Tuple[int, int], queue.Queue] = {
            (s, d): queue.Queue() for s in range(size) for d in range(size)
        }
        self._barrier = threading.Barrier(size)
        self.comms = [Comm(self, rank) for rank in range(size)]

    def run(self, fn: Callable, *args, **kwargs) -> List[Any]:
        """SPMD-launch ``fn(comm, *args, **kwargs)`` on every rank and
        return the per-rank results (first exception re-raised)."""
        results: List[Any] = [None] * self.size
        errors: List[Optional[BaseException]] = [None] * self.size

        def runner(rank: int) -> None:
            try:
                results[rank] = fn(self.comms[rank], *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors[rank] = exc
                self._barrier.abort()

        threads = [
            threading.Thread(target=runner, args=(r,), daemon=True)
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=self.timeout_s * 4)
            if t.is_alive():
                raise CommError("rank thread did not terminate (deadlock?)")
        for exc in errors:
            if exc is not None:
                raise exc
        return results


class Comm:
    """One rank's endpoint."""

    def __init__(self, world: World, rank: int):
        self.world = world
        self.rank = rank
        self.stats = CommStats()
        self._stash: List[Tuple[int, int, Any]] = []  # out-of-order messages

    @property
    def size(self) -> int:
        return self.world.size

    # -- point to point ---------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"destination {dest} out of range")
        payload = _copy(obj)
        self.stats.record("send", _payload_bytes(payload))
        self.world._boxes[(self.rank, dest)].put((tag, payload))

    def recv(self, source: int, tag: int = 0) -> Any:
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range")
        # Check stashed out-of-order messages first.
        for i, (s, t, payload) in enumerate(self._stash):
            if s == source and t == tag:
                del self._stash[i]
                return payload
        box = self.world._boxes[(source, self.rank)]
        deadline = self.world.timeout_s
        while True:
            try:
                got_tag, payload = box.get(timeout=deadline)
            except queue.Empty:
                raise CommError(
                    f"rank {self.rank} timed out receiving tag {tag} from {source}"
                ) from None
            if got_tag == tag:
                return payload
            self._stash.append((source, got_tag, payload))

    def sendrecv(self, obj: Any, peer: int, tag: int = 0) -> Any:
        """Symmetric exchange with ``peer`` (deadlock-free: send first,
        then receive — sends never block in this world)."""
        self.send(obj, peer, tag)
        return self.recv(peer, tag)

    # -- collectives ------------------------------------------------------------
    def barrier(self) -> None:
        try:
            self.world._barrier.wait(timeout=self.world.timeout_s)
        except threading.BrokenBarrierError:
            raise CommError(f"barrier broken at rank {self.rank}") from None

    def bcast(self, obj: Any, root: int = 0, ranks: Optional[List[int]] = None) -> Any:
        """Broadcast among ``ranks`` (default: the whole world)."""
        group = list(range(self.size)) if ranks is None else list(ranks)
        if root not in group:
            raise ValueError("root must belong to the broadcast group")
        if self.rank not in group:
            raise ValueError(f"rank {self.rank} is not in the broadcast group")
        if self.rank == root:
            for r in group:
                if r != root:
                    self.send(obj, r, tag=-2)
            self.stats.by_op["bcast"] += _payload_bytes(obj) * (len(group) - 1)
            return _copy(obj)
        return self.recv(root, tag=-2)

    def gather(self, obj: Any, root: int = 0, ranks: Optional[List[int]] = None):
        group = list(range(self.size)) if ranks is None else list(ranks)
        if root not in group:
            raise ValueError("root must belong to the gather group")
        if self.rank == root:
            out = {}
            for r in group:
                out[r] = _copy(obj) if r == root else self.recv(r, tag=-3)
            return [out[r] for r in group]
        self.send(obj, root, tag=-3)
        return None

    def allreduce(self, value, op: Callable = None):
        """Reduce-to-all of picklable values (default: sum)."""
        gathered = self.gather(value, root=0)
        if self.rank == 0:
            if op is None:
                total = sum(gathered[1:], start=gathered[0])
            else:
                total = gathered[0]
                for v in gathered[1:]:
                    total = op(total, v)
            result = self.bcast(total, root=0)
        else:
            result = self.bcast(None, root=0)
        return result
