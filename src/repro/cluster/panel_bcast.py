"""Panel broadcast along process rows.

After the stage-k panel is factored in process column ``k mod Q``, every
other column needs the L rows matching *its own* local rows before it
can run the trailing update. Each rank of the owner column therefore
broadcasts its local slice of the factored panel along its process row —
the "L broadcast" of the HPL stage (and the ``t_lbcast`` term of the
hybrid timing model).
"""

from __future__ import annotations

from typing import Any

from repro.cluster.comm import Comm
from repro.cluster.grid import ProcessGrid


def bcast_along_row(
    comm: Comm, grid: ProcessGrid, payload: Any, owner_col: int
) -> Any:
    """Broadcast ``payload`` from the ``owner_col`` member of this rank's
    process row to the whole row; returns the received payload.

    Every rank of the grid must call this (SPMD).
    """
    my_row, _my_col = grid.coords(comm.rank)
    root = grid.rank_of(my_row, owner_col)
    return comm.bcast(payload, root=root, ranks=grid.row_ranks(my_row))


def bcast_along_col(
    comm: Comm, grid: ProcessGrid, payload: Any, owner_row: int
) -> Any:
    """Broadcast down this rank's process column from ``owner_row`` — the
    U broadcast of the HPL stage (``t_ubcast``)."""
    _my_row, my_col = grid.coords(comm.rank)
    root = grid.rank_of(owner_row, my_col)
    return comm.bcast(payload, root=root, ranks=grid.col_ranks(my_col))
