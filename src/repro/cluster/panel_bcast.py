"""Panel broadcast along process rows.

After the stage-k panel is factored in process column ``k mod Q``, every
other column needs the L rows matching *its own* local rows before it
can run the trailing update. Each rank of the owner column therefore
broadcasts its local slice of the factored panel along its process row —
the "L broadcast" of the HPL stage (and the ``t_lbcast`` term of the
hybrid timing model).

The ``ibcast_panel_*`` helpers are the non-blocking counterpart the
look-ahead schedule uses: the owner *starts* the broadcast with
``isend`` (star fan-out, or a store-and-forward ring for HPL's
"ring-modified" shape) and returns immediately; receivers post an
``irecv`` up front and collect the panel one stage later, after their
trailing update has been running while the message drained.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.cluster.comm import Comm, RecvRequest, SendRequest
from repro.cluster.grid import ProcessGrid


def bcast_along_row(
    comm: Comm, grid: ProcessGrid, payload: Any, owner_col: int
) -> Any:
    """Broadcast ``payload`` from the ``owner_col`` member of this rank's
    process row to the whole row; returns the received payload.

    Every rank of the grid must call this (SPMD).
    """
    my_row, _my_col = grid.coords(comm.rank)
    root = grid.rank_of(my_row, owner_col)
    return comm.bcast(payload, root=root, ranks=grid.row_ranks(my_row))


def bcast_along_col(
    comm: Comm, grid: ProcessGrid, payload: Any, owner_row: int
) -> Any:
    """Broadcast down this rank's process column from ``owner_row`` — the
    U broadcast of the HPL stage (``t_ubcast``)."""
    _my_row, my_col = grid.coords(comm.rank)
    root = grid.rank_of(owner_row, my_col)
    return comm.bcast(payload, root=root, ranks=grid.col_ranks(my_col))


# -- non-blocking look-ahead panel broadcast ------------------------------------


def _ring_order(grid: ProcessGrid, my_row: int, owner_col: int) -> List[int]:
    """This process row's ranks, rotated so the owner column leads."""
    q = grid.q
    return [grid.rank_of(my_row, (owner_col + j) % q) for j in range(q)]


def ibcast_panel_start(
    comm: Comm,
    grid: ProcessGrid,
    payload: Any,
    owner_col: int,
    tag: int,
    algo: str = "star",
    chunk_bytes: Optional[int] = None,
) -> List[SendRequest]:
    """Owner-column side: start broadcasting ``payload`` along this
    rank's process row without blocking.

    ``star`` fans out one chunked ``isend`` per row peer; ``ring-mod``
    (and ``ring``) send only to the ring successor — every receiver
    forwards in :func:`ibcast_panel_finish`, store-and-forward, so each
    link carries the payload once and the forwarding drains behind the
    next stage's compute. Returns the send requests to ``waitall`` on
    before the run tears down.
    """
    my_row, _ = grid.coords(comm.rank)
    order = _ring_order(grid, my_row, owner_col)
    if len(order) == 1:
        return []
    if algo in ("ring", "ring-mod"):
        dests = [order[1]]
    else:  # star fan-out (also used for "binomial" — depth 1 in q<=2 grids)
        dests = order[1:]
    return [
        comm.isend(payload, dest, tag=tag, chunk_bytes=chunk_bytes, op="bcast")
        for dest in dests
    ]


def ibcast_panel_post(
    comm: Comm,
    grid: ProcessGrid,
    owner_col: int,
    tag: int,
    algo: str = "star",
) -> RecvRequest:
    """Receiver side: post the panel ``irecv`` (from the owner for
    ``star``, from the ring predecessor for ``ring``/``ring-mod``)."""
    my_row, _ = grid.coords(comm.rank)
    order = _ring_order(grid, my_row, owner_col)
    rel = order.index(comm.rank)
    source = order[rel - 1] if algo in ("ring", "ring-mod") else order[0]
    return comm.irecv(source, tag=tag)


def ibcast_panel_finish(
    comm: Comm,
    grid: ProcessGrid,
    request: RecvRequest,
    owner_col: int,
    tag: int,
    algo: str = "star",
    chunk_bytes: Optional[int] = None,
) -> Tuple[Any, List[SendRequest]]:
    """Receiver side: wait for the panel; ring shapes forward it to the
    ring successor with ``isend`` before returning. Returns the payload
    and any forwarding requests (to ``waitall`` on at teardown)."""
    payload = request.wait()
    sends: List[SendRequest] = []
    if algo in ("ring", "ring-mod"):
        my_row, _ = grid.coords(comm.rank)
        order = _ring_order(grid, my_row, owner_col)
        rel = order.index(comm.rank)
        if rel + 1 < len(order):
            sends.append(
                comm.isend(
                    payload, order[rel + 1], tag=tag, chunk_bytes=chunk_bytes, op="bcast"
                )
            )
    return payload, sends
