"""P x Q process grids and the 2-D block-cyclic distribution.

HPL distributes the global matrix in nb x nb blocks over a P x Q grid:
block (I, J) lives on process (I mod P, J mod Q), at local block
coordinates (I // P, J // Q). Table III's runs use grids from 1 x 1 to
10 x 10 ("the number of used nodes can be derived by multiplying P and
Q"). :class:`BlockCyclic` provides the index algebra every distributed
kernel needs: ownership, local shapes, and global<->local row/column
maps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ProcessGrid:
    """A P x Q logical grid over ``p * q`` ranks (row-major rank order)."""

    p: int
    q: int

    def __post_init__(self):
        if self.p < 1 or self.q < 1:
            raise ValueError("grid dimensions must be positive")

    @property
    def size(self) -> int:
        return self.p * self.q

    def coords(self, rank: int) -> tuple:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        return divmod(rank, self.q)

    def rank_of(self, row: int, col: int) -> int:
        if not (0 <= row < self.p and 0 <= col < self.q):
            raise ValueError(f"coords ({row}, {col}) out of range")
        return row * self.q + col

    def row_ranks(self, row: int) -> list:
        """Ranks of one process row (panel broadcast peers)."""
        return [self.rank_of(row, c) for c in range(self.q)]

    def col_ranks(self, col: int) -> list:
        """Ranks of one process column (swap / U-broadcast peers)."""
        return [self.rank_of(r, col) for r in range(self.p)]


@dataclass(frozen=True)
class BlockCyclic:
    """Block-cyclic index algebra for an n x n matrix with nb x nb blocks."""

    n: int
    nb: int
    grid: ProcessGrid

    def __post_init__(self):
        if self.n < 1 or self.nb < 1:
            raise ValueError("matrix and block sizes must be positive")

    @property
    def n_blocks(self) -> int:
        return -(-self.n // self.nb)

    # -- ownership --------------------------------------------------------------
    def owner_of_block(self, bi: int, bj: int) -> tuple:
        """(grid row, grid col) owning block (bi, bj)."""
        self._check_block(bi, bj)
        return (bi % self.grid.p, bj % self.grid.q)

    def row_owner(self, i: int) -> int:
        """Grid row owning global matrix row i."""
        return (i // self.nb) % self.grid.p

    def col_owner(self, j: int) -> int:
        """Grid column owning global matrix column j."""
        return (j // self.nb) % self.grid.q

    # -- local index maps ----------------------------------------------------------
    def local_rows(self, grid_row: int) -> np.ndarray:
        """Global row indices stored on a grid row, in storage order."""
        return self._local_indices(grid_row, self.grid.p)

    def local_cols(self, grid_col: int) -> np.ndarray:
        """Global column indices stored on a grid column, in storage order."""
        return self._local_indices(grid_col, self.grid.q)

    def _local_indices(self, coord: int, parties: int) -> np.ndarray:
        out = []
        for blk in range(coord, self.n_blocks, parties):
            lo = blk * self.nb
            out.extend(range(lo, min(lo + self.nb, self.n)))
        return np.asarray(out, dtype=np.int64)

    def local_shape(self, rank: int) -> tuple:
        gr, gc = self.grid.coords(rank)
        return (self.local_rows(gr).size, self.local_cols(gc).size)

    def global_to_local_row(self, i: int) -> int:
        """Storage position of global row i on its owner."""
        self._check_index(i)
        blk, off = divmod(i, self.nb)
        local_blk = blk // self.grid.p
        # Full blocks before this one on the owner all have nb rows.
        return local_blk * self.nb + off

    def global_to_local_col(self, j: int) -> int:
        self._check_index(j)
        blk, off = divmod(j, self.nb)
        return (blk // self.grid.q) * self.nb + off

    def _check_block(self, bi: int, bj: int) -> None:
        if not (0 <= bi < self.n_blocks and 0 <= bj < self.n_blocks):
            raise IndexError(f"block ({bi}, {bj}) out of range")

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise IndexError(f"index {i} out of range for n={self.n}")
