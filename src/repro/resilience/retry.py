"""Retry policy and resilience accounting for the hardened channel.

:class:`RetryPolicy` parameterises the reliable-delivery state machine
in :mod:`repro.cluster.comm`: how long a blocking receive waits before
suspecting loss (``comm_timeout_s``), how many resend rounds it runs
(``max_retries``) and how the wait grows between rounds
(``backoff_factor``). :class:`CommResilienceStats` is the matching
per-rank counter block — retries, resend traffic, detected corruption,
discarded duplicates — harvested into the run's ``resilience`` report.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout / backoff / bounded-retry parameters for reliable recv.

    Attempt ``i`` (0-based) of a blocking receive waits
    ``comm_timeout_s * backoff_factor**i`` seconds before requesting a
    resend; after ``max_retries`` resend rounds the receive fails with
    :class:`~repro.cluster.comm.CommTimeout`. ``max_retries=0`` turns
    detection-only mode on: corruption raises
    :class:`~repro.cluster.comm.CommCorruption` instead of healing.
    """

    comm_timeout_s: float = 2.0
    max_retries: int = 3
    backoff_factor: float = 2.0

    def __post_init__(self):
        if self.comm_timeout_s <= 0:
            raise ValueError("comm_timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")

    def slice_s(self, attempt: int) -> float:
        """The wait budget for 0-based receive attempt ``attempt``."""
        return self.comm_timeout_s * self.backoff_factor**attempt


class CommResilienceStats:
    """Thread-safe per-rank counters for the reliable channel."""

    def __init__(self):
        self._lock = threading.Lock()
        #: Receive attempts that timed out and escalated (all ranks sum
        #: into the run's ``resilience.retries``).
        self.retries = 0
        #: Resend requests this rank issued to senders.
        self.resend_requests = 0
        #: Envelopes this rank re-transmitted on request.
        self.resends = 0
        #: Checksum mismatches detected on receive.
        self.corruption_detected = 0
        #: Duplicate envelopes discarded by sequence number.
        self.duplicates_dropped = 0
        #: attempt-number -> how many receives needed that many retries.
        self.retry_histogram: Dict[int, int] = {}

    def record_retry(self, attempt: int) -> None:
        """Count one timed-out receive attempt (1-based ``attempt``)."""
        with self._lock:
            self.retries += 1
            self.retry_histogram[attempt] = self.retry_histogram.get(attempt, 0) + 1

    def record_resend_request(self) -> None:
        """Count one resend request issued by this receiver."""
        with self._lock:
            self.resend_requests += 1

    def record_resends(self, n: int) -> None:
        """Count ``n`` envelopes re-transmitted by this sender."""
        with self._lock:
            self.resends += n

    def record_corruption(self) -> None:
        """Count one checksum mismatch caught on receive."""
        with self._lock:
            self.corruption_detected += 1

    def record_duplicate(self) -> None:
        """Count one duplicate envelope discarded on receive."""
        with self._lock:
            self.duplicates_dropped += 1

    def snapshot(self) -> Dict[str, object]:
        """The counters as a plain dict (histogram copied)."""
        with self._lock:
            return {
                "retries": self.retries,
                "resend_requests": self.resend_requests,
                "resends": self.resends,
                "corruption_detected": self.corruption_detected,
                "duplicates_dropped": self.duplicates_dropped,
                "retry_histogram": dict(self.retry_histogram),
            }
