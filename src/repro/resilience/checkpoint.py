"""Panel-boundary checkpoint store for the distributed factorization.

Every rank serialises its restart state — local tiles, accumulated
pivots, progress cursor, comm epoch — at panel boundaries into a
:class:`CheckpointStore`. The store keeps each checkpoint as a byte
blob in a flat binary container (a JSON index of names/dtypes/shapes
followed by the raw array bytes — per-blob encode/decode is a memcpy,
an order of magnitude faster than the ``np.savez`` container it
replaces, whose legacy blobs still load), either in memory (default:
rollback across in-process restart attempts) or on disk (``dir=...``:
survives the process). Saves and loads deep-copy through the
serialised bytes, so a restored state can never alias live rank
buffers.

State dicts may hold NumPy arrays, ``int``/``float`` scalars and flat
lists of arrays; :func:`pack_state` / :func:`unpack_state` do the
key-prefixed flattening (``a:`` array, ``s:`` scalar, ``l:`` list
element) so arbitrary combinations round-trip exactly — including
dtypes, which is what makes rollback-recovery bitwise reproducible.

Blobs additionally carry a :class:`LayoutHeader` — the block-cyclic
geometry ``(p, q, nb, n, dtype)`` the state was distributed under
(``h:`` keys). A resume that loads a checkpoint written under a
different geometry gets a :class:`CheckpointLayoutError` naming both
layouts instead of a downstream shape crash, and the elastic
redistribution engine (:mod:`repro.elastic`) reads the header to know
which relayout plan applies to a cut.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

#: Container magic of the flat binary blob encoding (anything else is
#: treated as a legacy ``np.savez`` blob and loaded through ``np.load``).
_BLOB_MAGIC = b"RCK1"


def _encode_flat(flat: Dict[str, np.ndarray]) -> bytes:
    """Serialise packed arrays: magic, JSON index, raw array bytes."""
    index = []
    chunks = []
    for name, value in flat.items():
        # asarray (not ascontiguousarray): 0-d scalars must stay 0-d.
        arr = np.asarray(value, order="C")
        data = arr.tobytes()
        index.append({
            "name": name,
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "nbytes": len(data),
        })
        chunks.append(data)
    head = json.dumps(index, separators=(",", ":")).encode()
    return b"".join(
        [_BLOB_MAGIC, len(head).to_bytes(8, "little"), head, *chunks]
    )


def _decode_flat(blob: bytes) -> Dict[str, np.ndarray]:
    """Invert :func:`_encode_flat` into fresh, writable arrays."""
    if blob[:4] != _BLOB_MAGIC:
        # Legacy np.savez container from an older store.
        with np.load(io.BytesIO(blob)) as npz:
            return {name: npz[name] for name in npz.files}
    head_len = int.from_bytes(blob[4:12], "little")
    index = json.loads(blob[12:12 + head_len].decode())
    flat: Dict[str, np.ndarray] = {}
    offset = 12 + head_len
    for entry in index:
        data = blob[offset:offset + entry["nbytes"]]
        offset += entry["nbytes"]
        flat[entry["name"]] = (
            np.frombuffer(data, dtype=np.dtype(entry["dtype"]))
            .reshape(entry["shape"])
            .copy()
        )
    return flat


class CheckpointLayoutError(RuntimeError):
    """A checkpoint's recorded layout does not match the resuming run.

    Raised instead of letting a mismatched ``a_loc`` shape crash deep
    inside the factorization: the message names both the stored and the
    expected ``(p, q, nb, n, dtype)`` so the caller can tell a stale
    store from a grid mismatch — and knows to route through the elastic
    redistribution engine when the geometry changed on purpose.
    """


@dataclass(frozen=True)
class LayoutHeader:
    """The block-cyclic geometry a checkpoint blob was written under."""

    p: int
    q: int
    nb: int
    n: int
    dtype: str = "float64"

    def describe(self) -> str:
        """One human token: ``2x4 nb=16 n=96 float64``."""
        return f"{self.p}x{self.q} nb={self.nb} n={self.n} {self.dtype}"

    def to_flat(self) -> Dict[str, np.ndarray]:
        """The header as ``h:``-prefixed arrays for the blob codec."""
        return {
            "h:geometry": np.asarray([self.p, self.q, self.nb, self.n]),
            "h:dtype": np.asarray(self.dtype),
        }

    @classmethod
    def from_flat(cls, flat: Dict[str, np.ndarray]) -> "Optional[LayoutHeader]":
        """Read the header back from packed arrays (None if absent)."""
        if "h:geometry" not in flat:
            return None
        p, q, nb, n = (int(v) for v in np.asarray(flat["h:geometry"]))
        dtype = str(np.asarray(flat.get("h:dtype", "float64")))
        return cls(p=p, q=q, nb=nb, n=n, dtype=dtype)


def pack_state(
    state: Dict[str, object], layout: Optional[LayoutHeader] = None
) -> Dict[str, np.ndarray]:
    """Flatten a state dict into named arrays for the blob codec.

    ``layout`` (when given) rides along under reserved ``h:`` keys, so
    every blob knows the grid geometry it was written under.
    """
    flat: Dict[str, np.ndarray] = {}
    if layout is not None:
        flat.update(layout.to_flat())
    for key, value in state.items():
        if ":" in key:
            raise ValueError(f"state key {key!r} must not contain ':'")
        if value is None:
            continue
        if isinstance(value, np.ndarray):
            flat[f"a:{key}"] = value
        elif isinstance(value, (int, float, np.integer, np.floating)):
            flat[f"s:{key}"] = np.asarray(value)
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                flat[f"l:{key}:{i}"] = np.asarray(item)
            flat[f"s:{key}#len"] = np.asarray(len(value))
        else:
            raise TypeError(f"unsupported checkpoint value for {key!r}")
    return flat


def unpack_state(flat: Dict[str, np.ndarray]) -> Dict[str, object]:
    """Invert :func:`pack_state` (lists come back as Python lists).

    Reserved ``h:`` header keys are metadata, not state — read them
    with :meth:`LayoutHeader.from_flat`; they never appear here.
    """
    state: Dict[str, object] = {}
    lists: Dict[str, Dict[int, np.ndarray]] = {}
    for name in flat:
        prefix, _, rest = name.partition(":")
        if prefix == "a":
            state[rest] = np.asarray(flat[name])
        elif prefix == "s":
            value = np.asarray(flat[name])
            if rest.endswith("#len"):
                state.setdefault(rest[: -len("#len")], [])
            else:
                state[rest] = value.item()
        elif prefix == "l":
            key, _, idx = rest.rpartition(":")
            lists.setdefault(key, {})[int(idx)] = np.asarray(flat[name])
    for key, items in lists.items():
        state[key] = [items[i] for i in sorted(items)]
    return state


class CheckpointStats:
    """Thread-safe save/restore accounting for one store."""

    def __init__(self):
        self._lock = threading.Lock()
        self.saves = 0
        self.bytes_saved = 0
        self.save_time_s = 0.0
        self.restores = 0
        self.bytes_restored = 0

    def record_save(self, nbytes: int, seconds: float) -> None:
        """Count one checkpoint write of ``nbytes``."""
        with self._lock:
            self.saves += 1
            self.bytes_saved += nbytes
            self.save_time_s += seconds

    def record_restore(self, nbytes: int) -> None:
        """Count one checkpoint read of ``nbytes``."""
        with self._lock:
            self.restores += 1
            self.bytes_restored += nbytes

    def snapshot(self) -> Dict[str, object]:
        """The counters as a plain dict."""
        with self._lock:
            return {
                "checkpoints": self.saves,
                "checkpoint_bytes": self.bytes_saved,
                "checkpoint_time_s": self.save_time_s,
                "restores": self.restores,
                "restored_bytes": self.bytes_restored,
            }


class CheckpointStore:
    """Keyed (rank, cursor) checkpoint blobs, in memory or on disk.

    ``cursor`` is the factorization's progress marker (the next stage
    index): a checkpoint at cursor ``k`` captures a rank's state with
    every stage ``< k`` fully applied. :meth:`latest_complete` finds the
    newest cursor at which *every* rank saved — the consistent cut a
    restart rolls back to.
    """

    def __init__(self, dir: Optional[str] = None):
        self.dir = dir
        if dir is not None:
            os.makedirs(dir, exist_ok=True)
        self._blobs: Dict[tuple, bytes] = {}
        self._lock = threading.Lock()
        self.stats = CheckpointStats()

    def _path(self, rank: int, cursor: int) -> str:
        return os.path.join(self.dir, f"ckpt_r{rank}_c{cursor}.npz")

    def save(
        self,
        rank: int,
        cursor: int,
        state: Dict[str, object],
        layout: Optional[LayoutHeader] = None,
    ) -> int:
        """Serialise ``state`` for ``(rank, cursor)``; returns bytes.

        ``layout`` records the block-cyclic geometry inside the blob,
        letting :meth:`load` refuse a mismatched resume.
        """
        t0 = time.perf_counter()
        blob = _encode_flat(pack_state(state, layout=layout))
        if self.dir is not None:
            with open(self._path(rank, cursor), "wb") as fh:
                fh.write(blob)
        with self._lock:
            self._blobs[(rank, cursor)] = blob
        self.stats.record_save(len(blob), time.perf_counter() - t0)
        return len(blob)

    def _read_flat(self, rank: int, cursor: int) -> Dict[str, np.ndarray]:
        with self._lock:
            blob = self._blobs.get((rank, cursor))
        if blob is None and self.dir is not None:
            path = self._path(rank, cursor)
            if os.path.isfile(path):
                with open(path, "rb") as fh:
                    blob = fh.read()
        if blob is None:
            raise KeyError(f"no checkpoint for rank {rank} at cursor {cursor}")
        flat = _decode_flat(blob)
        self.stats.record_restore(len(blob))
        return flat

    def load(
        self,
        rank: int,
        cursor: int,
        expect_layout: Optional[LayoutHeader] = None,
    ) -> Dict[str, object]:
        """Deserialise the ``(rank, cursor)`` state (fresh copies).

        With ``expect_layout``, a blob written under any *other*
        recorded geometry raises :class:`CheckpointLayoutError` —
        headerless legacy blobs still load (nothing to check against).
        """
        flat = self._read_flat(rank, cursor)
        if expect_layout is not None:
            stored = LayoutHeader.from_flat(flat)
            if stored is not None and stored != expect_layout:
                raise CheckpointLayoutError(
                    f"checkpoint for rank {rank} at cursor {cursor} was "
                    f"written under layout {stored.describe()} but this run "
                    f"expects {expect_layout.describe()}; redistribute the "
                    "cut (repro.elastic) or resume on the original grid"
                )
        return unpack_state(flat)

    def layout(self, rank: int, cursor: int) -> Optional[LayoutHeader]:
        """The layout header of one blob (None for legacy blobs)."""
        return LayoutHeader.from_flat(self._read_flat(rank, cursor))

    def cursors(self, rank: int) -> List[int]:
        """Sorted cursors this rank has checkpoints for."""
        with self._lock:
            found = {c for (r, c) in self._blobs if r == rank}
        if self.dir is not None and os.path.isdir(self.dir):
            prefix, suffix = f"ckpt_r{rank}_c", ".npz"
            for name in os.listdir(self.dir):
                if name.startswith(prefix) and name.endswith(suffix):
                    found.add(int(name[len(prefix): -len(suffix)]))
        return sorted(found)

    def latest_complete(self, world_size: int) -> Optional[int]:
        """Newest cursor checkpointed by all ``world_size`` ranks."""
        common: Optional[set] = None
        for rank in range(world_size):
            mine = set(self.cursors(rank))
            common = mine if common is None else (common & mine)
            if not common:
                return None
        return max(common) if common else None
