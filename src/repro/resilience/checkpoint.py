"""Panel-boundary checkpoint store for the distributed factorization.

Every rank serialises its restart state — local tiles, accumulated
pivots, progress cursor, comm epoch — at panel boundaries into a
:class:`CheckpointStore`. The store keeps each checkpoint as an
``.npz``-encoded byte blob, either in memory (default: rollback across
in-process restart attempts) or on disk (``dir=...``: survives the
process). Saves and loads deep-copy through the serialised bytes, so a
restored state can never alias live rank buffers.

State dicts may hold NumPy arrays, ``int``/``float`` scalars and flat
lists of arrays; :func:`pack_state` / :func:`unpack_state` do the
key-prefixed flattening (``a:`` array, ``s:`` scalar, ``l:`` list
element) so arbitrary combinations round-trip exactly — including
dtypes, which is what makes rollback-recovery bitwise reproducible.
"""

from __future__ import annotations

import io
import os
import threading
import time
from typing import Dict, List, Optional

import numpy as np


def pack_state(state: Dict[str, object]) -> Dict[str, np.ndarray]:
    """Flatten a state dict into named arrays for ``np.savez``."""
    flat: Dict[str, np.ndarray] = {}
    for key, value in state.items():
        if ":" in key:
            raise ValueError(f"state key {key!r} must not contain ':'")
        if value is None:
            continue
        if isinstance(value, np.ndarray):
            flat[f"a:{key}"] = value
        elif isinstance(value, (int, float, np.integer, np.floating)):
            flat[f"s:{key}"] = np.asarray(value)
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                flat[f"l:{key}:{i}"] = np.asarray(item)
            flat[f"s:{key}#len"] = np.asarray(len(value))
        else:
            raise TypeError(f"unsupported checkpoint value for {key!r}")
    return flat


def unpack_state(flat: Dict[str, np.ndarray]) -> Dict[str, object]:
    """Invert :func:`pack_state` (lists come back as Python lists)."""
    state: Dict[str, object] = {}
    lists: Dict[str, Dict[int, np.ndarray]] = {}
    for name in flat:
        prefix, _, rest = name.partition(":")
        if prefix == "a":
            state[rest] = np.asarray(flat[name])
        elif prefix == "s":
            value = np.asarray(flat[name])
            if rest.endswith("#len"):
                state.setdefault(rest[: -len("#len")], [])
            else:
                state[rest] = value.item()
        elif prefix == "l":
            key, _, idx = rest.rpartition(":")
            lists.setdefault(key, {})[int(idx)] = np.asarray(flat[name])
    for key, items in lists.items():
        state[key] = [items[i] for i in sorted(items)]
    return state


class CheckpointStats:
    """Thread-safe save/restore accounting for one store."""

    def __init__(self):
        self._lock = threading.Lock()
        self.saves = 0
        self.bytes_saved = 0
        self.save_time_s = 0.0
        self.restores = 0
        self.bytes_restored = 0

    def record_save(self, nbytes: int, seconds: float) -> None:
        """Count one checkpoint write of ``nbytes``."""
        with self._lock:
            self.saves += 1
            self.bytes_saved += nbytes
            self.save_time_s += seconds

    def record_restore(self, nbytes: int) -> None:
        """Count one checkpoint read of ``nbytes``."""
        with self._lock:
            self.restores += 1
            self.bytes_restored += nbytes

    def snapshot(self) -> Dict[str, object]:
        """The counters as a plain dict."""
        with self._lock:
            return {
                "checkpoints": self.saves,
                "checkpoint_bytes": self.bytes_saved,
                "checkpoint_time_s": self.save_time_s,
                "restores": self.restores,
                "restored_bytes": self.bytes_restored,
            }


class CheckpointStore:
    """Keyed (rank, cursor) checkpoint blobs, in memory or on disk.

    ``cursor`` is the factorization's progress marker (the next stage
    index): a checkpoint at cursor ``k`` captures a rank's state with
    every stage ``< k`` fully applied. :meth:`latest_complete` finds the
    newest cursor at which *every* rank saved — the consistent cut a
    restart rolls back to.
    """

    def __init__(self, dir: Optional[str] = None):
        self.dir = dir
        if dir is not None:
            os.makedirs(dir, exist_ok=True)
        self._blobs: Dict[tuple, bytes] = {}
        self._lock = threading.Lock()
        self.stats = CheckpointStats()

    def _path(self, rank: int, cursor: int) -> str:
        return os.path.join(self.dir, f"ckpt_r{rank}_c{cursor}.npz")

    def save(self, rank: int, cursor: int, state: Dict[str, object]) -> int:
        """Serialise ``state`` for ``(rank, cursor)``; returns bytes."""
        t0 = time.perf_counter()
        buf = io.BytesIO()
        np.savez(buf, **pack_state(state))
        blob = buf.getvalue()
        if self.dir is not None:
            with open(self._path(rank, cursor), "wb") as fh:
                fh.write(blob)
        with self._lock:
            self._blobs[(rank, cursor)] = blob
        self.stats.record_save(len(blob), time.perf_counter() - t0)
        return len(blob)

    def load(self, rank: int, cursor: int) -> Dict[str, object]:
        """Deserialise the ``(rank, cursor)`` state (fresh copies)."""
        with self._lock:
            blob = self._blobs.get((rank, cursor))
        if blob is None and self.dir is not None:
            path = self._path(rank, cursor)
            if os.path.isfile(path):
                with open(path, "rb") as fh:
                    blob = fh.read()
        if blob is None:
            raise KeyError(f"no checkpoint for rank {rank} at cursor {cursor}")
        with np.load(io.BytesIO(blob)) as npz:
            flat = {name: npz[name] for name in npz.files}
        self.stats.record_restore(len(blob))
        return unpack_state(flat)

    def cursors(self, rank: int) -> List[int]:
        """Sorted cursors this rank has checkpoints for."""
        with self._lock:
            found = {c for (r, c) in self._blobs if r == rank}
        if self.dir is not None and os.path.isdir(self.dir):
            prefix, suffix = f"ckpt_r{rank}_c", ".npz"
            for name in os.listdir(self.dir):
                if name.startswith(prefix) and name.endswith(suffix):
                    found.add(int(name[len(prefix): -len(suffix)]))
        return sorted(found)

    def latest_complete(self, world_size: int) -> Optional[int]:
        """Newest cursor checkpointed by all ``world_size`` ranks."""
        common: Optional[set] = None
        for rank in range(world_size):
            mine = set(self.cursors(rank))
            common = mine if common is None else (common & mine)
            if not common:
                return None
        return max(common) if common else None
