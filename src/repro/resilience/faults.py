"""Deterministic fault injection for the simulated MPI world.

A :class:`FaultPlan` is a seeded, declarative list of failures —
rank crashes at a given stage, message drops / duplicates / bit-flip
corruptions matched by operation and tag, and slow-rank latency with
optional jitter. A :class:`FaultInjector` executes the plan: the
communicator consults it on every wire message and the distributed HPL
stage loop consults it at every panel boundary, so a single seed
reproduces the exact same failure sequence run after run.

Plans can be written three ways (all accepted by :meth:`FaultPlan.load`):

* the compact DSL, e.g.
  ``"seed=7;crash:rank=1,stage=3;corrupt:op=bcast,count=2;slow:rank=2,delay=0.001"``;
* a JSON document (``FaultPlan.to_json`` round-trips);
* a path to a file holding either of the above.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

#: The failure kinds a :class:`FaultSpec` can name.
FAULT_KINDS = ("crash", "drop", "duplicate", "corrupt", "slow")

#: Wire-level actions (everything except ``crash`` / ``slow``).
_WIRE_KINDS = ("drop", "duplicate", "corrupt")


class RankCrashError(RuntimeError):
    """An injected rank failure (the simulated node died)."""


@dataclass(frozen=True)
class FaultSpec:
    """One declarative failure.

    ``kind`` selects the failure mode; the remaining fields are
    matchers (``None`` matches anything):

    * ``crash`` — ``rank`` dies with :class:`RankCrashError` when its
      stage loop reaches ``stage``;
    * ``drop`` / ``duplicate`` / ``corrupt`` — wire faults applied to
      messages matching ``op`` / ``tag`` / ``src`` / ``dest``, skipping
      the first ``skip`` matches and firing on the next ``count``;
    * ``slow`` — every send from ``rank`` sleeps ``delay_s`` seconds
      plus a jitter uniform in ``[0, jitter_s)``.
    """

    kind: str
    rank: Optional[int] = None
    stage: Optional[int] = None
    op: Optional[str] = None
    tag: Optional[int] = None
    src: Optional[int] = None
    dest: Optional[int] = None
    count: int = 1
    skip: int = 0
    delay_s: float = 0.0
    jitter_s: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "crash" and (self.rank is None or self.stage is None):
            raise ValueError("crash faults need rank= and stage=")
        if self.kind == "slow" and self.rank is None:
            raise ValueError("slow faults need rank=")
        if self.count < 1 or self.skip < 0:
            raise ValueError("count must be >= 1 and skip >= 0")
        if self.delay_s < 0 or self.jitter_s < 0:
            raise ValueError("delay_s and jitter_s must be non-negative")

    def matches_wire(self, src: int, dest: int, tag: int, op: str) -> bool:
        """Whether this wire fault's matchers accept the message."""
        if self.kind not in _WIRE_KINDS:
            return False
        if self.src is not None and self.src != src:
            return False
        if self.dest is not None and self.dest != dest:
            return False
        if self.tag is not None and self.tag != tag:
            return False
        if self.op is not None and self.op != op:
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        """The spec as a plain dict (defaults omitted) for JSON plans."""
        out: Dict[str, Any] = {"kind": self.kind}
        for name, default in (
            ("rank", None), ("stage", None), ("op", None), ("tag", None),
            ("src", None), ("dest", None), ("count", 1), ("skip", 0),
            ("delay_s", 0.0), ("jitter_s", 0.0),
        ):
            value = getattr(self, name)
            if value != default:
                out[name] = value
        return out


_INT_FIELDS = ("rank", "stage", "tag", "src", "dest", "count", "skip")
_FLOAT_FIELDS = ("delay_s", "jitter_s")
#: DSL shorthand -> FaultSpec field.
_DSL_ALIASES = {"delay": "delay_s", "jitter": "jitter_s"}


def _parse_clause(clause: str) -> FaultSpec:
    """One DSL clause, e.g. ``corrupt:op=bcast,count=2``."""
    head, _, body = clause.partition(":")
    kind = head.strip()
    kwargs: Dict[str, Any] = {}
    if body.strip():
        for item in body.split(","):
            key, eq, value = item.partition("=")
            key = _DSL_ALIASES.get(key.strip(), key.strip())
            if not eq:
                raise ValueError(f"malformed fault field {item!r}")
            if key in _INT_FIELDS:
                kwargs[key] = int(value)
            elif key in _FLOAT_FIELDS:
                kwargs[key] = float(value)
            elif key == "op":
                kwargs[key] = value.strip()
            else:
                raise ValueError(f"unknown fault field {key!r}")
    return FaultSpec(kind=kind, **kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable collection of :class:`FaultSpec` entries.

    The seed drives every random choice the injector makes (which bit
    flips, how much jitter), so the whole failure scenario replays
    exactly from ``FaultPlan(seed=..., faults=...)``.
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the semicolon DSL (see the module docstring)."""
        seed = 0
        faults: List[FaultSpec] = []
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[len("seed="):])
                continue
            faults.append(_parse_clause(clause))
        return cls(seed=seed, faults=tuple(faults))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a JSON plan: ``{"seed": N, "faults": [{...}, ...]}``."""
        doc = json.loads(text)
        faults = tuple(FaultSpec(**spec) for spec in doc.get("faults", ()))
        return cls(seed=int(doc.get("seed", 0)), faults=faults)

    def to_json(self) -> str:
        """Serialize so that ``from_json`` round-trips the plan."""
        return json.dumps(
            {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]},
            sort_keys=True,
        )

    @classmethod
    def load(cls, source: "FaultPlan | str") -> "FaultPlan":
        """Accept a plan object, a DSL string, a JSON string or a path."""
        if isinstance(source, FaultPlan):
            return source
        text = source.strip()
        if os.path.isfile(source):
            with open(source) as fh:
                text = fh.read().strip()
        if text.startswith("{"):
            return cls.from_json(text)
        return cls.parse(text)


class FaultInjector:
    """Executes a :class:`FaultPlan` deterministically.

    The communicator calls :meth:`wire_action` once per outgoing wire
    message and :meth:`send_delay` once per send; the HPL stage loop
    calls :meth:`crash_point` at every panel boundary. All methods are
    thread-safe (ranks run as threads) and all randomness comes from
    generators derived from the plan seed.
    """

    def __init__(self, plan: "FaultPlan | str"):
        self.plan = FaultPlan.load(plan)
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(self.plan.seed)
        #: Matches seen / fired so far, per fault index.
        self._seen = [0] * len(self.plan.faults)
        self._fired = [0] * len(self.plan.faults)
        #: Per-rank jitter streams, split off the plan seed so the
        #: jitter a rank sees never depends on other ranks' traffic.
        self._slow_rngs: Dict[int, np.random.Generator] = {}

    # -- stage-loop hook ---------------------------------------------------------
    def crash_point(self, rank: int, stage: int) -> None:
        """Raise :class:`RankCrashError` if the plan kills this rank at
        this stage (one-shot: a crash fault fires at most once)."""
        with self._lock:
            for i, f in enumerate(self.plan.faults):
                if (
                    f.kind == "crash"
                    and f.rank == rank
                    and f.stage == stage
                    and self._fired[i] < f.count
                ):
                    self._fired[i] += 1
                    raise RankCrashError(
                        f"injected crash: rank {rank} at stage {stage}"
                    )

    # -- wire hooks --------------------------------------------------------------
    def wire_action(self, src: int, dest: int, tag: int, op: str) -> Optional[str]:
        """The action for one outgoing message: ``None`` (deliver
        normally), ``"drop"``, ``"duplicate"`` or ``"corrupt"``."""
        with self._lock:
            for i, f in enumerate(self.plan.faults):
                if not f.matches_wire(src, dest, tag, op):
                    continue
                self._seen[i] += 1
                if self._seen[i] <= f.skip or self._fired[i] >= f.count:
                    continue
                self._fired[i] += 1
                return f.kind
        return None

    def corrupt_arrays(self, arrays: List[np.ndarray]) -> None:
        """Flip one seeded-random bit in one of ``arrays`` (in place)."""
        targets = [a for a in arrays if a.size]
        if not targets:
            return
        with self._lock:
            arr = targets[int(self._rng.integers(len(targets)))]
            flat = np.ascontiguousarray(arr).view(np.uint8).reshape(-1)
            pos = int(self._rng.integers(flat.size))
            bit = int(self._rng.integers(8))
        flat[pos] ^= np.uint8(1 << bit)
        if flat.base is not arr and not np.shares_memory(flat, arr):
            # ascontiguousarray copied: write the flipped bytes back.
            arr[...] = flat.view(arr.dtype).reshape(arr.shape)

    def send_delay(self, rank: int) -> float:
        """Seconds this rank's send should stall (0.0 when not slow)."""
        total = 0.0
        with self._lock:
            for f in self.plan.faults:
                if f.kind == "slow" and f.rank == rank:
                    total += f.delay_s
                    if f.jitter_s > 0.0:
                        rng = self._slow_rngs.get(rank)
                        if rng is None:
                            rng = np.random.default_rng([self.plan.seed, rank])
                            self._slow_rngs[rank] = rng
                        total += float(rng.uniform(0.0, f.jitter_s))
        return total

    def fired_summary(self) -> Dict[str, int]:
        """Count of fired faults by kind (for the resilience report)."""
        with self._lock:
            out: Dict[str, int] = {}
            for f, n in zip(self.plan.faults, self._fired):
                if n:
                    out[f.kind] = out.get(f.kind, 0) + n
            return out
