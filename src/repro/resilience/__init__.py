"""Resilience: fault injection, comm hardening and checkpoint/restart.

The paper's multi-node runs are long-lived jobs where one slow or dead
rank wastes the whole allocation; this package gives the reproduction
the corresponding machinery:

* :mod:`repro.resilience.faults` — seeded, deterministic fault plans
  (rank crash at stage k, message drop / duplicate / bit-flip
  corruption by op+tag, slow-rank latency with jitter) executed by a
  :class:`FaultInjector` hooked into the simulated communicator and the
  distributed HPL stage loop;
* :mod:`repro.resilience.retry` — the :class:`RetryPolicy`
  (timeout, exponential backoff, bounded retries) that drives the
  reliable channel in :mod:`repro.cluster.comm`, plus its per-rank
  counters;
* :mod:`repro.resilience.checkpoint` — the panel-boundary
  :class:`CheckpointStore` (in-memory or on-disk flat binary blobs)
  that rollback-recovery restores from, bitwise-exactly.
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RankCrashError,
)
from repro.resilience.retry import CommResilienceStats, RetryPolicy
from repro.resilience.checkpoint import (
    CheckpointLayoutError,
    CheckpointStats,
    CheckpointStore,
    LayoutHeader,
    pack_state,
    unpack_state,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RankCrashError",
    "CommResilienceStats",
    "RetryPolicy",
    "CheckpointLayoutError",
    "CheckpointStats",
    "CheckpointStore",
    "LayoutHeader",
    "pack_state",
    "unpack_state",
]
