"""Energy study — quantifying the paper's Section VII argument.

"The fact that Sandy Bridge EP is several times slower than Knights
Corner, but consumes comparable power, makes the hybrid implementation
less energy efficient compared to the fully-native multi-node
implementation that only uses Knights Corners" — with host CPUs in deep
sleep. This example compares GFLOPS/W across CPU-only, hybrid and
fully-native configurations, and estimates the energy of a full
100-node Table III run.

Run:  python examples/energy_study.py
"""

from repro.cluster.native_cluster import NativeClusterHPL
from repro.hpl.driver import snb_hpl_gflops
from repro.hybrid import HybridHPL, NodeConfig
from repro.machine import (
    cpu_only_node_power,
    energy_kj,
    gflops_per_watt,
    hybrid_node_power,
    native_node_power,
)
from repro.report import Table


def main() -> None:
    t = Table(
        "GFLOPS per watt (Section VII)",
        ["configuration", "TFLOPS", "power (kW)", "GFLOPS/W"],
    )

    snb = snb_hpl_gflops(84000) / 1e3
    t.add("CPU-only node", round(snb, 2), round(cpu_only_node_power().total_w / 1e3, 2),
          round(gflops_per_watt(snb * 1e3, cpu_only_node_power().total_w), 2))

    h1 = HybridHPL(84000).run()
    p1 = hybrid_node_power(1).total_w
    t.add("hybrid node, 1 card", round(h1.tflops, 2), round(p1 / 1e3, 2),
          round(gflops_per_watt(h1.tflops * 1e3, p1), 2))

    h2 = HybridHPL(84000, node=NodeConfig(cards=2)).run()
    p2 = hybrid_node_power(2).total_w
    t.add("hybrid node, 2 cards", round(h2.tflops, 2), round(p2 / 1e3, 2),
          round(gflops_per_watt(h2.tflops * 1e3, p2), 2))

    n1 = NativeClusterHPL(30000).run()
    t.add("native card, host asleep", round(n1.tflops, 2),
          round(native_node_power(1).total_w / 1e3, 2), round(n1.gflops_per_watt, 2))

    n100 = NativeClusterHPL(300000, p=10, q=10).run()
    t.add("native 10x10 cluster", round(n100.tflops, 1),
          round(100 * native_node_power(1).total_w / 1e3, 1),
          round(n100.gflops_per_watt, 2))

    h100 = HybridHPL(825000, p=10, q=10).run()
    p100 = 100 * hybrid_node_power(1).total_w
    t.add("hybrid 10x10 cluster", round(h100.tflops, 1), round(p100 / 1e3, 1),
          round(gflops_per_watt(h100.tflops * 1e3, p100), 2))
    print(t)
    print()
    run_mj = energy_kj(p100, h100.time_s) / 1e3
    print(
        f"One full hybrid 100-node Table III run (N=825K, {h100.time_s:.0f}s) "
        f"burns roughly {run_mj:.1f} MJ — about "
        f"{run_mj / 3.6:.1f} kWh."
    )


if __name__ == "__main__":
    main()
