"""Native Linpack on Knights Corner: schedulers, sizes, and Gantt charts.

Reproduces the Figure 6 / Figure 7 story interactively:

* sweep problem sizes, comparing static look-ahead against the paper's
  dynamic DAG scheduling (and the Sandy Bridge MKL baseline);
* render the 5K execution profile of both schedulers as an ASCII Gantt
  chart — the static chart shows the exposed panel factorizations and
  stage barriers the dynamic scheduler eliminates.

Run:  python examples/native_linpack_sweep.py
"""

from repro import NativeHPL
from repro.hpl.driver import snb_hpl_gflops
from repro.report import Table, render_gantt


def sweep() -> None:
    table = Table(
        "Native Linpack (GFLOPS) — dynamic vs static vs host",
        ["N", "SNB MKL", "KNC static", "KNC dynamic", "dynamic advantage"],
    )
    for n in (2000, 5000, 10000, 20000, 30000):
        snb = snb_hpl_gflops(n)
        static = NativeHPL(n, scheduler="static").run()
        dynamic = NativeHPL(n, scheduler="dynamic").run()
        table.add(
            n,
            round(snb),
            round(static.gflops),
            round(dynamic.gflops),
            f"{100 * (dynamic.gflops / static.gflops - 1):.0f}%",
        )
    print(table)
    print()


def gantt_5k() -> None:
    for name, scheduler in (("static look-ahead", "static"), ("dynamic", "dynamic")):
        result = NativeHPL(5000, scheduler=scheduler).run()
        print(f"{name}: makespan {result.time_s:.3f}s "
              f"({result.gflops:.0f} GFLOPS)")
        print(render_gantt(result.trace, width=100))
        print()


def main() -> None:
    sweep()
    gantt_5k()


if __name__ == "__main__":
    main()
