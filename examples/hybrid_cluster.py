"""Hybrid cluster what-if studies on top of the Table III machinery.

The drivers are fully parameterised, so beyond reproducing the paper's
configurations you can ask the questions the paper's conclusion raises:
how much does the limited PCIe bandwidth cost? What would a faster
interconnect or a third card buy? This example runs a few of those
studies on the 100-node configuration.

Run:  python examples/hybrid_cluster.py
"""

from repro.hybrid import HybridHPL, NodeConfig
from repro.hybrid.driver import Network
from repro.report import Table

GB = 1024**3


def paper_rows() -> None:
    t = Table(
        "Paper configurations (pipelined look-ahead)",
        ["config", "N", "TFLOPS", "efficiency %"],
    )
    for label, n, p, q, cards in [
        ("1 node, 1 card", 84_000, 1, 1, 1),
        ("2x2, 1 card", 168_000, 2, 2, 1),
        ("10x10, 1 card", 825_000, 10, 10, 1),
        ("10x10, 2 cards", 822_000, 10, 10, 2),
    ]:
        r = HybridHPL(n, node=NodeConfig(cards=cards), p=p, q=q).run()
        t.add(label, f"{n // 1000}K", round(r.tflops, 2), round(100 * r.efficiency, 1))
    print(t)
    print()


def what_if() -> None:
    t = Table(
        "What-if studies: 100 nodes, N=825K, 1 card, pipelined",
        ["variant", "TFLOPS", "efficiency %"],
    )
    base = HybridHPL(825_000, p=10, q=10).run()
    t.add("baseline (FDR IB ~6 GB/s)", round(base.tflops, 1), round(100 * base.efficiency, 1))

    slow_net = HybridHPL(825_000, p=10, q=10, network=Network(bw_gbs=1.5)).run()
    t.add("1.5 GB/s network", round(slow_net.tflops, 1), round(100 * slow_net.efficiency, 1))

    fat_mem = HybridHPL(
        1_170_000,
        p=10,
        q=10,
        node=NodeConfig(cards=1, host_mem_bytes=128 * GB),
    ).run()
    t.add("128 GB hosts, N=1.17M", round(fat_mem.tflops, 1), round(100 * fat_mem.efficiency, 1))

    no_la = HybridHPL(825_000, p=10, q=10, lookahead="none").run()
    t.add("no look-ahead at all", round(no_la.tflops, 1), round(100 * no_la.efficiency, 1))
    print(t)
    print()
    print(
        "Bigger host memory lets the panel hide behind larger trailing\n"
        "updates (the paper's 128 GB observation); removing look-ahead\n"
        "exposes every host step and costs the cluster roughly a fifth\n"
        "of its throughput."
    )


def main() -> None:
    paper_rows()
    what_if()


if __name__ == "__main__":
    main()
