"""Quickstart: the three layers of the library in two minutes.

1. Real numerics: packed-format DGEMM and a small HPL solve that passes
   the official residual test.
2. The machine model: reproduce the paper's headline native Linpack
   number (~832 GFLOPS / ~79% on Knights Corner at N = 30000).
3. The hybrid model: a single host + coprocessor node at N = 84000 with
   the paper's pipelined look-ahead.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import KNC, HybridHPL, NativeHPL, dgemm


def main() -> None:
    # --- 1. Real numerics -------------------------------------------------
    rng = np.random.default_rng(0)
    a = rng.standard_normal((400, 300))
    b = rng.standard_normal((300, 200))
    c = dgemm(a, b)  # outer-product DGEMM over the KNC-friendly tile format
    print("packed DGEMM max |error| vs NumPy:", np.abs(c - a @ b).max())

    small = NativeHPL(n=360, nb=60).run(numeric=True)
    print(
        f"numeric HPL at N={small.n}: residual={small.residual:.4f} "
        f"(threshold 16.0) -> {'PASSED' if small.passed else 'FAILED'}"
    )

    # --- 2. Native Linpack on the simulated Knights Corner ---------------
    native = NativeHPL(n=30000).run()
    peak = KNC.peak_dp_gflops(KNC.compute_cores)
    print(
        f"native Linpack N=30000: {native.gflops:.0f} GFLOPS "
        f"({100 * native.efficiency:.1f}% of the {peak:.0f} GFLOPS peak) "
        "— paper: 832 GFLOPS / 78.8%"
    )

    # --- 3. Hybrid HPL: host + coprocessor --------------------------------
    hybrid = HybridHPL(n=84000, lookahead="pipelined").run()
    print(
        f"hybrid HPL N=84000 (1 node, 1 card, pipelined): "
        f"{hybrid.tflops:.2f} TFLOPS ({100 * hybrid.efficiency:.1f}%) "
        "— paper: 1.12 TFLOPS / 79.8%"
    )


if __name__ == "__main__":
    main()
