"""Offload DGEMM tuning: the Kt bound and tile-size selection.

Walks through the Section V-B design decisions:

* the PCIe-derived lower bound on the block depth (Kt > 4 * P / BW);
* how tile size trades per-tile efficiency against first/last-tile
  exposure, and what the pre-computed best tile looks like per size;
* what happens when you violate the bound (the card starves on the
  link) — visible directly in the simulated PCIe/compute timeline.

Run:  python examples/offload_tuning.py
"""

from repro.hybrid import OffloadDGEMM
from repro.hybrid.tile_select import HYBRID_KT, best_tile_size, min_kt
from repro.machine.pcie import PCIeLink
from repro.report import Table, render_gantt


def kt_bound() -> None:
    link = PCIeLink()
    bound = min_kt(950.0, link)
    print(
        f"PCIe effective bandwidth {link.effective_bw_gbs} GB/s and ~950 "
        f"GFLOPS of card DGEMM give Kt > {bound:.0f}; the paper uses "
        f"Kt = {HYBRID_KT} to cover input tiles and the k=300 kernel."
    )
    print()


def tile_table() -> None:
    t = Table(
        "Pre-computed best tiles (1 card, Kt=1200)",
        ["M=N", "Mt", "Nt", "model eff", "simulated GFLOPS"],
    )
    for m in (10000, 20000, 40000, 82000):
        mt, nt, eff = best_tile_size(m, m)
        r = OffloadDGEMM(m, m).run()
        t.add(m, mt, nt, round(eff, 3), round(r.gflops))
    print(t)
    print()


def starving_card() -> None:
    print("Violating the Kt bound (Kt=300) at M=N=30000:")
    bad = OffloadDGEMM(30000, 30000, kt=300, tile=(7200, 7200)).run()
    good = OffloadDGEMM(30000, 30000, kt=HYBRID_KT, tile=(7200, 7200)).run()
    print(
        f"  Kt=300 : {bad.efficiency:.1%} of card peak (link-bound)\n"
        f"  Kt=1200: {good.efficiency:.1%} of card peak (compute-bound)"
    )
    print()
    print("Kt=300 timeline — the PCIe lane never goes idle, the card does:")
    print(render_gantt(bad.trace, width=90, workers=["pcie0", "knc0"]))


def main() -> None:
    kt_bound()
    tile_table()
    starving_card()


if __name__ == "__main__":
    main()
