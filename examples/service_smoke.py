"""Service smoke: the serving layer end to end in one process.

Starts a :class:`repro.service.Service` on an ephemeral TCP port, then
drives it with :class:`repro.service.ServiceClient` the way an external
tool would — submit a spec, watch the progress events, observe that a
duplicate burst coalesces into one execution and that a re-submission
answers from the cache in microseconds.

Run:  PYTHONPATH=src python examples/service_smoke.py
"""

import asyncio
import time

from repro.service import Service, ServiceClient, serve
from repro.spec import RunSpec

SPEC = RunSpec(kind="hybrid", n=84_000)


async def main() -> None:
    service = Service(use_processes=False, workers=2)
    ready = asyncio.Event()
    server = asyncio.ensure_future(serve(service, port=0, ready=ready))
    await ready.wait()

    async with ServiceClient("127.0.0.1", service.bound_port) as client:
        # --- 1. A cold submission, streaming progress --------------------
        events = []
        t0 = time.perf_counter()
        artifact = await client.submit(
            SPEC, on_event=lambda e: events.append(e["event"])
        )
        cold_s = time.perf_counter() - t0
        result = artifact["result"]
        print(
            f"cold run: {result['gflops'] / 1e3:.2f} TFLOPS "
            f"in {cold_s * 1e3:.1f} ms"
        )
        print("events:", " -> ".join(events))
        assert artifact["status"] == "ok" and artifact["cached"] is False

        # --- 2. A duplicate burst executes exactly once -------------------
        burst = await client.submit_many([RunSpec(kind="hybrid", n=48_000)] * 8)
        stats = await client.stats()
        executions = stats["cache"]["stores"] - 1  # minus the cold run above
        print(
            f"8-way duplicate burst: {executions} execution(s), "
            f"{len(burst) - executions} answered without running "
            "(coalesced or cache-served)"
        )
        assert all(a["status"] == "ok" for a in burst)
        assert executions == 1, "the duplicate burst must execute once"

        # --- 3. A warm re-submission answers from the cache ---------------
        t0 = time.perf_counter()
        warm = await client.submit(SPEC)
        warm_s = time.perf_counter() - t0
        print(
            f"warm re-submission: cached={warm['cached']} in "
            f"{warm_s * 1e6:.0f} us ({cold_s / warm_s:.0f}x faster)"
        )
        assert warm["cached"] is True
        assert warm["spec_hash"] == artifact["spec_hash"]

        await client.shutdown()

    await asyncio.gather(server, return_exceptions=True)
    await service.close()
    print("service smoke: OK")


if __name__ == "__main__":
    asyncio.run(main())
