"""Distributed HPL on a simulated MPI world — for real.

Runs the full multi-node algorithm numerically on a small matrix: every
rank generates its block-cyclic piece of the HPL matrix independently
(jumpable generator), the grid factors it with gathered panel
factorization, distributed pivot swaps, panel/U broadcasts and local
trailing updates, and rank 0 solves and checks the HPL residual.

Also prints the per-rank communication volume — the traffic the paper's
pipelined look-ahead works to hide on the real FDR InfiniBand cluster.

Run:  python examples/distributed_hpl.py
"""

from repro import DistributedHPL
from repro.hybrid.driver import Network
from repro.report import Table


def main() -> None:
    n, nb = 144, 16
    t = Table(
        f"Distributed HPL, N={n}, NB={nb} (real numerics)",
        ["grid", "residual", "passed", "total MB sent", "est. network s"],
    )
    net = Network()
    for p, q in [(1, 1), (2, 2), (2, 3), (3, 3)]:
        result = DistributedHPL(n, nb, p, q).run()
        est = net.transfer_s(result.total_bytes)
        t.add(
            f"{p}x{q}",
            round(result.residual, 4),
            result.passed,
            round(result.total_bytes / 1e6, 3),
            f"{est:.2e}",
        )
    print(t)
    print()
    print(
        "Every grid shape produces the bit-identical factorization the\n"
        "single-node blocked LU computes — the property the paper's\n"
        "schedulers rely on: scheduling changes *when* work happens,\n"
        "never *what* is computed."
    )


if __name__ == "__main__":
    main()
