"""The README's code snippets must actually work (doc fidelity)."""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).parents[1] / "README.md"


class TestReadmeQuickstart:
    def test_quickstart_block_executes(self):
        # Extract and execute the first python code block, with the
        # long-running sizes scaled down where the semantics allow.
        text = README.read_text()
        block = re.search(r"```python\n(.*?)```", text, re.DOTALL).group(1)
        # Shrink the heavyweight model runs: the APIs are identical.
        block = block.replace("NativeHPL(30000)", "NativeHPL(5000)")
        block = block.replace("HybridHPL(84000", "HybridHPL(24000")
        block = block.replace("n=1024, nb=128", "n=256, nb=64")
        namespace: dict = {}
        exec(compile(block, str(README), "exec"), namespace)  # noqa: S102
        assert namespace["small"].passed
        assert namespace["dist"].passed

    def test_headline_numbers_in_readme_are_current(self):
        from repro.hpl import NativeHPL

        text = README.read_text()
        # README claims ~831-832 GFLOPS at 30K; hold the code to it.
        r = NativeHPL(30000).run()
        assert r.gflops == pytest.approx(831, abs=20)
        assert "832" in text or "831" in text

    def test_install_instructions_name_real_extras(self):
        import tomllib

        pyproject = pathlib.Path(__file__).parents[1] / "pyproject.toml"
        meta = tomllib.loads(pyproject.read_text())
        assert "test" in meta["project"]["optional-dependencies"]
