"""Section V-B socket interleaving: distributing matrix partitions over
both host sockets doubles the bandwidth packing and accumulation see."""

import pytest

from repro.hybrid import OffloadDGEMM


class TestSocketInterleave:
    def test_interleaving_is_default(self):
        assert OffloadDGEMM(20000, 20000).socket_interleave

    def test_disabling_halves_pack_bandwidth(self):
        on = OffloadDGEMM(20000, 20000, socket_interleave=True)
        off = OffloadDGEMM(20000, 20000, socket_interleave=False)
        assert off.host_mem.effective_bw_gbs == pytest.approx(
            on.host_mem.effective_bw_gbs / 2
        )

    def test_interleaving_helps_dual_card_throughput(self):
        # Two cards stress host memory twice as hard; one socket's
        # bandwidth becomes a visible bottleneck.
        on = OffloadDGEMM(30000, 30000, cards=2, socket_interleave=True).run()
        off = OffloadDGEMM(30000, 30000, cards=2, socket_interleave=False).run()
        assert on.gflops >= off.gflops

    def test_numerics_unaffected(self):
        import numpy as np

        rng = np.random.default_rng(0)
        a = rng.standard_normal((60, 8))
        b = rng.standard_normal((8, 60))
        c = np.zeros((60, 60))
        OffloadDGEMM(60, 60, kt=8, tile=(30, 30), socket_interleave=False).run(a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-12)
