"""The DTRSM-offload what-if (related work, Section VI) and simulation
determinism guarantees."""

import pytest

from repro.hybrid import HybridHPL, OffloadDGEMM
from repro.lu.dynamic import DynamicScheduler
from repro.lu.static_la import StaticLookaheadScheduler


class TestOffloadTrsm:
    def test_paper_choice_wins_on_the_paper_machine(self):
        # The paper keeps DTRSM on the host; the PCIe round trip costs
        # more than the card's compute advantage saves at NB=1200.
        host = HybridHPL(84000, offload_trsm=False).run()
        card = HybridHPL(84000, offload_trsm=True).run()
        assert host.tflops >= card.tflops

    def test_trsm_component_reflects_round_trip(self):
        host = HybridHPL(84000, offload_trsm=False)
        card = HybridHPL(84000, offload_trsm=True)
        # At stage 0 the transfer dominates: offloaded DTRSM is slower.
        assert card.dtrsm_time_s(0) > host.dtrsm_time_s(0)

    def test_default_is_host_trsm(self):
        assert not HybridHPL(42000).offload_trsm


class TestDeterminism:
    def test_dynamic_scheduler_is_deterministic(self):
        a = DynamicScheduler(8000, nb=300).run()
        b = DynamicScheduler(8000, nb=300).run()
        assert a.makespan_s == b.makespan_s
        assert a.tasks_executed == b.tasks_executed
        assert len(a.trace.spans) == len(b.trace.spans)

    def test_static_scheduler_is_deterministic(self):
        a = StaticLookaheadScheduler(8000, nb=300).run()
        b = StaticLookaheadScheduler(8000, nb=300).run()
        assert a.makespan_s == b.makespan_s

    def test_hybrid_driver_is_deterministic(self):
        a = HybridHPL(42000).run()
        b = HybridHPL(42000).run()
        assert a.time_s == b.time_s
        assert a.knc_idle_fraction == b.knc_idle_fraction

    def test_offload_engine_is_deterministic(self):
        a = OffloadDGEMM(30000, 30000, cards=2).run()
        b = OffloadDGEMM(30000, 30000, cards=2).run()
        assert a.time_s == b.time_s
        assert a.tiles_card == b.tiles_card
