"""Offload DGEMM: Figure 11 shapes, Kt bound, and functional execution."""

import numpy as np
import pytest

from repro.hybrid.offload import OffloadDGEMM
from repro.hybrid.tile_select import (
    HYBRID_KT,
    best_tile_size,
    min_kt,
    offload_efficiency_model,
)


class TestTileSelection:
    def test_kt_bound_is_950(self):
        # Section V-B: "the panel width Kt should at least be 950".
        assert min_kt(950.0) == pytest.approx(950, abs=1)

    def test_paper_kt_exceeds_bound(self):
        assert HYBRID_KT > min_kt(950.0)

    def test_best_tile_cached_and_valid(self):
        mt, nt, eff = best_tile_size(82000, 82000)
        assert 0 < mt <= 82000 and 0 < nt <= 82000
        assert 0 < eff < 1

    def test_model_efficiency_decreases_for_tiny_matrices(self):
        big = best_tile_size(82000, 82000)[2]
        small = best_tile_size(6000, 6000)[2]
        assert small < big

    def test_two_cards_lower_model_efficiency(self):
        one = best_tile_size(30000, 30000, HYBRID_KT, 1)[2]
        two = best_tile_size(30000, 30000, HYBRID_KT, 2)[2]
        assert two < one

    def test_model_validation(self):
        with pytest.raises(ValueError):
            offload_efficiency_model(100, 100, 10, 10, cards=0)
        with pytest.raises(ValueError):
            best_tile_size(0, 10)


class TestFigure11Timing:
    def test_single_card_peak_efficiency(self):
        # Figure 11a: ~917 GFLOPS / 85.4% at 82K.
        r = OffloadDGEMM(82000, 82000).run()
        assert r.efficiency == pytest.approx(0.854, abs=0.02)
        assert r.gflops == pytest.approx(917, abs=25)

    def test_dual_card_peak_efficiency(self):
        # Figure 11b: ~1785 GFLOPS / 83% at 82K.
        r = OffloadDGEMM(82000, 82000, cards=2).run()
        assert r.efficiency == pytest.approx(0.83, abs=0.03)
        assert r.gflops == pytest.approx(1785, abs=90)

    def test_dual_card_efficiency_below_single(self):
        one = OffloadDGEMM(40000, 40000).run()
        two = OffloadDGEMM(40000, 40000, cards=2).run()
        assert two.efficiency < one.efficiency

    def test_efficiency_degrades_slowly_with_size_single(self):
        effs = [OffloadDGEMM(m, m).run().efficiency for m in (20000, 40000, 82000)]
        assert effs == sorted(effs)
        assert effs[0] > 0.75  # "degrades slowly" (Figure 11a)

    def test_dual_card_degrades_faster(self):
        # Figure 11b: relative drop from 82K to 15K is worse for 2 cards.
        drop1 = (
            OffloadDGEMM(82000, 82000).run().efficiency
            - OffloadDGEMM(15000, 15000).run().efficiency
        )
        drop2 = (
            OffloadDGEMM(82000, 82000, cards=2).run().efficiency
            - OffloadDGEMM(15000, 15000, cards=2).run().efficiency
        )
        assert drop2 > drop1

    def test_small_kt_exposes_transfers(self):
        # Below the Kt bound the link cannot hide the output traffic.
        good = OffloadDGEMM(40000, 40000, kt=1200, tile=(7200, 7200)).run()
        bad = OffloadDGEMM(40000, 40000, kt=300, tile=(7200, 7200)).run()
        assert bad.efficiency < good.efficiency

    def test_all_tiles_processed(self):
        r = OffloadDGEMM(30000, 30000).run()
        assert r.tiles_host == 0  # no host assist by default
        assert r.card_flops == pytest.approx(2.0 * 30000 * 30000 * HYBRID_KT)

    def test_host_assist_splits_work(self):
        r = OffloadDGEMM(30000, 30000, host_assist=True).run()
        assert r.tiles_host > 0
        assert r.card_flops + r.host_flops == pytest.approx(
            2.0 * 30000 * 30000 * HYBRID_KT
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            OffloadDGEMM(0, 10)
        with pytest.raises(ValueError):
            OffloadDGEMM(10, 10, cards=0)
        with pytest.raises(ValueError):
            OffloadDGEMM(10, 3, cards=4)  # more cards than columns


class TestFunctionalExecution:
    def _operands(self, m, n, kt, seed=0):
        rng = np.random.default_rng(seed)
        return (
            rng.standard_normal((m, kt)),
            rng.standard_normal((kt, n)),
            rng.standard_normal((m, n)),
        )

    def test_single_card_computes_correct_update(self):
        a, b, c0 = self._operands(90, 70, 12)
        c = c0.copy()
        OffloadDGEMM(90, 70, kt=12, tile=(40, 30)).run(a, b, c)
        np.testing.assert_allclose(c, c0 + a @ b, rtol=1e-11, atol=1e-11)

    def test_dual_card_computes_correct_update(self):
        a, b, c0 = self._operands(80, 100, 8, seed=1)
        c = c0.copy()
        r = OffloadDGEMM(80, 100, kt=8, cards=2, tile=(40, 30)).run(a, b, c)
        np.testing.assert_allclose(c, c0 + a @ b, rtol=1e-11, atol=1e-11)
        # Each 50-column half merges its 30+20 column strips into one
        # 50-wide strip: 2 row tiles x 1 column strip x 2 cards.
        assert r.tiles_card == 4

    def test_host_assist_still_correct(self):
        a, b, c0 = self._operands(100, 100, 10, seed=2)
        c = c0.copy()
        r = OffloadDGEMM(100, 100, kt=10, tile=(30, 30), host_assist=True).run(a, b, c)
        np.testing.assert_allclose(c, c0 + a @ b, rtol=1e-11, atol=1e-11)
        # 100/30 merges to 3 strips per side (30, 30, 40): 9 tiles.
        assert r.tiles_card + r.tiles_host == 9

    def test_c_defaults_to_zero(self):
        a, b, _ = self._operands(30, 30, 5, seed=3)
        r = OffloadDGEMM(30, 30, kt=5, tile=(30, 30))
        c = np.zeros((30, 30))
        r.run(a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-12)

    def test_shape_validation(self):
        a, b, c = self._operands(30, 30, 5)
        with pytest.raises(ValueError):
            OffloadDGEMM(30, 30, kt=6, tile=(30, 30)).run(a, b, c)
