"""Hybrid HPL driver: look-ahead schemes, Figure 9 idle fractions,
Table III anchor rows."""

import pytest

from repro.hybrid.driver import HybridHPL, Network, NodeConfig
from repro.hybrid.lookahead import Lookahead

GB = 1024**3


def run(n, p=1, q=1, cards=1, la="pipelined", mem_gb=64, **kw):
    return HybridHPL(
        n,
        node=NodeConfig(cards=cards, host_mem_bytes=mem_gb * GB),
        p=p,
        q=q,
        lookahead=la,
        **kw,
    ).run()


class TestLookaheadOrdering:
    def test_each_scheme_strictly_better(self):
        none = run(42000, la="none")
        basic = run(42000, la="basic")
        pipe = run(42000, la="pipelined")
        assert none.tflops < basic.tflops < pipe.tflops

    def test_parse(self):
        assert Lookahead.parse("BASIC") is Lookahead.BASIC
        assert Lookahead.parse(Lookahead.NONE) is Lookahead.NONE
        with pytest.raises(ValueError):
            Lookahead.parse("bogus")


class TestFigure9:
    """Idle-time claims for the 2x2, N=84K profile."""

    def test_basic_lookahead_idles_card_at_least_10pct(self):
        r = run(84000, p=2, q=2, la="basic")
        assert r.knc_idle_fraction > 0.10

    def test_pipelining_cuts_idle_several_fold(self):
        # Paper: 13% -> <2.5%; our simulation: ~15% -> ~5%. Same order,
        # same several-fold reduction.
        basic = run(84000, p=2, q=2, la="basic")
        pipe = run(84000, p=2, q=2, la="pipelined")
        assert pipe.knc_idle_fraction < 0.06
        assert pipe.knc_idle_fraction < basic.knc_idle_fraction / 2.5

    def test_pipelining_saves_iteration_time_early_stages(self):
        # "the swapping pipeline reduces the iteration time by up to 11%
        # in the early and most time-consuming iterations" (Figure 9c).
        basic = run(84000, p=2, q=2, cards=2, la="basic")
        pipe = run(84000, p=2, q=2, cards=2, la="pipelined")
        early_b = sum(t for _, _, t in basic.per_stage[:10])
        early_p = sum(t for _, _, t in pipe.per_stage[:10])
        saving = 1 - early_p / early_b
        assert 0.05 < saving < 0.25

    def test_late_stages_expose_panel_more_under_pipelining(self):
        # The chunk overhead delays the panel; visible in the tail stages.
        basic = run(84000, p=2, q=2, la="basic")
        pipe = run(84000, p=2, q=2, la="pipelined")
        tail_b = sum(t for _, _, t in basic.per_stage[-8:-1])
        tail_p = sum(t for _, _, t in pipe.per_stage[-8:-1])
        assert tail_p > 0.9 * tail_b  # the advantage shrinks or reverses


class TestTable3Anchors:
    def test_single_node_basic(self):
        r = run(84000, la="basic")
        assert r.efficiency == pytest.approx(0.710, abs=0.035)

    def test_single_node_pipelined(self):
        r = run(84000, la="pipelined")
        assert r.efficiency == pytest.approx(0.798, abs=0.025)
        assert r.tflops == pytest.approx(1.12, abs=0.05)

    def test_2x2_pipelined(self):
        r = run(168000, p=2, q=2, la="pipelined")
        assert r.efficiency == pytest.approx(0.776, abs=0.025)
        assert r.tflops == pytest.approx(4.36, abs=0.25)

    def test_dual_card_single_node_pipelined(self):
        r = run(84000, cards=2, la="pipelined")
        assert r.efficiency == pytest.approx(0.766, abs=0.03)

    def test_pipeline_gain_7_to_9_points(self):
        # "pipelined look-ahead improves hybrid HPL efficiency by 7%-9%".
        for kwargs in ({}, {"p": 2, "q": 2, "n_scale": 2}):
            scale = kwargs.pop("n_scale", 1)
            n = 84000 * scale
            b = run(n, la="basic", **kwargs)
            p = run(n, la="pipelined", **kwargs)
            assert 0.04 < p.efficiency - b.efficiency < 0.11

    def test_second_card_lowers_efficiency(self):
        one = run(84000, cards=1)
        two = run(84000, cards=2)
        assert two.efficiency < one.efficiency
        assert two.tflops > one.tflops

    def test_multi_node_efficiency_below_single_node(self):
        single = run(84000)
        multi = run(168000, p=2, q=2)
        assert multi.efficiency < single.efficiency

    def test_more_host_memory_helps_dual_card(self):
        # Table III's last row: 128 GB hosts lift 2x2 dual-card runs by
        # enabling larger N.
        small = run(166000, p=2, q=2, cards=2, la="pipelined", mem_gb=64)
        big = run(242000, p=2, q=2, cards=2, la="pipelined", mem_gb=128)
        assert big.efficiency > small.efficiency


class TestNodeAndNetwork:
    def test_node_peaks_match_paper(self):
        # "1.4 TFLOPS with a single card and 2.48 TFLOPS with two".
        assert NodeConfig(cards=1).peak_gflops == pytest.approx(1407, abs=2)
        assert NodeConfig(cards=2).peak_gflops == pytest.approx(2481, abs=2)

    def test_memory_gate(self):
        with pytest.raises(ValueError):
            HybridHPL(120000)  # ~107 GiB > 64 GiB host
        HybridHPL(120000, node=NodeConfig(host_mem_bytes=128 * GB))  # fits

    def test_memory_gate_scales_with_grid(self):
        HybridHPL(168000, p=2, q=2)  # fits: 56 GiB per node

    def test_network_transfer(self):
        net = Network(bw_gbs=6.0, latency_s=1e-6)
        # Pipelined tree: volume once, latency per hop level.
        assert net.transfer_s(6e9) == pytest.approx(1.0, rel=1e-4)
        assert net.transfer_s(6e9, hops=3) == pytest.approx(1.0 + 2e-6, rel=1e-4)
        assert net.transfer_s(1e9, hops=0) == 0.0
        with pytest.raises(ValueError):
            net.transfer_s(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridHPL(0)
        with pytest.raises(ValueError):
            HybridHPL(1000, p=0)
        with pytest.raises(ValueError):
            HybridHPL(1000, pipeline_chunks=1)
        with pytest.raises(ValueError):
            HybridHPL(1000, lookahead="wat")
