"""Property/fuzz tests for the offload engine and the hybrid driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hybrid import HybridHPL, NodeConfig, OffloadDGEMM
from repro.hybrid.tiles import StealState, TileGrid


class TestOffloadFuzz:
    @given(
        m=st.integers(10, 120),
        n=st.integers(10, 120),
        kt=st.integers(1, 24),
        mt=st.integers(5, 60),
        nt=st.integers(5, 60),
        cards=st.integers(1, 2),
        host=st.booleans(),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_offload_matches_numpy(self, m, n, kt, mt, nt, cards, host, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, kt))
        b = rng.standard_normal((kt, n))
        c0 = rng.standard_normal((m, n))
        c = c0.copy()
        r = OffloadDGEMM(
            m, n, kt=kt, cards=cards, tile=(mt, nt), host_assist=host
        ).run(a, b, c)
        np.testing.assert_allclose(c, c0 + a @ b, rtol=1e-10, atol=1e-10)
        # Conservation: every flop accounted to exactly one worker.
        assert r.card_flops + r.host_flops == pytest.approx(2.0 * m * n * kt)
        assert r.time_s > 0

    @given(
        m=st.integers(1, 200),
        n=st.integers(1, 200),
        mt=st.integers(1, 80),
        nt=st.integers(1, 80),
    )
    @settings(max_examples=50)
    def test_steal_covers_grid_from_both_ends(self, m, n, mt, nt):
        grid = TileGrid(m, n, mt, nt)
        s = StealState(grid)
        got = set()
        toggle = True
        while True:
            t = s.steal_front() if toggle else s.steal_back()
            if t is None:
                break
            assert t.index not in got
            got.add(t.index)
            toggle = not toggle
        assert len(got) == len(grid)


class TestHybridDriverInvariants:
    @given(
        n=st.sampled_from([12000, 36000, 60000, 84000]),
        cards=st.integers(1, 2),
        grid=st.sampled_from([(1, 1), (2, 2), (2, 4)]),
        chunks=st.integers(2, 12),
    )
    @settings(max_examples=12, deadline=None)
    def test_invariants_across_configs(self, n, cards, grid, chunks):
        p, q = grid
        node = NodeConfig(cards=cards, host_mem_bytes=128 * 1024**3)
        results = {}
        for la in ("none", "basic", "pipelined"):
            r = HybridHPL(
                n, node=node, p=p, q=q, lookahead=la, pipeline_chunks=chunks
            ).run()
            results[la] = r
            assert r.time_s > 0
            assert 0 < r.efficiency < 1
            assert 0 <= r.knc_idle_fraction < 1
            assert len(r.per_stage) == -(-n // r.nb)
            assert all(dt >= 0 for _, _, dt in r.per_stage)
            # Per-stage times must sum to (almost) the total run time.
            assert sum(dt for _, _, dt in r.per_stage) == pytest.approx(
                r.time_s, rel=0.05
            )
        # Look-ahead ordering: basic always beats none; pipelining beats
        # basic whenever the local problem is paper-scale (below ~20K per
        # node the per-chunk overhead can legitimately outweigh the
        # pipelining — the paper's own late-stage caveat, which here
        # covers the whole run).
        assert results["none"].tflops <= results["basic"].tflops * 1.001
        if n / max(p, q) >= 20000 and chunks >= 4:
            assert results["basic"].tflops <= results["pipelined"].tflops * 1.005

    def test_more_chunks_reduce_exposure_until_overhead_wins(self):
        effs = {
            c: HybridHPL(84000, pipeline_chunks=c).run().efficiency
            for c in (2, 8, 64)
        }
        assert effs[8] > effs[2]  # finer pipeline hides more
        assert effs[64] < effs[8] + 0.01  # ... but overhead catches up
