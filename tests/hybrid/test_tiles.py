"""Tile grids, partial-tile merging, and work stealing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hybrid.tiles import StealState, Tile, TileGrid


class TestTileGeometry:
    def test_exact_tiling(self):
        g = TileGrid(100, 80, 50, 40)
        assert len(g) == 4
        assert g.coverage_is_exact()

    def test_partial_tiles_merged_into_last_full_tile(self):
        # 100 = 2*40 + 20: the 20-row remainder merges into the second
        # tile, giving rows of heights 40 and 60 (Section V-B).
        g = TileGrid(100, 40, 40, 40)
        heights = sorted({(t.r1 - t.r0) for t in g})
        assert heights == [40, 60]
        assert g.n_tile_rows == 2
        assert g.coverage_is_exact()

    def test_single_undersized_tile_kept(self):
        g = TileGrid(30, 30, 40, 40)
        assert len(g) == 1
        assert g.tiles[0].m == 30

    def test_column_major_order(self):
        g = TileGrid(80, 80, 40, 40)
        # Forward order walks down each column first.
        assert [(t.r0, t.c0) for t in g.forward_order()] == [
            (0, 0),
            (40, 0),
            (0, 40),
            (40, 40),
        ]

    def test_backward_is_reverse(self):
        g = TileGrid(80, 80, 40, 40)
        assert g.backward_order() == list(reversed(g.forward_order()))

    def test_flops_and_bytes(self):
        t = Tile(0, 0, 10, 0, 20)
        assert t.flops(5) == 2 * 10 * 20 * 5
        assert t.output_bytes() == 8 * 200
        assert t.input_bytes(5) == 8 * 5 * 30

    def test_total_flops(self):
        g = TileGrid(100, 80, 50, 40)
        assert g.total_flops(7) == 2 * 100 * 80 * 7

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            TileGrid(0, 10, 5, 5)
        with pytest.raises(ValueError):
            TileGrid(10, 10, 0, 5)

    @given(st.integers(1, 300), st.integers(1, 300), st.integers(1, 100), st.integers(1, 100))
    @settings(max_examples=50)
    def test_coverage_property(self, m, n, mt, nt):
        g = TileGrid(m, n, mt, nt)
        assert g.coverage_is_exact()
        # No tile smaller than the step unless it is the only one in its
        # dimension (the merge rule).
        if g.n_tile_rows > 1:
            assert all(t.m >= min(mt, m) for t in g)
        if g.n_tile_cols > 1:
            assert all(t.n >= min(nt, n) for t in g)


class TestStealing:
    def test_front_and_back_meet_exactly_once(self):
        g = TileGrid(120, 120, 40, 40)
        s = StealState(g)
        seen = []
        while True:
            a = s.steal_front()
            if a is None:
                break
            seen.append(a.index)
            b = s.steal_back()
            if b is None:
                break
            seen.append(b.index)
        assert sorted(seen) == list(range(len(g)))

    def test_front_steals_c00_first(self):
        g = TileGrid(120, 120, 40, 40)
        t = StealState(g).steal_front()
        assert (t.r0, t.c0) == (0, 0)

    def test_back_steals_last_tile_first(self):
        g = TileGrid(120, 120, 40, 40)
        t = StealState(g).steal_back()
        assert (t.r1, t.c1) == (120, 120)

    def test_remaining_counts_down(self):
        g = TileGrid(80, 80, 40, 40)
        s = StealState(g)
        assert s.remaining == 4
        s.steal_front()
        s.steal_back()
        assert s.remaining == 2

    def test_exhaustion_returns_none(self):
        g = TileGrid(40, 40, 40, 40)
        s = StealState(g)
        assert s.steal_front() is not None
        assert s.steal_front() is None
        assert s.steal_back() is None
