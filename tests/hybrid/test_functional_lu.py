"""Numeric hybrid LU: the offloaded trailing updates produce the same
factorization as the reference path."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpl.matgen import hpl_matrix, hpl_system
from repro.hpl.residual import residual_passes
from repro.hybrid.functional import hybrid_blocked_lu
from repro.lu.factorize import blocked_lu, lu_solve


class TestHybridFunctionalLU:
    def test_matches_reference_blocked_lu(self):
        a0 = hpl_matrix(96, seed=1)
        lu_h, ipiv_h = hybrid_blocked_lu(a0.copy(), nb=24)
        lu_r, ipiv_r = blocked_lu(a0.copy(), nb=24)
        np.testing.assert_allclose(lu_h, lu_r, rtol=1e-11, atol=1e-12)
        np.testing.assert_array_equal(ipiv_h, ipiv_r)

    def test_matches_scipy(self):
        a0 = hpl_matrix(80, seed=2)
        lu_h, ipiv_h = hybrid_blocked_lu(a0.copy(), nb=20)
        lu_ref, piv_ref = sla.lu_factor(a0)
        np.testing.assert_allclose(lu_h, lu_ref, rtol=1e-10, atol=1e-11)
        np.testing.assert_array_equal(ipiv_h, piv_ref)

    def test_dual_card_same_answer(self):
        a0 = hpl_matrix(72, seed=3)
        one, _ = hybrid_blocked_lu(a0.copy(), nb=18, cards=1)
        two, _ = hybrid_blocked_lu(a0.copy(), nb=18, cards=2)
        np.testing.assert_allclose(one, two, rtol=1e-12, atol=1e-13)

    def test_solve_passes_hpl_residual(self):
        a0, b = hpl_system(90, seed=4)
        a = a0.copy()
        lu, ipiv = hybrid_blocked_lu(a, nb=30, cards=2)
        x = lu_solve(lu, ipiv, np.asarray(b))
        assert residual_passes(a0, x, b)

    def test_no_host_assist_still_correct(self):
        a0 = hpl_matrix(60, seed=5)
        lu_h, _ = hybrid_blocked_lu(a0.copy(), nb=15, host_assist=False)
        lu_r, _ = blocked_lu(a0.copy(), nb=15)
        np.testing.assert_allclose(lu_h, lu_r, rtol=1e-11, atol=1e-12)

    @given(
        n=st.integers(20, 90),
        nb=st.integers(5, 32),
        cards=st.integers(1, 2),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_vs_reference(self, n, nb, cards, seed):
        a0 = hpl_matrix(n, seed=seed)
        lu_h, ipiv_h = hybrid_blocked_lu(a0.copy(), nb=nb, cards=cards)
        lu_r, ipiv_r = blocked_lu(a0.copy(), nb=nb)
        np.testing.assert_allclose(lu_h, lu_r, rtol=1e-10, atol=1e-11)
        np.testing.assert_array_equal(ipiv_h, ipiv_r)
