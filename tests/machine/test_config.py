"""Table I parameters and derived peak numbers."""

import pytest

from repro.machine import KNC, SNB, knights_corner, sandy_bridge_ep


class TestKnightsCorner:
    def test_peak_dp_matches_table1(self):
        # Table I: 1074 DP GFLOPS over all 61 cores.
        assert KNC.peak_dp_gflops() == pytest.approx(1074, abs=1)

    def test_peak_sp_matches_table1(self):
        assert KNC.peak_sp_gflops() == pytest.approx(2148, abs=1)

    def test_core_and_thread_counts(self):
        assert KNC.cores == 61
        assert KNC.compute_cores == 60  # last core reserved for the OS
        assert KNC.threads == 244
        assert KNC.compute_threads == 240

    def test_compute_peak_basis_for_native_results(self):
        # Native DGEMM 944 GFLOPS at 89.4% implies a ~1056 GFLOPS basis,
        # i.e. peak over the 60 compute cores.
        assert KNC.peak_dp_gflops(KNC.compute_cores) == pytest.approx(1056, abs=1)

    def test_cache_sizes(self):
        assert KNC.l1.size_bytes == 32 * 1024
        assert KNC.l2.size_bytes == 512 * 1024
        assert KNC.l3_bytes == 0

    def test_bandwidths(self):
        assert KNC.stream_bw_gbs == 150.0
        assert KNC.pcie_bw_gbs == 6.0

    def test_vector_registers(self):
        assert KNC.vector_registers == 32


class TestSandyBridge:
    def test_peak_dp_matches_table1(self):
        assert SNB.peak_dp_gflops() == pytest.approx(333, abs=1)

    def test_peak_sp_matches_table1(self):
        assert SNB.peak_sp_gflops() == pytest.approx(666, abs=1)

    def test_core_counts(self):
        assert SNB.sockets == 2
        assert SNB.cores == 16
        assert SNB.compute_cores == 16
        assert SNB.threads == 32

    def test_memory(self):
        assert SNB.dram_bytes == 128 * 1024**3
        assert SNB.stream_bw_gbs == 76.0

    def test_flops_ratio_roughly_six_with_two_cards(self):
        # Section V-A: "two Knights Corner cards can deliver roughly six
        # times the flops compared to Sandy Bridge EP".
        ratio = 2 * KNC.peak_dp_gflops() / SNB.peak_dp_gflops()
        assert 5.5 < ratio < 7.0


class TestConfigMechanics:
    def test_factories_return_fresh_equal_configs(self):
        assert knights_corner() == KNC
        assert sandy_bridge_ep() == SNB
        assert knights_corner() is not KNC

    def test_with_override(self):
        fat = KNC.with_(cores_per_socket=122)
        assert fat.cores == 122
        assert fat.peak_dp_gflops() == pytest.approx(2 * KNC.peak_dp_gflops(), rel=0.02)
        assert KNC.cores == 61  # original untouched

    def test_cycles_to_seconds(self):
        assert KNC.cycles_to_seconds(1.1e9) == pytest.approx(1.0)

    def test_configs_are_frozen(self):
        with pytest.raises(Exception):
            KNC.clock_ghz = 2.0
