"""The calibration fits: known-parameter recovery and anchor fidelity."""

import numpy as np
import pytest

from repro.machine.calibration import (
    FIG4_PACKING,
    TABLE2_DGEMM,
    TABLE2_SGEMM,
    Calibration,
    _fit_amortisation,
    _fit_packing,
    _fit_spill,
    _l2_occupancy_fraction,
    default_calibration,
)


class TestFitRecovery:
    def test_amortisation_fit_recovers_exact_model(self):
        # Generate data from a known (E0, u) and recover it.
        e0, u = 0.9, 7.5
        ks = (100, 200, 300, 400)
        anchors = {k: e0 * k / (k + u) for k in ks}
        got_e0, got_u = _fit_amortisation(anchors, ks)
        assert got_e0 == pytest.approx(e0, rel=1e-9)
        assert got_u == pytest.approx(u, rel=1e-9)

    def test_packing_fit_recovers_exact_model(self):
        c1, c2 = 40.0, 15000.0
        anchors = {n: c1 * (2 / n) + c2 * (2 / n) ** 2 for n in (1000, 5000, 17000)}
        got1, got2 = _fit_packing(anchors)
        assert got1 == pytest.approx(c1, rel=1e-6)
        assert got2 == pytest.approx(c2, rel=1e-6)

    def test_spill_fit_recovers_hinge(self):
        e0, u, gamma, theta = 0.91, 6.0, 0.05, 0.75
        ks = (340, 400)
        anchors = {
            k: e0 * k / (k + u)
            - gamma * max(0.0, _l2_occupancy_fraction(k, 8) - theta)
            for k in ks
        }
        got_g, got_t = _fit_spill(anchors, e0, u, ks, elem_bytes=8)
        assert got_g == pytest.approx(gamma, rel=1e-6)
        assert got_t == pytest.approx(theta, rel=1e-6)


class TestDefaultCalibration:
    def test_anchor_fidelity_dgemm(self):
        cal = default_calibration()
        for k, eff in TABLE2_DGEMM.items():
            assert cal.dgemm_eff_k(k) == pytest.approx(eff, abs=0.004)

    def test_anchor_fidelity_sgemm(self):
        cal = default_calibration()
        for k, eff in TABLE2_SGEMM.items():
            assert cal.sgemm_eff_k(k) == pytest.approx(eff, abs=0.004)

    def test_packing_anchor_fidelity(self):
        cal = default_calibration()
        for n, over in FIG4_PACKING.items():
            assert cal.packing_overhead(n, n) == pytest.approx(over, abs=0.01)

    def test_spill_only_hits_deep_k(self):
        cal = default_calibration()
        # Below the hinge the spill term is zero.
        assert cal.dgemm_eff_k(240) == pytest.approx(
            cal.dgemm_e0 * 240 / (240 + cal.dgemm_u), rel=1e-12
        )

    def test_packing_overhead_clipped(self):
        cal = default_calibration()
        assert cal.packing_overhead(2, 2) <= 0.95
        assert cal.packing_overhead(10**9, 10**9) >= 0.0

    def test_calibration_is_frozen(self):
        cal = default_calibration()
        with pytest.raises(Exception):
            cal.dgemm_e0 = 1.0

    def test_occupancy_fraction_monotone_in_k(self):
        occs = [_l2_occupancy_fraction(k, 8) for k in (120, 240, 400)]
        assert occs == sorted(occs)
        assert all(0 < o < 1.1 for o in occs)

    def test_custom_calibration_flows_through(self):
        import dataclasses

        from repro.machine.gemm_model import gemm_efficiency

        hot = dataclasses.replace(default_calibration(), dgemm_e0=0.95)
        base = gemm_efficiency(8000, 8000, 300)
        tuned = gemm_efficiency(8000, 8000, 300, cal=hot)
        assert tuned > base
