"""Functional tests of the KNC vector ISA emulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.machine.vector import VLEN, VectorMachine


@pytest.fixture
def vm():
    return VectorMachine()


finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
vec8 = hnp.arrays(np.float64, (VLEN,), elements=finite)
vec4 = hnp.arrays(np.float64, (4,), elements=finite)


class TestBasics:
    def test_register_file_size(self, vm):
        assert vm.n_registers == 32
        assert vm.regs.shape == (32, VLEN)

    def test_out_of_range_register_raises(self, vm):
        with pytest.raises(IndexError):
            vm.vzero(32)
        with pytest.raises(IndexError):
            vm.vmadd(0, 1, 33)

    def test_vload_vstore_roundtrip(self, vm):
        data = np.arange(8.0)
        out = np.zeros(8)
        vm.vload(3, data)
        vm.vstore(3, out)
        np.testing.assert_array_equal(out, data)

    def test_vload_wrong_size_raises(self, vm):
        with pytest.raises(ValueError):
            vm.vload(0, np.zeros(7))


class TestBroadcasts:
    def test_1to8_replicates_scalar(self, vm):
        vm.broadcast_1to8(5, 3.25)
        np.testing.assert_array_equal(vm.regs[5], np.full(8, 3.25))

    @given(vec4)
    @settings(max_examples=25)
    def test_4to8_tiles_four_elements_twice(self, data):
        vm = VectorMachine()
        vm.broadcast_4to8(0, data)
        np.testing.assert_array_equal(vm.regs[0][:4], data)
        np.testing.assert_array_equal(vm.regs[0][4:], data)

    def test_4to8_wrong_size_raises(self, vm):
        with pytest.raises(ValueError):
            vm.broadcast_4to8(0, np.zeros(8))


class TestSwizzle:
    @given(vec8, st.integers(0, 3))
    @settings(max_examples=25)
    def test_swizzle_replicates_within_lane_groups(self, data, i):
        out = VectorMachine._swizzle(data, i)
        np.testing.assert_array_equal(out[:4], np.full(4, data[i]))
        np.testing.assert_array_equal(out[4:], np.full(4, data[4 + i]))

    def test_figure_1b_example(self):
        # SWIZZLE_2 of [a0..a7] -> [a2 a2 a2 a2 a6 a6 a6 a6]
        v = np.arange(8.0)
        np.testing.assert_array_equal(
            VectorMachine._swizzle(v, 2), [2, 2, 2, 2, 6, 6, 6, 6]
        )

    def test_bad_swizzle_index(self):
        with pytest.raises(ValueError):
            VectorMachine._swizzle(np.zeros(8), 4)


class TestVmadd:
    @given(vec8, vec8, vec8)
    @settings(max_examples=25)
    def test_vmadd_register(self, acc, x, y):
        vm = VectorMachine()
        vm.regs[0], vm.regs[1], vm.regs[2] = acc.copy(), x, y
        vm.vmadd(0, 1, 2)
        np.testing.assert_allclose(vm.regs[0], acc + x * y)

    @given(vec8, finite)
    @settings(max_examples=25)
    def test_vmadd_mem_1to8_equals_scalar_broadcast(self, x, s):
        vm = VectorMachine()
        vm.regs[1] = x
        vm.vmadd_mem_1to8(0, 1, s)
        np.testing.assert_allclose(vm.regs[0], x * s)

    @given(vec8, vec8, st.integers(0, 3))
    @settings(max_examples=25)
    def test_vmadd_swizzle_matches_manual(self, x, y, i):
        vm = VectorMachine()
        vm.regs[1], vm.regs[2] = x, y
        vm.vmadd_swizzle(0, 1, 2, i)
        np.testing.assert_allclose(vm.regs[0], x * VectorMachine._swizzle(y, i))


class TestInstructionCounting:
    def test_counts_by_category(self, vm):
        vm.vload(0, np.zeros(8))
        vm.broadcast_1to8(1, 2.0)
        vm.vmadd(2, 0, 1)
        vm.vmadd_mem_1to8(2, 0, 3.0)
        vm.vmadd_swizzle(2, 0, 1, 1)
        vm.prefetch()
        c = vm.counts
        assert c.load == 1
        assert c.broadcast == 1
        assert c.vmadd == 3
        assert c.vmadd_mem == 1
        assert c.swizzle_use == 1
        assert c.prefetch == 1

    def test_vector_total_excludes_prefetch(self, vm):
        vm.prefetch()
        vm.vload(0, np.zeros(8))
        assert vm.counts.vector_total == 1

    def test_memory_accessing(self, vm):
        vm.vload(0, np.zeros(8))  # memory
        vm.regs[1] = 1.0
        vm.vmadd(2, 0, 1)  # register-only
        vm.vmadd_mem_1to8(2, 0, 1.0)  # memory
        assert vm.counts.memory_accessing == 2

    def test_reset_counts(self, vm):
        vm.vload(0, np.zeros(8))
        vm.reset_counts()
        assert vm.counts.vector_total == 0
