"""Memory bandwidth model and PCIe link model tests."""

import pytest

from repro.machine import KNC, SNB
from repro.machine.memory import MemoryModel, stream_time_s
from repro.machine.pcie import PCIeLink


class TestStreamTime:
    def test_basic(self):
        assert stream_time_s(150e9, 150.0) == pytest.approx(1.0)

    def test_zero_bytes(self):
        assert stream_time_s(0, 10.0) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            stream_time_s(1.0, 0.0)
        with pytest.raises(ValueError):
            stream_time_s(-1.0, 10.0)


class TestMemoryModel:
    def test_knc_full_bandwidth(self):
        mm = MemoryModel(KNC)
        assert mm.transfer_time_s(150e9) == pytest.approx(1.0)

    def test_sharers_divide_bandwidth(self):
        mm = MemoryModel(SNB)
        assert mm.transfer_time_s(1e9, sharers=2) == pytest.approx(
            2 * mm.transfer_time_s(1e9)
        )

    def test_copy_is_double_traffic(self):
        mm = MemoryModel(SNB)
        assert mm.copy_time_s(1e9) == pytest.approx(2 * mm.transfer_time_s(1e9))

    def test_available_fraction(self):
        mm = MemoryModel(SNB, available_fraction=0.5)
        assert mm.effective_bw_gbs == pytest.approx(38.0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            MemoryModel(SNB, available_fraction=0.0)

    def test_invalid_sharers(self):
        with pytest.raises(ValueError):
            MemoryModel(SNB).transfer_time_s(1.0, sharers=0)


class TestPCIeLink:
    def test_tile_size_bound_matches_paper(self):
        # Kt > 4 * Pdgemm / BWpcie ~ 950 for P=950 GFLOPS, BW=4 GB/s.
        link = PCIeLink(effective_bw_gbs=4.0)
        assert link.min_kt_to_hide_transfer(950.0) == pytest.approx(950, abs=1)

    def test_kt_1200_hides_transfer(self):
        link = PCIeLink(effective_bw_gbs=4.0)
        ratio = link.compute_to_transfer_ratio(1200, 1200, 1200, 950.0)
        assert ratio > 1.0

    def test_small_kt_exposes_transfer(self):
        link = PCIeLink(effective_bw_gbs=4.0)
        ratio = link.compute_to_transfer_ratio(1200, 1200, 300, 950.0)
        assert ratio < 1.0

    def test_ratio_crosses_one_at_bound(self):
        link = PCIeLink(effective_bw_gbs=4.0, latency_s=0.0)
        kt = link.min_kt_to_hide_transfer(950.0)
        ratio = link.compute_to_transfer_ratio(2000, 2000, int(kt), 950.0)
        assert ratio == pytest.approx(1.0, rel=0.01)

    def test_transfer_time_includes_latency(self):
        link = PCIeLink(latency_s=1e-5)
        assert link.transfer_time_s(0) == pytest.approx(1e-5)

    def test_peak_vs_effective(self):
        link = PCIeLink(peak_bw_gbs=6.0, effective_bw_gbs=4.0, latency_s=0.0)
        assert link.transfer_time_s(12e9, effective=False) == pytest.approx(2.0)
        assert link.transfer_time_s(12e9, effective=True) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PCIeLink(effective_bw_gbs=8.0, peak_bw_gbs=6.0)
        with pytest.raises(ValueError):
            PCIeLink(peak_bw_gbs=-1.0)
        with pytest.raises(ValueError):
            PCIeLink().transfer_time_s(-5)
