"""The per-cycle kernel schedules fed through the L1 port walker —
connecting the Figure 2 code layout to the stall arithmetic."""

import pytest

from repro.machine.cache import L1PortModel
from repro.machine.kernel_model import (
    BASIC_KERNEL_1,
    BASIC_KERNEL_2,
    iteration_schedule,
)


class TestSchedules:
    def test_kernel1_schedule_census(self):
        sched, fills = iteration_schedule(BASIC_KERNEL_1)
        assert len(sched) == 32
        assert sum(sched) == 32  # every instruction touches the ports
        assert len(fills) == 2

    def test_kernel2_schedule_census(self):
        sched, fills = iteration_schedule(BASIC_KERNEL_2)
        assert len(sched) == 32
        assert sum(sched) == 28  # four swizzle holes
        assert len(fills) == 2

    def test_kernel2_holes_sit_early(self):
        # The holes follow the load+broadcast, where the fills arrive.
        sched, _ = iteration_schedule(BASIC_KERNEL_2)
        assert sched[2:6] == [False, False, False, False]


class TestWalkedStalls:
    def test_kernel1_walk_stalls_twice(self):
        # Walking the actual schedule reproduces the closed-form count:
        # no holes, two fills, two stalls (the paper's 31/34 ~ 91%).
        pm = L1PortModel(threshold=8, stall_penalty=1)
        sched, fills = iteration_schedule(BASIC_KERNEL_1)
        rep = pm.walk(sched, fills)
        assert rep.stall_cycles == 2
        assert rep.cycles == 34

    def test_kernel2_walk_never_stalls(self):
        pm = L1PortModel(threshold=8, stall_penalty=1)
        sched, fills = iteration_schedule(BASIC_KERNEL_2)
        rep = pm.walk(sched, fills)
        assert rep.stall_cycles == 0
        assert rep.cycles == 32

    def test_walk_agrees_with_closed_form(self):
        pm = L1PortModel()
        for spec in (BASIC_KERNEL_1, BASIC_KERNEL_2):
            sched, fills = iteration_schedule(spec)
            walked = pm.walk(sched, fills).stall_cycles
            closed = pm.iteration_stalls(
                spec.vector_instrs, spec.memory_accessing, len(fills)
            )
            assert walked == closed

    def test_extra_fills_overwhelm_kernel2_holes(self):
        # Six fills against four holes: two stalls even for Kernel 2.
        pm = L1PortModel(threshold=8, stall_penalty=1)
        sched, _ = iteration_schedule(BASIC_KERNEL_2)
        rep = pm.walk(sched, [1] * 6)
        assert rep.stall_cycles == 2
