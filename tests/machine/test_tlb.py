"""TLB pressure: why matrices are packed before the kernel runs."""

import pytest

from repro.machine.tlb import (
    TLBSim,
    column_walk_addresses,
    packed_tile_addresses,
)


class TestTLBSim:
    def test_working_set_within_reach_hits(self):
        tlb = TLBSim(entries=16, page_bytes=4096)
        addrs = list(range(0, 16 * 4096, 512))
        tlb.access_array(addrs)  # cold: 16 page misses
        assert tlb.misses == 16
        assert tlb.access_array(addrs) == 0  # warm: everything hits

    def test_lru_eviction(self):
        tlb = TLBSim(entries=2, page_bytes=4096)
        tlb.access(0)
        tlb.access(4096)
        tlb.access(8192)  # evicts page 0
        assert not tlb.access(0)

    def test_reach(self):
        assert TLBSim(entries=64, page_bytes=4096).reach_bytes == 256 * 1024

    def test_miss_rate(self):
        tlb = TLBSim(entries=4)
        tlb.access(0)
        tlb.access(0)
        assert tlb.miss_rate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TLBSim(entries=0)


class TestPackingArgument:
    """Section III-A3: large leading dimensions thrash the TLB; the
    packed tiles' small leading dimension does not."""

    def test_large_leading_dimension_thrashes(self):
        # A 28000-wide row-major matrix: each column element lives on its
        # own page; a 240-deep column walk overwhelms a 64-entry TLB.
        tlb = TLBSim(entries=64, page_bytes=4096)
        col = column_walk_addresses(rows=240, leading_dim=28000)
        tlb.access_array(col)
        second_pass = tlb.access_array(col)
        assert second_pass == 240  # zero reuse: every access misses again

    def test_packed_tiles_fit_in_tlb(self):
        tlb = TLBSim(entries=64, page_bytes=4096)
        addrs = packed_tile_addresses(rows=240, k=120)
        tlb.access_array(addrs)
        cold = tlb.misses
        assert tlb.access_array(addrs) == 0  # full reuse on the 2nd pass
        # Cold misses equal the data footprint in pages, nothing more.
        footprint_pages = -(-len(addrs) * 8 // 4096)
        assert cold == footprint_pages

    def test_moderate_leading_dimension_is_fine(self):
        # ld=512 -> one page per element, but only for 64+ rows; a 30-row
        # walk stays within the TLB.
        tlb = TLBSim(entries=64, page_bytes=4096)
        col = column_walk_addresses(rows=30, leading_dim=512)
        tlb.access_array(col)
        assert tlb.access_array(col) == 0

    def test_address_generators_validate(self):
        with pytest.raises(ValueError):
            column_walk_addresses(0, 10)
        with pytest.raises(ValueError):
            packed_tile_addresses(10, 0)
