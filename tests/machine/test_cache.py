"""L1 port/stall model and set-associative cache simulator tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import CacheSim, L1PortModel


class TestPortModelClosedForm:
    def test_kernel1_pattern_stalls(self):
        # 32 instructions, all memory-accessing, 2 fills -> 2 stalls.
        pm = L1PortModel(stall_penalty=1)
        assert pm.iteration_stalls(32, 32, 2) == 2

    def test_kernel2_pattern_no_stalls(self):
        # 4 holes absorb the 2 fills.
        pm = L1PortModel()
        assert pm.iteration_stalls(32, 28, 2) == 0

    def test_fills_beyond_holes_stall(self):
        pm = L1PortModel(stall_penalty=3)
        assert pm.iteration_stalls(32, 30, 5) == 9  # 5 fills - 2 holes = 3 stalls

    def test_invalid_memory_count(self):
        with pytest.raises(ValueError):
            L1PortModel().iteration_stalls(32, 33, 1)

    @given(
        st.integers(1, 64), st.integers(0, 64), st.integers(0, 8), st.integers(0, 4)
    )
    @settings(max_examples=50)
    def test_nonnegative_and_monotone_in_fills(self, n, mem, fills, penalty):
        mem = min(mem, n)
        pm = L1PortModel(stall_penalty=penalty)
        s = pm.iteration_stalls(n, mem, fills)
        assert s >= 0
        assert pm.iteration_stalls(n, mem, fills + 1) >= s


class TestPortModelWalk:
    def test_all_busy_schedule_forces_stalls(self):
        pm = L1PortModel(threshold=4, stall_penalty=1)
        rep = pm.walk([True] * 32, [0, 16])
        assert rep.stall_cycles == 2
        assert rep.cycles == 34
        assert rep.fills_completed == 2

    def test_holes_absorb_fills_without_stall(self):
        pm = L1PortModel(threshold=4, stall_penalty=1)
        sched = [True] * 32
        sched[2] = sched[18] = False  # two holes
        rep = pm.walk(sched, [0, 16])
        assert rep.stall_cycles == 0
        assert rep.cycles == 32
        assert rep.fills_completed == 2

    def test_fill_completes_in_first_hole_after_arrival(self):
        pm = L1PortModel(threshold=10, stall_penalty=1)
        sched = [True, True, False, True]
        rep = pm.walk(sched, [0])
        assert rep.stall_cycles == 0
        assert rep.fills_deferred_total == 2  # arrived at 0, completed at 2

    def test_invalid_arrival_raises(self):
        with pytest.raises(ValueError):
            L1PortModel().walk([True] * 4, [9])

    def test_empty_schedule(self):
        rep = L1PortModel().walk([], [])
        assert rep.cycles == 0
        assert rep.fills_completed == 0

    @given(
        st.lists(st.booleans(), min_size=1, max_size=64),
        st.lists(st.integers(0, 63), max_size=6),
    )
    @settings(max_examples=60)
    def test_walk_invariants(self, sched, arrivals):
        arrivals = [a for a in arrivals if a < len(sched)]
        rep = L1PortModel(threshold=3).walk(sched, arrivals)
        assert rep.fills_completed == len(arrivals)
        assert rep.cycles == len(sched) + rep.stall_cycles
        assert rep.stall_cycles >= 0
        assert rep.fills_deferred_total >= 0


class TestCacheSim:
    def test_sequential_reuse_hits(self):
        c = CacheSim(size_bytes=4096, line_bytes=64, ways=4)
        addrs = list(range(0, 2048, 8))
        c.access_array(addrs)  # cold misses: 2048/64 = 32 lines
        assert c.misses == 32
        c.access_array(addrs)  # fits in cache: all hits
        assert c.misses == 32

    def test_power_of_two_stride_thrashes_set(self):
        # Column walk of a row-major matrix with power-of-two leading
        # dimension: every access maps to the same set (Section III-A3).
        c = CacheSim(size_bytes=32 * 1024, line_bytes=64, ways=8)
        ld_bytes = 4096 * 8  # leading dimension 4096 doubles
        col = [r * ld_bytes for r in range(64)]
        c.access_array(col)
        c2 = CacheSim(size_bytes=32 * 1024, line_bytes=64, ways=8)
        c2.access_array(col)  # second pass: still all misses (thrash)
        assert c2.misses == 64

    def test_small_leading_dimension_avoids_thrash(self):
        # Packed tiles have a tiny leading dimension: the same 64 rows of
        # a 30-wide tile fit in L1 and the second pass hits.
        c = CacheSim(size_bytes=32 * 1024, line_bytes=64, ways=8)
        ld_bytes = 30 * 8
        col = [r * ld_bytes for r in range(64)]
        c.access_array(col)
        miss_second = c.access_array(col)
        assert miss_second == 0

    def test_capacity_eviction(self):
        c = CacheSim(size_bytes=1024, line_bytes=64, ways=2)  # 16 lines
        addrs = [i * 64 for i in range(32)]
        c.access_array(addrs)
        assert c.misses == 32
        missed = c.access_array(addrs)  # working set 2x capacity: thrash
        assert missed == 32

    def test_bad_geometry_raises(self):
        with pytest.raises(ValueError):
            CacheSim(size_bytes=1000, line_bytes=64, ways=3)

    def test_miss_rate(self):
        c = CacheSim(size_bytes=1024, line_bytes=64, ways=2)
        c.access(0)
        c.access(0)
        assert c.miss_rate == pytest.approx(0.5)
