"""Batched kernel schedules: bitwise identity with the per-instruction
emulator and an exactly matching analytic instruction census."""

import numpy as np
import pytest

from repro.blas.kernels import (
    KERNEL2_ROWS,
    SP_LANES,
    basic_kernel_1,
    basic_kernel_2,
    basic_kernel_2_sp,
    batched_kernel_1,
    batched_kernel_2,
    batched_kernel_2_sp,
)
from repro.machine.vector import VectorMachine
from repro.machine.vector_batch import schedule_for


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _tiles(rng, t, k, rows, lanes, dtype=np.float64):
    a = rng.standard_normal((t, k, rows)).astype(dtype)
    b = rng.standard_normal((t, k, lanes)).astype(dtype)
    return a, b


class TestBitwiseIdentity:
    @pytest.mark.parametrize(
        "batched, stepped, rows, lanes, dtype",
        [
            (batched_kernel_1, basic_kernel_1, 31, 8, np.float64),
            (batched_kernel_2, basic_kernel_2, 30, 8, np.float64),
            (batched_kernel_2_sp, basic_kernel_2_sp, 30, 16, np.float32),
        ],
    )
    def test_matches_per_instruction_path(self, rng, batched, stepped, rows, lanes, dtype):
        a, b = _tiles(rng, 5, 19, rows, lanes, dtype)
        out = batched(a, b)
        ref = np.stack([stepped(a[t], b[t]) for t in range(5)])
        assert out.dtype == ref.dtype
        assert np.array_equal(out, ref)

    def test_single_tile_batch(self, rng):
        a, b = _tiles(rng, 1, 8, 31, 8)
        assert np.array_equal(batched_kernel_1(a, b)[0], basic_kernel_1(a[0], b[0]))


class TestCensus:
    @pytest.mark.parametrize(
        "batched, stepped, rows, lanes, dtype",
        [
            (batched_kernel_1, basic_kernel_1, 31, 8, np.float64),
            (batched_kernel_2, basic_kernel_2, 30, 8, np.float64),
            (batched_kernel_2_sp, basic_kernel_2_sp, 30, 16, np.float32),
        ],
    )
    def test_analytic_census_matches_emulator_exactly(
        self, rng, batched, stepped, rows, lanes, dtype
    ):
        a, b = _tiles(rng, 4, 11, rows, lanes, dtype)
        vm_batch = VectorMachine(dtype=dtype, lanes=lanes)
        vm_step = VectorMachine(dtype=dtype, lanes=lanes)
        batched(a, b, vm_batch)
        for t in range(4):
            stepped(a[t], b[t], vm_step)
        assert vm_batch.counts == vm_step.counts

    def test_census_scales_with_batch(self):
        sched = schedule_for(KERNEL2_ROWS)
        one = sched.census(k=9)
        many = sched.census(k=9, n_tiles=6)
        assert many.vmadd == 6 * one.vmadd
        assert many.store == 6 * one.store

    def test_paper_instruction_mix(self):
        # 31 (or 30) vmadds of the 32 vector-slot instructions per
        # iteration; the final c stores sit outside the k loop.
        c1 = schedule_for(31).census(k=10)
        assert c1.vmadd == 31 * 10
        assert c1.vector_total - c1.store == 32 * 10
        c2 = schedule_for(30).census(k=10)
        assert c2.vmadd == 30 * 10
        assert c2.vector_total - c2.store == 32 * 10
        assert c2.swizzle_use == 4 * 10 and c2.vmadd_mem == 26 * 10


class TestValidation:
    def test_unknown_geometry_rejected(self):
        with pytest.raises(ValueError, match="no basic kernel"):
            schedule_for(29)
        with pytest.raises(ValueError, match="no basic kernel"):
            schedule_for(31, lanes=16)

    def test_shape_mismatches_rejected(self, rng):
        a, b = _tiles(rng, 2, 4, 30, 8)
        with pytest.raises(ValueError, match="rows"):
            batched_kernel_1(a, b)  # 30-row tiles into the 31-row kernel
        with pytest.raises(ValueError, match="wide"):
            batched_kernel_2(a, rng.standard_normal((2, 4, 9)))
        with pytest.raises(ValueError, match="3-D"):
            batched_kernel_2(a[0], b[0])

    def test_machine_mismatch_rejected(self, rng):
        a, b = _tiles(rng, 1, 3, 30, 16, np.float32)
        with pytest.raises(ValueError, match="lanes"):
            batched_kernel_2_sp(a, b, VectorMachine())  # f64/8-lane machine


class TestGemmIntegration:
    def test_emulated_equals_emulated_step_bitwise(self, rng):
        from repro.blas.gemm import gemm

        a = rng.standard_normal((95, 37))
        b = rng.standard_normal((37, 21))
        c0 = rng.standard_normal((95, 21))
        for tile_rows in (30, 31):
            fast = gemm(a, b, c0.copy(), alpha=-0.5, beta=1.0,
                        kernel="emulated", tile_rows=tile_rows, k_block=16)
            step = gemm(a, b, c0.copy(), alpha=-0.5, beta=1.0,
                        kernel="emulated-step", tile_rows=tile_rows, k_block=16)
            assert np.array_equal(fast, step)

    def test_unknown_kernel_mode_rejected(self, rng):
        from repro.blas.gemm import gemm

        with pytest.raises(ValueError, match="unknown kernel"):
            gemm(rng.standard_normal((4, 4)), rng.standard_normal((4, 4)),
                 kernel="emulated-batch")
