"""Node power / energy model (Section VII)."""

import pytest

from repro.machine.energy import (
    HOST_SLEEP_W,
    KNC_CARD_W,
    SNB_SOCKET_W,
    NodePower,
    cpu_only_node_power,
    energy_kj,
    gflops_per_watt,
    hybrid_node_power,
    native_node_power,
)


class TestNodePower:
    def test_hybrid_components(self):
        p = hybrid_node_power(cards=1)
        assert p.host_w == 2 * SNB_SOCKET_W
        assert p.cards_w == KNC_CARD_W
        assert p.total_w == pytest.approx(
            p.host_w + p.cards_w + p.dram_w + p.base_w
        )

    def test_second_card_adds_card_power_only(self):
        one, two = hybrid_node_power(1), hybrid_node_power(2)
        assert two.total_w - one.total_w == pytest.approx(KNC_CARD_W)

    def test_native_sleeps_the_host(self):
        p = native_node_power(1)
        assert p.host_w == HOST_SLEEP_W
        assert p.total_w < hybrid_node_power(1).total_w

    def test_paper_claim_host_and_card_power_comparable(self):
        # "Sandy Bridge EP ... consumes comparable power" to the card.
        host = hybrid_node_power(0).host_w + hybrid_node_power(0).dram_w
        assert 0.5 < host / KNC_CARD_W < 1.5

    def test_more_memory_costs_power(self):
        assert hybrid_node_power(1, 128).total_w > hybrid_node_power(1, 64).total_w

    def test_cpu_only(self):
        assert cpu_only_node_power().cards_w == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            hybrid_node_power(-1)
        with pytest.raises(ValueError):
            native_node_power(-2)
        with pytest.raises(ValueError):
            hybrid_node_power(1, 0)


class TestEnergyMath:
    def test_energy_kj(self):
        assert energy_kj(1000.0, 60.0) == pytest.approx(60.0)

    def test_energy_validation(self):
        with pytest.raises(ValueError):
            energy_kj(-1, 1)
        with pytest.raises(ValueError):
            energy_kj(1, -1)

    def test_gflops_per_watt(self):
        assert gflops_per_watt(1000.0, 500.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            gflops_per_watt(1.0, 0.0)
        with pytest.raises(ValueError):
            gflops_per_watt(-1.0, 10.0)

    def test_native_node_more_efficient_at_equal_throughput(self):
        gf = 900.0
        assert gflops_per_watt(gf, native_node_power(1).total_w) > gflops_per_watt(
            gf, hybrid_node_power(1).total_w
        )
