"""Calibrated GEMM efficiency model vs the paper's Table II / Figure 4."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import KNC, SNB
from repro.machine.calibration import (
    TABLE2_DGEMM,
    TABLE2_SGEMM,
    default_calibration,
)
from repro.machine.gemm_model import (
    dgemm_efficiency_vs_k,
    gemm_efficiency,
    gemm_gflops,
    gemm_time_s,
    packing_overhead,
    sgemm_efficiency_vs_k,
    snb_dgemm_efficiency,
)


class TestTable2Reproduction:
    def test_dgemm_within_one_point_of_paper(self):
        model = dgemm_efficiency_vs_k(list(TABLE2_DGEMM))
        for k, paper_eff in TABLE2_DGEMM.items():
            assert model[k][0] == pytest.approx(paper_eff, abs=0.01)

    def test_sgemm_within_one_point_of_paper(self):
        model = sgemm_efficiency_vs_k(list(TABLE2_SGEMM))
        for k, paper_eff in TABLE2_SGEMM.items():
            assert model[k][0] == pytest.approx(paper_eff, abs=0.01)

    def test_dgemm_peaks_at_k300(self):
        model = dgemm_efficiency_vs_k(list(TABLE2_DGEMM))
        best_k = max(model, key=lambda k: model[k][0])
        assert best_k == 300

    def test_sgemm_peaks_at_k400(self):
        model = sgemm_efficiency_vs_k(list(TABLE2_SGEMM))
        best_k = max(model, key=lambda k: model[k][0])
        assert best_k == 400

    def test_dgemm_944_gflops_at_k300(self):
        model = dgemm_efficiency_vs_k([300])
        assert model[300][1] == pytest.approx(944, abs=5)

    def test_sgemm_1917_gflops_at_k400(self):
        model = sgemm_efficiency_vs_k([400])
        assert model[400][1] == pytest.approx(1917, abs=15)

    def test_dgemm_spill_dip_beyond_k300(self):
        model = dgemm_efficiency_vs_k([300, 340, 400])
        assert model[340][0] < model[300][0]
        assert model[400][0] < model[340][0]


class TestFigure4Reproduction:
    def test_kernel_efficiency_88pct_at_5k(self):
        assert gemm_efficiency(5000, 5000, 300) == pytest.approx(0.88, abs=0.01)

    def test_packing_overhead_curve(self):
        assert packing_overhead(1000, 1000) == pytest.approx(0.15, abs=0.02)
        assert packing_overhead(5000, 5000) == pytest.approx(0.02, abs=0.01)
        assert packing_overhead(17000, 17000) == pytest.approx(0.004, abs=0.004)

    def test_packing_overhead_under_2pct_from_5k(self):
        for n in (5000, 8000, 12000, 20000, 28000):
            assert packing_overhead(n, n) <= 0.025

    def test_snb_approaches_90pct(self):
        assert snb_dgemm_efficiency(28000) == pytest.approx(0.90, abs=0.01)

    def test_knc_beats_snb_in_gflops_everywhere_beyond_2k(self):
        for n in (2000, 5000, 10000, 28000):
            knc = gemm_gflops(n, n, 300, KNC, include_packing=True)
            snb = snb_dgemm_efficiency(n) * SNB.peak_dp_gflops()
            assert knc > snb

    def test_packed_efficiency_monotone_in_size(self):
        effs = [
            gemm_efficiency(n, n, 300, include_packing=True)
            for n in (1000, 2000, 5000, 10000, 28000)
        ]
        assert effs == sorted(effs)


class TestModelMechanics:
    @given(st.integers(64, 4096), st.integers(64, 4096), st.integers(32, 512))
    @settings(max_examples=40)
    def test_efficiency_in_unit_interval(self, m, n, k):
        assert 0 < gemm_efficiency(m, n, k) <= 1

    @given(st.integers(256, 4096), st.integers(32, 512))
    @settings(max_examples=30)
    def test_time_flops_consistency(self, n, k):
        t = gemm_time_s(n, n, k)
        gf = gemm_gflops(n, n, k)
        assert gf * 1e9 * t == pytest.approx(2.0 * n * n * k, rel=1e-9)

    def test_packing_reduces_efficiency(self):
        assert gemm_efficiency(4000, 4000, 300, include_packing=True) < (
            gemm_efficiency(4000, 4000, 300)
        )

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            gemm_efficiency(0, 10, 10)
        with pytest.raises(ValueError):
            snb_dgemm_efficiency(0)

    def test_calibration_is_memoised(self):
        assert default_calibration() is default_calibration()

    def test_sgemm_has_no_spill_in_swept_range(self):
        cal = default_calibration()
        # SGEMM blocks are half the bytes: monotone increasing over the sweep.
        effs = [cal.sgemm_eff_k(k) for k in (120, 180, 240, 300, 340, 400)]
        assert effs == sorted(effs)
