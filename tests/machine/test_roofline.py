"""Section III-A1 cache-blocking bandwidth analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import KNC
from repro.machine.roofline import (
    bandwidth_feasible,
    compute_cycles,
    l2_block_bytes,
    l2_blocks_fit,
    memory_traffic_bytes,
    required_bandwidth_bytes_per_cycle,
    required_bandwidth_gbs,
)

dims = st.integers(1, 2048)


class TestPaperNumbers:
    def test_example_blocking_is_1_1_bytes_per_cycle(self):
        # m=120, n=32, k=240 -> ~1.1 bytes/cycle per core. The paper's
        # example uses the large-N amortised form 64*(2/k + 1/m).
        bpc = required_bandwidth_bytes_per_cycle(120, 32, 240, amortize_a=True)
        assert bpc == pytest.approx(1.1, abs=0.05)

    def test_example_blocking_is_74_gbs_on_60_cores(self):
        gbs = required_bandwidth_gbs(120, 32, 240, KNC, cores=60, amortize_a=True)
        assert gbs == pytest.approx(74, abs=4)

    def test_example_within_stream_bandwidth(self):
        # "well within the limits of Knights Corner's achievable STREAM
        # bandwidth of 150 GB/s" — with the Ab load amortised.
        assert bandwidth_feasible(120, 32, 240, KNC, amortize_a=True)

    def test_amortized_form_drops_n_term(self):
        full = required_bandwidth_bytes_per_cycle(120, 32, 240)
        amort = required_bandwidth_bytes_per_cycle(120, 32, 240, amortize_a=True)
        assert amort == pytest.approx(full - 64 / 32)

    def test_k300_leaves_l2_headroom_but_k400_does_not(self):
        # Table II: DGEMM dips at k >= 340 because the blocks start to
        # fall out of L2. k=300 uses ~75% of the 512 KB; k=400 ~99%,
        # leaving no room for stacks/metadata, and k=420 overflows.
        l2 = KNC.l2.size_bytes
        assert l2_block_bytes(120, 32, 300) < 0.80 * l2
        assert l2_block_bytes(120, 32, 400) > 0.95 * l2
        assert not l2_blocks_fit(120, 32, 420, KNC)


class TestFormulas:
    @given(dims, dims, dims)
    @settings(max_examples=50)
    def test_bandwidth_is_traffic_over_compute_time(self, m, n, k):
        bpc = required_bandwidth_bytes_per_cycle(m, n, k)
        expected = memory_traffic_bytes(m, n, k) / compute_cycles(m, n, k)
        assert bpc == pytest.approx(expected, rel=1e-12)

    @given(dims, dims, dims)
    @settings(max_examples=50)
    def test_traffic_counts_c_twice(self, m, n, k):
        assert memory_traffic_bytes(m, n, k) - l2_block_bytes(m, n, k) == 8 * m * n

    def test_bigger_k_needs_less_bandwidth(self):
        assert required_bandwidth_bytes_per_cycle(
            120, 32, 480
        ) < required_bandwidth_bytes_per_cycle(120, 32, 120)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            l2_block_bytes(0, 32, 240)
        with pytest.raises(ValueError):
            required_bandwidth_bytes_per_cycle(120, -1, 240)

    def test_single_precision_halves_footprint(self):
        assert l2_block_bytes(120, 32, 240, elem_bytes=4) == l2_block_bytes(
            120, 32, 240
        ) // 2
