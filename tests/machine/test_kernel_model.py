"""Instruction-mix arithmetic of Section III-A2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import L1PortModel
from repro.machine.kernel_model import (
    BASIC_KERNEL_1,
    BASIC_KERNEL_2,
    KernelSpec,
    kernel_cycle_model,
    kernel_efficiency,
    stalled_efficiency_bound,
)


class TestTheoreticalEfficiencies:
    def test_kernel1_969(self):
        assert BASIC_KERNEL_1.theoretical_efficiency == pytest.approx(31 / 32)

    def test_kernel2_937(self):
        assert BASIC_KERNEL_2.theoretical_efficiency == pytest.approx(30 / 32)

    def test_kernel1_stalled_bound_91(self):
        # "two stall cycles ... reduce overall efficiency down to 91%"
        assert stalled_efficiency_bound(BASIC_KERNEL_1, 2) == pytest.approx(
            31 / 34, abs=1e-9
        )

    def test_kernel1_has_no_holes(self):
        assert BASIC_KERNEL_1.holes == 0

    def test_kernel2_has_four_holes(self):
        assert BASIC_KERNEL_2.holes == 4


class TestCycleModel:
    def test_kernel2_beats_kernel1_under_port_model(self):
        # The paper's headline point: sacrificing one vmadd wins once L1
        # port conflicts are accounted for.
        for k in (120, 240, 300, 400):
            e1 = kernel_efficiency(BASIC_KERNEL_1, k)
            e2 = kernel_efficiency(BASIC_KERNEL_2, k)
            assert e2 > e1

    def test_kernel1_wins_without_port_conflicts(self):
        # With a free L1 (no stalls), Kernel 1's extra vmadd wins back.
        pm = L1PortModel(stall_penalty=0)
        e1 = kernel_efficiency(BASIC_KERNEL_1, 300, pm)
        e2 = kernel_efficiency(BASIC_KERNEL_2, 300, pm)
        assert e1 > e2

    def test_c_update_overhead_below_half_percent_at_k240(self):
        # Paper: "for k = 240 it is less than 0.5%".
        spec = BASIC_KERNEL_2
        pm = L1PortModel()
        with_update = kernel_cycle_model(spec, 240, pm)
        without_update = 240 * spec.vector_instrs
        overhead = (with_update - without_update) / with_update
        assert overhead < 0.005

    def test_efficiency_increases_with_k(self):
        effs = [kernel_efficiency(BASIC_KERNEL_2, k) for k in (60, 120, 240, 480)]
        assert effs == sorted(effs)

    def test_efficiency_approaches_theoretical_limit(self):
        eff = kernel_efficiency(BASIC_KERNEL_2, 10**7)
        assert eff == pytest.approx(BASIC_KERNEL_2.theoretical_efficiency, abs=1e-4)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kernel_cycle_model(BASIC_KERNEL_2, 0)

    @given(st.integers(1, 4096))
    @settings(max_examples=40)
    def test_efficiency_in_unit_interval(self, k):
        for spec in (BASIC_KERNEL_1, BASIC_KERNEL_2):
            assert 0 < kernel_efficiency(spec, k) < 1


class TestCustomSpecs:
    def test_spec_consistency_with_emulated_kernels(self):
        # Kernel 2's census: 30 vmadds (4 swizzle + 26 memory), 1 load,
        # 1 broadcast -> 32 vector slots, 28 memory-accessing.
        s = BASIC_KERNEL_2
        assert s.vmadds + 2 == s.vector_instrs  # load + broadcast
        assert s.memory_accessing == 26 + 1 + 1

    def test_hypothetical_wider_register_file(self):
        # With 64 registers a 63-row kernel would reach 63/64.
        spec = KernelSpec(
            name="hypothetical",
            c_rows=63,
            vector_instrs=64,
            vmadds=63,
            memory_accessing=64,
            fills_per_iter=2.0,
        )
        assert spec.theoretical_efficiency == pytest.approx(63 / 64)
