"""The self-test harness."""

import pytest

from repro.validate import CHECKS, Check, selftest


class TestSelftest:
    def test_all_checks_pass(self, capsys):
        assert selftest(verbose=True)
        out = capsys.readouterr().out
        assert out.count("[   ok]") == len(CHECKS)
        assert "FAIL" not in out

    def test_quiet_mode(self, capsys):
        assert selftest(verbose=False)
        assert capsys.readouterr().out == ""

    def test_failing_check_reported_not_raised(self, capsys, monkeypatch):
        import repro.validate as validate

        def bad():
            raise AssertionError("synthetic failure")

        def broken():
            raise RuntimeError("synthetic crash")

        monkeypatch.setattr(
            validate,
            "CHECKS",
            [Check("bad", bad), Check("broken", broken)] + validate.CHECKS[:1],
        )
        assert not validate.selftest()
        out = capsys.readouterr().out
        assert "[ FAIL] bad" in out
        assert "[ERROR] broken" in out
        assert "[   ok]" in out  # the healthy check still ran

    def test_cli_selftest_exit_code(self):
        from repro.cli import main

        assert main(["selftest"]) == 0

    def test_check_count_covers_all_layers(self):
        names = " ".join(c.name for c in CHECKS)
        for keyword in ("DGEMM", "HPL", "distributed", "offload", "anchor"):
            assert keyword.lower() in names.lower() or keyword in names
