"""Cross-layer integration tests.

These tie the layers together end to end: the packed-kernel BLAS inside
the LU workspace, schedulers executing real numerics under simulated
time, offload DGEMM feeding an actual trailing update of a blocked LU
stage, and distributed runs agreeing with local ones.
"""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DistributedHPL,
    DynamicScheduler,
    NativeHPL,
    OffloadDGEMM,
    StaticLookaheadScheduler,
    blocked_lu,
    lu_solve,
)
from repro.hpl.matgen import hpl_matrix, hpl_system
from repro.hpl.residual import residual_passes
from repro.lu.tasks import LUWorkspace


class TestEndToEndNative:
    @pytest.mark.parametrize("nb", [16, 50, 128])
    def test_numeric_native_hpl_across_block_sizes(self, nb):
        r = NativeHPL(200, nb=nb).run(numeric=True)
        assert r.passed

    @pytest.mark.parametrize("scheduler", ["dynamic", "static"])
    def test_numeric_native_hpl_both_schedulers(self, scheduler):
        r = NativeHPL(180, nb=45, scheduler=scheduler).run(numeric=True)
        assert r.passed

    def test_packed_gemm_lu_full_pipeline(self):
        # The LU trailing updates run through the packed-tile BLAS (the
        # same code path as the emulated basic kernels) and still solve.
        a0, b = hpl_system(150, seed=1)
        a = a0.copy()
        ws = LUWorkspace(a, nb=30, use_packed_gemm=True)
        DynamicScheduler(150, nb=30).run(ws)
        x = lu_solve(ws.a, ws.finalize(), np.asarray(b))
        assert residual_passes(a0, x, b)

    def test_simulated_time_independent_of_numerics(self):
        # Running with or without a workspace must give identical
        # simulated makespans (timing never depends on the data).
        sched_a = DynamicScheduler(160, nb=40)
        t_plain = sched_a.run().makespan_s
        sched_b = DynamicScheduler(160, nb=40)
        ws = LUWorkspace(hpl_matrix(160, 3), nb=40)
        t_numeric = sched_b.run(ws).makespan_s
        assert t_plain == pytest.approx(t_numeric, rel=1e-12)


class TestOffloadIntoLU:
    def test_offload_performs_a_real_trailing_update(self):
        # Factor a panel, then do the stage's trailing update through the
        # offload engine and finish the factorization with the reference
        # path — the result must match scipy.
        n, nb = 120, 30
        a0 = hpl_matrix(n, seed=5)
        a = a0.copy()
        ws = LUWorkspace(a, nb)
        from repro.lu.dag import Task

        ws.execute(Task.panel_task(0))
        ws.execute(Task.update_task(0, 1))
        ws.execute(Task.update_task(0, 2))
        ws.execute(Task.update_task(0, 3))
        # Redo stage 0's full trailing GEMM contribution through offload
        # on a copy and compare blocks.
        a2 = a0.copy()
        ws2 = LUWorkspace(a2, nb)
        ws2.execute(Task.panel_task(0))
        # swap + trsm for all panels, then subtract L21 @ U via offload.
        from repro.blas.laswp import laswp
        from repro.blas.trsm import trsm_lower_unit_left

        ipiv = ws2.stage_ipiv[0]
        block = a2[:, nb:]
        laswp(block, ipiv, forward=True)
        trsm_lower_unit_left(a2[:nb, :nb], block[:nb])
        l21 = np.ascontiguousarray(a2[nb:, :nb])
        u = np.ascontiguousarray(block[:nb])
        c = np.ascontiguousarray(block[nb:])
        OffloadDGEMM(n - nb, n - nb, kt=nb, tile=(40, 40), host_assist=True).run(
            -l21, u, c
        )
        block[nb:] = c
        np.testing.assert_allclose(a2, a, rtol=1e-11, atol=1e-12)


class TestDistributedAgreesWithLocal:
    @given(st.integers(20, 70), st.integers(4, 20), st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=8, deadline=None)
    def test_distributed_vs_local_property(self, n, nb, p, q):
        r = DistributedHPL(n, nb, p, q).run()
        lu_ref, ipiv_ref = blocked_lu(hpl_matrix(n, 42).copy(), nb=nb)
        np.testing.assert_allclose(r.lu, lu_ref, rtol=1e-11, atol=1e-12)
        np.testing.assert_array_equal(r.ipiv, ipiv_ref)
        assert r.passed

    def test_distributed_solution_solves_original_system(self):
        r = DistributedHPL(64, 8, 2, 2).run()
        a0, b = hpl_system(64, 42)
        np.testing.assert_allclose(a0 @ r.x, b, rtol=1e-8, atol=1e-8)


class TestSchedulersAgreeNumerically:
    def test_both_schedulers_same_factorization(self):
        a0 = hpl_matrix(140, seed=9)
        ws_d = LUWorkspace(a0.copy(), 35)
        DynamicScheduler(140, nb=35).run(ws_d)
        ws_s = LUWorkspace(a0.copy(), 35)
        StaticLookaheadScheduler(140, nb=35).run(ws_s)
        np.testing.assert_array_equal(ws_d.a, ws_s.a)
        np.testing.assert_array_equal(ws_d.finalize(), ws_s.finalize())

    def test_scipy_cross_check(self):
        a0 = hpl_matrix(96, seed=11)
        ws = LUWorkspace(a0.copy(), 24)
        DynamicScheduler(96, nb=24).run(ws)
        ipiv = ws.finalize()
        lu_ref, piv_ref = sla.lu_factor(a0)
        np.testing.assert_allclose(ws.a, lu_ref, rtol=1e-10, atol=1e-11)
        np.testing.assert_array_equal(ipiv, piv_ref)
