"""Successive-halving tuner: convergence on the deterministic model."""

import pytest

from repro import api
from repro.campaign.tuner import (
    HalvingResult,
    render_machine_table,
    successive_halving,
    tune_machine_models,
)
from repro.spec import RunSpec


class TestSuccessiveHalving:
    BASE = RunSpec(kind="hybrid", n=36000)

    def test_converges_to_exhaustive_best(self):
        axes = {"nb": [600, 1200, 2400], "lookahead": ["basic", "pipelined"]}
        result = successive_halving(self.BASE, axes, rungs=(12000, 36000))
        # The survivor must match brute force at the final rung size.
        scores = {}
        for nb in axes["nb"]:
            for la in axes["lookahead"]:
                spec = self.BASE.with_overrides({"nb": nb, "lookahead": la})
                scores[(nb, la)] = api.run(spec).gflops
        best_exhaustive = max(scores.values())
        assert result.best.score == pytest.approx(best_exhaustive)

    def test_halves_the_field_each_rung(self):
        axes = {"nb": [300, 600, 1200, 2400]}
        result = successive_halving(self.BASE, axes, rungs=(6000, 12000, 36000))
        assert result.survivors_per_rung == (4, 2, 1)

    def test_deterministic(self):
        axes = {"nb": [600, 1200], "lookahead": ["basic", "pipelined"]}
        a = successive_halving(self.BASE, axes, rungs=(12000, 36000))
        b = successive_halving(self.BASE, axes, rungs=(12000, 36000))
        assert a.best.spec == b.best.spec
        assert a.best.spec_hash == b.best.spec_hash

    def test_single_rung_is_exhaustive_search(self):
        axes = {"nb": [600, 1200, 2400]}
        result = successive_halving(self.BASE, axes, rungs=(36000,))
        assert result.survivors_per_rung == (3,)

    def test_result_describe(self):
        result = successive_halving(self.BASE, {"nb": [1200]}, rungs=(12000,))
        assert isinstance(result, HalvingResult)
        assert "gflops" in result.describe()

    def test_validation(self):
        with pytest.raises(ValueError, match="ascend"):
            successive_halving(self.BASE, {"nb": [600]}, rungs=(36000, 12000))
        with pytest.raises(ValueError, match="keep_fraction"):
            successive_halving(self.BASE, {"nb": [600]}, rungs=(12000,),
                               keep_fraction=1.5)
        with pytest.raises(ValueError, match="rung"):
            successive_halving(self.BASE, {"nb": [600]}, rungs=())


class TestMachineTable:
    def test_one_row_per_profile_in_registry_order(self):
        rows = tune_machine_models(
            machines=["knc-1card-64gb", "knc-1card-128gb"],
            rungs=(6000, 12000), nb_axis=(600, 1200))
        assert [r["machine"] for r in rows] == [
            "knc-1card-64gb", "knc-1card-128gb"]
        for row in rows:
            assert row["gflops"] > 0
            assert row["spec_hash"] == RunSpec.from_dict(
                row["spec"]).canonical_hash()

    def test_rung_ladder_respects_profile_memory(self):
        # The default 84K top rung exceeds nothing at 64 GB, but the
        # ladder must never ask for more than the host can hold.
        rows = tune_machine_models(machines=["knc-1card-64gb"],
                                   nb_axis=(1200,),
                                   lookahead_axis=("pipelined",))
        assert rows[0]["n"] * rows[0]["n"] * 8 <= 64 * 1024**3

    def test_render_machine_table(self):
        rows = tune_machine_models(machines=["knc-1card-64gb"],
                                   rungs=(6000,), nb_axis=(1200,),
                                   lookahead_axis=("pipelined",))
        text = str(render_machine_table(rows))
        assert "knc-1card-64gb" in text and "1x1" in text

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError, match="machine profile"):
            tune_machine_models(machines=["cray-1"], rungs=(6000,))
