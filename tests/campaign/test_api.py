"""repro.api.run: dispatch, spec attachment, CLI equivalence."""

import json

import pytest

from repro import api
from repro.cli import main
from repro.spec import RunSpec, run_flags_parser, spec_from_args


class TestDispatch:
    def test_native_model(self):
        r = api.run(RunSpec(kind="native", n=2000))
        assert r.kind == "native" and r.gflops > 0

    def test_native_numeric(self):
        r = api.run(RunSpec(kind="native", n=200, nb=50, numeric=True))
        assert r.passed

    def test_hybrid_model(self):
        r = api.run(RunSpec(kind="hybrid", n=24000))
        assert r.kind == "hybrid" and r.tflops > 0

    def test_hybrid_numeric(self):
        r = api.run(RunSpec(kind="hybrid", n=256, numeric=True))
        assert r.passed and r.nb == 64

    def test_distributed(self):
        r = api.run(RunSpec(kind="distributed", n=48, nb=8, p=2, q=2))
        assert r.passed

    def test_rejects_non_spec(self):
        with pytest.raises(TypeError):
            api.run({"kind": "native", "n": 100})


class TestSpecAttachment:
    def test_result_carries_normalized_spec(self):
        spec = RunSpec(kind="native", n=2000)
        r = api.run(spec)
        assert r.spec == spec.normalized()

    def test_to_dict_carries_spec_block_and_hash(self):
        spec = RunSpec(kind="distributed", n=48, nb=8, p=2, q=2)
        d = api.run(spec).to_dict()
        assert d["spec_hash"] == spec.canonical_hash()
        assert d["spec"] == spec.to_dict()

    def test_machine_profile_resolves_into_result_spec(self):
        r = api.run(RunSpec(kind="hybrid", n=24000, machine="knc-2card-64gb"))
        assert r.spec.cards == 2

    def test_tflops_property_shared_across_kinds(self):
        for spec in (RunSpec(kind="native", n=2000),
                     RunSpec(kind="hybrid", n=24000)):
            r = api.run(spec)
            assert r.tflops == pytest.approx(r.gflops / 1e3)


class TestCLIEquivalence:
    """Every CLI run subcommand is exactly spec_from_args + api.run."""

    CASES = {
        "native": ["--n", "2000"],
        "hybrid": ["--n", "24000"],
        "distributed": ["--n", "48", "--nb", "8"],
    }

    @pytest.mark.parametrize("kind", sorted(CASES))
    def test_cli_json_equals_api_run(self, kind, capsys):
        argv = self.CASES[kind]
        assert main([kind, *argv, "--json"]) == 0
        cli_doc = json.loads(capsys.readouterr().out)

        args = run_flags_parser(kind).parse_args(argv)
        spec = spec_from_args(kind, args)
        api_doc = api.run(spec).to_dict()
        # Wall-clock fields (timers, numeric gflops) vary run to run;
        # the configuration identity and the model fields must not.
        assert cli_doc["spec"] == api_doc["spec"]
        assert cli_doc["spec_hash"] == api_doc["spec_hash"]
        assert cli_doc["kind"] == api_doc["kind"]

    @pytest.mark.parametrize("kind,argv,expect", [
        ("native", ["--n", "3000", "--nb", "200", "--scheduler", "static"],
         {"nb": 200, "scheduler": "static"}),
        ("native", ["--n", "100", "--numeric", "--no-pack-cache", "--workers", "2"],
         {"numeric": True, "pack_cache": False, "workers": 2}),
        ("hybrid", ["--n", "30000", "--cards", "2", "--lookahead", "basic"],
         {"cards": 2, "lookahead": "basic"}),
        ("hybrid", ["--n", "30000", "--machine", "knc-1card-128gb"],
         {"machine": "knc-1card-128gb", "mem_gb": 128.0}),
        ("distributed", ["--n", "64", "--lookahead", "--bcast-algo", "ring"],
         {"lookahead": "on", "bcast_algo": "ring"}),
        ("distributed", ["--n", "64", "--checkpoint-every", "2",
                         "--retry-max", "1", "--comm-timeout", "0.5"],
         {"checkpoint_every": 2, "retry_max": 1, "comm_timeout": 0.5}),
    ])
    def test_flags_map_onto_spec_fields(self, kind, argv, expect):
        args = run_flags_parser(kind).parse_args(argv)
        spec = spec_from_args(kind, args).normalized()
        for field, value in expect.items():
            assert getattr(spec, field) == value

    def test_flag_table_covers_historical_defaults(self):
        native = spec_from_args(
            "native", run_flags_parser("native").parse_args(["--n", "1000"])
        ).normalized()
        assert native.nb == 300 and native.scheduler == "dynamic"
        dist = spec_from_args(
            "distributed", run_flags_parser("distributed").parse_args([])
        ).normalized()
        assert (dist.n, dist.nb, dist.p, dist.q) == (144, 16, 2, 2)
        assert dist.bcast_algo == "star" and dist.lookahead == "off"
