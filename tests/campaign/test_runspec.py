"""RunSpec: validation, normalization, canonical hashing, round-trips."""


import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spec import (
    BCAST_ALGOS,
    HYBRID_LOOKAHEADS,
    RunSpec,
    parse_grid,
)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            RunSpec(kind="gpu", n=1000)

    def test_nonpositive_n_rejected(self):
        with pytest.raises(ValueError, match="n must be"):
            RunSpec(kind="native", n=0)

    def test_bad_nb_rejected(self):
        with pytest.raises(ValueError, match="nb"):
            RunSpec(kind="native", n=1000, nb=0)

    def test_native_rejects_lookahead(self):
        with pytest.raises(ValueError, match="look-ahead"):
            RunSpec(kind="native", n=1000, lookahead="pipelined")

    def test_native_rejects_grid(self):
        with pytest.raises(ValueError, match="single-card"):
            RunSpec(kind="native", n=1000, p=2, q=2)

    def test_scheduler_is_native_only(self):
        with pytest.raises(ValueError, match="scheduler"):
            RunSpec(kind="hybrid", n=1000, scheduler="static")

    def test_bcast_algo_is_distributed_only(self):
        with pytest.raises(ValueError, match="distributed runs only"):
            RunSpec(kind="hybrid", n=1000, bcast_algo="ring")

    def test_distributed_rejects_numeric(self):
        with pytest.raises(ValueError, match="numeric"):
            RunSpec(kind="distributed", n=64, numeric=True)

    def test_distributed_rejects_hybrid_lookahead_mode(self):
        with pytest.raises(ValueError, match="lookahead"):
            RunSpec(kind="distributed", n=64, lookahead="pipelined")

    def test_unknown_machine_profile_rejected(self):
        with pytest.raises(ValueError, match="machine profile"):
            RunSpec(kind="hybrid", n=1000, machine="cray-1")

    def test_machine_profile_is_hybrid_only(self):
        with pytest.raises(ValueError, match="hybrid"):
            RunSpec(kind="native", n=1000, machine="knc-1card-64gb")


class TestNormalization:
    def test_native_nb_default(self):
        assert RunSpec(kind="native", n=1000).normalized().nb == 300

    def test_distributed_defaults(self):
        s = RunSpec(kind="distributed", n=64).normalized()
        assert s.nb == 16 and s.lookahead == "off"

    def test_hybrid_nb_depends_on_numeric(self):
        assert RunSpec(kind="hybrid", n=30000).normalized().nb == 1200
        assert RunSpec(kind="hybrid", n=256, numeric=True).normalized().nb == 64

    def test_hybrid_lookahead_default(self):
        assert RunSpec(kind="hybrid", n=30000).normalized().lookahead == "pipelined"

    def test_machine_profile_pins_cards_and_memory(self):
        s = RunSpec(kind="hybrid", n=30000, machine="knc-2card-64gb").normalized()
        assert s.cards == 2 and s.mem_gb == 64.0

    def test_numeric_hybrid_collapses_grid(self):
        s = RunSpec(kind="hybrid", n=256, numeric=True, p=2, q=2).normalized()
        assert (s.p, s.q) == (1, 1)

    def test_idempotent(self):
        s = RunSpec(kind="hybrid", n=30000, machine="knc-1card-128gb").normalized()
        assert s.normalized() == s


class TestHashing:
    def test_explicit_default_and_omitted_default_hash_identically(self):
        assert (RunSpec(kind="native", n=1000).canonical_hash()
                == RunSpec(kind="native", n=1000, nb=300).canonical_hash())

    def test_machine_shorthand_hashes_like_explicit_fields(self):
        assert (RunSpec(kind="hybrid", n=30000, machine="knc-2card-64gb")
                .canonical_hash()
                != RunSpec(kind="hybrid", n=30000).canonical_hash())

    def test_hash_stable_under_key_reordering(self):
        d = RunSpec(kind="distributed", n=64, bcast_algo="ring").to_dict()
        reordered = dict(reversed(list(d.items())))
        assert (RunSpec.from_dict(reordered).canonical_hash()
                == RunSpec.from_dict(d).canonical_hash())

    def test_different_knobs_hash_differently(self):
        a = RunSpec(kind="distributed", n=64, bcast_algo="ring")
        b = RunSpec(kind="distributed", n=64, bcast_algo="star")
        assert a.canonical_hash() != b.canonical_hash()

    def test_hash_is_json_of_normalized_dict(self):
        s = RunSpec(kind="native", n=2000)
        blob = json.dumps(s.to_dict(), sort_keys=True, separators=(",", ":"))
        import hashlib

        assert s.canonical_hash() == hashlib.sha256(blob.encode()).hexdigest()[:16]


class TestRoundTrips:
    def test_to_dict_from_dict_round_trip(self):
        s = RunSpec(kind="distributed", n=64, nb=8, p=2, q=2,
                    bcast_algo="ring-mod", lookahead="on", chunk_kb=64.0)
        assert RunSpec.from_dict(s.to_dict()) == s.normalized()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown RunSpec keys"):
            RunSpec.from_dict({"kind": "native", "n": 100, "warp": 9})

    def test_from_dict_requires_kind_and_n(self):
        with pytest.raises(ValueError, match="kind"):
            RunSpec.from_dict({"n": 100})

    def test_yaml_boolean_lookahead_coerced(self):
        s = RunSpec.from_dict({"kind": "distributed", "n": 64, "lookahead": True})
        assert s.lookahead == "on"

    def test_with_overrides_grid_pseudo_field(self):
        s = RunSpec(kind="distributed", n=64).with_overrides({"grid": "2x4"})
        assert (s.p, s.q) == (2, 4)

    def test_with_overrides_rejects_unknown(self):
        with pytest.raises(ValueError, match="override"):
            RunSpec(kind="native", n=100).with_overrides({"blocksize": 3})

    def test_summary_names_the_run(self):
        text = RunSpec(kind="distributed", n=64, p=2, q=2).summary()
        assert "distributed" in text and "n=64" in text and "2x2" in text


class TestParseGrid:
    def test_string_and_pair(self):
        assert parse_grid("2x4") == (2, 4)
        assert parse_grid([3, 5]) == (3, 5)
        assert parse_grid((1, 1)) == (1, 1)

    def test_bad_values(self):
        with pytest.raises(ValueError):
            parse_grid("2by4")
        with pytest.raises(ValueError):
            parse_grid(7)


class TestExecutorField:
    def test_default_is_thread(self):
        assert RunSpec(kind="native", n=8).executor == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            RunSpec(kind="native", n=8, executor="mpi")

    def test_backend_changes_the_hash(self):
        thread = RunSpec(kind="native", n=8).canonical_hash()
        process = RunSpec(kind="native", n=8, executor="process").canonical_hash()
        assert thread != process

    def test_executor_flag_parses_for_every_kind(self):
        from repro.spec import run_flags_parser, spec_from_args

        for kind, extra in (
            ("native", ["--n", "8"]),
            ("hybrid", ["--n", "8"]),
            ("distributed", []),
        ):
            parser = run_flags_parser(kind)
            args = parser.parse_args(extra + ["--executor", "process"])
            assert spec_from_args(kind, args).executor == "process"
            args = parser.parse_args(extra)
            assert spec_from_args(kind, args).executor == "thread"


# Strategy: generate valid per-kind field combinations.
_native = st.builds(
    RunSpec,
    kind=st.just("native"),
    n=st.integers(1, 10**6),
    nb=st.one_of(st.none(), st.integers(1, 2400)),
    scheduler=st.sampled_from(["dynamic", "static"]),
    numeric=st.booleans(),
    seed=st.integers(0, 99),
)
_hybrid = st.builds(
    RunSpec,
    kind=st.just("hybrid"),
    n=st.integers(1, 10**6),
    nb=st.one_of(st.none(), st.integers(1, 2400)),
    p=st.integers(1, 4),
    q=st.integers(1, 4),
    cards=st.integers(1, 2),
    mem_gb=st.sampled_from([64.0, 128.0]),
    lookahead=st.one_of(st.none(), st.sampled_from(HYBRID_LOOKAHEADS)),
    numeric=st.booleans(),
    seed=st.integers(0, 99),
)
_distributed = st.builds(
    RunSpec,
    kind=st.just("distributed"),
    n=st.integers(1, 10**4),
    nb=st.one_of(st.none(), st.integers(1, 64)),
    p=st.integers(1, 4),
    q=st.integers(1, 4),
    bcast_algo=st.sampled_from(BCAST_ALGOS),
    lookahead=st.one_of(st.none(), st.sampled_from(["on", "off"])),
    chunk_kb=st.one_of(st.none(), st.floats(1.0, 1024.0)),
    seed=st.integers(0, 99),
)
_any_spec = st.one_of(_native, _hybrid, _distributed)


class TestFuzzedRoundTrips:
    @settings(max_examples=200, deadline=None)
    @given(_any_spec)
    def test_dict_round_trip_preserves_identity(self, spec):
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt == spec.normalized()
        assert rebuilt.canonical_hash() == spec.canonical_hash()

    @settings(max_examples=200, deadline=None)
    @given(_any_spec)
    def test_hash_ignores_dict_key_order(self, spec):
        d = spec.to_dict()
        shuffled = dict(sorted(d.items(), key=lambda kv: kv[0], reverse=True))
        assert RunSpec.from_dict(shuffled).canonical_hash() == spec.canonical_hash()

    @settings(max_examples=200, deadline=None)
    @given(_any_spec)
    def test_normalization_is_idempotent(self, spec):
        once = spec.normalized()
        assert once.normalized() == once
        # to_dict is JSON-ready (tuples become lists), so compare dicts
        # through it on both sides rather than raw asdict.
        assert once.to_dict() == spec.to_dict()


class TestRegridField:
    def test_regrid_is_distributed_only(self):
        with pytest.raises(ValueError, match="distributed"):
            RunSpec(kind="native", n=2000, regrid=("panel=3:2x4",))
        with pytest.raises(ValueError, match="distributed"):
            RunSpec(kind="hybrid", n=8000, on_rank_death="shrink")

    def test_bad_regrid_entry_rejected(self):
        with pytest.raises(ValueError, match="regrid"):
            RunSpec(kind="distributed", n=4000, regrid=("panel=x:2x4",))

    def test_bad_on_rank_death_rejected(self):
        with pytest.raises(ValueError, match="on_rank_death"):
            RunSpec(kind="distributed", n=4000, on_rank_death="panic")

    def test_regrid_changes_the_hash(self):
        plain = RunSpec(kind="distributed", n=4000)
        elastic = RunSpec(kind="distributed", n=4000, regrid=("panel=3:2x4",))
        shrink = RunSpec(kind="distributed", n=4000, on_rank_death="shrink")
        assert plain.canonical_hash() != elastic.canonical_hash()
        assert plain.canonical_hash() != shrink.canonical_hash()

    def test_equivalent_spellings_hash_identically(self):
        a = RunSpec(kind="distributed", n=4000, regrid=("panel=3:2x4",))
        b = RunSpec(kind="distributed", n=4000, regrid=(" PANEL=3:2X4 ",))
        assert a.canonical_hash() == b.canonical_hash()
        assert a.normalized().regrid == ("panel=3:2x4",)

    def test_regrid_round_trips_as_tuple(self):
        spec = RunSpec(kind="distributed", n=4000,
                       regrid=("panel=3:2x4", "panel=5:1x2"),
                       on_rank_death="shrink")
        rebuilt = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.regrid == spec.normalized().regrid
        assert isinstance(rebuilt.regrid, tuple)
        assert rebuilt.on_rank_death == "shrink"

    def test_summary_names_the_schedule(self):
        spec = RunSpec(kind="distributed", n=4000,
                       regrid=("panel=3:2x4",), on_rank_death="shrink")
        s = spec.summary()
        assert "panel=3:2x4" in s and "shrink" in s
