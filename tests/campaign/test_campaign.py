"""Campaign documents: expansion, dedup, execution, resume, reports."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    expand_matrix,
    load_campaign,
    run_campaign,
)
from repro.campaign.runner import SCHEMA, _worker
from repro.campaign.spec import parse_campaign, parse_mini_yaml
from repro.cli import main

DIST_YAML = """
name: smoke
base:
  kind: distributed
  n: 64
axes:
  nb: [8, 16]
  bcast_algo: [star, ring]
workers: 0
report_by: [n]
"""


def _dist_campaign(**overrides):
    fields = dict(
        name="t",
        base={"kind": "distributed", "n": 64},
        axes={"nb": [8, 16], "bcast_algo": ["star", "ring"]},
        workers=0,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestCampaignSpec:
    def test_requires_kind_in_base(self):
        with pytest.raises(ValueError, match="kind"):
            CampaignSpec(name="x", base={"n": 100})

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="axis"):
            CampaignSpec(name="x", base={"kind": "native"}, axes={"nb": []})

    def test_rejects_unknown_document_keys(self):
        with pytest.raises(ValueError, match="unknown campaign keys"):
            CampaignSpec.from_dict(
                {"name": "x", "base": {"kind": "native", "n": 1}, "axis": {}}
            )

    def test_rejects_slash_in_name(self):
        with pytest.raises(ValueError, match="name"):
            CampaignSpec(name="a/b", base={"kind": "native", "n": 1})


class TestExpansion:
    def test_cross_product_in_document_order(self):
        specs, dups = expand_matrix(_dist_campaign())
        assert len(specs) == 4 and dups == 0
        # First axis (nb) varies slowest, like HPL.dat's nested lists.
        assert [(s.nb, s.bcast_algo) for s in specs] == [
            (8, "star"), (8, "ring"), (16, "star"), (16, "ring")]

    def test_grid_axis_sets_p_and_q(self):
        c = _dist_campaign(axes={"grid": ["1x2", "2x2"]})
        specs, _ = expand_matrix(c)
        assert [(s.p, s.q) for s in specs] == [(1, 2), (2, 2)]

    def test_duplicates_dropped_first_wins(self):
        c = _dist_campaign(
            axes={"nb": [8]},
            runs=({"nb": 8}, {"nb": 32}),
        )
        specs, dups = expand_matrix(c)
        assert [s.nb for s in specs] == [8, 32]
        assert dups == 1

    def test_n_must_come_from_base_or_axis(self):
        c = CampaignSpec(name="x", base={"kind": "native"},
                         axes={"nb": [100, 200]})
        with pytest.raises(ValueError, match="'n'"):
            expand_matrix(c)
        ok = CampaignSpec(name="x", base={"kind": "native"},
                          axes={"n": [1000, 2000]})
        assert len(expand_matrix(ok)[0]) == 2

    def test_no_axes_is_a_single_run(self):
        c = CampaignSpec(name="x", base={"kind": "native", "n": 1000})
        assert len(c.expand()) == 1


class TestDocuments:
    def test_mini_yaml_parses_the_documented_subset(self):
        doc = parse_mini_yaml(DIST_YAML)
        assert doc["base"] == {"kind": "distributed", "n": 64}
        assert doc["axes"]["nb"] == [8, 16]
        assert doc["report_by"] == ["n"]

    def test_mini_yaml_matches_pyyaml(self):
        yaml = pytest.importorskip("yaml")
        text = DIST_YAML + """runs:
  - {nb: 32, grid: 1x1}
timeout_s: 9.5
"""
        assert parse_mini_yaml(text) == yaml.safe_load(text)

    def test_yaml_on_off_booleans_become_lookahead_strings(self):
        c = parse_campaign("""
name: la
base:
  kind: distributed
  n: 64
axes:
  lookahead: [on, off]
workers: 0
""")
        assert [s.lookahead for s in c.expand()] == ["on", "off"]

    def test_json_documents_work(self):
        c = parse_campaign(json.dumps({
            "name": "j", "base": {"kind": "native", "n": 1000}}))
        assert c.name == "j"

    def test_load_campaign_reads_files(self, tmp_path):
        path = tmp_path / "c.yaml"
        path.write_text(DIST_YAML)
        assert load_campaign(path).name == "smoke"


class TestRunner:
    def test_inline_run_writes_artifacts_and_report(self, tmp_path):
        report = run_campaign(_dist_campaign(), tmp_path / "out")
        assert report.totals == {
            "runs": 4, "deduplicated": 0, "cached": 0, "executed": 4,
            "ok": 4, "errors": 0, "crashes": 0, "timeouts": 0}
        runs = sorted((tmp_path / "out" / "runs").glob("*.json"))
        assert len(runs) == 4
        doc = json.loads(runs[0].read_text())
        assert doc["schema"] == SCHEMA and doc["status"] == "ok"
        assert doc["result"]["spec_hash"] == doc["spec_hash"]
        assert (tmp_path / "out" / "report.json").exists()
        assert "Best per cell" in (tmp_path / "out" / "report.txt").read_text()

    def test_resume_serves_cache_and_reruns_nothing(self, tmp_path):
        c = _dist_campaign()
        first = run_campaign(c, tmp_path / "out")
        second = run_campaign(c, tmp_path / "out")
        assert second.totals["executed"] == 0
        assert second.totals["cached"] == first.totals["runs"]
        assert second.cells == first.cells

    def test_resume_reruns_failed_cells(self, tmp_path):
        c = _dist_campaign()
        run_campaign(c, tmp_path / "out")
        # Sabotage one artifact into a failure; resume must re-execute it.
        victim = next((tmp_path / "out" / "runs").glob("*.json"))
        doc = json.loads(victim.read_text())
        doc["status"] = "error"
        victim.write_text(json.dumps(doc))
        again = run_campaign(c, tmp_path / "out")
        assert again.totals["executed"] == 1
        assert again.totals["cached"] == 3
        assert json.loads(victim.read_text())["status"] == "ok"

    def test_no_resume_reruns_everything(self, tmp_path):
        c = _dist_campaign()
        run_campaign(c, tmp_path / "out")
        fresh = run_campaign(c, tmp_path / "out", resume=False)
        assert fresh.totals["executed"] == 4

    def test_foreign_schema_artifacts_ignored(self, tmp_path):
        c = _dist_campaign()
        run_campaign(c, tmp_path / "out")
        victim = next((tmp_path / "out" / "runs").glob("*.json"))
        doc = json.loads(victim.read_text())
        doc["schema"] = "campaign-run-v999"
        victim.write_text(json.dumps(doc))
        again = run_campaign(c, tmp_path / "out")
        assert again.totals["executed"] == 1

    def test_worker_failure_becomes_error_artifact(self, tmp_path):
        # An unparseable fault plan raises inside the driver: the run
        # becomes an "error" artifact and the campaign carries on.
        c = CampaignSpec(
            name="f",
            base={"kind": "distributed", "n": 48, "p": 2, "q": 2,
                  "fault_plan": "garbage:::"},
            axes={"nb": [8]}, workers=0)
        report = run_campaign(c, tmp_path / "out")
        assert report.totals["errors"] == 1 and report.totals["ok"] == 0
        row = report.rows[0]
        assert row["status"] == "error" and row["error"]

    def test_pool_execution_matches_inline(self, tmp_path):
        # Wall-clock scores differ between invocations, but the pool
        # must complete the exact same spec set the inline path does.
        c = _dist_campaign()
        inline = run_campaign(c, tmp_path / "a")
        pooled = run_campaign(c, tmp_path / "b", workers=2)
        assert pooled.totals["ok"] == 4
        assert ([r["spec_hash"] for r in pooled.rows]
                == [r["spec_hash"] for r in inline.rows])

    def test_worker_function_never_raises(self):
        bad = {"kind": "distributed", "n": 48, "p": 2, "q": 2, "nb": 8,
               "fault_plan": "garbage:::"}
        doc = _worker(bad)
        assert doc["status"] == "error" and "Traceback" in doc["error"]


class TestMergedReport:
    def test_best_per_cell_picks_the_max(self, tmp_path):
        c = _dist_campaign(report_by=("n",))
        report = run_campaign(c, tmp_path / "out")
        assert len(report.cells) == 1
        best = report.cells[0]
        scores = [r["gflops"] for r in report.rows]
        assert best["gflops"] == max(scores)
        assert best["cell"] == {"n": 64}

    def test_rows_follow_expansion_order(self, tmp_path):
        c = _dist_campaign()
        report = run_campaign(c, tmp_path / "out")
        hashes = [s.canonical_hash() for s in c.expand()]
        assert [r["spec_hash"] for r in report.rows] == hashes


class TestCampaignCLI:
    def test_campaign_run_and_cached_reinvoke(self, tmp_path, capsys):
        spec = tmp_path / "c.yaml"
        spec.write_text(DIST_YAML)
        out = tmp_path / "artifacts"
        assert main(["campaign", "run", str(spec), "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "4 unique runs" in text and "Best per cell" in text
        assert main(["campaign", "run", str(spec), "--out", str(out),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["totals"]["executed"] == 0
        assert doc["totals"]["cached"] == 4

    def test_campaign_expand_previews_matrix(self, tmp_path, capsys):
        spec = tmp_path / "c.yaml"
        spec.write_text(DIST_YAML)
        assert main(["campaign", "expand", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "4 unique runs" in out

    def test_campaign_run_failure_exits_nonzero(self, tmp_path, capsys):
        spec = tmp_path / "c.json"
        spec.write_text(json.dumps({
            "name": "bad",
            "base": {"kind": "distributed", "n": 48, "p": 2, "q": 2,
                     "fault_plan": "garbage:::"},
            "workers": 0}))
        assert main(["campaign", "run", str(spec),
                     "--out", str(tmp_path / "o")]) == 1
