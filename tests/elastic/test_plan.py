"""Relayout planner and regrid schedule units."""

import numpy as np
import pytest

from repro.cluster.grid import ProcessGrid
from repro.elastic import (
    RegridPoint,
    parse_regrid,
    parse_schedule,
    plan_relayout,
    predict_time_s,
    segments,
    survivor_grid,
)


class TestParseRegrid:
    def test_parses_canonical_entry(self):
        pt = parse_regrid("panel=3:2x4")
        assert pt == RegridPoint(panel=3, p=2, q=4)
        assert str(pt) == "panel=3:2x4"
        assert pt.grid == ProcessGrid(2, 4)

    def test_tolerates_case_and_whitespace(self):
        assert parse_regrid("  PANEL=5:2X4 ") == RegridPoint(5, 2, 4)

    @pytest.mark.parametrize("bad", [
        "panel=3", "3:2x4", "panel=x:2x4", "panel=3:2y4",
        "panel=3:2x", "panel=0:2x4", "panel=3:0x4", "stage=3:2x4",
    ])
    def test_malformed_entries_raise_one_line(self, bad):
        with pytest.raises(ValueError) as err:
            parse_regrid(bad)
        assert "\n" not in str(err.value)

    def test_non_string_rejected(self):
        with pytest.raises(ValueError):
            parse_regrid(7)


class TestParseSchedule:
    def test_sorts_by_panel_and_accepts_points(self):
        pts = parse_schedule(["panel=5:1x2", RegridPoint(3, 2, 4)])
        assert [pt.panel for pt in pts] == [3, 5]

    def test_duplicate_panel_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_schedule(["panel=3:2x4", "panel=3:1x2"])

    def test_consecutive_identical_grids_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            parse_schedule(["panel=3:2x4", "panel=5:2x4"])


class TestSegments:
    def test_no_schedule_is_one_span(self):
        g = ProcessGrid(2, 2)
        assert segments(6, g, ()) == [(g, 0, 6)]

    def test_spans_tile_the_run(self):
        spans = segments(8, ProcessGrid(2, 2),
                         ["panel=3:2x4", "panel=5:1x2"])
        assert spans == [
            (ProcessGrid(2, 2), 0, 3),
            (ProcessGrid(2, 4), 3, 5),
            (ProcessGrid(1, 2), 5, 8),
        ]

    def test_cut_at_or_past_last_panel_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            segments(4, ProcessGrid(2, 2), ["panel=4:2x4"])

    def test_first_cut_must_change_the_grid(self):
        with pytest.raises(ValueError, match="initial grid"):
            segments(6, ProcessGrid(2, 2), ["panel=3:2x2"])


class TestSurvivorGrid:
    @pytest.mark.parametrize("size,expect", [
        (1, (1, 1)), (2, (1, 2)), (3, (1, 3)), (4, (2, 2)),
        (6, (2, 3)), (7, (1, 7)), (12, (3, 4)),
    ])
    def test_most_square_factorization(self, size, expect):
        g = survivor_grid(size)
        assert (g.p, g.q) == expect

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            survivor_grid(0)


class TestPlanRelayout:
    def test_grow_2x2_to_2x4_accounting(self):
        plan = plan_relayout(96, 16, ProcessGrid(2, 2), ProcessGrid(2, 4))
        # 6x6 blocks of 16x16 float64 = 2048 B each.
        assert plan.total_bytes == 36 * 2048
        assert plan.moved_bytes + plan.stay_bytes == plan.total_bytes
        assert plan.moved_bytes == sum(plan.send_bytes.values())
        assert plan.moved_bytes == sum(plan.recv_bytes.values())
        assert plan.moved_bytes == sum(plan.transfer_matrix.values())
        assert plan.efficiency == 1.0
        assert plan.world_size == 8
        assert "2x2 -> 2x4" in plan.describe()

    def test_identity_relayout_moves_nothing(self):
        plan = plan_relayout(96, 16, ProcessGrid(2, 2), ProcessGrid(2, 2))
        assert plan.moved_bytes == 0
        assert plan.efficiency == 1.0
        assert plan.transfer_matrix == {}

    def test_edge_blocks_are_clipped(self):
        # n=40, nb=16: last block row/col is 8 wide, not 16.
        plan = plan_relayout(40, 16, ProcessGrid(1, 2), ProcessGrid(2, 1))
        assert plan.total_bytes == 40 * 40 * 8
        sizes = {t.nbytes for t in plan.transfers}
        assert sizes == {16 * 16 * 8, 16 * 8 * 8, 8 * 8 * 8}

    def test_dtype_scales_bytes(self):
        p64 = plan_relayout(64, 16, ProcessGrid(2, 2), ProcessGrid(1, 2))
        p32 = plan_relayout(64, 16, ProcessGrid(2, 2), ProcessGrid(1, 2),
                            dtype="float32")
        assert p64.moved_bytes == 2 * p32.moved_bytes

    def test_predict_time_positive_and_zero_when_static(self):
        moving = plan_relayout(96, 16, ProcessGrid(2, 2), ProcessGrid(2, 4))
        static = plan_relayout(96, 16, ProcessGrid(2, 2), ProcessGrid(2, 2))
        assert predict_time_s(moving) > 0.0
        assert predict_time_s(static) == 0.0

    def test_predict_time_is_bottleneck_rank(self):
        class Unit:
            def transfer_s(self, nbytes):
                return float(nbytes)

        plan = plan_relayout(96, 16, ProcessGrid(2, 2), ProcessGrid(2, 4))
        per_send = {}
        per_recv = {}
        for (src, dst), nbytes in plan.transfer_matrix.items():
            per_send[src] = per_send.get(src, 0) + nbytes
            per_recv[dst] = per_recv.get(dst, 0) + nbytes
        expect = max(*per_send.values(), *per_recv.values())
        assert predict_time_s(plan, network=Unit()) == float(expect)
