"""Property tests: a relayout plan is a permutation of blocks.

Whatever the geometries, every block of the matrix appears in the plan
exactly once, total bytes are conserved, and per-rank send totals equal
per-rank recv totals in aggregate. And executing a relayout forward and
back (``PxQ -> P'xQ' -> PxQ``) through the redistribution engine must
reproduce every original rank's ``a_loc`` bitwise.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.grid import BlockCyclic, ProcessGrid
from repro.elastic import plan_relayout, redistribute
from repro.resilience import CheckpointStore, LayoutHeader

grids = st.tuples(st.integers(1, 3), st.integers(1, 3)).map(
    lambda pq: ProcessGrid(*pq)
)


@given(n=st.integers(8, 80), nb=st.integers(4, 32), old=grids, new=grids)
@settings(max_examples=60, deadline=None)
def test_plan_is_a_permutation_of_blocks(n, nb, old, new):
    plan = plan_relayout(n, nb, old, new)
    n_blocks = -(-n // nb)

    # Every block (bi, bj) leaves exactly once and arrives exactly once.
    seen = {(t.bi, t.bj) for t in plan.transfers}
    assert len(plan.transfers) == n_blocks * n_blocks
    assert seen == {(i, j) for i in range(n_blocks) for j in range(n_blocks)}

    # Bytes are conserved: blocks tile the matrix, moved + stay = total.
    itemsize = 8
    assert plan.total_bytes == n * n * itemsize
    assert sum(t.nbytes for t in plan.transfers) == plan.total_bytes
    assert plan.moved_bytes + plan.stay_bytes == plan.total_bytes

    # What the senders ship is what the receivers take in.
    assert sum(plan.send_bytes.values()) == plan.moved_bytes
    assert sum(plan.recv_bytes.values()) == plan.moved_bytes
    assert sum(plan.transfer_matrix.values()) == plan.moved_bytes

    # Sources own their block under the old layout, destinations under
    # the new one.
    for t in plan.transfers:
        assert t.src == old.rank_of(t.bi % old.p, t.bj % old.q)
        assert t.dst == new.rank_of(t.bi % new.p, t.bj % new.q)


def _seed_cut(store, n, nb, grid, cursor, rng):
    """A synthetic consistent cut at ``cursor`` on ``grid``."""
    bc = BlockCyclic(n, nb, grid)
    layout = LayoutHeader(p=grid.p, q=grid.q, nb=nb, n=n)
    blobs = {}
    for rank in range(grid.size):
        row, col = grid.coords(rank)
        rows, cols = bc.local_rows(row), bc.local_cols(col)
        a_loc = rng.standard_normal((rows.size, cols.size))
        store.save(rank, cursor, {
            "epoch": 0,
            "cursor": cursor,
            "a_loc": a_loc,
            "pivots": [np.arange(nb, dtype=np.int64) for _ in range(cursor)],
        }, layout=layout)
        blobs[rank] = a_loc
    return blobs


@given(
    old=grids, new=grids,
    n=st.sampled_from([24, 40, 48]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None)
def test_round_trip_relayout_is_bitwise_identity(old, new, n, seed):
    nb, cursor = 8, 1
    rng = np.random.default_rng(seed)
    store = CheckpointStore()
    original = _seed_cut(store, n, nb, old, cursor, rng)

    forward = plan_relayout(n, nb, old, new)
    redistribute(store, forward, cursor)
    back = plan_relayout(n, nb, new, old)
    redistribute(store, back, cursor)

    for rank, a_loc in original.items():
        restored = store.load(rank, cursor)
        assert np.array_equal(restored["a_loc"], a_loc)
        assert store.layout(rank, cursor) == LayoutHeader(
            p=old.p, q=old.q, nb=nb, n=n
        )
