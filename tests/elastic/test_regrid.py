"""End-to-end elastic runs: reshape mid-run, finish bitwise-identical.

The elastic subsystem's acceptance scenario: a distributed run that
grows or shrinks its grid at a panel cut must produce **bitwise
identical** ``lu`` / ``ipiv`` / ``x`` (and the same residual) as an
uninterrupted run on the final grid — for the synchronous and the
look-ahead schedules, for the thread and the process executors — and a
rank death with no spare must shrink to the survivors and still pass.
"""

import numpy as np
import pytest

from repro.cluster.hpl_mpi import DistributedHPL
from repro.resilience import CheckpointLayoutError, CheckpointStore, RetryPolicy

CFG = dict(n=96, nb=16, seed=42)
RETRY = RetryPolicy(comm_timeout_s=0.5, max_retries=2)


def _bitwise(r, ref):
    assert r.passed
    assert np.array_equal(r.lu, ref.lu)
    assert np.array_equal(r.ipiv, ref.ipiv)
    assert np.array_equal(r.x, ref.x)
    assert r.residual == ref.residual


class TestRegridBitwise:
    @pytest.mark.parametrize("lookahead", [False, True],
                             ids=["sync", "lookahead"])
    @pytest.mark.parametrize("start,target", [
        ((2, 2), (2, 4)),   # grow
        ((2, 4), (2, 2)),   # shrink
        ((2, 2), (1, 2)),   # shrink below both dims
    ], ids=["grow-2x2-2x4", "shrink-2x4-2x2", "shrink-2x2-1x2"])
    def test_regrid_matches_uninterrupted_final_grid(
        self, start, target, lookahead
    ):
        ref = DistributedHPL(**CFG, p=target[0], q=target[1],
                             lookahead=lookahead).run()
        r = DistributedHPL(**CFG, p=start[0], q=start[1],
                           lookahead=lookahead,
                           regrid=[f"panel=3:{target[0]}x{target[1]}"]).run()
        _bitwise(r, ref)
        assert (r.p, r.q) == target  # the result names the final grid
        assert r.regrids == 1
        assert r.regrid_moved_bytes > 0
        assert r.regrid_wall_s > 0.0

    def test_regrid_with_process_executor(self):
        ref = DistributedHPL(**CFG, p=2, q=4, executor="process").run()
        r = DistributedHPL(**CFG, p=2, q=2, executor="process",
                           regrid=["panel=3:2x4"]).run()
        _bitwise(r, ref)
        assert r.regrids == 1

    def test_multi_point_schedule(self):
        ref = DistributedHPL(**CFG, p=1, q=2).run()
        r = DistributedHPL(**CFG, p=2, q=2,
                           regrid=["panel=2:2x4", "panel=4:1x2"]).run()
        _bitwise(r, ref)
        assert r.regrids == 2
        assert (r.p, r.q) == (1, 2)

    def test_static_run_reports_no_regrids(self):
        r = DistributedHPL(**CFG, p=2, q=2).run()
        assert r.regrids == 0
        assert r.regrid_wall_s == 0.0
        assert r.regrid_moved_bytes == 0

    def test_bad_schedule_rejected_up_front(self):
        with pytest.raises(ValueError):
            DistributedHPL(**CFG, p=2, q=2, regrid=["panel=99:2x4"]).run()


class TestShrinkOnDeath:
    def test_rank_death_shrinks_to_survivors(self):
        r = DistributedHPL(**CFG, p=2, q=2,
                           fault_plan="seed=5;crash:rank=3,stage=3",
                           checkpoint_every=2, retry=RETRY,
                           on_rank_death="shrink").run()
        assert r.passed
        assert (r.p, r.q) == (1, 3)  # 3 survivors, most-square grid
        res = r.resilience
        assert res["recoveries"] == 1
        assert res["shrinks"] == 1

    def test_shrink_without_checkpoint_restarts_fresh_on_survivors(self):
        # Crash before the first consistent cut: nothing to redistribute,
        # the survivors restart the factorization from scratch.
        r = DistributedHPL(**CFG, p=2, q=2,
                           fault_plan="seed=5;crash:rank=3,stage=1",
                           checkpoint_every=4, retry=RETRY,
                           on_rank_death="shrink").run()
        assert r.passed
        assert (r.p, r.q) == (1, 3)
        assert r.resilience["shrinks"] == 1

    def test_lookahead_shrink_on_death(self):
        r = DistributedHPL(**CFG, p=2, q=4, lookahead=True,
                           fault_plan="seed=5;crash:rank=7,stage=3",
                           checkpoint_every=2, retry=RETRY,
                           on_rank_death="shrink").run()
        assert r.passed
        assert (r.p, r.q) == (1, 7)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            DistributedHPL(**CFG, p=2, q=2, on_rank_death="panic")


class TestLayoutGuard:
    def test_same_geometry_resume_refuses_foreign_checkpoint(self):
        # A store written under 2x4 cannot restore a 2x2 run: the blob's
        # layout header trips CheckpointLayoutError instead of a shape
        # crash deep inside the factorization. The crash lands before
        # the 2x2 run writes any cut of its own, so recovery finds only
        # the foreign blobs.
        store = CheckpointStore()
        DistributedHPL(**CFG, p=2, q=4, checkpoint_every=2,
                       checkpoint_store=store).run()
        with pytest.raises(CheckpointLayoutError, match="2x4"):
            DistributedHPL(**CFG, p=2, q=2, checkpoint_every=2,
                           checkpoint_store=store,
                           fault_plan="crash:rank=1,stage=1",
                           retry=RETRY).run()
