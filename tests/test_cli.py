"""CLI smoke tests (fast commands only)."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "1074" in out and "333" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "944" in capsys.readouterr().out

    def test_fig4_custom_sizes(self, capsys):
        assert main(["fig4", "--sizes", "1000,5000"]) == 0
        out = capsys.readouterr().out
        assert "1000" in out and "5000" in out

    def test_native_run(self, capsys):
        assert main(["native", "--n", "3000"]) == 0
        assert "GFLOPS" in capsys.readouterr().out

    def test_native_numeric_passes(self, capsys):
        assert main(["native", "--n", "200", "--nb", "50", "--numeric"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_hybrid_run(self, capsys):
        assert main(["hybrid", "--n", "30000"]) == 0
        assert "TFLOPS" in capsys.readouterr().out

    def test_distributed_run(self, capsys):
        assert main(["distributed", "--n", "48", "--nb", "8"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_distributed_lookahead_flags(self, capsys):
        assert (
            main(
                ["distributed", "--n", "48", "--nb", "8", "--lookahead",
                 "--bcast-algo", "ring-mod", "--chunk-kb", "64"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "PASSED" in out and "lookahead/ring-mod" in out

    def test_distributed_lookahead_json_reports_overlap(self, capsys):
        assert (
            main(["distributed", "--n", "48", "--nb", "8", "--lookahead", "--json"])
            == 0
        )
        d = json.loads(capsys.readouterr().out)
        assert d["lookahead"] is True
        assert "hidden_comm_s" in d and "exposed_comm_s" in d
        assert "comm.overlap.hidden_s" in d["metrics"]["gauges"]

    def test_gantt(self, capsys):
        assert main(["gantt", "--n", "3000", "--width", "60"]) == 0
        assert "legend" in capsys.readouterr().out

    def test_native_json(self, capsys):
        assert main(["native", "--n", "2000", "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert d["kind"] == "native"
        assert d["gflops"] > 0 and 0 < d["efficiency"] <= 1
        assert set(d["metrics"]) == {"counters", "gauges", "timers", "distributions"}

    def test_native_json_deterministic(self, capsys):
        main(["native", "--n", "2000", "--json"])
        first = capsys.readouterr().out
        main(["native", "--n", "2000", "--json"])
        assert capsys.readouterr().out == first

    def test_native_trace_out(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["native", "--n", "2000", "--trace-out", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["traceEvents"], "trace file should contain events"
        assert all(ev["ph"] == "X" for ev in doc["traceEvents"])

    def test_native_metrics_table(self, capsys):
        assert main(["native", "--n", "2000", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "sim.events_processed" in out and "sched.tasks" in out

    def test_hybrid_json(self, capsys):
        assert main(["hybrid", "--n", "24000", "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert d["kind"] == "hybrid" and d["gflops"] > 0

    def test_distributed_json(self, capsys):
        assert main(["distributed", "--n", "48", "--nb", "8", "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert d["kind"] == "distributed" and d["passed"] is True

    def test_distributed_trace_out_warns_without_trace(self, tmp_path, capsys):
        # DistributedResult records no trace; the flag must warn, not crash.
        path = tmp_path / "none.json"
        assert main(["distributed", "--n", "48", "--nb", "8",
                     "--trace-out", str(path)]) == 0
        assert "no trace recorded" in capsys.readouterr().err
        assert not path.exists()

    def test_trace_out_unwritable_path_clean_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["native", "--n", "2000",
                  "--trace-out", "/nonexistent-dir/t.json"])
        assert exc.value.code == 2
        assert "cannot write trace" in capsys.readouterr().err

    def test_gantt_trace_out(self, tmp_path, capsys):
        path = tmp_path / "gantt.json"
        assert main(["gantt", "--n", "3000", "--trace-out", str(path)]) == 0
        assert json.loads(path.read_text())["traceEvents"]

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCLIResilience:
    DIST = ["distributed", "--n", "48", "--nb", "8"]

    def test_distributed_resilience_flags(self, capsys):
        assert main(self.DIST + [
            "--fault-plan", "seed=5;crash:rank=3,stage=2",
            "--checkpoint-every", "2",
            "--retry-max", "2", "--comm-timeout", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert "resilience: attempts=2 recoveries=1" in out

    def test_distributed_retry_only_prints_summary(self, capsys):
        assert main(self.DIST + ["--retry-max", "1"]) == 0
        assert "resilience: attempts=1 recoveries=0" in capsys.readouterr().out

    def test_distributed_plain_run_prints_no_summary(self, capsys):
        assert main(self.DIST) == 0
        assert "resilience:" not in capsys.readouterr().out

    def test_distributed_json_carries_resilience(self, capsys):
        assert main(self.DIST + [
            "--fault-plan", "seed=5;crash:rank=3,stage=2",
            "--checkpoint-every", "2", "--retry-max", "2",
            "--comm-timeout", "0.5", "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert d["passed"] is True
        assert d["resilience"]["recoveries"] == 1

    def test_distributed_failed_residual_exits_nonzero(self, capsys,
                                                       monkeypatch):
        monkeypatch.setattr("repro.cluster.hpl_mpi.residual_passes",
                            lambda *a, **k: False)
        assert main(self.DIST) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out
        assert "residual check FAILED" in captured.err

    def test_failed_residual_under_json_keeps_stdout_valid(self, capsys,
                                                           monkeypatch):
        monkeypatch.setattr("repro.cluster.hpl_mpi.residual_passes",
                            lambda *a, **k: False)
        assert main(self.DIST + ["--json"]) == 1
        captured = capsys.readouterr()
        assert json.loads(captured.out)["passed"] is False
        assert "residual check FAILED" in captured.err

    def test_native_numeric_failed_residual_exits_nonzero(self, capsys,
                                                          monkeypatch):
        monkeypatch.setattr("repro.hpl.driver.residual_passes",
                            lambda *a, **k: False)
        assert main(["native", "--n", "200", "--nb", "50", "--numeric"]) == 1
        assert "residual check FAILED" in capsys.readouterr().err


class TestCLIElastic:
    def test_elastic_plan_prints_transfer_matrix(self, capsys):
        assert main(["elastic", "plan", "--n", "96", "--nb", "16",
                     "--grid", "2x2", "--regrid", "panel=3:2x4"]) == 0
        out = capsys.readouterr().out
        assert "Transfer matrix 2x2 -> 2x4" in out
        assert "Per-rank volume" in out
        assert "predicted redistribution time" in out

    def test_elastic_plan_multi_point_schedule(self, capsys):
        assert main(["elastic", "plan", "--n", "96", "--nb", "16",
                     "--grid", "2x2", "--regrid", "panel=2:2x4",
                     "--regrid", "panel=4:1x2"]) == 0
        out = capsys.readouterr().out
        assert "2x2 -> 2x4" in out and "2x4 -> 1x2" in out

    def test_elastic_plan_bad_regrid_exits_2(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["elastic", "plan", "--regrid", "panel=bogus"])
        assert err.value.code == 2
        stderr = capsys.readouterr().err
        assert "regrid" in stderr

    def test_elastic_plan_out_of_range_panel_exits_2(self, capsys):
        assert main(["elastic", "plan", "--n", "96", "--nb", "16",
                     "--grid", "2x2", "--regrid", "panel=99:2x4"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_distributed_regrid_runs_on_final_grid(self, capsys):
        assert main(["distributed", "--n", "48", "--nb", "8",
                     "--regrid", "panel=3:2x4", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is True
        assert (doc["p"], doc["q"]) == (2, 4)
        assert doc["regrids"] == 1

    def test_distributed_bad_regrid_exits_2(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["distributed", "--n", "48", "--nb", "8",
                  "--regrid", "panel=3:2y4"])
        assert err.value.code == 2
