"""CLI smoke tests (fast commands only)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "1074" in out and "333" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "944" in capsys.readouterr().out

    def test_fig4_custom_sizes(self, capsys):
        assert main(["fig4", "--sizes", "1000,5000"]) == 0
        out = capsys.readouterr().out
        assert "1000" in out and "5000" in out

    def test_native_run(self, capsys):
        assert main(["native", "--n", "3000"]) == 0
        assert "GFLOPS" in capsys.readouterr().out

    def test_native_numeric_passes(self, capsys):
        assert main(["native", "--n", "200", "--nb", "50", "--numeric"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_hybrid_run(self, capsys):
        assert main(["hybrid", "--n", "30000"]) == 0
        assert "TFLOPS" in capsys.readouterr().out

    def test_distributed_run(self, capsys):
        assert main(["distributed", "--n", "48", "--nb", "8"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_gantt(self, capsys):
        assert main(["gantt", "--n", "3000", "--width", "60"]) == 0
        assert "legend" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
