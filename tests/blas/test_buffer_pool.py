"""BufferPool arena semantics: checkout/release, reuse, leak detection."""

import threading

import numpy as np
import pytest

from repro.blas.buffers import (
    BufferPool,
    BufferPoolError,
    as_buffer_pool,
    matmul_into,
    subtract_into,
)
from repro.obs.metrics import MetricsRegistry


class TestCheckoutRelease:
    def test_checkout_geometry(self):
        pool = BufferPool()
        buf = pool.checkout((3, 5), np.float64, key="t")
        assert buf.shape == (3, 5)
        assert buf.dtype == np.float64
        assert buf.flags.c_contiguous
        pool.release(buf)

    def test_release_returns_block_for_reuse(self):
        pool = BufferPool()
        a = pool.checkout((4, 4), np.float64)
        pool.release(a)
        b = pool.checkout((4, 4), np.float64)
        assert pool.allocations == 1
        assert pool.reuses == 1
        pool.release(b)

    def test_shrinking_requests_reuse_one_block(self):
        """An LU's trailing updates shrink; one arena block serves all."""
        pool = BufferPool()
        for n in (64, 48, 32, 16):
            buf = pool.checkout((n, n), np.float64, key="lu.trailing")
            pool.release(buf)
        assert pool.allocations == 1
        assert pool.reuses == 3

    def test_best_fit_prefers_smallest_sufficient_block(self):
        pool = BufferPool()
        small = pool.checkout((8,), np.float64)
        large = pool.checkout((64,), np.float64)
        pool.release(small)
        pool.release(large)
        mid = pool.checkout((8,), np.float64)
        # The 8-elem block fits and is chosen over the 64-elem one.
        assert mid.base.nbytes == 8 * 8
        pool.release(mid)

    def test_rent_context_manager_releases(self):
        pool = BufferPool()
        with pool.rent((4,), np.float64, key="r") as buf:
            assert pool.active == 1
            buf[:] = 1.0
        assert pool.active == 0

    def test_rent_releases_on_exception(self):
        pool = BufferPool()
        with pytest.raises(ValueError):
            with pool.rent((4,), np.float64):
                raise ValueError("boom")
        assert pool.active == 0

    def test_distinct_dtypes_and_zero_size(self):
        pool = BufferPool()
        f = pool.checkout((2, 2), np.float32)
        i = pool.checkout((3,), np.int64)
        z = pool.checkout((0, 5), np.float64)
        assert f.dtype == np.float32 and i.dtype == np.int64
        assert z.size == 0
        for b in (f, i, z):
            pool.release(b)

    def test_concurrent_checkout_release(self):
        pool = BufferPool()
        errs = []

        def worker():
            try:
                for _ in range(200):
                    buf = pool.checkout((16, 16), np.float64, key="w")
                    buf[:] = 1.0
                    pool.release(buf)
            except Exception as e:  # pragma: no cover - failure path
                errs.append(e)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errs
        assert pool.active == 0
        assert pool.checkouts == pool.releases == 8 * 200


class TestLeakDetection:
    def test_double_release_raises(self):
        pool = BufferPool()
        buf = pool.checkout((4,), np.float64)
        pool.release(buf)
        with pytest.raises(BufferPoolError):
            pool.release(buf)

    def test_foreign_buffer_raises(self):
        pool = BufferPool()
        with pytest.raises(BufferPoolError):
            pool.release(np.zeros(4))

    def test_active_counts_outstanding(self):
        pool = BufferPool()
        a = pool.checkout((4,), np.float64, key="leak.a")
        b = pool.checkout((4,), np.float64, key="leak.b")
        assert pool.active == 2
        assert pool.active_keys() == ["leak.a", "leak.b"]
        pool.release(a)
        pool.release(b)
        assert pool.active == 0


class TestAccounting:
    def test_counters_and_keys(self):
        pool = BufferPool()
        with pool.rent((8,), np.float64, key="k1"):
            pass
        with pool.rent((8,), np.float64, key="k1"):
            pass
        with pool.rent((2,), np.float64, key="k2"):
            pass
        assert pool.by_key == {"k1": 2, "k2": 1}
        assert pool.bytes_served == 8 * 8 * 2 + 2 * 8
        assert pool.peak_bytes == pool.arena_bytes == 8 * 8

    def test_clear_drops_free_blocks_only(self):
        pool = BufferPool()
        held = pool.checkout((8,), np.float64)
        free = pool.checkout((16,), np.float64)
        pool.release(free)
        freed = pool.clear()
        assert freed == 16 * 8
        assert pool.arena_bytes == 8 * 8
        pool.release(held)

    def test_publish_to_metrics(self):
        pool = BufferPool(name="test.pool")
        with pool.rent((4,), np.float64):
            pass
        reg = MetricsRegistry()
        pool.publish(reg)
        snap = reg.to_dict()
        assert snap["counters"]["test.pool.checkouts"] == 1
        assert snap["counters"]["test.pool.releases"] == 1
        assert snap["gauges"]["test.pool.peak_bytes"] == 4 * 8
        pool.publish(None)  # no-op


class TestCoercion:
    def test_as_buffer_pool(self):
        assert as_buffer_pool(None) is None
        assert as_buffer_pool(False) is None
        fresh = as_buffer_pool(True)
        assert isinstance(fresh, BufferPool)
        assert as_buffer_pool(fresh) is fresh
        with pytest.raises(TypeError):
            as_buffer_pool("pool")


class TestHelpers:
    def test_matmul_into_strided_operands(self):
        rng = np.random.default_rng(3)
        base_x = rng.standard_normal((12, 20))
        base_y = rng.standard_normal((20, 12))
        x = base_x[1:, 1:]  # contiguous in neither order
        y = base_y[1:, 1:]
        pool = BufferPool()
        out = pool.checkout((11, 11), np.float64, key="out")
        matmul_into(pool, x, y, out)
        assert np.array_equal(out, np.matmul(x, y))
        assert pool.active == 1  # staging buffers were released
        pool.release(out)

    def test_matmul_into_contiguous_passthrough(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((6, 7))
        y = np.asfortranarray(rng.standard_normal((7, 5)))
        pool = BufferPool()
        out = np.empty((6, 5))
        matmul_into(pool, x, y, out)
        assert np.array_equal(out, x @ y)
        assert pool.checkouts == 0  # nothing needed staging

    def test_subtract_into_strided_target(self):
        rng = np.random.default_rng(5)
        base = rng.standard_normal((10, 10))
        target = base[1:, 1:]
        value = rng.standard_normal(target.shape)
        expect = target - value
        subtract_into(target, value)
        assert np.array_equal(target, expect)

    def test_subtract_into_contiguous_target(self):
        rng = np.random.default_rng(6)
        target = rng.standard_normal((5, 5))
        value = rng.standard_normal((5, 5))
        expect = target - value
        assert subtract_into(target, value) is target
        assert np.array_equal(target, expect)
