"""Bitwise identity of the pooled (allocation-free) kernel paths.

The arena contract is absolute: threading a
:class:`~repro.blas.buffers.BufferPool` through getrf/laswp/trsm/gemm —
and through the full blocked LU at any worker count — must change *no
bit* of any result relative to the allocating reference paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.blas.trsm as trsm_mod
from repro.blas.buffers import BufferPool
from repro.blas.gemm import gemm
from repro.blas.getrf import getf2, getrf
from repro.blas.laswp import apply_pivots_to_vector, laswp
from repro.blas.trsm import (
    trsm_lower_unit_left,
    trsm_lower_unit_right,
    trsm_upper_left,
)
from repro.lu.factorize import blocked_lu, lu_solve, lu_via_dag


def _matrix(draw, m, n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, n))


@st.composite
def panels(draw):
    m = draw(st.integers(1, 40))
    n = draw(st.integers(1, 24))
    seed = draw(st.integers(0, 2**31 - 1))
    return _matrix(draw, m, n, seed)


@settings(max_examples=60, deadline=None)
@given(panels())
def test_getf2_pooled_identity(a):
    pool = BufferPool()
    ref, got = a.copy(), a.copy()
    ipiv_ref = getf2(ref)
    ipiv_got = getf2(got, pool=pool)
    assert np.array_equal(ipiv_ref, ipiv_got)
    assert np.array_equal(ref, got)
    assert pool.active == 0


@settings(max_examples=60, deadline=None)
@given(panels())
def test_getrf_pooled_identity(a):
    pool = BufferPool()
    ref, got = a.copy(), a.copy()
    ipiv_ref = getrf(ref, min_block=4)
    ipiv_got = getrf(got, min_block=4, pool=pool)
    assert np.array_equal(ipiv_ref, ipiv_got)
    assert np.array_equal(ref, got)
    assert pool.active == 0


@st.composite
def swap_cases(draw):
    n = draw(st.integers(1, 24))
    cols = draw(st.integers(1, 12))
    m = draw(st.integers(0, n))
    ipiv = np.asarray(
        [draw(st.integers(j, n - 1)) for j in range(m)], dtype=np.int64
    )
    seed = draw(st.integers(0, 2**31 - 1))
    forward = draw(st.booleans())
    return _matrix(draw, n, cols, seed), ipiv, forward


@settings(max_examples=60, deadline=None)
@given(swap_cases())
def test_laswp_pooled_identity(case):
    a, ipiv, forward = case
    pool = BufferPool()
    ref, got = a.copy(), a.copy()
    laswp(ref, ipiv, forward=forward)
    laswp(got, ipiv, forward=forward, pool=pool)
    assert np.array_equal(ref, got)
    # strided (column-slice) target, as the blocked LU hands it over
    wide = np.hstack([a, a])
    ref_s, got_s = wide.copy()[:, : a.shape[1]], wide.copy()[:, : a.shape[1]]
    laswp(ref_s, ipiv, forward=forward)
    laswp(got_s, ipiv, forward=forward, pool=pool)
    assert np.array_equal(ref_s, got_s)
    x_ref, x_got = a[:, 0].copy(), a[:, 0].copy()
    apply_pivots_to_vector(x_ref, ipiv, forward=forward)
    apply_pivots_to_vector(x_got, ipiv, forward=forward, pool=pool)
    assert np.array_equal(x_ref, x_got)
    assert pool.active == 0


@st.composite
def trsm_cases(draw):
    n = draw(st.integers(1, 32))
    ncols = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    t = rng.standard_normal((n, n)) + np.eye(n) * n  # well-conditioned
    b = rng.standard_normal((n, ncols))
    block = draw(st.sampled_from([4, 8, 64]))
    force_loops = draw(st.booleans())
    return t, b, block, force_loops


@settings(max_examples=60, deadline=None)
@given(trsm_cases())
def test_trsm_pooled_identity(case):
    t, b, block, force_loops = case
    pool = BufferPool()
    old = trsm_mod._FORCE_LOOPS
    trsm_mod._FORCE_LOOPS = force_loops
    try:
        for solver, tri in (
            (trsm_lower_unit_left, np.tril(t)),
            (trsm_upper_left, np.triu(t)),
            (trsm_lower_unit_right, np.tril(t)),
        ):
            rhs = b if solver is not trsm_lower_unit_right else b.T.copy()
            ref, got = rhs.copy(), rhs.copy()
            solver(tri, ref, block=block)
            solver(tri, got, block=block, pool=pool)
            assert np.array_equal(ref, got), solver.__name__
    finally:
        trsm_mod._FORCE_LOOPS = old
    assert pool.active == 0


@settings(max_examples=30, deadline=None)
@given(
    st.integers(1, 24),
    st.integers(1, 24),
    st.integers(1, 24),
    st.integers(0, 2**31 - 1),
)
def test_gemm_pooled_identity(m, n, k, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    c = rng.standard_normal((m, n))
    pool = BufferPool()
    ref, got = c.copy(), c.copy()
    gemm(a, b, ref, alpha=-1.0, beta=1.0)
    gemm(a, b, got, alpha=-1.0, beta=1.0, pool=pool)
    assert np.array_equal(ref, got)
    assert pool.active == 0


@pytest.mark.parametrize("workers", [None, 2, 8])
def test_full_lu_and_solve_pooled_identity(workers):
    """The acceptance property: pooled runs are bitwise identical to
    ``--no-buffer-pool`` runs at 1, 2 and 8 workers."""
    rng = np.random.default_rng(11)
    n, nb = 96, 24
    a = rng.standard_normal((n, n))
    b = rng.standard_normal(n)

    lu_ref, ipiv_ref = blocked_lu(a.copy(), nb=nb, workers=workers)
    x_ref = lu_solve(lu_ref, ipiv_ref, b)

    pool = BufferPool()
    lu_p, ipiv_p = blocked_lu(
        a.copy(), nb=nb, workers=workers, buffer_pool=pool
    )
    x_p = lu_solve(lu_p, ipiv_p, b, pool=pool)

    assert np.array_equal(lu_ref, lu_p)
    assert np.array_equal(ipiv_ref, ipiv_p)
    assert np.array_equal(x_ref, x_p)
    assert pool.active == 0


def test_lu_via_dag_pooled_identity():
    rng = np.random.default_rng(13)
    a = rng.standard_normal((64, 64))
    lu_ref, ipiv_ref = lu_via_dag(a.copy(), nb=16)
    lu_p, ipiv_p = lu_via_dag(a.copy(), nb=16, buffer_pool=True)
    assert np.array_equal(lu_ref, lu_p)
    assert np.array_equal(ipiv_ref, ipiv_p)


def test_getf2_pivot_search_uses_scratch_not_fresh_abs():
    """Micro-test for the pivot-search scratch: the |column| reduction
    lands in a reusable vector and still finds LAPACK's pivot."""
    a = np.array(
        [
            [1.0, 2.0],
            [-9.0, 1.0],
            [3.0, 4.0],
        ]
    )
    pool = BufferPool()
    got = a.copy()
    ipiv = getf2(got, pool=pool)
    assert ipiv[0] == 1  # |-9| wins the first column
    ref = a.copy()
    assert np.array_equal(getf2(ref), ipiv)
    assert np.array_equal(ref, got)
    # the abs scratch was rented exactly once per call
    assert pool.by_key.get("getf2.abs") == 1
    assert pool.active == 0
