"""Outer-product GEMM vs NumPy across shapes, dtypes and kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.gemm import dgemm, gemm, sgemm


def rand(m, n, seed, dtype=np.float64):
    return np.random.default_rng(seed).standard_normal((m, n)).astype(dtype)


class TestCorrectness:
    def test_square(self):
        a, b = rand(64, 64, 1), rand(64, 64, 2)
        np.testing.assert_allclose(dgemm(a, b), a @ b, rtol=1e-12)

    def test_rectangular(self):
        a, b = rand(45, 70, 3), rand(70, 23, 4)
        np.testing.assert_allclose(dgemm(a, b), a @ b, rtol=1e-12)

    def test_multiple_k_blocks(self):
        a, b = rand(40, 100, 5), rand(100, 40, 6)
        np.testing.assert_allclose(dgemm(a, b, k_block=16), a @ b, rtol=1e-12)

    def test_alpha_beta(self):
        a, b = rand(30, 30, 7), rand(30, 30, 8)
        c0 = rand(30, 30, 9)
        c = c0.copy()
        dgemm(a, b, c, alpha=2.5, beta=-0.5)
        np.testing.assert_allclose(c, 2.5 * (a @ b) - 0.5 * c0, rtol=1e-12)

    def test_beta_one_accumulates(self):
        a, b = rand(20, 20, 10), rand(20, 20, 11)
        c0 = rand(20, 20, 12)
        c = c0.copy()
        dgemm(a, b, c, beta=1.0)
        np.testing.assert_allclose(c, a @ b + c0, rtol=1e-12)

    def test_kernel1_tiling(self):
        a, b = rand(62, 40, 13), rand(40, 16, 14)
        out = gemm(a, b, tile_rows=31)
        np.testing.assert_allclose(out, a @ b, rtol=1e-12)

    def test_emulated_kernel2_path(self):
        a, b = rand(35, 10, 15), rand(10, 12, 16)
        out = gemm(a, b, kernel="emulated", k_block=4)
        np.testing.assert_allclose(out, a @ b, rtol=1e-12)

    def test_emulated_kernel1_path(self):
        a, b = rand(33, 7, 17), rand(7, 9, 18)
        out = gemm(a, b, kernel="emulated", tile_rows=31)
        np.testing.assert_allclose(out, a @ b, rtol=1e-12)

    def test_sgemm_single_precision(self):
        a, b = rand(50, 50, 19, np.float32), rand(50, 50, 20, np.float32)
        out = sgemm(a, b)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, a @ b, rtol=1e-4)

    @given(
        st.integers(1, 70),
        st.integers(1, 70),
        st.integers(1, 70),
        st.integers(1, 40),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_numpy(self, m, k, n, k_block):
        a, b = rand(m, k, m * 7 + k), rand(k, n, n * 13 + k)
        np.testing.assert_allclose(
            dgemm(a, b, k_block=k_block), a @ b, rtol=1e-11, atol=1e-11
        )


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gemm(rand(4, 5, 0), rand(6, 4, 1))

    def test_dtype_mismatch(self):
        with pytest.raises(ValueError):
            gemm(rand(4, 5, 0), rand(5, 4, 1).astype(np.float32))

    def test_bad_c_shape(self):
        with pytest.raises(ValueError):
            gemm(rand(4, 5, 0), rand(5, 4, 1), c=np.zeros((3, 3)))

    def test_bad_kernel_name(self):
        with pytest.raises(ValueError):
            gemm(rand(4, 5, 0), rand(5, 4, 1), kernel="magic")

    def test_emulated_requires_known_tile_rows(self):
        with pytest.raises(ValueError):
            gemm(rand(4, 5, 0), rand(5, 4, 1), kernel="emulated", tile_rows=16)

    def test_bad_k_block(self):
        with pytest.raises(ValueError):
            gemm(rand(4, 5, 0), rand(5, 4, 1), k_block=0)

    def test_non_2d(self):
        with pytest.raises(ValueError):
            gemm(np.zeros(4), rand(5, 4, 1))

    def test_c_returned_is_c_argument(self):
        a, b = rand(10, 10, 0), rand(10, 10, 1)
        c = np.zeros((10, 10))
        assert gemm(a, b, c) is c
