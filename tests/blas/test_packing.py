"""Packed tile formats of Figure 3: round trips and layout guarantees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.packing import (
    TILE_A_ROWS,
    TILE_B_COLS,
    pack_a,
    pack_b,
    packing_bytes,
)


def rand(m, n, seed=0, dtype=np.float64):
    return np.random.default_rng(seed).standard_normal((m, n)).astype(dtype)


class TestPackA:
    def test_roundtrip_exact_multiple(self):
        a = rand(90, 40)
        assert pack_a(a).unpack() == pytest.approx(a)

    def test_roundtrip_ragged(self):
        a = rand(71, 13)
        pa = pack_a(a)
        assert pa.n_tiles == 3
        np.testing.assert_array_equal(pa.unpack(), a)

    def test_tile_is_column_major_view_of_rows(self):
        # data[t, j, :] must be column j of the 30-row slab (Figure 3a).
        a = rand(60, 5)
        pa = pack_a(a)
        np.testing.assert_array_equal(pa.tile(1)[2], a[30:60, 2])

    def test_tile_columns_are_contiguous(self):
        pa = pack_a(rand(60, 7))
        assert pa.tile(0)[3].flags.c_contiguous

    def test_padding_is_zero(self):
        a = rand(31, 4)
        pa = pack_a(a)
        np.testing.assert_array_equal(pa.tile(1)[:, 1:], 0.0)

    def test_tile_row_range_clips(self):
        pa = pack_a(rand(31, 4))
        assert pa.tile_row_range(0) == (0, 30)
        assert pa.tile_row_range(1) == (30, 31)

    def test_kernel1_tile_height(self):
        pa = pack_a(rand(62, 4), tile_rows=31)
        assert pa.n_tiles == 2
        np.testing.assert_array_equal(pa.unpack(), rand(62, 4))

    def test_validation(self):
        with pytest.raises(ValueError):
            pack_a(np.zeros(5))
        with pytest.raises(ValueError):
            pack_a(np.zeros((4, 4)), tile_rows=0)

    @given(st.integers(1, 97), st.integers(1, 33), st.integers(1, 40))
    @settings(max_examples=30)
    def test_roundtrip_property(self, m, k, tile_rows):
        a = rand(m, k, seed=m * 100 + k)
        pa = pack_a(a, tile_rows=tile_rows)
        np.testing.assert_array_equal(pa.unpack(), a)
        assert pa.n_tiles == -(-m // tile_rows)


class TestPackB:
    def test_roundtrip_exact_multiple(self):
        b = rand(40, 32)
        np.testing.assert_array_equal(pack_b(b).unpack(), b)

    def test_roundtrip_ragged(self):
        b = rand(13, 21)
        pb = pack_b(b)
        assert pb.n_tiles == 3
        np.testing.assert_array_equal(pb.unpack(), b)

    def test_tile_is_row_major_strip(self):
        # data[t, j, :] must be row j of the 8-wide strip (Figure 3b).
        b = rand(10, 16)
        pb = pack_b(b)
        np.testing.assert_array_equal(pb.tile(1)[4], b[4, 8:16])

    def test_tile_rows_are_contiguous(self):
        pb = pack_b(rand(10, 16))
        assert pb.tile(0)[0].flags.c_contiguous

    def test_padding_is_zero(self):
        pb = pack_b(rand(5, 9))
        np.testing.assert_array_equal(pb.tile(1)[:, 1:], 0.0)

    @given(st.integers(1, 60), st.integers(1, 70))
    @settings(max_examples=30)
    def test_roundtrip_property(self, k, n):
        b = rand(k, n, seed=k * 71 + n)
        pb = pack_b(b)
        np.testing.assert_array_equal(pb.unpack(), b)
        assert pb.n_tiles == -(-n // TILE_B_COLS)


class TestPackingCost:
    def test_packing_bytes_counts_read_and_write(self):
        assert packing_bytes(10, 20, 30) == 2 * 8 * (10 * 30 + 30 * 20)

    def test_single_precision(self):
        assert packing_bytes(10, 20, 30, elem_bytes=4) == packing_bytes(10, 20, 30) // 2

    def test_negative_dims_raise(self):
        with pytest.raises(ValueError):
            packing_bytes(-1, 2, 3)

    def test_defaults_match_kernel_footprint(self):
        assert TILE_A_ROWS == 30
        assert TILE_B_COLS == 8

    def test_float32_packing_preserves_dtype(self):
        pa = pack_a(rand(31, 8, dtype=np.float32))
        assert pa.data.dtype == np.float32
        pb = pack_b(rand(8, 9, dtype=np.float32))
        assert pb.data.dtype == np.float32
