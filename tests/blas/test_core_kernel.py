"""Figure 2a: four hardware threads cooperating on one core's a tile."""

import numpy as np
import pytest

from repro.blas.kernels import (
    KERNEL1_ROWS,
    KERNEL2_ROWS,
    basic_kernel_1,
    core_a_line_traffic,
    core_multiply,
    fills_per_thread_iteration,
)
from repro.blas.packing import pack_a, pack_b
from repro.machine.kernel_model import BASIC_KERNEL_2
from repro.machine.vector import VectorMachine


def make_inputs(rows, k, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((rows, k))
    bs = [rng.standard_normal((k, 8)) for _ in range(4)]
    a_tile = pack_a(a, tile_rows=rows).tile(0)
    b_tiles = [pack_b(b).tile(0) for b in bs]
    return a, bs, a_tile, b_tiles


class TestCoreMultiply:
    def test_four_threads_four_results(self):
        a, bs, a_tile, b_tiles = make_inputs(KERNEL2_ROWS, 9)
        cs = core_multiply(a_tile, b_tiles)
        assert len(cs) == 4
        for c, b in zip(cs, bs):
            np.testing.assert_allclose(c, a @ b, rtol=1e-12)

    def test_kernel1_variant(self):
        a, bs, a_tile, b_tiles = make_inputs(KERNEL1_ROWS, 7, seed=2)
        cs = core_multiply(a_tile, b_tiles, kernel=basic_kernel_1)
        for c, b in zip(cs, bs):
            np.testing.assert_allclose(c, a @ b, rtol=1e-12)

    def test_per_thread_instruction_census(self):
        _, _, a_tile, b_tiles = make_inputs(KERNEL2_ROWS, 6, seed=3)
        vms = [VectorMachine() for _ in range(4)]
        core_multiply(a_tile, b_tiles, vms=vms)
        for vm in vms:
            assert vm.counts.vmadd == 30 * 6

    def test_wrong_thread_count(self):
        _, _, a_tile, b_tiles = make_inputs(KERNEL2_ROWS, 4)
        with pytest.raises(ValueError):
            core_multiply(a_tile, b_tiles[:3])
        with pytest.raises(ValueError):
            core_multiply(a_tile, b_tiles, vms=[VectorMachine()])


class TestSharingEconomics:
    def test_synchronized_threads_fetch_a_once(self):
        # "a line of a accessed by one of the threads is likely to remain
        # in L1 for the other three threads, as long as all threads are
        # synchronized" — 4x less a traffic.
        k = 240
        assert core_a_line_traffic(k, synchronized=True) * 4 == (
            core_a_line_traffic(k, synchronized=False)
        )

    def test_fills_match_stall_analysis(self):
        # Section III-A2: "on average, each iteration of the kernel
        # requires two cache lines to be brought from L2 into L1."
        assert fills_per_thread_iteration(synchronized=True) == pytest.approx(2.0)
        assert fills_per_thread_iteration(synchronized=False) == pytest.approx(5.0)

    def test_kernel_spec_agrees_with_sharing_model(self):
        assert BASIC_KERNEL_2.fills_per_iter == pytest.approx(
            fills_per_thread_iteration(synchronized=True)
        )

    def test_unsynchronized_fills_would_stall_kernel2(self):
        # Five fills against Kernel 2's four holes: stalls return, which
        # is why the fast inter-thread synchronization matters.
        from repro.machine.cache import L1PortModel

        pm = L1PortModel(stall_penalty=1)
        fills = round(fills_per_thread_iteration(synchronized=False))
        assert pm.iteration_stalls(32, 28, fills) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            core_a_line_traffic(0, True)
